//! # rf-apps — hosts and applications for the demo workloads
//!
//! The paper's demonstration "streams a video clip from a server to a
//! remote client" across the freshly auto-configured network and
//! reports that it arrives "within 4 minutes (including the
//! configuration time)". This crate provides the endpoints:
//!
//! * [`stack::HostStack`] — a minimal host IP stack: gratuitous ARP at
//!   boot, gateway ARP resolution with packet queueing, ICMP echo
//!   responder, UDP send/receive;
//! * [`video::VideoServer`] / [`video::VideoClient`] — a CBR UDP video
//!   stream (VLC substitute): the client requests the stream, the
//!   server paces fixed-size frames at the configured bitrate, and the
//!   client records time-to-first-byte, playback start (after its
//!   jitter buffer fills), sequence gaps and stall counts;
//! * [`ping::Pinger`] — ICMP echo round-trip probing for the
//!   quickstart example and reachability assertions in tests.

pub mod ping;
pub mod stack;
pub mod video;

pub use ping::{EchoHost, Pinger};
pub use stack::{HostConfig, HostStack, StackOutput};
pub use video::{VideoClient, VideoClientReport, VideoServer};
