//! ICMP echo probing: "is the network configured yet?"

use crate::stack::{HostConfig, HostStack, StackOutput};
use bytes::Bytes;
use rf_sim::{Agent, Ctx, Time};
use std::net::Ipv4Addr;
use std::time::Duration;

const T_PING: u64 = 1;

/// Sends pings to a target on an interval and records round trips.
#[derive(Clone)]
pub struct Pinger {
    stack: HostStack,
    pub target: Ipv4Addr,
    pub interval: Duration,
    pub ident: u16,
    next_seq: u16,
    /// When each ping went out: (seq, send time).
    pub sent_at: Vec<(u16, Time)>,
    /// Completed round trips: (seq, rtt).
    pub rtts: Vec<(u16, Duration)>,
    /// When each reply arrived: (seq, arrival time). The timeline a
    /// recovery measurement needs — the first entry after a fault marks
    /// the network healed.
    pub replies: Vec<(u16, Time)>,
    /// Time of the first successful reply — "the network works now".
    pub first_reply_at: Option<Time>,
    pub max_pings: u16,
}

impl Pinger {
    pub fn new(cfg: HostConfig, target: Ipv4Addr) -> Pinger {
        Pinger {
            stack: HostStack::new(cfg),
            target,
            interval: Duration::from_secs(1),
            ident: 0x5246,
            next_seq: 0,
            sent_at: Vec::new(),
            rtts: Vec::new(),
            replies: Vec::new(),
            first_reply_at: None,
            max_pings: 0,
        }
    }

    fn emit(&mut self, ctx: &mut Ctx<'_>, outs: Vec<StackOutput>) {
        for o in outs {
            match o {
                StackOutput::Tx(f) => ctx.send_frame(1, f),
                StackOutput::EchoReply { from, ident, seq } => {
                    if from == self.target && ident == self.ident {
                        if let Some(&(_, at)) = self.sent_at.iter().find(|(s, _)| *s == seq) {
                            let rtt = ctx.now().since(at);
                            self.rtts.push((seq, rtt));
                            self.replies.push((seq, ctx.now()));
                            if self.first_reply_at.is_none() {
                                self.first_reply_at = Some(ctx.now());
                                ctx.trace("ping.first_reply", format!("t = {}", ctx.now()));
                            }
                        }
                    }
                }
                StackOutput::Udp { .. } => {}
            }
        }
    }
}

impl Agent for Pinger {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let outs = self.stack.boot();
        self.emit(ctx, outs);
        ctx.schedule(self.interval, T_PING);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token != T_PING {
            return;
        }
        if self.max_pings != 0 && self.next_seq >= self.max_pings {
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.sent_at.push((seq, ctx.now()));
        let outs = self.stack.send_ping(self.target, self.ident, seq);
        self.emit(ctx, outs);
        ctx.schedule(self.interval, T_PING);
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_>, _port: u32, frame: Bytes) {
        let outs = self.stack.on_frame(&frame);
        self.emit(ctx, outs);
    }
}

/// A passive host that simply answers pings (and ARPs).
#[derive(Clone)]
pub struct EchoHost {
    stack: HostStack,
}

impl EchoHost {
    pub fn new(cfg: HostConfig) -> EchoHost {
        EchoHost {
            stack: HostStack::new(cfg),
        }
    }
}

impl Agent for EchoHost {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let outs = self.stack.boot();
        for o in outs {
            if let StackOutput::Tx(f) = o {
                ctx.send_frame(1, f);
            }
        }
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_>, _port: u32, frame: Bytes) {
        let outs = self.stack.on_frame(&frame);
        for o in outs {
            if let StackOutput::Tx(f) = o {
                ctx.send_frame(1, f);
            }
        }
    }
}
