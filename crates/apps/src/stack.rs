//! A minimal host IP stack (sans-IO): ARP, ICMP echo, UDP.

use bytes::Bytes;
use rf_wire::{
    ArpOp, ArpPacket, EtherType, EthernetFrame, IcmpPacket, IpProtocol, Ipv4Cidr, Ipv4Packet,
    MacAddr, UdpPacket,
};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Host addressing.
#[derive(Clone, Copy, Debug)]
pub struct HostConfig {
    pub mac: MacAddr,
    pub addr: Ipv4Cidr,
    pub gateway: Ipv4Addr,
}

/// What the stack wants done after processing input.
#[derive(Clone, Debug, PartialEq)]
pub enum StackOutput {
    /// Transmit this frame on the host's single interface.
    Tx(Bytes),
    /// A UDP datagram arrived for us.
    Udp {
        src: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        payload: Bytes,
    },
    /// An ICMP echo reply arrived (ident, seq).
    EchoReply {
        from: Ipv4Addr,
        ident: u16,
        seq: u16,
    },
}

/// The host stack.
#[derive(Clone)]
pub struct HostStack {
    cfg: HostConfig,
    arp_cache: HashMap<Ipv4Addr, MacAddr>,
    /// Packets waiting on ARP resolution, keyed by next-hop IP.
    pending: Vec<(Ipv4Addr, Ipv4Packet)>,
    /// Datagrams received (diagnostics).
    pub udp_rx: u64,
    pub udp_tx: u64,
}

impl HostStack {
    pub fn new(cfg: HostConfig) -> HostStack {
        HostStack {
            cfg,
            arp_cache: HashMap::new(),
            pending: Vec::new(),
            udp_rx: 0,
            udp_tx: 0,
        }
    }

    pub fn ip(&self) -> Ipv4Addr {
        self.cfg.addr.addr
    }

    pub fn mac(&self) -> MacAddr {
        self.cfg.mac
    }

    /// Frames to send at boot: a gratuitous ARP so the network (and
    /// RouteFlow's host learner) knows where we are.
    pub fn boot(&self) -> Vec<StackOutput> {
        let garp = ArpPacket {
            op: ArpOp::Request,
            sender_mac: self.cfg.mac,
            sender_ip: self.cfg.addr.addr,
            target_mac: MacAddr::ZERO,
            target_ip: self.cfg.addr.addr,
        };
        vec![StackOutput::Tx(
            EthernetFrame::new(
                MacAddr::BROADCAST,
                self.cfg.mac,
                EtherType::ARP,
                garp.emit(),
            )
            .emit(),
        )]
    }

    /// The next hop for `dst`: on-link or via the gateway.
    fn next_hop(&self, dst: Ipv4Addr) -> Ipv4Addr {
        if self.cfg.addr.contains(dst) {
            dst
        } else {
            self.cfg.gateway
        }
    }

    fn emit_ip(&mut self, ip: Ipv4Packet) -> Vec<StackOutput> {
        let nh = self.next_hop(ip.dst);
        match self.arp_cache.get(&nh) {
            Some(&mac) => {
                vec![StackOutput::Tx(
                    EthernetFrame::new(mac, self.cfg.mac, EtherType::IPV4, ip.emit()).emit(),
                )]
            }
            None => {
                self.pending.push((nh, ip));
                let req = ArpPacket::request(self.cfg.mac, self.cfg.addr.addr, nh);
                vec![StackOutput::Tx(
                    EthernetFrame::new(
                        MacAddr::BROADCAST,
                        self.cfg.mac,
                        EtherType::ARP,
                        req.emit(),
                    )
                    .emit(),
                )]
            }
        }
    }

    /// Is the next hop for `dst` already in the ARP cache?
    pub fn is_resolved(&self, dst: Ipv4Addr) -> bool {
        self.arp_cache.contains_key(&self.next_hop(dst))
    }

    /// Kick off ARP resolution of `dst`'s next hop without queueing
    /// any data. Bulk senders warm the cache with one request instead
    /// of emitting a request per queued datagram.
    pub fn resolve(&mut self, dst: Ipv4Addr) -> Vec<StackOutput> {
        let nh = self.next_hop(dst);
        if self.arp_cache.contains_key(&nh) {
            return Vec::new();
        }
        let req = ArpPacket::request(self.cfg.mac, self.cfg.addr.addr, nh);
        vec![StackOutput::Tx(
            EthernetFrame::new(MacAddr::BROADCAST, self.cfg.mac, EtherType::ARP, req.emit()).emit(),
        )]
    }

    /// Send a UDP datagram.
    pub fn send_udp(
        &mut self,
        dst: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        payload: Bytes,
    ) -> Vec<StackOutput> {
        self.udp_tx += 1;
        let udp = UdpPacket::new(src_port, dst_port, payload);
        let ip = Ipv4Packet::new(
            self.cfg.addr.addr,
            dst,
            IpProtocol::UDP,
            udp.emit(self.cfg.addr.addr, dst),
        );
        self.emit_ip(ip)
    }

    /// Send an ICMP echo request.
    pub fn send_ping(&mut self, dst: Ipv4Addr, ident: u16, seq: u16) -> Vec<StackOutput> {
        let icmp = IcmpPacket::echo_request(ident, seq, Bytes::from_static(b"rf-ping"));
        let ip = Ipv4Packet::new(self.cfg.addr.addr, dst, IpProtocol::ICMP, icmp.emit());
        self.emit_ip(ip)
    }

    /// Process a received frame (zero-copy: inner layers slice the
    /// caller's buffer).
    pub fn on_frame(&mut self, frame: &Bytes) -> Vec<StackOutput> {
        let Ok(eth) = EthernetFrame::parse_bytes(frame) else {
            return Vec::new();
        };
        if !eth.dst.is_broadcast() && eth.dst != self.cfg.mac && !eth.dst.is_multicast() {
            return Vec::new();
        }
        match eth.ethertype {
            EtherType::ARP => self.on_arp(&eth),
            EtherType::IPV4 => self.on_ip(&eth),
            _ => Vec::new(),
        }
    }

    fn on_arp(&mut self, eth: &EthernetFrame) -> Vec<StackOutput> {
        let Ok(arp) = ArpPacket::parse(&eth.payload) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        // Learn the sender either way.
        if arp.sender_ip != Ipv4Addr::UNSPECIFIED {
            self.arp_cache.insert(arp.sender_ip, arp.sender_mac);
        }
        if arp.op == ArpOp::Request && arp.target_ip == self.cfg.addr.addr {
            let reply = ArpPacket::reply_to(&arp, self.cfg.mac);
            out.push(StackOutput::Tx(
                EthernetFrame::new(arp.sender_mac, self.cfg.mac, EtherType::ARP, reply.emit())
                    .emit(),
            ));
        }
        // Flush anything waiting on this resolution.
        let resolved: Vec<(Ipv4Addr, Ipv4Packet)> = {
            let cache = &self.arp_cache;
            let (ready, waiting): (Vec<_>, Vec<_>) = self
                .pending
                .drain(..)
                .partition(|(nh, _)| cache.contains_key(nh));
            self.pending = waiting;
            ready
        };
        for (nh, ip) in resolved {
            let mac = self.arp_cache[&nh];
            out.push(StackOutput::Tx(
                EthernetFrame::new(mac, self.cfg.mac, EtherType::IPV4, ip.emit()).emit(),
            ));
        }
        out
    }

    fn on_ip(&mut self, eth: &EthernetFrame) -> Vec<StackOutput> {
        let Ok(ip) = Ipv4Packet::parse_bytes(&eth.payload) else {
            return Vec::new();
        };
        if ip.dst != self.cfg.addr.addr {
            return Vec::new();
        }
        match ip.protocol {
            IpProtocol::UDP => {
                let Ok(udp) = UdpPacket::parse_bytes(&ip.payload, ip.src, ip.dst) else {
                    return Vec::new();
                };
                self.udp_rx += 1;
                vec![StackOutput::Udp {
                    src: ip.src,
                    src_port: udp.src_port,
                    dst_port: udp.dst_port,
                    payload: udp.payload,
                }]
            }
            IpProtocol::ICMP => {
                let Ok(icmp) = IcmpPacket::parse_bytes(&ip.payload) else {
                    return Vec::new();
                };
                match icmp {
                    IcmpPacket::EchoRequest { .. } => {
                        let reply = IcmpPacket::reply_to(&icmp);
                        let rip = Ipv4Packet::new(
                            self.cfg.addr.addr,
                            ip.src,
                            IpProtocol::ICMP,
                            reply.emit(),
                        );
                        self.emit_ip(rip)
                    }
                    IcmpPacket::EchoReply { ident, seq, .. } => {
                        vec![StackOutput::EchoReply {
                            from: ip.src,
                            ident,
                            seq,
                        }]
                    }
                    IcmpPacket::Other { .. } => Vec::new(),
                }
            }
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host(ip: &str, gw: &str) -> HostStack {
        HostStack::new(HostConfig {
            mac: MacAddr([2, 0, 0, 0, 0, 0x42]),
            addr: format!("{ip}/24").parse().unwrap(),
            gateway: gw.parse().unwrap(),
        })
    }

    #[test]
    fn boot_sends_gratuitous_arp() {
        let h = host("10.9.0.2", "10.9.0.1");
        let out = h.boot();
        assert_eq!(out.len(), 1);
        match &out[0] {
            StackOutput::Tx(f) => {
                let eth = EthernetFrame::parse(f).unwrap();
                assert_eq!(eth.dst, MacAddr::BROADCAST);
                let arp = ArpPacket::parse(&eth.payload).unwrap();
                assert_eq!(arp.sender_ip, arp.target_ip);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn off_link_udp_arps_gateway_then_flushes() {
        let mut h = host("10.9.0.2", "10.9.0.1");
        let out = h.send_udp(
            "10.8.0.5".parse().unwrap(),
            1000,
            2000,
            Bytes::from_static(b"x"),
        );
        // First an ARP request for the gateway.
        let StackOutput::Tx(f) = &out[0] else {
            panic!()
        };
        let eth = EthernetFrame::parse(f).unwrap();
        assert_eq!(eth.ethertype, EtherType::ARP);
        let arp = ArpPacket::parse(&eth.payload).unwrap();
        assert_eq!(arp.target_ip, "10.9.0.1".parse::<Ipv4Addr>().unwrap());
        // Gateway answers; the queued datagram goes out.
        let gw_mac = MacAddr([2, 0, 0, 0, 0, 1]);
        let reply = ArpPacket::reply_to(&arp, gw_mac);
        let rf = EthernetFrame::new(h.mac(), gw_mac, EtherType::ARP, reply.emit()).emit();
        let out = h.on_frame(&rf);
        assert_eq!(out.len(), 1);
        let StackOutput::Tx(f) = &out[0] else {
            panic!()
        };
        let eth = EthernetFrame::parse(f).unwrap();
        assert_eq!(eth.dst, gw_mac);
        assert_eq!(eth.ethertype, EtherType::IPV4);
    }

    #[test]
    fn on_link_udp_arps_destination() {
        let mut h = host("10.9.0.2", "10.9.0.1");
        let out = h.send_udp("10.9.0.7".parse().unwrap(), 1, 2, Bytes::new());
        let StackOutput::Tx(f) = &out[0] else {
            panic!()
        };
        let arp = ArpPacket::parse(&EthernetFrame::parse(f).unwrap().payload).unwrap();
        assert_eq!(arp.target_ip, "10.9.0.7".parse::<Ipv4Addr>().unwrap());
    }

    #[test]
    fn answers_icmp_echo() {
        let mut h = host("10.9.0.2", "10.9.0.1");
        // Prime ARP cache via request from the pinger.
        let pinger_mac = MacAddr([2, 9, 9, 9, 9, 9]);
        let icmp = IcmpPacket::echo_request(7, 3, Bytes::from_static(b"hi"));
        let src: Ipv4Addr = "10.9.0.9".parse().unwrap();
        let arp = ArpPacket::request(pinger_mac, src, h.ip());
        let arpf = EthernetFrame::new(MacAddr::BROADCAST, pinger_mac, EtherType::ARP, arp.emit());
        h.on_frame(&arpf.emit());
        let ip = Ipv4Packet::new(src, h.ip(), IpProtocol::ICMP, icmp.emit());
        let f = EthernetFrame::new(h.mac(), pinger_mac, EtherType::IPV4, ip.emit());
        let out = h.on_frame(&f.emit());
        assert_eq!(out.len(), 1);
        let StackOutput::Tx(reply) = &out[0] else {
            panic!("{out:?}")
        };
        let eth = EthernetFrame::parse(reply).unwrap();
        let rip = Ipv4Packet::parse(&eth.payload).unwrap();
        assert!(matches!(
            IcmpPacket::parse(&rip.payload).unwrap(),
            IcmpPacket::EchoReply {
                ident: 7,
                seq: 3,
                ..
            }
        ));
    }

    #[test]
    fn udp_delivery_surfaces_payload() {
        let mut h = host("10.9.0.2", "10.9.0.1");
        let src: Ipv4Addr = "10.8.0.1".parse().unwrap();
        let udp = UdpPacket::new(5004, 9000, Bytes::from_static(b"frame-1"));
        let ip = Ipv4Packet::new(src, h.ip(), IpProtocol::UDP, udp.emit(src, h.ip()));
        let f = EthernetFrame::new(h.mac(), MacAddr([1; 6]), EtherType::IPV4, ip.emit());
        let out = h.on_frame(&f.emit());
        assert_eq!(
            out,
            vec![StackOutput::Udp {
                src,
                src_port: 5004,
                dst_port: 9000,
                payload: Bytes::from_static(b"frame-1"),
            }]
        );
        assert_eq!(h.udp_rx, 1);
    }

    #[test]
    fn ignores_foreign_unicast() {
        let mut h = host("10.9.0.2", "10.9.0.1");
        let src: Ipv4Addr = "10.8.0.1".parse().unwrap();
        let udp = UdpPacket::new(1, 2, Bytes::new());
        let ip = Ipv4Packet::new(src, h.ip(), IpProtocol::UDP, udp.emit(src, h.ip()));
        // Wrong destination MAC.
        let f = EthernetFrame::new(MacAddr([8; 6]), MacAddr([2; 6]), EtherType::IPV4, ip.emit());
        assert!(h.on_frame(&f.emit()).is_empty());
    }
}
