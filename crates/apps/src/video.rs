//! The demo's video stream: CBR UDP server and measuring client.
//!
//! The client first sends a small request ("play") to the server —
//! exercising the freshly installed client→server path — and the server
//! then paces fixed-size frames at the configured bitrate. The client
//! reports time-to-first-byte (the paper's headline "video reaches the
//! remote client within 4 minutes" metric), playback start after its
//! jitter buffer fills, loss and stalls.

use crate::stack::{HostConfig, HostStack, StackOutput};
use bytes::{BufMut, Bytes, BytesMut};
use rf_sim::{Agent, Ctx, Time};
use std::net::Ipv4Addr;
use std::time::Duration;

/// UDP port the video server listens on.
pub const VIDEO_PORT: u16 = 5004;
/// UDP port the client receives on.
pub const CLIENT_PORT: u16 = 5005;

const T_FRAME: u64 = 1;
const T_BOOT: u64 = 2;
const T_REQ_RETRY: u64 = 3;

/// The streaming server host.
#[derive(Clone)]
pub struct VideoServer {
    stack: HostStack,
    /// Stream bitrate in bits per second.
    pub bitrate_bps: u64,
    /// Payload bytes per frame packet (MPEG-TS over UDP uses 1316).
    pub frame_len: usize,
    client: Option<(Ipv4Addr, u16)>,
    next_seq: u64,
    pub frames_sent: u64,
    /// Total stream length in frames (0 = endless).
    pub max_frames: u64,
}

impl VideoServer {
    pub fn new(cfg: HostConfig) -> VideoServer {
        VideoServer {
            stack: HostStack::new(cfg),
            bitrate_bps: 2_000_000,
            frame_len: 1316,
            client: None,
            next_seq: 0,
            frames_sent: 0,
            max_frames: 0,
        }
    }

    fn frame_interval(&self) -> Duration {
        Duration::from_nanos(self.frame_len as u64 * 8 * 1_000_000_000 / self.bitrate_bps)
    }

    fn emit(&mut self, ctx: &mut Ctx<'_>, outs: Vec<StackOutput>) {
        for o in outs {
            if let StackOutput::Tx(f) = o {
                ctx.send_frame(1, f);
            }
        }
    }

    fn send_frame_packet(&mut self, ctx: &mut Ctx<'_>) {
        let Some((client_ip, client_port)) = self.client else {
            return;
        };
        if self.max_frames != 0 && self.frames_sent >= self.max_frames {
            return;
        }
        let mut payload = BytesMut::with_capacity(self.frame_len);
        payload.put_u64(self.next_seq);
        payload.put_u64(ctx.now().as_nanos());
        payload.resize(self.frame_len, b'V');
        let outs = self
            .stack
            .send_udp(client_ip, VIDEO_PORT, client_port, payload.freeze());
        self.emit(ctx, outs);
        self.next_seq += 1;
        self.frames_sent += 1;
        ctx.schedule(self.frame_interval(), T_FRAME);
    }
}

impl Agent for VideoServer {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let outs = self.stack.boot();
        self.emit(ctx, outs);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == T_FRAME {
            self.send_frame_packet(ctx);
        }
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_>, _port: u32, frame: Bytes) {
        let outs = self.stack.on_frame(&frame);
        let mut start_stream = false;
        for o in &outs {
            if let StackOutput::Udp {
                src,
                src_port,
                payload,
                ..
            } = o
            {
                if &payload[..] == b"PLAY" && self.client.is_none() {
                    self.client = Some((*src, *src_port));
                    start_stream = true;
                    ctx.trace("video.play", format!("client {src}:{src_port}"));
                }
            }
        }
        self.emit(ctx, outs);
        if start_stream {
            self.send_frame_packet(ctx);
        }
    }
}

/// Client-side measurements.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct VideoClientReport {
    /// When the PLAY request first went out.
    pub requested_at: Option<Time>,
    /// When the first media byte arrived — the demo's headline metric.
    pub first_byte_at: Option<Time>,
    /// When the jitter buffer filled and playback began.
    pub playback_at: Option<Time>,
    pub packets: u64,
    pub bytes: u64,
    /// Sequence-number gaps observed (lost or reordered packets).
    pub gaps: u64,
}

/// The measuring video client.
#[derive(Clone)]
pub struct VideoClient {
    stack: HostStack,
    server: Ipv4Addr,
    /// Media to buffer before starting playback.
    pub jitter_buffer: Duration,
    pub bitrate_bps: u64,
    pub report: VideoClientReport,
    /// When to send the PLAY request (simulation start offset).
    pub start_at: Duration,
    next_expected_seq: u64,
    /// Retry interval for the PLAY request until media arrives (the
    /// network may not be configured yet — that is the whole point of
    /// the measurement).
    pub request_retry: Duration,
}

impl VideoClient {
    pub fn new(cfg: HostConfig, server: Ipv4Addr) -> VideoClient {
        VideoClient {
            stack: HostStack::new(cfg),
            server,
            jitter_buffer: Duration::from_secs(1),
            bitrate_bps: 2_000_000,
            report: VideoClientReport::default(),
            start_at: Duration::ZERO,
            next_expected_seq: 0,
            request_retry: Duration::from_secs(2),
        }
    }

    fn emit(&mut self, ctx: &mut Ctx<'_>, outs: Vec<StackOutput>) {
        for o in outs {
            if let StackOutput::Tx(f) = o {
                ctx.send_frame(1, f);
            }
        }
    }

    fn send_play(&mut self, ctx: &mut Ctx<'_>) {
        if self.report.first_byte_at.is_some() {
            return; // media flowing; stop nagging
        }
        if self.report.requested_at.is_none() {
            self.report.requested_at = Some(ctx.now());
        }
        let outs = self.stack.send_udp(
            self.server,
            CLIENT_PORT,
            VIDEO_PORT,
            Bytes::from_static(b"PLAY"),
        );
        self.emit(ctx, outs);
        ctx.schedule(self.request_retry, T_REQ_RETRY);
    }
}

impl Agent for VideoClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let outs = self.stack.boot();
        self.emit(ctx, outs);
        ctx.schedule(self.start_at, T_BOOT);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        match token {
            T_BOOT | T_REQ_RETRY => self.send_play(ctx),
            _ => {}
        }
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_>, _port: u32, frame: Bytes) {
        let outs = self.stack.on_frame(&frame);
        for o in &outs {
            if let StackOutput::Udp {
                src,
                dst_port,
                payload,
                ..
            } = o
            {
                if *src == self.server && *dst_port == CLIENT_PORT && payload.len() >= 16 {
                    let now = ctx.now();
                    if self.report.first_byte_at.is_none() {
                        self.report.first_byte_at = Some(now);
                        ctx.trace(
                            "video.first_byte",
                            format!("t = {now} ({} bytes)", payload.len()),
                        );
                    }
                    let seq = u64::from_be_bytes(payload[..8].try_into().unwrap());
                    if seq > self.next_expected_seq {
                        self.report.gaps += seq - self.next_expected_seq;
                    }
                    self.next_expected_seq = seq + 1;
                    self.report.packets += 1;
                    self.report.bytes += payload.len() as u64;
                    if self.report.playback_at.is_none() {
                        let buffered_bits = self.report.bytes * 8;
                        let need = self.bitrate_bps * self.jitter_buffer.as_millis() as u64 / 1000;
                        if buffered_bits >= need {
                            self.report.playback_at = Some(now);
                            ctx.trace("video.playback", format!("t = {now}"));
                        }
                    }
                }
            }
        }
        self.emit(ctx, outs);
    }
}
