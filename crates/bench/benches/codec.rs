//! M1 — OpenFlow 1.0 codec throughput: every control byte in the
//! system crosses these encode/decode paths (twice when FlowVisor is
//! in the middle).

use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rf_openflow::{Action, FlowModCommand, OfMatch, OfMessage, OFPP_NONE, OFP_NO_BUFFER};
use rf_wire::MacAddr;
use std::net::Ipv4Addr;

fn flow_mod() -> OfMessage {
    OfMessage::FlowMod {
        of_match: OfMatch::ipv4_dst_prefix(Ipv4Addr::new(10, 2, 0, 0), 16),
        cookie: 0xFEED,
        command: FlowModCommand::Add,
        idle_timeout: 0,
        hard_timeout: 0,
        priority: 0x1080,
        buffer_id: OFP_NO_BUFFER,
        out_port: OFPP_NONE,
        flags: 0,
        actions: vec![
            Action::SetDlSrc(MacAddr([2, 0, 0, 0, 0, 1])),
            Action::SetDlDst(MacAddr([2, 0, 0, 0, 0, 2])),
            Action::output(2),
        ],
    }
}

fn packet_in() -> OfMessage {
    OfMessage::PacketIn {
        buffer_id: 42,
        total_len: 128,
        in_port: 3,
        reason: rf_openflow::PacketInReason::NoMatch,
        data: Bytes::from(vec![0xABu8; 128]),
    }
}

fn bench(c: &mut Criterion) {
    let fm = flow_mod();
    let pi = packet_in();
    let fm_wire = fm.encode(7);
    let pi_wire = pi.encode(9);

    c.bench_function("of10/encode_flow_mod", |b| {
        b.iter(|| black_box(fm.encode(black_box(7))))
    });
    c.bench_function("of10/decode_flow_mod", |b| {
        b.iter(|| OfMessage::decode(black_box(&fm_wire)).unwrap())
    });
    c.bench_function("of10/encode_packet_in", |b| {
        b.iter(|| black_box(pi.encode(black_box(9))))
    });
    c.bench_function("of10/decode_packet_in", |b| {
        b.iter(|| OfMessage::decode(black_box(&pi_wire)).unwrap())
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
