//! E1 as a Criterion bench — wall-clock cost of simulating the full
//! cold-start configuration of small rings (also guards against
//! complexity regressions in the simulator itself). The *simulated*
//! configuration times for Fig. 3 come from the
//! `fig3_config_time` binary; this measures how fast we can compute
//! them.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rf_bench::{auto_config_time, ExpParams};
use rf_topo::ring;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2e/auto_config");
    g.sample_size(10);
    for n in [4usize, 8] {
        g.bench_with_input(BenchmarkId::new("ring", n), &n, |b, &n| {
            let p = ExpParams {
                ospf_hello: 1,
                ospf_dead: 4,
                probe_interval: Duration::from_millis(500),
                ..ExpParams::default()
            };
            b.iter(|| black_box(auto_config_time(ring(n), &p)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
