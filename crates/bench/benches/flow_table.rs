//! M2 — flow-table lookup scaling: the per-packet cost of the
//! switch's wildcard classifier as RouteFlow fills the table.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rf_openflow::{Action, FlowModCommand, OfMatch, PacketKey, OFPP_NONE};
use rf_sim::Time;
use rf_switch::FlowTable;
use rf_wire::MacAddr;
use std::net::Ipv4Addr;

fn table_with(n: u32) -> FlowTable {
    let mut t = FlowTable::new();
    for i in 0..n {
        let prefix = Ipv4Addr::from(0x0A00_0000u32 | (i << 8));
        t.apply_flow_mod(
            FlowModCommand::Add,
            OfMatch::ipv4_dst_prefix(prefix, 24),
            0x1000 + 24 * 8,
            0,
            0,
            0,
            0,
            OFPP_NONE,
            vec![Action::output((i % 8 + 1) as u16)],
            Time::ZERO,
        );
    }
    t
}

fn key(i: u32) -> PacketKey {
    PacketKey {
        in_port: 1,
        dl_src: MacAddr::ZERO,
        dl_dst: MacAddr::ZERO,
        dl_type: 0x0800,
        nw_tos: 0,
        nw_proto: 17,
        nw_src: Ipv4Addr::new(192, 168, 0, 1),
        nw_dst: Ipv4Addr::from(0x0A00_0000u32 | (i << 8) | 7),
        tp_src: 1,
        tp_dst: 2,
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("flow_table/lookup");
    for n in [16u32, 64, 256, 1024] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut t = table_with(n);
            let mut i = 0u32;
            b.iter(|| {
                i = (i + 1) % n;
                let hit = t.lookup(&key(i), 100, Time::ZERO).is_some();
                black_box(hit)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
