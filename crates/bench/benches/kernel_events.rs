//! Kernel event-dispatch throughput: how many simulator events per
//! wall-clock second `Sim::step` sustains on a realistic workload.
//!
//! The ring-16 ping scenario exercises every hot path the perf
//! overhaul touched — the tick-wheel event queue, dense port tables,
//! enum-indexed counters, zero-copy frame parsing and the
//! single-clone delivery path — under real protocol traffic (OSPF
//! hellos and floods, LLDP probe cycles, ICMP echo). The bench steps
//! the configured simulation through a fixed window of simulated time
//! and reports events/sec alongside the timing, so queue or dispatch
//! regressions show up directly rather than hidden inside an
//! end-to-end number.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rf_core::scenario::{Scenario, Workload};
use rf_sim::Time;
use rf_topo::ring;
use std::time::{Duration, Instant};

/// Build a configured ring-16 ping scenario, run to the start of the
/// steady state.
fn configured_ring16() -> rf_core::scenario::Scenario {
    let mut sc = Scenario::on(ring(16))
        .fast_timers()
        .trace_level(rf_sim::TraceLevel::Off)
        .with_workload(Workload::ping(0, 8))
        .start();
    sc.run_until_configured(Time::from_secs(120))
        .expect("ring-16 configures");
    sc
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel/events");
    g.sample_size(10);

    // Cold start through configuration: dominated by protocol bursts
    // (discovery, DBD exchanges, LSA floods, FLOW_MOD pushes).
    g.bench_function("ring16_ping_configure", |b| {
        b.iter(|| {
            let sc = configured_ring16();
            black_box(sc.sim.events_dispatched())
        })
    });

    // Steady state: hellos, LLDP probe cycles and pings over an
    // already-converged network — the sustained events/sec figure.
    g.bench_function("ring16_ping_steady_30s", |b| {
        b.iter(|| {
            let mut sc = configured_ring16();
            let from = sc.sim.events_dispatched();
            let until = sc.sim.now() + Duration::from_secs(30);
            sc.run_until(until);
            black_box(sc.sim.events_dispatched() - from)
        })
    });

    g.finish();

    // Events/sec headline, printed once (the criterion shim reports
    // time only).
    let mut sc = configured_ring16();
    let from = sc.sim.events_dispatched();
    let t0 = Instant::now();
    let until = sc.sim.now() + Duration::from_secs(30);
    sc.run_until(until);
    let wall = t0.elapsed();
    let events = sc.sim.events_dispatched() - from;
    println!(
        "kernel/events/ring16_ping_steady_30s: {events} events in {wall:?} \
         ({:.0} events/sec)",
        events as f64 / wall.as_secs_f64()
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
