//! M5 — RPC codec throughput: configuration messages per second the
//! RPC path can marshal (the framework sends one per switch and one
//! per link).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rf_rpc::{decode_envelope, encode_envelope, Envelope, RpcRequest, RpcServerEndpoint};
use rf_wire::Ipv4Cidr;
use std::net::Ipv4Addr;

fn link_req(i: u64) -> Envelope {
    Envelope::Request {
        req_id: i,
        request: RpcRequest::LinkDetected {
            a_dpid: i,
            a_port: 1,
            b_dpid: i + 1,
            b_port: 2,
            subnet: Ipv4Cidr::new(Ipv4Addr::new(172, 31, 0, 0), 30),
            ip_a: Ipv4Addr::new(172, 31, 0, 1),
            ip_b: Ipv4Addr::new(172, 31, 0, 2),
        },
    }
}

fn bench(c: &mut Criterion) {
    let env = link_req(1);
    let wire = encode_envelope(&env);
    c.bench_function("rpc/encode_link_detected", |b| {
        b.iter(|| black_box(encode_envelope(black_box(&env))))
    });
    c.bench_function("rpc/decode_link_detected", |b| {
        b.iter(|| decode_envelope(black_box(&wire)).unwrap())
    });
    c.bench_function("rpc/server_feed_100", |b| {
        let mut stream = Vec::new();
        for i in 0..100u64 {
            stream.extend_from_slice(&encode_envelope(&link_req(i)));
        }
        b.iter(|| {
            let mut s = RpcServerEndpoint::new();
            let (fresh, acks) = s.feed(black_box(&stream));
            black_box((fresh.len(), acks.len()))
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
