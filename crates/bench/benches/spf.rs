//! M3 — SPF cost: the per-convergence price every VM pays after each
//! topology change; drives the scaling of the OSPF phase.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rf_routed::ospf::lsa::{Lsa, RouterLink, RouterLinkType, INITIAL_SEQ};
use rf_routed::ospf::spf;
use rf_topo::{pan_european, ring, Topology};
use std::collections::{BTreeMap, HashMap};
use std::net::Ipv4Addr;

/// Build a router-LSA database mirroring `topo`.
fn lsdb_for(topo: &Topology) -> (BTreeMap<u32, Lsa>, HashMap<u32, (u16, Ipv4Addr)>) {
    let mut next_port = vec![1u16; topo.node_count()];
    let mut links_of: Vec<Vec<RouterLink>> = vec![Vec::new(); topo.node_count()];
    let mut adjacent = HashMap::new();
    for (k, e) in topo.edges().iter().enumerate() {
        let base = 0xAC10_0000u32 + (k as u32) * 4;
        let pa = next_port[e.a];
        next_port[e.a] += 1;
        let pb = next_port[e.b];
        next_port[e.b] += 1;
        links_of[e.a].push(RouterLink {
            link_type: RouterLinkType::PointToPoint,
            link_id: (e.b + 1) as u32,
            link_data: base + 1,
            metric: 10,
        });
        links_of[e.a].push(RouterLink {
            link_type: RouterLinkType::Stub,
            link_id: base,
            link_data: 0xFFFF_FFFC,
            metric: 10,
        });
        links_of[e.b].push(RouterLink {
            link_type: RouterLinkType::PointToPoint,
            link_id: (e.a + 1) as u32,
            link_data: base + 2,
            metric: 10,
        });
        links_of[e.b].push(RouterLink {
            link_type: RouterLinkType::Stub,
            link_id: base,
            link_data: 0xFFFF_FFFC,
            metric: 10,
        });
        // Node 0's adjacencies (the computing router).
        if e.a == 0 {
            adjacent.insert((e.b + 1) as u32, (pa, Ipv4Addr::from(base + 2)));
        }
        if e.b == 0 {
            adjacent.insert((e.a + 1) as u32, (pb, Ipv4Addr::from(base + 1)));
        }
    }
    let db = links_of
        .into_iter()
        .enumerate()
        .map(|(i, links)| {
            (
                (i + 1) as u32,
                Lsa::router((i + 1) as u32, INITIAL_SEQ, 0, links),
            )
        })
        .collect();
    (db, adjacent)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ospf/spf");
    for n in [8usize, 28, 64, 128] {
        let topo = ring(n);
        let (db, adj) = lsdb_for(&topo);
        g.bench_with_input(BenchmarkId::new("ring", n), &n, |b, _| {
            b.iter(|| black_box(spf::compute(&db, 1, &adj)))
        });
    }
    let topo = pan_european();
    let (db, adj) = lsdb_for(&topo);
    g.bench_function("pan_european", |b| {
        b.iter(|| black_box(spf::compute(&db, 1, &adj)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
