//! A1–A5 — ablations over the framework's design parameters:
//!
//! * A1: LLDP probe interval vs. configuration time (ring-16)
//! * A2: OSPF hello/dead timers vs. time-to-video (pan-European)
//! * A3: VM boot latency vs. configuration time (ring-28)
//! * A4: FlowVisor proxy vs. direct multi-controller attachment
//! * A5: topology family at ~28 nodes
//!
//! Run: `cargo run --release -p rf-bench --bin ablations [a1|a2|a3|a4|a5]`

use rf_bench::{auto_config_time, fmt_dur, fmt_opt, print_table, video_demo, ExpParams};
use rf_topo::{grid, line, pan_european, ring, star};
use std::time::Duration;

fn a1() {
    let mut rows = Vec::new();
    for ms in [100u64, 250, 500, 1000, 2000, 5000] {
        let p = ExpParams {
            probe_interval: Duration::from_millis(ms),
            ..ExpParams::default()
        };
        let t = auto_config_time(ring(16), &p);
        rows.push(vec![format!("{ms}"), fmt_dur(t)]);
    }
    print_table(
        "A1 — LLDP probe interval vs. configuration time (ring-16)",
        &["probe interval (ms)", "config time (s)"],
        &rows,
    );
}

fn a2() {
    let topo = pan_european();
    let (a, b) = topo.farthest_pair().unwrap();
    let mut rows = Vec::new();
    for (hello, dead) in [(1u16, 4u16), (2, 8), (5, 20), (10, 40)] {
        let p = ExpParams {
            ospf_hello: hello,
            ospf_dead: dead,
            ..ExpParams::default()
        };
        let r = video_demo(pan_european(), a, b, &p, Duration::from_secs(300));
        rows.push(vec![
            format!("{hello}/{dead}"),
            fmt_opt(r.configured_at),
            fmt_opt(r.first_byte_at),
        ]);
    }
    print_table(
        "A2 — OSPF hello/dead vs. time-to-video (pan-European)",
        &["hello/dead (s)", "configured (s)", "first video byte (s)"],
        &rows,
    );
}

fn a3() {
    let mut rows = Vec::new();
    for boot_ms in [500u64, 1000, 2000, 5000, 10000] {
        let p = ExpParams {
            vm_boot_delay: Duration::from_millis(boot_ms),
            ..ExpParams::default()
        };
        let t = auto_config_time(ring(28), &p);
        rows.push(vec![format!("{:.1}", boot_ms as f64 / 1000.0), fmt_dur(t)]);
    }
    print_table(
        "A3 — VM boot latency vs. configuration time (ring-28)",
        &["VM boot (s)", "config time (s)"],
        &rows,
    );
}

fn a4() {
    let mut rows = Vec::new();
    for (label, fv) in [
        ("via FlowVisor (paper)", true),
        ("direct (OVS multi-controller)", false),
    ] {
        let p = ExpParams {
            use_flowvisor: fv,
            ..ExpParams::default()
        };
        let t = auto_config_time(ring(16), &p);
        rows.push(vec![label.into(), fmt_dur(t)]);
    }
    print_table(
        "A4 — FlowVisor proxy overhead (ring-16)",
        &["attachment", "config time (s)"],
        &rows,
    );
}

fn a5() {
    let p = ExpParams::default();
    let topos: Vec<(&str, rf_topo::Topology)> = vec![
        ("ring-28", ring(28)),
        ("line-28", line(28)),
        ("star-28", star(28)),
        ("grid-7x4", grid(7, 4)),
        ("pan-European", pan_european()),
    ];
    let mut rows = Vec::new();
    for (name, t) in topos {
        let links = t.edge_count();
        let d = auto_config_time(t, &p);
        rows.push(vec![name.into(), links.to_string(), fmt_dur(d)]);
    }
    print_table(
        "A5 — topology family vs. configuration time (~28 nodes)",
        &["topology", "links", "config time (s)"],
        &rows,
    );
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_default();
    match which.as_str() {
        "a1" => a1(),
        "a2" => a2(),
        "a3" => a3(),
        "a4" => a4(),
        "a5" => a5(),
        _ => {
            a1();
            a2();
            a3();
            a4();
            a5();
        }
    }
}
