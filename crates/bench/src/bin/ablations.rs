//! A1–A5 — ablations over the framework's design parameters, each one
//! a `ScenarioMatrix` sweep emitting the standard report type:
//!
//! * A1: LLDP probe interval vs. configuration time (ring-16)
//! * A2: OSPF hello/dead timers vs. time-to-video (pan-European)
//! * A3: VM boot latency vs. configuration time (ring-28)
//! * A4: FlowVisor proxy vs. direct multi-controller attachment
//! * A5: topology family at ~28 nodes
//!
//! Run: `cargo run --release -p rf-bench --bin ablations [a1|..|a5]`
//! (add `--json PREFIX` to save each selected ablation's report as
//! `PREFIX.<ablation>.json`, `--threads N` for the worker count)

use rf_bench::{fmt_dur, print_table, report_duration, sweep_args, SweepArgs};
use rf_core::scenario::{
    FaultSchedule, MatrixKnob, MatrixReport, MatrixSpec, Scenario, ScenarioMatrix, Workload,
};
use std::time::Duration;

/// One-topology, no-fault spec with a knob axis — the shape of every
/// parameter ablation.
fn knob_sweep(topology: &str, knobs: Vec<MatrixKnob>) -> MatrixSpec {
    MatrixSpec {
        seeds: vec![0xC0FFEE],
        topologies: vec![topology.into()],
        schedules: vec![FaultSchedule::none()],
        knobs,
        configure_deadline: Duration::from_secs(3600),
        post_fault_window: Duration::ZERO,
        settle: Duration::from_secs(5),
    }
}

/// Run the matrix and return (report, one table row per cell built by
/// `row`, which receives each cell's record).
fn sweep_rows(
    args: &SweepArgs,
    spec: MatrixSpec,
    row: impl Fn(&rf_core::scenario::MatrixCell, &rf_core::scenario::CellRecord) -> Vec<String>,
) -> (MatrixReport, Vec<Vec<String>>) {
    let matrix = ScenarioMatrix::new(spec);
    let report = matrix.run(args.threads);
    let rows = matrix
        .spec()
        .cells()
        .iter()
        .map(|cell| {
            let rec = report
                .cells
                .iter()
                .find(|c| c.key == cell.key())
                .expect("every cell reports");
            row(cell, rec)
        })
        .collect();
    (report, rows)
}

fn save(args: &SweepArgs, name: &str, report: &MatrixReport) {
    if let Some(prefix) = &args.json_out {
        let path = format!("{prefix}.{name}.json");
        std::fs::write(&path, report.to_json()).expect("write report");
        eprintln!("matrix report written to {path}");
    }
}

fn a1(args: &SweepArgs) {
    let knobs = [100u64, 250, 500, 1000, 2000, 5000]
        .iter()
        .map(|&ms| {
            MatrixKnob::paper(format!("probe{ms}ms")).with_probe_interval(Duration::from_millis(ms))
        })
        .collect();
    let (report, rows) = sweep_rows(args, knob_sweep("ring-16", knobs), |cell, rec| {
        vec![
            cell.knob.probe_interval.as_millis().to_string(),
            fmt_dur(report_duration(rec, "all_configured_ns").expect("configures")),
        ]
    });
    print_table(
        "A1 — LLDP probe interval vs. configuration time (ring-16)",
        &["probe interval (ms)", "config time (s)"],
        &rows,
    );
    save(args, "a1", &report);
}

fn a2(args: &SweepArgs) {
    let knobs = [(1u16, 4u32), (2, 8), (5, 20), (10, 40)]
        .iter()
        .map(|&(hello, dead)| {
            MatrixKnob::paper(format!("hello{hello}dead{dead}"))
                .with_ospf_timers(hello, dead as u16)
        })
        .collect();
    let mut spec = knob_sweep("pan-european", knobs);
    spec.settle = Duration::from_secs(30); // let the stream start
    let matrix = ScenarioMatrix::new(spec);
    // The §3 demo probe: a video stream across the farthest city pair
    // instead of the standard ping.
    let report = matrix.run_with(args.threads, |cell| {
        let topo = cell.topo_spec().expect("registry name").build();
        let (server, client) = topo.farthest_pair().expect("non-trivial topology");
        Ok(cell
            .knob
            .apply(Scenario::on(topo))
            .seed(cell.seed)
            .trace_level(rf_sim::TraceLevel::Off)
            .with_workload(Workload::video(server, client)))
    });
    let rows = matrix
        .spec()
        .cells()
        .iter()
        .map(|cell| {
            let rec = report
                .cells
                .iter()
                .find(|c| c.key == cell.key())
                .expect("every cell reports");
            vec![
                format!("{}/{}", cell.knob.ospf_hello, cell.knob.ospf_dead),
                report_duration(rec, "all_configured_ns")
                    .map(fmt_dur)
                    .unwrap_or_else(|| "-".into()),
                report_duration(rec, "video_first_byte_ns")
                    .map(fmt_dur)
                    .unwrap_or_else(|| "-".into()),
            ]
        })
        .collect::<Vec<_>>();
    print_table(
        "A2 — OSPF hello/dead vs. time-to-video (pan-European)",
        &["hello/dead (s)", "configured (s)", "first video byte (s)"],
        &rows,
    );
    save(args, "a2", &report);
}

fn a3(args: &SweepArgs) {
    let knobs = [500u64, 1000, 2000, 5000, 10000]
        .iter()
        .map(|&ms| {
            MatrixKnob::paper(format!("boot{ms}ms")).with_vm_boot_delay(Duration::from_millis(ms))
        })
        .collect();
    let (report, rows) = sweep_rows(args, knob_sweep("ring-28", knobs), |cell, rec| {
        vec![
            format!("{:.1}", cell.knob.vm_boot_delay.as_secs_f64()),
            fmt_dur(report_duration(rec, "all_configured_ns").expect("configures")),
        ]
    });
    print_table(
        "A3 — VM boot latency vs. configuration time (ring-28)",
        &["VM boot (s)", "config time (s)"],
        &rows,
    );
    save(args, "a3", &report);
}

fn a4(args: &SweepArgs) {
    let knobs = vec![
        MatrixKnob::paper("flowvisor"),
        MatrixKnob::paper("direct").without_flowvisor(),
    ];
    let (report, rows) = sweep_rows(args, knob_sweep("ring-16", knobs), |cell, rec| {
        let label = if cell.knob.use_flowvisor {
            "via FlowVisor (paper)"
        } else {
            "direct (OVS multi-controller)"
        };
        vec![
            label.into(),
            fmt_dur(report_duration(rec, "all_configured_ns").expect("configures")),
        ]
    });
    print_table(
        "A4 — FlowVisor proxy overhead (ring-16)",
        &["attachment", "config time (s)"],
        &rows,
    );
    save(args, "a4", &report);
}

fn a5(args: &SweepArgs) {
    let mut spec = knob_sweep("ring-28", vec![MatrixKnob::paper("paper")]);
    spec.topologies = vec![
        "ring-28".into(),
        "line-28".into(),
        "star-28".into(),
        "grid-7x4".into(),
        "pan-european".into(),
    ];
    let (report, rows) = sweep_rows(args, spec, |cell, rec| {
        let links = cell
            .topo_spec()
            .expect("registry name")
            .build()
            .edge_count();
        vec![
            cell.topology.clone(),
            links.to_string(),
            fmt_dur(report_duration(rec, "all_configured_ns").expect("configures")),
        ]
    });
    print_table(
        "A5 — topology family vs. configuration time (~28 nodes)",
        &["topology", "links", "config time (s)"],
        &rows,
    );
    save(args, "a5", &report);
}

fn main() {
    let args = sweep_args();
    let which = args.rest.first().map(String::as_str).unwrap_or("");
    match which {
        "a1" => a1(&args),
        "a2" => a2(&args),
        "a3" => a3(&args),
        "a4" => a4(&args),
        "a5" => a5(&args),
        "" => {
            a1(&args);
            a2(&args);
            a3(&args);
            a4(&args);
            a5(&args);
        }
        other => {
            eprintln!(
                "unknown argument {other}\n\
                 usage: ablations [a1|a2|a3|a4|a5] [--threads N] [--json PREFIX]"
            );
            std::process::exit(2);
        }
    }
}
