//! The chaos-campaign harness: fan N seeded random fault schedules ×
//! M topologies over worker threads, machine-check every cell's
//! invariants, shrink any violation to a minimal repro, and emit the
//! byte-stable campaign report.
//!
//! ```sh
//! # CI-sized campaign (2 rings × 4 schedules), report to stdout:
//! cargo run --release -p rf-bench --bin chaos_sweep -- --smoke
//!
//! # The acceptance-scale campaign: 7 topologies × 30 schedules:
//! cargo run --release -p rf-bench --bin chaos_sweep -- --full
//!
//! # Gate + artifacts: nonzero exit on any invariant violation, one
//! # minimized repro JSON per violating cell under --repro-dir:
//! cargo run --release -p rf-bench --bin chaos_sweep -- --smoke \
//!     --out chaos.json --repro-dir repros/
//!
//! # Replay a minimized repro byte-for-byte:
//! cargo run --release -p rf-bench --bin chaos_sweep -- --replay repros/r0.json
//! ```
//!
//! The report is byte-identical at any `--threads` value and fully
//! determined by `--seed`; see README §"Chaos campaigns".

use rf_core::chaos::ChaosCampaign;
use std::process::ExitCode;

struct Args {
    campaign: ChaosCampaign,
    grid_name: &'static str,
    seed: u64,
    threads: usize,
    out: Option<String>,
    check: Option<String>,
    summary_md: Option<String>,
    repro_dir: Option<String>,
    replay: Option<String>,
    no_shrink: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut seed = 1u64;
    let mut args = Args {
        campaign: ChaosCampaign::smoke(seed),
        grid_name: "smoke",
        seed,
        threads: rf_bench::default_threads(),
        out: None,
        check: None,
        summary_md: None,
        repro_dir: None,
        replay: None,
        no_shrink: false,
    };
    let mut full = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--smoke" => full = false,
            "--full" => full = true,
            "--seed" => {
                seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--out" => args.out = Some(value("--out")?),
            "--check" => args.check = Some(value("--check")?),
            "--summary-md" => args.summary_md = Some(value("--summary-md")?),
            "--repro-dir" => args.repro_dir = Some(value("--repro-dir")?),
            "--replay" => args.replay = Some(value("--replay")?),
            "--no-shrink" => args.no_shrink = true,
            other => {
                return Err(format!(
                    "unknown argument {other}\n\
                     usage: chaos_sweep [--smoke|--full] [--seed N] [--threads N] \
                     [--out FILE] [--check BASELINE] [--summary-md FILE] \
                     [--repro-dir DIR] [--no-shrink] [--replay REPRO.json]"
                ))
            }
        }
    }
    args.campaign = if full {
        args.grid_name = "full";
        ChaosCampaign::full(seed)
    } else {
        ChaosCampaign::smoke(seed)
    };
    args.seed = seed;
    args.campaign.shrink = !args.no_shrink;
    Ok(args)
}

/// Re-run a minimized repro and compare the violations it provokes
/// against the recorded ones.
fn replay(campaign: &ChaosCampaign, path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("reading {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let repro = match rf_core::chaos::ReproCase::parse(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("parsing {path}: {e}");
            return ExitCode::from(2);
        }
    };
    eprintln!(
        "replaying {}: {} fault(s) on {} (seed {})",
        repro.key,
        repro.faults.len(),
        repro.topology,
        repro.seed
    );
    let got: Vec<(String, String)> = campaign
        .replay(&repro)
        .iter()
        .map(|v| (v.code().to_string(), v.to_string()))
        .collect();
    for (code, detail) in &got {
        eprintln!("  [{code}] {detail}");
    }
    if got == repro.violations {
        eprintln!("replay matches the recorded violations exactly");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "replay DIVERGED: recorded {:?}, got {:?}",
            repro.violations, got
        );
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &args.replay {
        return replay(&args.campaign, path);
    }

    let schedules = args.campaign.topologies.len() * args.campaign.schedules_per_topology;
    eprintln!(
        "chaos {} campaign: {schedules} schedules across {} topologies on {} threads (seed {})",
        args.grid_name,
        args.campaign.topologies.len(),
        args.threads,
        args.seed
    );
    let started = std::time::Instant::now();
    let outcome = args.campaign.run(args.threads);
    eprintln!(
        "ran {} schedules in {:.1}s wall clock: {} violation(s) in {} cell(s), {} build error(s)",
        outcome.stats.schedules,
        started.elapsed().as_secs_f64(),
        outcome.stats.violations,
        outcome.stats.cells_with_violations,
        outcome.stats.build_errors,
    );
    for s in &outcome.stats.shrinks {
        eprintln!(
            "  shrink {}: {} -> {} fault(s) in {} re-run(s)",
            s.key, s.from, s.to, s.runs
        );
    }

    if let Some(dir) = &args.repro_dir {
        if !outcome.repros.is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("creating {dir}: {e}");
                return ExitCode::from(2);
            }
        }
        for (i, repro) in outcome.repros.iter().enumerate() {
            let path = format!("{dir}/repro-{i:03}.json");
            if let Err(e) = std::fs::write(&path, repro.to_json()) {
                eprintln!("writing {path}: {e}");
                return ExitCode::from(2);
            }
            eprintln!("minimized repro written to {path} ({})", repro.key);
        }
    } else {
        for repro in &outcome.repros {
            eprintln!("--- minimized repro ({}) ---", repro.key);
            eprint!("{}", repro.to_json());
        }
    }

    if let Some(path) = &args.summary_md {
        let mut md = format!(
            "## chaos `{}` campaign — {} schedules, {} violation(s)\n\n\
             | metric | n | min | median | max |\n\
             |---|---|---|---|---|\n",
            args.grid_name, outcome.stats.schedules, outcome.stats.violations
        );
        for (name, s) in &outcome.report.summary {
            if name.starts_with("chaos_") || name.starts_with("inv_") || name == "recovery_ns" {
                md.push_str(&format!(
                    "| `{name}` | {} | {} | {} | {} |\n",
                    s.count, s.min, s.median, s.max
                ));
            }
        }
        if let Err(e) = std::fs::write(path, md) {
            eprintln!("writing {path}: {e}");
            return ExitCode::from(2);
        }
        eprintln!("markdown summary written to {path}");
    }

    let json = outcome.report.to_json();
    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("writing {path}: {e}");
                return ExitCode::from(2);
            }
            eprintln!("report written to {path}");
        }
        None => print!("{json}"),
    }

    if let Some(path) = &args.check {
        let baseline = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("reading baseline {path}: {e}");
                return ExitCode::from(2);
            }
        };
        if baseline == json {
            eprintln!("report is byte-identical to baseline {path}");
        } else {
            eprintln!("report DIVERGES from baseline {path}");
            return ExitCode::FAILURE;
        }
    }

    if outcome.stats.violations > 0 || outcome.stats.build_errors > 0 {
        eprintln!("campaign NOT green");
        return ExitCode::FAILURE;
    }
    eprintln!("campaign green: every invariant held on every schedule");
    ExitCode::SUCCESS
}
