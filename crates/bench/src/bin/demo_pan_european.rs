//! E2 / §3 — the demonstration: stream a video across the 28-node
//! pan-European topology from a cold start; the clip must reach the
//! remote client within 4 minutes including configuration time.
//!
//! Run: `cargo run --release -p rf-bench --bin demo_pan_european`

use rf_bench::{fmt_opt, print_table, video_demo, ExpParams};
use rf_topo::pan_european;
use std::time::Duration;

fn main() {
    let topo = pan_european();
    let (a, b) = topo.farthest_pair().unwrap();
    eprintln!(
        "server at {}, client at {} ({} hops apart)",
        topo.node(a).name,
        topo.node(b).name,
        topo.bfs_distances(a)[b]
    );
    // Default Quagga timers — the 4-minute bound must hold without any
    // timer tuning, as in the paper's demo.
    let r = video_demo(
        pan_european(),
        a,
        b,
        &ExpParams::default(),
        Duration::from_secs(300),
    );
    print_table(
        "§3 demo — pan-European (28 nodes), cold start to video (seconds, simulated)",
        &["metric", "value"],
        &[
            vec![
                "all switches configured (green)".into(),
                fmt_opt(r.configured_at),
            ],
            vec![
                "first video byte at client".into(),
                fmt_opt(r.first_byte_at),
            ],
            vec![
                "playback start (1 s jitter buffer)".into(),
                fmt_opt(r.playback_at),
            ],
            vec!["packets received".into(), r.packets.to_string()],
            vec!["sequence gaps".into(), r.gaps.to_string()],
        ],
    );
    let ok = r
        .first_byte_at
        .map(|t| t < Duration::from_secs(240))
        .unwrap_or(false);
    println!(
        "\npaper's claim (video within 4 minutes incl. configuration): {}",
        if ok { "REPRODUCED" } else { "NOT reproduced" }
    );
}
