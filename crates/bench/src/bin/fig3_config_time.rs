//! E1 / Fig. 3 — automatic vs. manual configuration time on ring
//! topologies of increasing size, via the `ScenarioBuilder` API.
//!
//! The paper's Fig. 3 plots both curves for rings run on the OFELIA
//! testbed; the manual curve is the 15-minutes-per-switch model. We
//! reproduce the *shape*: automatic configuration stays within seconds
//! to low minutes and grows gently, the manual model grows linearly at
//! 900 s per switch, so the gap widens from ~2 orders of magnitude.
//! The typed scenario metrics also give the per-switch trajectory (how
//! the serial VM-creation pipeline stretches the tail) and the flow
//! count at convergence.
//!
//! Run: `cargo run --release -p rf-bench --bin fig3_config_time`

use rf_bench::{auto_config_metrics, fmt_dur, manual_config_time, print_table, ExpParams};
use rf_topo::ring;
use std::time::Duration;

fn main() {
    let params = ExpParams::default();
    let sizes = [4usize, 8, 12, 16, 20, 24, 28, 40, 64];
    let mut rows = Vec::new();
    for &n in &sizes {
        let m = auto_config_metrics(ring(n), &params);
        let auto = Duration::from_nanos(
            m.all_configured_at
                .expect("metrics taken after completion")
                .as_nanos(),
        );
        let first_green = m
            .per_switch_config_time
            .iter()
            .filter_map(|(_, t)| *t)
            .min()
            .expect("all switches configured");
        let manual = manual_config_time(n);
        let speedup = manual.as_secs_f64() / auto.as_secs_f64();
        rows.push(vec![
            n.to_string(),
            fmt_dur(auto),
            format!("{:.1}", first_green.as_secs_f64()),
            m.flows_installed.to_string(),
            manual.as_secs().to_string(),
            format!("{speedup:.0}x"),
        ]);
        eprintln!(
            "ring-{n}: auto {}s (first switch green {:.1}s, {} flows) manual {}s",
            fmt_dur(auto),
            first_green.as_secs_f64(),
            m.flows_installed,
            manual.as_secs()
        );
    }
    print_table(
        "Fig. 3 — configuration time, ring topologies (seconds, simulated)",
        &[
            "switches",
            "automatic (s)",
            "first green (s)",
            "flows pushed",
            "manual (s)",
            "speedup",
        ],
        &rows,
    );
    println!("\nManual model: 5 min VM + 2 min mapping + 8 min routing per switch (paper §2.1).");
}
