//! E1 / Fig. 3 — automatic vs. manual configuration time on ring
//! topologies of increasing size, swept through the `ScenarioMatrix`
//! harness.
//!
//! The paper's Fig. 3 plots both curves for rings run on the OFELIA
//! testbed; the manual curve is the 15-minutes-per-switch model. We
//! reproduce the *shape*: automatic configuration stays within seconds
//! to low minutes and grows gently, the manual model grows linearly at
//! 900 s per switch, so the gap widens from ~2 orders of magnitude.
//!
//! Cells run in parallel worker threads and land in the same stable
//! [`MatrixReport`] JSON the CI sweep uses, so Fig. 3 runs can be
//! diffed across commits like any other sweep.
//!
//! Run: `cargo run --release -p rf-bench --bin fig3_config_time`
//! (add `--json FILE` to save the report, `--threads N` to override
//! the worker count)

use rf_bench::{fmt_dur, manual_config_time, print_table, report_duration, sweep_args};
use rf_core::scenario::{FaultSchedule, MatrixKnob, MatrixSpec, ScenarioMatrix};
use std::time::Duration;

fn main() {
    let args = sweep_args();
    let sizes = [4usize, 8, 12, 16, 20, 24, 28, 40, 64];
    let spec = MatrixSpec {
        seeds: vec![0xC0FFEE],
        topologies: sizes.iter().map(|n| format!("ring-{n}")).collect(),
        schedules: vec![FaultSchedule::none()],
        knobs: vec![MatrixKnob::paper("paper")],
        configure_deadline: Duration::from_secs(3600),
        post_fault_window: Duration::ZERO,
        settle: Duration::from_secs(5),
    };
    let matrix = ScenarioMatrix::new(spec);
    let report = matrix.run(args.threads);

    let mut rows = Vec::new();
    for (cell, n) in matrix.spec().cells().iter().zip(sizes) {
        let rec = report
            .cells
            .iter()
            .find(|c| c.key == cell.key())
            .expect("every cell reports");
        let auto = report_duration(rec, "all_configured_ns")
            .expect("configuration must complete within an hour");
        let first_green = report_duration(rec, "green_first_ns").expect("switches configured");
        let flows = rec.metrics["flows_installed"];
        let manual = manual_config_time(n);
        let speedup = manual.as_secs_f64() / auto.as_secs_f64();
        rows.push(vec![
            n.to_string(),
            fmt_dur(auto),
            fmt_dur(first_green),
            flows.to_string(),
            manual.as_secs().to_string(),
            format!("{speedup:.0}x"),
        ]);
        eprintln!(
            "ring-{n}: auto {}s (first switch green {:.1}s, {} flows) manual {}s",
            fmt_dur(auto),
            first_green.as_secs_f64(),
            flows,
            manual.as_secs()
        );
    }
    print_table(
        "Fig. 3 — configuration time, ring topologies (seconds, simulated)",
        &[
            "switches",
            "automatic (s)",
            "first green (s)",
            "flows pushed",
            "manual (s)",
            "speedup",
        ],
        &rows,
    );
    println!("\nManual model: 5 min VM + 2 min mapping + 8 min routing per switch (paper §2.1).");
    if let Some(path) = args.json_out {
        std::fs::write(&path, report.to_json()).expect("write report");
        eprintln!("matrix report written to {path}");
    }
}
