//! E1 / Fig. 3 — automatic vs. manual configuration time on ring
//! topologies of increasing size (plus the pan-European reference
//! network), swept through the `ScenarioMatrix` harness.
//!
//! The paper's Fig. 3 plots both curves for rings run on the OFELIA
//! testbed; the manual curve is the 15-minutes-per-switch model. We
//! reproduce the *shape*: automatic configuration stays within seconds
//! to low minutes and grows gently, the manual model grows linearly at
//! 900 s per switch, so the gap widens from ~2 orders of magnitude.
//!
//! Beyond the paper, the sweep adds two axes:
//!
//! * `provision_width` — the paper's pipeline provisions VMs serially
//!   (k=1); the k-wide pipeline (k=2/4/8) overlaps create/boot latency,
//!   and the k=8 curve must sit strictly below the serial one.
//! * `channel_capacity` — the same curves under a bounded (capacity-4,
//!   `Defer`) control channel. Config time barely moves (it is VM-side)
//!   but the *channel pressure* explodes with k: a wider pipeline slams
//!   its cold-start FLOW_MOD burst into the bounded channel all at
//!   once, visible as `of_queue_hwm`/`of_deferred` growing with k —
//!   the Fig. 3 story under constrained channels.
//!
//! Cells run in parallel worker threads and land in the same stable
//! [`MatrixReport`] JSON the CI sweep uses, so Fig. 3 runs can be
//! diffed across commits.
//!
//! Run: `cargo run --release -p rf-bench --bin fig3_config_time`
//! (add `--json FILE` to save the report, `--threads N` to override
//! the worker count)

use rf_bench::{fmt_dur, manual_config_time, print_table, report_duration, sweep_args};
use rf_core::scenario::{FaultSchedule, MatrixCell, MatrixKnob, MatrixSpec, ScenarioMatrix};
use std::time::Duration;

/// The provisioning-pipeline widths swept per topology.
const WIDTHS: [usize; 4] = [1, 2, 4, 8];

/// The bounded-channel capacity of the constrained variants.
const CAP: usize = 4;

fn knob_name(k: usize, capped: bool) -> String {
    if capped {
        format!("paper-k{k}cap{CAP}")
    } else {
        format!("paper-k{k}")
    }
}

fn knob(k: usize, capped: bool) -> MatrixKnob {
    let kn = MatrixKnob::paper(knob_name(k, capped)).with_provision_width(k);
    if capped {
        kn.with_channel_capacity(CAP)
    } else {
        kn
    }
}

fn main() {
    let args = sweep_args();
    let mut topologies: Vec<String> = [4usize, 8, 12, 16, 20, 24, 28, 40, 64]
        .iter()
        .map(|n| format!("ring-{n}"))
        .collect();
    topologies.push("pan-european".into());
    // Unbounded channels across every width, plus the capacity-bounded
    // variant at the serial and widest pipelines.
    let mut knobs: Vec<MatrixKnob> = WIDTHS.iter().map(|&k| knob(k, false)).collect();
    knobs.push(knob(1, true));
    knobs.push(knob(8, true));
    let spec = MatrixSpec {
        seeds: vec![0xC0FFEE],
        topologies: topologies.clone(),
        schedules: vec![FaultSchedule::none()],
        knobs,
        configure_deadline: Duration::from_secs(3600),
        post_fault_window: Duration::ZERO,
        settle: Duration::from_secs(5),
    };
    let matrix = ScenarioMatrix::new(spec);
    let report = matrix.run(args.threads);

    // Cell lookup by (topology, knob name).
    let rec_named = |topology: &str, name: String| {
        let key = MatrixCell {
            seed: 0xC0FFEE,
            topology: topology.into(),
            schedule: FaultSchedule::none(),
            knob: MatrixKnob::paper(name),
        }
        .key();
        report
            .cells
            .iter()
            .find(|c| c.key == key)
            .expect("every cell reports")
    };
    let rec_of = |topology: &str, k: usize| rec_named(topology, knob_name(k, false));
    let rec_cap = |topology: &str, k: usize| rec_named(topology, knob_name(k, true));

    let mut rows = Vec::new();
    for topology in &topologies {
        let n = topology
            .parse::<rf_topo::TopoSpec>()
            .expect("registry name")
            .build()
            .node_count();
        let mut cols = vec![topology.clone(), n.to_string()];
        for &k in &WIDTHS {
            let auto = report_duration(rec_of(topology, k), "all_configured_ns")
                .expect("configuration must complete within an hour");
            cols.push(fmt_dur(auto));
        }
        let median_k1 =
            report_duration(rec_of(topology, 1), "green_median_ns").expect("switches configured");
        let median_k8 =
            report_duration(rec_of(topology, 8), "green_median_ns").expect("switches configured");
        let manual = manual_config_time(n);
        let auto_k8 = report_duration(rec_of(topology, 8), "all_configured_ns").unwrap();
        cols.push(fmt_dur(median_k1));
        cols.push(fmt_dur(median_k8));
        cols.push(manual.as_secs().to_string());
        cols.push(format!(
            "{:.0}x",
            manual.as_secs_f64() / auto_k8.as_secs_f64()
        ));
        // The constrained-channel story: queue pressure vs. width.
        let hwm_k1 = rec_cap(topology, 1).metrics["of_queue_hwm"];
        let hwm_k8 = rec_cap(topology, 8).metrics["of_queue_hwm"];
        let def_k1 = rec_cap(topology, 1).metrics["of_deferred"];
        let def_k8 = rec_cap(topology, 8).metrics["of_deferred"];
        cols.push(format!("{hwm_k1}/{def_k1}"));
        cols.push(format!("{hwm_k8}/{def_k8}"));
        rows.push(cols);
        eprintln!(
            "{topology}: auto k=1 {}s / k=8 {}s (median green k=1 {}s -> k=8 {}s), manual {}s, \
             cap{CAP} hwm/deferred k=1 {hwm_k1}/{def_k1} -> k=8 {hwm_k8}/{def_k8}",
            fmt_dur(report_duration(rec_of(topology, 1), "all_configured_ns").unwrap()),
            fmt_dur(auto_k8),
            fmt_dur(median_k1),
            fmt_dur(median_k8),
            manual.as_secs()
        );
    }
    print_table(
        "Fig. 3 — configuration time vs. provisioning width (seconds, simulated)",
        &[
            "topology",
            "switches",
            "auto k=1 (s)",
            "auto k=2 (s)",
            "auto k=4 (s)",
            "auto k=8 (s)",
            "median green k=1 (s)",
            "median green k=8 (s)",
            "manual (s)",
            "speedup (k=8)",
            "cap4 k=1 hwm/defer",
            "cap4 k=8 hwm/defer",
        ],
        &rows,
    );
    println!("\nManual model: 5 min VM + 2 min mapping + 8 min routing per switch (paper §2.1).");
    println!("k = provision_width: VM create/configure operations in flight at once (paper = 1).");
    println!(
        "cap{CAP} columns: bounded (capacity {CAP}, Defer) control channels — queue high-water \
         mark and deferrals grow with k as the wider pipeline front-loads the FLOW_MOD burst."
    );
    if let Some(path) = args.json_out {
        std::fs::write(&path, report.to_json()).expect("write report");
        eprintln!("matrix report written to {path}");
    }
}
