//! E3 / §1 — the intro's scaling claims: "typically 7 hours for 28
//! switches" manually, and "for a large topology (typically for 1000
//! switches), it may take many days", vs. automatic configuration.
//!
//! Run: `cargo run --release -p rf-bench --bin manual_scaling`

use rf_bench::{auto_config_time, fmt_dur, manual_config_time, print_table, ExpParams};
use rf_topo::ring;

fn main() {
    let params = ExpParams::default();
    let mut rows = Vec::new();
    for &n in &[28usize, 100, 250] {
        let auto = auto_config_time(ring(n), &params);
        let manual = manual_config_time(n);
        rows.push(vec![
            n.to_string(),
            fmt_dur(auto),
            format!("{:.1}", manual.as_secs_f64() / 3600.0),
            format!("{:.2}", manual.as_secs_f64() / 86_400.0),
        ]);
    }
    // 1000 switches: manual model only (the simulated run is feasible
    // but slow in debug builds; the model is the paper's claim anyway).
    let manual1000 = manual_config_time(1000);
    rows.push(vec![
        "1000".into(),
        "(see note)".into(),
        format!("{:.1}", manual1000.as_secs_f64() / 3600.0),
        format!("{:.2}", manual1000.as_secs_f64() / 86_400.0),
    ]);
    print_table(
        "§1 scaling — manual vs automatic configuration",
        &[
            "switches",
            "automatic (s, simulated)",
            "manual (hours)",
            "manual (days)",
        ],
        &rows,
    );
    println!(
        "\npaper: 28 switches ≈ 7 h manual; 1000 switches 'many days' (≈ {:.1} days in the model).",
        manual1000.as_secs_f64() / 86_400.0
    );
}
