//! The scenario-matrix sweep harness: fan a (seed × topology ×
//! fault-schedule × knob) grid out over worker threads and emit the
//! stable [`MatrixReport`] JSON that CI diffs against a checked-in
//! baseline.
//!
//! ```sh
//! # CI smoke grid (seconds), report to stdout:
//! cargo run --release -p rf-bench --bin matrix_sweep -- --smoke
//!
//! # Gate against the checked-in baseline (exit 1 on deviation):
//! cargo run --release -p rf-bench --bin matrix_sweep -- --smoke \
//!     --out report.json --check crates/bench/baselines/smoke.json
//!
//! # The long trend-tracking grid:
//! cargo run --release -p rf-bench --bin matrix_sweep -- --full
//!
//! # Checkpoint/fork execution: cells sharing a (topology × knob ×
//! # seed) group run their convergence prefix once and fork. The
//! # report is byte-identical to the cold run's — CI gates on that:
//! cargo run --release -p rf-bench --bin matrix_sweep -- --smoke --fork \
//!     --check crates/bench/baselines/smoke.json --tolerance 0
//!
//! # The topology-corpus breadth grid (50+ named topologies, with a
//! # per-topology configuration-median table on stderr):
//! cargo run --release -p rf-bench --bin matrix_sweep -- --corpus
//! ```
//!
//! The report is byte-identical at any `--threads` value; see the
//! `matrix determinism` tests and README §sweeps.

use rf_core::scenario::{MatrixReport, MatrixSpec, ScenarioMatrix};
use std::process::ExitCode;

struct Args {
    spec: MatrixSpec,
    grid_name: &'static str,
    threads: usize,
    out: Option<String>,
    check: Option<String>,
    tolerance: f64,
    summary_md: Option<String>,
    fork: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        spec: MatrixSpec::smoke(),
        grid_name: "smoke",
        threads: rf_bench::default_threads(),
        out: None,
        check: None,
        tolerance: 0.2,
        summary_md: None,
        fork: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--smoke" => {
                args.spec = MatrixSpec::smoke();
                args.grid_name = "smoke";
            }
            "--full" => {
                args.spec = MatrixSpec::full();
                args.grid_name = "full";
            }
            "--corpus" => {
                args.spec = MatrixSpec::corpus();
                args.grid_name = "corpus";
            }
            "--corpus-smoke" => {
                args.spec = MatrixSpec::corpus_smoke();
                args.grid_name = "corpus-smoke";
            }
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--fork" => args.fork = true,
            "--out" => args.out = Some(value("--out")?),
            "--check" => args.check = Some(value("--check")?),
            "--summary-md" => args.summary_md = Some(value("--summary-md")?),
            "--tolerance" => {
                args.tolerance = value("--tolerance")?
                    .parse()
                    .map_err(|e| format!("--tolerance: {e}"))?
            }
            other => {
                return Err(format!(
                    "unknown argument {other}\n\
                     usage: matrix_sweep [--smoke|--full|--corpus|--corpus-smoke] \
                     [--fork] [--threads N] [--out FILE] [--check BASELINE] \
                     [--tolerance FRAC] [--summary-md FILE]"
                ))
            }
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    let cells = args.spec.cells().len();
    eprintln!(
        "sweeping the {} grid: {cells} cells on {} threads{}",
        args.grid_name,
        args.threads,
        if args.fork { " (checkpoint/fork)" } else { "" }
    );
    let started = std::time::Instant::now();
    let matrix = ScenarioMatrix::new(args.spec);
    let report = if args.fork {
        matrix.run_forked(args.threads)
    } else {
        matrix.run(args.threads)
    };
    eprintln!(
        "swept {cells} cells in {:.1}s wall clock",
        started.elapsed().as_secs_f64()
    );
    for (name, s) in &report.summary {
        eprintln!(
            "  {name}: min {} / median {} / max {} (n={})",
            s.min, s.median, s.max, s.count
        );
    }
    let corpus_grid = args.grid_name.starts_with("corpus");
    if corpus_grid {
        // The corpus grids are read per topology, not per metric: the
        // whole point is how configuration scales across shapes.
        eprintln!("per-topology configuration medians (ns of simulated time):");
        for (topo, s) in report.per_topology_medians("all_configured_ns") {
            eprintln!("  {topo}: median {} (n={})", s.median, s.count);
        }
        let failed: Vec<&str> = report
            .cells
            .iter()
            .filter(|c| c.metrics.get("build_error") == Some(&1))
            .map(|c| c.key.as_str())
            .collect();
        if !failed.is_empty() {
            eprintln!("build errors in {} cells:", failed.len());
            for key in failed {
                eprintln!("  {key}");
            }
        }
    }

    if let Some(path) = &args.summary_md {
        // A GitHub-flavoured markdown trend summary, written for
        // `$GITHUB_STEP_SUMMARY` in the scheduled sweep-full job.
        let mut md = format!(
            "## `{}` sweep — {} cells\n\n\
             | metric | n | min | median | max |\n\
             |---|---|---|---|---|\n",
            args.grid_name,
            report.cells.len()
        );
        for (name, s) in &report.summary {
            md.push_str(&format!(
                "| `{name}` | {} | {} | {} | {} |\n",
                s.count, s.min, s.median, s.max
            ));
        }
        if corpus_grid {
            md.push_str(
                "\n### Per-topology configuration medians\n\n\
                 | topology | n | median `all_configured_ns` | median `green_median_ns` |\n\
                 |---|---|---|---|\n",
            );
            let greens = report.per_topology_medians("green_median_ns");
            for (topo, s) in report.per_topology_medians("all_configured_ns") {
                let green = greens
                    .iter()
                    .find(|(t, _)| *t == topo)
                    .map(|(_, g)| g.median.to_string())
                    .unwrap_or_else(|| "-".into());
                md.push_str(&format!(
                    "| `{topo}` | {} | {} | {green} |\n",
                    s.count, s.median
                ));
            }
        }
        md.push_str(
            "\nTimes are nanoseconds of simulated time; byte/message counts are totals per cell.\n",
        );
        if let Err(e) = std::fs::write(path, md) {
            eprintln!("writing {path}: {e}");
            return ExitCode::from(2);
        }
        eprintln!("markdown summary written to {path}");
    }

    let json = report.to_json();
    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("writing {path}: {e}");
                return ExitCode::from(2);
            }
            eprintln!("report written to {path}");
        }
        None => print!("{json}"),
    }

    if let Some(path) = &args.check {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("reading baseline {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let baseline = match MatrixReport::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("parsing baseline {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let diffs = report.diff_against(&baseline, args.tolerance);
        if diffs.is_empty() {
            eprintln!(
                "baseline check passed: {} within ±{:.0}% of {path}",
                report.cells.len(),
                100.0 * args.tolerance
            );
        } else {
            eprintln!(
                "baseline check FAILED against {path} ({} deviations):",
                diffs.len()
            );
            for d in &diffs {
                eprintln!("  {d}");
            }
            eprintln!(
                "if these changes are intended, refresh the baseline:\n  \
                 cargo run --release -p rf-bench --bin matrix_sweep -- \
                 --smoke --out {path}"
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
