//! `perf_sweep` — the wall-clock performance harness.
//!
//! Everything else in this repo measures *simulated* time, which is
//! deterministic and machine-independent; nothing measured how many
//! simulated cells the machine pushes through per wall-clock second —
//! the quantity that actually gates bigger grids and more topologies.
//! This binary runs the smoke/traffic/full matrix grids several times
//! through [`ScenarioMatrix::run_instrumented`] and emits `BENCH_perf.json`:
//! cells/sec, events/sec, per-cell wall-time percentiles and
//! thread-scaling efficiency — the first point of a perf trajectory CI
//! can trend (see README § Performance).
//!
//! ```sh
//! # Full harness (smoke + full grids, 3 runs per config, 1/4/8 threads):
//! cargo run --release -p rf-bench --bin perf_sweep
//!
//! # CI-sized: smoke + traffic grids, 2 runs, 1/4 threads (the traffic
//! # grid tracks events/sec under stochastic packet/flow load):
//! cargo run --release -p rf-bench --bin perf_sweep -- --quick --out BENCH_perf.json
//! ```
//!
//! Wall-clock numbers are machine-dependent by nature; the emitted
//! file is a trajectory point, not a determinism artifact. As a side
//! effect the harness *does* re-prove the determinism contract: every
//! run of a grid must produce byte-identical `MatrixReport` JSON at
//! every thread count — and the checkpoint/fork execution mode
//! (`ScenarioMatrix::run_forked`, which runs each (topology × knob ×
//! seed) group's convergence prefix once and forks the divergent
//! fault cells) must reproduce the cold report byte-for-byte too, or
//! the harness exits non-zero. The fork pass's wall ratio is emitted
//! as `fork.speedup_x1000`, the trended `fork_speedup` number.
//!
//! Schema v3 adds the intra-scenario axis: `host_cores` at the top
//! level, and per grid a `parallel` block — the grid's costliest
//! fault-free cell re-run serially and with the conservative parallel
//! kernel (`parallel_cores = 4`). The two single-cell reports must be
//! byte-identical (the kernel's core contract) or the harness exits
//! non-zero; the wall ratio is the trended `parallel_speedup`. On
//! hosts with fewer than four cores the probe is skipped and the
//! block records why, so flat scaling on small runners never reads as
//! a regression.

use rf_core::json::Json;
use rf_core::scenario::{MatrixSpec, ScenarioMatrix, SweepStats};
use std::process::ExitCode;
use std::time::Duration;

/// Bump when the emitted shape changes. v2 added the per-grid `fork`
/// block (checkpoint/fork wall, speedup and forked-cell count); v3
/// added `host_cores` and the per-grid `parallel` block (serial vs
/// 4-core parallel-kernel wall on the costliest fault-free cell).
const PERF_SCHEMA_VERSION: i64 = 3;

/// Cores granted to the parallel-kernel probe. Matches the 4-thread
/// point of the thread-scaling table so the two axes are comparable.
const PROBE_CORES: usize = 4;

struct Args {
    grids: Vec<(&'static str, MatrixSpec)>,
    runs: usize,
    threads: Vec<usize>,
    out: String,
    /// Cores granted to the parallel-kernel probe; `None` means
    /// auto (`PROBE_CORES`, skipped when the host has fewer).
    probe_cores: Option<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        grids: vec![
            ("smoke", MatrixSpec::smoke()),
            ("traffic", MatrixSpec::traffic()),
            ("full", MatrixSpec::full()),
        ],
        runs: 3,
        threads: vec![1, 4, 8],
        out: "BENCH_perf.json".to_string(),
        probe_cores: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--quick" => {
                args.grids = vec![
                    ("smoke", MatrixSpec::smoke()),
                    ("traffic", MatrixSpec::traffic()),
                ];
                args.runs = 2;
                args.threads = vec![1, 4];
            }
            "--smoke-only" => args.grids = vec![("smoke", MatrixSpec::smoke())],
            "--traffic-only" => args.grids = vec![("traffic", MatrixSpec::traffic())],
            "--full-only" => args.grids = vec![("full", MatrixSpec::full())],
            "--runs" => {
                args.runs = value("--runs")?
                    .parse()
                    .map_err(|e| format!("--runs: {e}"))?;
                if args.runs == 0 {
                    return Err("--runs must be at least 1".into());
                }
            }
            "--threads" => {
                args.threads = value("--threads")?
                    .split(',')
                    .map(|t| t.parse().map_err(|e| format!("--threads: {e}")))
                    .collect::<Result<_, _>>()?;
                if args.threads.is_empty() {
                    return Err("--threads needs at least one value".into());
                }
            }
            "--out" => args.out = value("--out")?,
            "--probe-cores" => {
                let n: usize = value("--probe-cores")?
                    .parse()
                    .map_err(|e| format!("--probe-cores: {e}"))?;
                if n < 2 {
                    return Err("--probe-cores must be at least 2".into());
                }
                args.probe_cores = Some(n);
            }
            other => {
                return Err(format!(
                    "unknown argument {other}\n\
                     usage: perf_sweep [--quick] \
                     [--smoke-only|--traffic-only|--full-only] \
                     [--runs N] [--threads 1,4,8] [--probe-cores N] [--out FILE]"
                ))
            }
        }
    }
    Ok(args)
}

/// Best (minimum-wall) stats across `runs` repetitions at `threads`,
/// plus the report JSON for the determinism cross-check. With
/// `forked`, the repetitions go through the checkpoint/fork executor
/// instead of the cold one.
fn best_of_with(
    matrix: &ScenarioMatrix,
    threads: usize,
    runs: usize,
    forked: bool,
) -> Result<(SweepStats, String), String> {
    let mut best: Option<SweepStats> = None;
    let mut report_json: Option<String> = None;
    for run in 0..runs {
        let (report, stats) = if forked {
            matrix.run_instrumented_forked(threads, ScenarioMatrix::standard_builder)
        } else {
            matrix.run_instrumented(threads, ScenarioMatrix::standard_builder)
        };
        let json = report.to_json();
        if let Some(prev) = &report_json {
            if *prev != json {
                return Err(format!(
                    "DETERMINISM VIOLATION: report bytes differ between runs \
                     (threads={threads}, forked={forked}, run={run})"
                ));
            }
        } else {
            report_json = Some(json);
        }
        if best.as_ref().is_none_or(|b| stats.wall < b.wall) {
            best = Some(stats);
        }
    }
    Ok((best.expect("runs >= 1"), report_json.expect("runs >= 1")))
}

fn best_of(
    matrix: &ScenarioMatrix,
    threads: usize,
    runs: usize,
) -> Result<(SweepStats, String), String> {
    best_of_with(matrix, threads, runs, false)
}

/// `p`-th percentile (0..=100, nearest-rank) of sorted `sorted_us`.
fn percentile_us(sorted_us: &[u64], p: usize) -> i64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = (p * sorted_us.len()).div_ceil(100).max(1) - 1;
    sorted_us[rank.min(sorted_us.len() - 1)] as i64
}

fn per_sec(count: u64, wall: Duration) -> i64 {
    (count as f64 / wall.as_secs_f64().max(1e-9)) as i64
}

/// Wall-clock of one run of `cell` as a single-cell grid with the
/// knob granting `cores` to the intra-scenario parallel kernel,
/// plus the report JSON for the identity cross-check.
fn run_probe_cell(
    spec: &MatrixSpec,
    cell: &rf_core::scenario::MatrixCell,
    cores: usize,
) -> (Duration, String) {
    let single = MatrixSpec {
        seeds: vec![cell.seed],
        topologies: vec![cell.topology.clone()],
        schedules: vec![cell.schedule.clone()],
        knobs: vec![cell.knob.clone().with_parallel_cores(cores)],
        configure_deadline: spec.configure_deadline,
        post_fault_window: spec.post_fault_window,
        settle: spec.settle,
    };
    let matrix = ScenarioMatrix::new(single);
    let (report, stats) = matrix.run_instrumented(1, ScenarioMatrix::standard_builder);
    (stats.wall, report.to_json())
}

/// The per-grid parallel-kernel probe: pick the grid's costliest
/// fault-free cell (by the matrix's own cost model, key as the
/// deterministic tie-break), run it serially and with `cores` regions,
/// and demand byte-identical reports. Fault-free because faults force
/// the kernel's serial fallback, which would probe nothing.
fn parallel_probe(
    name: &str,
    spec: &MatrixSpec,
    matrix: &ScenarioMatrix,
    cores: Option<usize>,
    host_cores: usize,
) -> Result<Json, String> {
    let skip = |reason: String| {
        eprintln!("  parallel probe: skipped — {reason}");
        Ok(Json::obj([("skipped".to_string(), Json::Str(reason))]))
    };
    // An explicit --probe-cores overrides the host-size skip (useful
    // for exercising the probe on small machines; the identity check
    // is meaningful at any core count, only the speedup isn't).
    let cores = match cores {
        Some(n) => n,
        None if host_cores < PROBE_CORES => {
            return skip(format!(
                "host has {host_cores} cores, probe wants {PROBE_CORES}"
            ));
        }
        None => PROBE_CORES,
    };
    let cells = spec.cells();
    let Some(probe) = cells
        .iter()
        .filter(|c| c.schedule.faults.is_empty())
        .max_by_key(|c| (matrix.expected_cell_cost(c), std::cmp::Reverse(c.key())))
    else {
        return skip("no fault-free cell in grid".to_string());
    };
    let (serial_wall, serial_report) = run_probe_cell(spec, probe, 1);
    let (parallel_wall, parallel_report) = run_probe_cell(spec, probe, cores);
    if serial_report != parallel_report {
        return Err(format!(
            "PARALLEL-KERNEL IDENTITY VIOLATION: {name} grid probe cell \
             {} differs between serial and {cores}-core reports",
            probe.key()
        ));
    }
    let speedup_x1000 =
        (1000.0 * serial_wall.as_secs_f64() / parallel_wall.as_secs_f64().max(1e-9)) as i64;
    eprintln!(
        "  parallel probe ({}): serial {:.2}s vs {cores}-core {:.2}s \
         (speedup {:.2}x, reports byte-identical)",
        probe.key(),
        serial_wall.as_secs_f64(),
        parallel_wall.as_secs_f64(),
        speedup_x1000 as f64 / 1000.0,
    );
    Ok(Json::obj([
        ("cell".to_string(), Json::Str(probe.key())),
        ("cores".to_string(), Json::Int(cores as i64)),
        (
            "serial_wall_ms".to_string(),
            Json::Int(serial_wall.as_millis() as i64),
        ),
        (
            "parallel_wall_ms".to_string(),
            Json::Int(parallel_wall.as_millis() as i64),
        ),
        ("speedup_x1000".to_string(), Json::Int(speedup_x1000)),
    ]))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    // Recorded so downstream gates (CI thread-scaling step,
    // trend_collect) can tell "flat because small runner" from "flat
    // because regression".
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!("perf_sweep: host has {host_cores} cores");

    let mut grids_json = std::collections::BTreeMap::new();
    for (name, spec) in &args.grids {
        let matrix = ScenarioMatrix::new(spec.clone());
        let cells = spec.cells().len();
        eprintln!(
            "perf_sweep: {name} grid — {cells} cells × {} runs × threads {:?}",
            args.runs, args.threads
        );

        // Single-threaded pass first: its best run anchors cells/sec,
        // events/sec and the per-cell percentiles.
        let (single, single_report) = match best_of(&matrix, 1, args.runs) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        let mut cell_us: Vec<u64> = single
            .cells
            .iter()
            .map(|c| c.wall.as_micros() as u64)
            .collect();
        cell_us.sort_unstable();
        let events = single.total_events();
        eprintln!(
            "  1 thread: {:.2}s wall, {} cells/sec, {} events/sec",
            single.wall.as_secs_f64(),
            per_sec(cells as u64, single.wall),
            per_sec(events, single.wall),
        );

        let mut scaling = Vec::new();
        for &t in &args.threads {
            let (stats, report) = if t == 1 {
                (single.clone(), single_report.clone())
            } else {
                match best_of(&matrix, t, args.runs) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                }
            };
            if report != single_report {
                eprintln!(
                    "DETERMINISM VIOLATION: {name} grid report at {t} threads \
                     differs from the single-threaded report"
                );
                return ExitCode::FAILURE;
            }
            let speedup_x1000 =
                (1000.0 * single.wall.as_secs_f64() / stats.wall.as_secs_f64().max(1e-9)) as i64;
            let efficiency_x1000 = speedup_x1000 / t as i64;
            eprintln!(
                "  {t} threads: {:.2}s wall (speedup {:.2}x, efficiency {:.0}%)",
                stats.wall.as_secs_f64(),
                speedup_x1000 as f64 / 1000.0,
                efficiency_x1000 as f64 / 10.0,
            );
            scaling.push(Json::obj([
                ("threads".to_string(), Json::Int(t as i64)),
                (
                    "wall_ms".to_string(),
                    Json::Int(stats.wall.as_millis() as i64),
                ),
                ("speedup_x1000".to_string(), Json::Int(speedup_x1000)),
                ("efficiency_x1000".to_string(), Json::Int(efficiency_x1000)),
            ]));
        }

        // Checkpoint/fork pass, single-threaded (the clean total-compute
        // ratio, un-muddied by scheduling): every repeat must reproduce
        // the cold report byte-for-byte — the tentpole identity
        // contract, re-proven on every perf run — and the wall ratio is
        // the trended fork_speedup.
        let (fork, fork_report) = match best_of_with(&matrix, 1, args.runs, true) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        if fork_report != single_report {
            eprintln!(
                "DETERMINISM VIOLATION: {name} grid checkpoint/fork report \
                 differs from the cold report"
            );
            return ExitCode::FAILURE;
        }
        let fork_speedup_x1000 =
            (1000.0 * single.wall.as_secs_f64() / fork.wall.as_secs_f64().max(1e-9)) as i64;
        eprintln!(
            "  fork (1 thread): {:.2}s wall (speedup {:.2}x, {} of {} cells forked)",
            fork.wall.as_secs_f64(),
            fork_speedup_x1000 as f64 / 1000.0,
            fork.forked,
            cells,
        );

        // Intra-scenario parallel-kernel probe: serial vs
        // `probe_cores`-region wall on the costliest fault-free cell,
        // byte-identity enforced. Skipped (with the reason recorded)
        // on hosts too small for it to mean anything.
        let parallel = match parallel_probe(name, spec, &matrix, args.probe_cores, host_cores) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };

        grids_json.insert(
            name.to_string(),
            Json::obj([
                ("cells".to_string(), Json::Int(cells as i64)),
                ("parallel".to_string(), parallel),
                (
                    "fork".to_string(),
                    Json::obj([
                        (
                            "wall_ms".to_string(),
                            Json::Int(fork.wall.as_millis() as i64),
                        ),
                        ("speedup_x1000".to_string(), Json::Int(fork_speedup_x1000)),
                        ("forked_cells".to_string(), Json::Int(fork.forked as i64)),
                        (
                            "cold_cells".to_string(),
                            Json::Int(cells as i64 - fork.forked as i64),
                        ),
                    ]),
                ),
                ("runs_per_config".to_string(), Json::Int(args.runs as i64)),
                ("events_per_run".to_string(), Json::Int(events as i64)),
                (
                    "single_thread".to_string(),
                    Json::obj([
                        (
                            "wall_ms".to_string(),
                            Json::Int(single.wall.as_millis() as i64),
                        ),
                        (
                            "cells_per_sec".to_string(),
                            Json::Int(per_sec(cells as u64, single.wall)),
                        ),
                        (
                            "events_per_sec".to_string(),
                            Json::Int(per_sec(events, single.wall)),
                        ),
                        (
                            "cell_wall_us_p50".to_string(),
                            Json::Int(percentile_us(&cell_us, 50)),
                        ),
                        (
                            "cell_wall_us_p95".to_string(),
                            Json::Int(percentile_us(&cell_us, 95)),
                        ),
                    ]),
                ),
                ("thread_scaling".to_string(), Json::Arr(scaling)),
            ]),
        );
    }

    let doc = Json::obj([
        ("schema_version".to_string(), Json::Int(PERF_SCHEMA_VERSION)),
        ("host_cores".to_string(), Json::Int(host_cores as i64)),
        ("grids".to_string(), Json::Obj(grids_json)),
    ]);
    if let Err(e) = std::fs::write(&args.out, doc.render()) {
        eprintln!("writing {}: {e}", args.out);
        return ExitCode::from(2);
    }
    eprintln!("perf trajectory written to {}", args.out);
    ExitCode::SUCCESS
}
