//! # rf-bench — the experiment harness
//!
//! One function per experiment, shared by the `--bin` table generators
//! and the Criterion benches. See DESIGN.md §4 for the experiment
//! index and EXPERIMENTS.md for recorded results.

use rf_apps::video::{VideoClient, VideoServer};
use rf_apps::HostConfig;
use rf_core::bootstrap::{Deployment, DeploymentConfig};
use rf_core::manual::ManualConfigModel;
use rf_sim::{AgentId, LinkProfile, Time};
use rf_topo::Topology;
use rf_wire::{Ipv4Cidr, MacAddr};
use std::time::Duration;

/// Parameters shared by the configuration-time experiments.
#[derive(Clone)]
pub struct ExpParams {
    pub seed: u64,
    pub probe_interval: Duration,
    pub vm_boot_delay: Duration,
    pub ospf_hello: u16,
    pub ospf_dead: u16,
    pub use_flowvisor: bool,
}

impl Default for ExpParams {
    fn default() -> Self {
        ExpParams {
            seed: 0xC0FFEE,
            probe_interval: Duration::from_secs(1),
            vm_boot_delay: Duration::from_secs(1),
            ospf_hello: 10,
            ospf_dead: 40,
            use_flowvisor: true,
        }
    }
}

fn deployment(topo: Topology, p: &ExpParams) -> DeploymentConfig {
    let mut cfg = DeploymentConfig::new(topo);
    cfg.seed = p.seed;
    cfg.probe_interval = p.probe_interval;
    cfg.vm_boot_delay = p.vm_boot_delay;
    cfg.ospf_hello = p.ospf_hello;
    cfg.ospf_dead = p.ospf_dead;
    cfg.use_flowvisor = p.use_flowvisor;
    cfg.trace_level = rf_sim::TraceLevel::Off;
    cfg
}

/// E1 / Fig. 3: simulated time until every switch of `topo` is
/// configured (has its VM), from a cold start.
pub fn auto_config_time(topo: Topology, p: &ExpParams) -> Duration {
    let mut dep = Deployment::build(deployment(topo, p));
    let done = dep
        .run_until_configured(Time::from_secs(3600))
        .expect("configuration must complete within an hour");
    Duration::from_nanos(done.as_nanos())
}

/// The manual baseline for `n` switches (paper model).
pub fn manual_config_time(n: usize) -> Duration {
    ManualConfigModel::default().total(n)
}

/// Result of the video demo experiment.
#[derive(Clone, Copy, Debug)]
pub struct VideoResult {
    pub configured_at: Option<Duration>,
    pub first_byte_at: Option<Duration>,
    pub playback_at: Option<Duration>,
    pub packets: u64,
    pub gaps: u64,
}

/// E2 / §3 demo: cold-start the deployment with a video server and a
/// remote client attached, stream, and report the timeline.
pub fn video_demo(topo: Topology, server_node: usize, client_node: usize, p: &ExpParams, horizon: Duration) -> VideoResult {
    let mut cfg = deployment(topo, p);
    cfg.hosts.push(rf_core::bootstrap::HostAttachment {
        node: server_node,
        subnet: "10.1.0.0/24".parse().unwrap(),
    });
    cfg.hosts.push(rf_core::bootstrap::HostAttachment {
        node: client_node,
        subnet: "10.2.0.0/24".parse().unwrap(),
    });
    let mut dep = Deployment::build(cfg);
    let s = dep.host_slots[0].clone();
    let c = dep.host_slots[1].clone();
    let server = dep.sim.add_agent(
        "video-server",
        Box::new(VideoServer::new(HostConfig {
            mac: MacAddr([2, 0xAA, 0, 0, 0, 1]),
            addr: Ipv4Cidr::new(s.host_ip, s.subnet.prefix_len),
            gateway: s.gateway,
        })),
    );
    let client: AgentId = dep.sim.add_agent(
        "video-client",
        Box::new(VideoClient::new(
            HostConfig {
                mac: MacAddr([2, 0xBB, 0, 0, 0, 1]),
                addr: Ipv4Cidr::new(c.host_ip, c.subnet.prefix_len),
                gateway: c.gateway,
            },
            s.host_ip,
        )),
    );
    dep.sim.add_link(
        (s.switch, u32::from(s.port)),
        (server, 1),
        LinkProfile::default(),
    );
    dep.sim.add_link(
        (c.switch, u32::from(c.port)),
        (client, 1),
        LinkProfile::default(),
    );
    dep.sim
        .run_until(Time::from_nanos(horizon.as_nanos() as u64));
    let report = dep.sim.agent_as::<VideoClient>(client).unwrap().report;
    let to_dur = |t: Option<Time>| t.map(|t| Duration::from_nanos(t.as_nanos()));
    VideoResult {
        configured_at: to_dur(dep.all_configured_at()),
        first_byte_at: to_dur(report.first_byte_at),
        playback_at: to_dur(report.playback_at),
        packets: report.packets,
        gaps: report.gaps,
    }
}

/// Render seconds for table output.
pub fn fmt_dur(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64())
}

/// Render an optional duration.
pub fn fmt_opt(d: Option<Duration>) -> String {
    d.map(fmt_dur).unwrap_or_else(|| "-".into())
}

/// Print a markdown-style table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    println!("| {} |", headers.join(" | "));
    println!("|{}|", headers.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rf_topo::ring;

    #[test]
    fn auto_is_orders_of_magnitude_faster_than_manual() {
        let mut p = ExpParams::default();
        p.ospf_hello = 1;
        p.ospf_dead = 4;
        let auto = auto_config_time(ring(4), &p);
        let manual = manual_config_time(4);
        assert!(auto < Duration::from_secs(120));
        assert!(manual == Duration::from_secs(3600));
        assert!(manual.as_secs_f64() / auto.as_secs_f64() > 50.0);
    }

    #[test]
    fn video_demo_smoke() {
        let mut p = ExpParams::default();
        p.ospf_hello = 1;
        p.ospf_dead = 4;
        p.probe_interval = Duration::from_millis(500);
        let r = video_demo(ring(4), 0, 2, &p, Duration::from_secs(120));
        assert!(r.first_byte_at.is_some());
        assert!(r.packets > 0);
    }
}
