//! # rf-bench — the experiment harness
//!
//! One function per experiment, shared by the `--bin` table generators
//! and the Criterion benches, all built on the composable
//! [`ScenarioBuilder`](rf_core::scenario::ScenarioBuilder) API. See
//! DESIGN.md §4 for the experiment index and EXPERIMENTS.md for
//! recorded results.

use rf_core::manual::ManualConfigModel;
use rf_core::scenario::{
    CellRecord, Scenario, ScenarioBuilder, ScenarioMetrics, Workload, WorkloadReport,
};
use rf_sim::Time;
use rf_topo::Topology;
use std::time::Duration;

/// Parameters shared by the configuration-time experiments.
#[derive(Clone)]
pub struct ExpParams {
    pub seed: u64,
    pub probe_interval: Duration,
    pub vm_boot_delay: Duration,
    pub ospf_hello: u16,
    pub ospf_dead: u16,
    pub use_flowvisor: bool,
}

impl Default for ExpParams {
    fn default() -> Self {
        ExpParams {
            seed: 0xC0FFEE,
            probe_interval: Duration::from_secs(1),
            vm_boot_delay: Duration::from_secs(1),
            ospf_hello: 10,
            ospf_dead: 40,
            use_flowvisor: true,
        }
    }
}

/// A scenario builder pre-loaded with the experiment parameters.
pub fn scenario(topo: Topology, p: &ExpParams) -> ScenarioBuilder {
    let mut b = Scenario::on(topo)
        .seed(p.seed)
        .probe_interval(p.probe_interval)
        .vm_boot_delay(p.vm_boot_delay)
        .ospf_timers(p.ospf_hello, p.ospf_dead)
        .trace_level(rf_sim::TraceLevel::Off);
    if !p.use_flowvisor {
        b = b.without_flowvisor();
    }
    b
}

/// E1 / Fig. 3: simulated time until every switch of `topo` is
/// configured (has its VM), from a cold start.
pub fn auto_config_time(topo: Topology, p: &ExpParams) -> Duration {
    let mut sc = scenario(topo, p).start();
    let done = sc
        .run_until_configured(Time::from_secs(3600))
        .expect("configuration must complete within an hour");
    Duration::from_nanos(done.as_nanos())
}

/// E1 with the full metric set: run to completion, then snapshot
/// per-switch configuration times and flow counts.
pub fn auto_config_metrics(topo: Topology, p: &ExpParams) -> ScenarioMetrics {
    let mut sc = scenario(topo, p).start();
    sc.run_until_configured(Time::from_secs(3600))
        .expect("configuration must complete within an hour");
    sc.finish()
}

/// The manual baseline for `n` switches (paper model).
pub fn manual_config_time(n: usize) -> Duration {
    ManualConfigModel::default().total(n)
}

/// Result of the video demo experiment.
#[derive(Clone, Copy, Debug)]
pub struct VideoResult {
    pub configured_at: Option<Duration>,
    pub first_byte_at: Option<Duration>,
    pub playback_at: Option<Duration>,
    pub packets: u64,
    pub gaps: u64,
}

/// E2 / §3 demo: cold-start the deployment with a video server and a
/// remote client attached, stream, and report the timeline.
pub fn video_demo(
    topo: Topology,
    server_node: usize,
    client_node: usize,
    p: &ExpParams,
    horizon: Duration,
) -> VideoResult {
    let mut sc = scenario(topo, p)
        .with_workload(Workload::video(server_node, client_node))
        .start();
    sc.run_until(Time::from_nanos(horizon.as_nanos() as u64));
    let reports = sc.workload_reports();
    let WorkloadReport::Video(report) = &reports[0] else {
        unreachable!("video workload attached above");
    };
    let to_dur = |t: Option<Time>| t.map(|t| Duration::from_nanos(t.as_nanos()));
    VideoResult {
        configured_at: to_dur(sc.all_configured_at()),
        first_byte_at: to_dur(report.first_byte_at),
        playback_at: to_dur(report.playback_at),
        packets: report.packets,
        gaps: report.gaps,
    }
}

/// Shared CLI shape of the sweep-emitting table binaries: worker
/// thread count (`--threads N`), report destination (`--json FILE`)
/// and whatever positional arguments remain for the caller.
pub struct SweepArgs {
    pub threads: usize,
    pub json_out: Option<String>,
    pub rest: Vec<String>,
}

/// Default sweep worker count: one per core, capped — past the cap
/// the single-threaded cells just contend for cache.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(4)
}

/// Parse `--threads`/`--json` out of `std::env::args`, defaults
/// matching `matrix_sweep`.
pub fn sweep_args() -> SweepArgs {
    let mut args = SweepArgs {
        threads: default_threads(),
        json_out: None,
        rest: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threads" => {
                args.threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads needs a number")
            }
            "--json" => args.json_out = Some(it.next().expect("--json needs a path")),
            other => args.rest.push(other.to_string()),
        }
    }
    args
}

/// Read a nanosecond metric off a matrix cell as a [`Duration`].
pub fn report_duration(rec: &CellRecord, metric: &str) -> Option<Duration> {
    rec.metrics
        .get(metric)
        .map(|&ns| Duration::from_nanos(ns as u64))
}

/// Render seconds for table output.
pub fn fmt_dur(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64())
}

/// Render an optional duration.
pub fn fmt_opt(d: Option<Duration>) -> String {
    d.map(fmt_dur).unwrap_or_else(|| "-".into())
}

/// Print a markdown-style table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    println!("| {} |", headers.join(" | "));
    println!(
        "|{}|",
        headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rf_topo::ring;

    #[test]
    fn auto_is_orders_of_magnitude_faster_than_manual() {
        let p = ExpParams {
            ospf_hello: 1,
            ospf_dead: 4,
            ..ExpParams::default()
        };
        let auto = auto_config_time(ring(4), &p);
        let manual = manual_config_time(4);
        assert!(auto < Duration::from_secs(120));
        assert!(manual == Duration::from_secs(3600));
        assert!(manual.as_secs_f64() / auto.as_secs_f64() > 50.0);
    }

    #[test]
    fn video_demo_smoke() {
        let p = ExpParams {
            ospf_hello: 1,
            ospf_dead: 4,
            probe_interval: Duration::from_millis(500),
            ..ExpParams::default()
        };
        let r = video_demo(ring(4), 0, 2, &p, Duration::from_secs(120));
        assert!(r.first_byte_at.is_some());
        assert!(r.packets > 0);
    }

    #[test]
    fn metrics_report_per_switch_times() {
        let p = ExpParams {
            ospf_hello: 1,
            ospf_dead: 4,
            probe_interval: Duration::from_millis(500),
            ..ExpParams::default()
        };
        let m = auto_config_metrics(ring(4), &p);
        assert_eq!(m.configured_switches, 4);
        assert_eq!(m.per_switch_config_time.len(), 4);
        assert!(m.per_switch_config_time.iter().all(|(_, t)| t.is_some()));
    }
}
