//! ARP proxy and host learning: answers hosts' gateway ARPs on the
//! VMs' behalf, learns host MACs from their ARP traffic, and installs
//! per-host /32 delivery flows.

use super::bus::{AppCtx, ControlApp};
use super::channel::DeferBuffer;
use super::fib_mirror::HOST_FLOW_PRIORITY;
use bytes::Bytes;
use rf_openflow::{Action, FlowModCommand, OfMatch, OfMessage, OFPP_NONE, OFP_NO_BUFFER};
use rf_wire::{ArpOp, ArpPacket, EtherType, EthernetFrame, MacAddr};
use std::net::Ipv4Addr;
use std::time::Duration;

/// Bus-timer token of the deferred host-flow retry tick. The scenario
/// harness also fires it at harvest time so a backlog mid-retry cannot
/// be left unsent in a short cell.
pub(crate) const ARP_RETRY_TOKEN: u64 = 0xA4B0_0000_0000_0000;

/// Retry cadence for host FLOW_MODs a bounded channel refused.
const ARP_RETRY_TICK: Duration = Duration::from_millis(50);

/// Edge behaviour for declared host ports (the one piece of
/// configuration LLDP discovery cannot learn — hosts don't speak LLDP).
///
/// Channel backpressure: host /32 FLOW_MODs are state and must land,
/// so a deferred one goes into a per-switch [`DeferBuffer`] and
/// retries on a tick. PACKET_OUTs (ARP replies and probes) are
/// data-plane traffic — a deferred one is shed and the protocol's own
/// retry recovers.
#[derive(Clone)]
pub struct ArpProxyApp {
    /// Host FLOW_MODs refused by a bounded channel, retried in order.
    deferred: DeferBuffer,
}

impl Default for ArpProxyApp {
    fn default() -> Self {
        ArpProxyApp::new()
    }
}

impl ArpProxyApp {
    pub fn new() -> ArpProxyApp {
        ArpProxyApp {
            deferred: DeferBuffer::new(ARP_RETRY_TOKEN, ARP_RETRY_TICK),
        }
    }

    /// Offer a host FLOW_MOD; park the refused tail for the retry tick
    /// (behind any existing backlog, preserving per-switch order).
    fn offer_flow(&mut self, cx: &mut AppCtx<'_, '_>, dpid: u64, fm: OfMessage) {
        if self.deferred.is_backlogged(dpid) {
            self.deferred.park(cx, dpid, vec![fm]);
            return;
        }
        let outcome = cx.send_of(dpid, fm);
        let _ = self
            .deferred
            .absorb(cx, dpid, outcome, "rf.host_flow_deferred");
    }

    /// Offer a PACKET_OUT; shed it if the channel pushes back.
    fn offer_packet_out(&mut self, cx: &mut AppCtx<'_, '_>, dpid: u64, po: OfMessage) {
        let outcome = cx.send_of(dpid, po);
        if !outcome.deferred.is_empty() {
            cx.count("rf.packet_out_shed", outcome.deferred.len() as u64);
        }
    }

    fn install_host_flow(
        &mut self,
        cx: &mut AppCtx<'_, '_>,
        ip: Ipv4Addr,
        dpid: u64,
        port: u16,
        mac: MacAddr,
    ) {
        let fm = OfMessage::FlowMod {
            of_match: OfMatch::ipv4_dst_prefix(ip, 32),
            cookie: 0x4F53_5400, // "HOST"
            command: FlowModCommand::Add,
            idle_timeout: 0,
            hard_timeout: 0,
            priority: HOST_FLOW_PRIORITY,
            buffer_id: OFP_NO_BUFFER,
            out_port: OFPP_NONE,
            flags: 0,
            actions: vec![
                Action::SetDlSrc(MacAddr::from_dpid_port(dpid, port)),
                Action::SetDlDst(mac),
                Action::output(port),
            ],
        };
        cx.state.flows_installed += 1;
        cx.count("rf.flow_add", 1);
        self.offer_flow(cx, dpid, fm);
    }
}

impl ControlApp for ArpProxyApp {
    fn name(&self) -> &'static str {
        "arp-proxy"
    }

    fn on_packet_in(&mut self, cx: &mut AppCtx<'_, '_>, dpid: u64, in_port: u16, data: &Bytes) {
        let Ok(eth) = EthernetFrame::parse_bytes(data) else {
            return;
        };
        if eth.ethertype == EtherType::IPV4 {
            // A punted IPv4 packet destined to a host we have not
            // learned yet: resolve it on demand, like a router ARPs for
            // a directly-connected next hop. The punted packet itself
            // is dropped (no ARP queue); the sender's retry flows once
            // the /32 is installed.
            if let Ok(ip) = rf_wire::Ipv4Packet::parse_bytes(&eth.payload) {
                if !cx.state.hosts.contains_key(&ip.dst) {
                    let target = cx
                        .config()
                        .host_ports
                        .iter()
                        .find(|h| h.dpid == dpid && h.subnet.contains(ip.dst))
                        .cloned();
                    if let Some(h) = target {
                        let gw_mac = MacAddr::from_dpid_port(h.dpid, h.port);
                        let req = ArpPacket::request(gw_mac, h.gateway, ip.dst);
                        let frame = EthernetFrame::new(
                            MacAddr::BROADCAST,
                            gw_mac,
                            EtherType::ARP,
                            req.emit(),
                        );
                        let po = OfMessage::PacketOut {
                            buffer_id: OFP_NO_BUFFER,
                            in_port: OFPP_NONE,
                            actions: vec![Action::output(h.port)],
                            data: frame.emit(),
                        };
                        cx.count("rf.arp_probe", 1);
                        self.offer_packet_out(cx, dpid, po);
                    }
                }
            }
            return;
        }
        if eth.ethertype != EtherType::ARP {
            return;
        }
        let Ok(arp) = ArpPacket::parse(&eth.payload) else {
            return;
        };
        // Learn the sender if it is a host on a declared port.
        let on_host_port = cx
            .config()
            .host_ports
            .iter()
            .any(|h| h.dpid == dpid && h.port == in_port && h.subnet.contains(arp.sender_ip));
        if on_host_port && arp.sender_ip != Ipv4Addr::UNSPECIFIED {
            let newly = cx
                .state
                .hosts
                .insert(arp.sender_ip, (dpid, in_port, arp.sender_mac))
                .is_none();
            if newly {
                cx.trace(
                    "rf.host_learned",
                    format!("{} at {dpid:#x}:{in_port}", arp.sender_ip),
                );
                self.install_host_flow(cx, arp.sender_ip, dpid, in_port, arp.sender_mac);
            }
        }
        // Answer gateway ARP requests on the VM's behalf.
        if arp.op == ArpOp::Request {
            let gw = cx
                .config()
                .host_ports
                .iter()
                .find(|h| h.dpid == dpid && h.port == in_port && h.gateway == arp.target_ip)
                .cloned();
            if let Some(h) = gw {
                let gw_mac = MacAddr::from_dpid_port(h.dpid, h.port);
                let reply = ArpPacket::reply_to(&arp, gw_mac);
                let frame =
                    EthernetFrame::new(arp.sender_mac, gw_mac, EtherType::ARP, reply.emit());
                let po = OfMessage::PacketOut {
                    buffer_id: OFP_NO_BUFFER,
                    in_port: OFPP_NONE,
                    actions: vec![Action::output(in_port)],
                    data: frame.emit(),
                };
                cx.state.arp_replies += 1;
                cx.count("rf.arp_reply", 1);
                self.offer_packet_out(cx, dpid, po);
            }
        }
    }

    fn on_timer(&mut self, cx: &mut AppCtx<'_, '_>, token: u64) {
        if !self.deferred.on_tick(token) {
            return;
        }
        for dpid in self.deferred.dpids() {
            let msgs = self.deferred.take(dpid);
            let outcome = cx.send_of_batch(dpid, msgs);
            let _ = self
                .deferred
                .absorb(cx, dpid, outcome, "rf.host_flow_deferred");
        }
    }

    fn on_switch_down(&mut self, _cx: &mut AppCtx<'_, '_>, dpid: u64) {
        self.deferred.forget(dpid);
    }
}
