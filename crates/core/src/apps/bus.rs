//! The control-plane event bus: typed events, the [`ControlApp`] trait,
//! and the shared state apps cooperate through.
//!
//! The RF-controller used to be one 700-line agent; it is now an
//! [`engine::ControlPlane`](super::engine::ControlPlane) that owns the
//! wire I/O (OpenFlow channels, the RPC server, VM channels) and a set
//! of registered apps. The engine translates I/O into [`ControlEvent`]s
//! and publishes them; every app sees every event in registration
//! order, and any app may raise further events, which are dispatched
//! breadth-first after the current one completes. With a single event
//! queue and deterministic ordering, a run is reproducible regardless
//! of how the controller logic is partitioned.
//!
//! Third-party extensions implement [`ControlApp`] and register via
//! [`ControlPlane::register`](super::engine::ControlPlane::register) or
//! `ScenarioBuilder::with_app`.

use super::channel::{ChannelLayer, SendOutcome, SwitchChannel, VmSendOutcome};
use crate::rfcontroller::RfControllerConfig;
use bytes::Bytes;
use rf_openflow::OfMessage;
use rf_rpc::RpcRequest;
use rf_sim::{AgentId, ConnId, Ctx, LinkId, Time};
use rf_vnet::rfproto::RfMessage;
use rf_wire::{Ipv4Cidr, MacAddr};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::net::Ipv4Addr;

/// A FIB change reported by a VM's routing stack.
#[derive(Clone, Debug)]
pub enum FibChange {
    Add {
        dpid: u64,
        prefix: Ipv4Cidr,
        next_hop: Option<Ipv4Addr>,
        out_iface: u16,
        metric: u32,
    },
    Del {
        dpid: u64,
        prefix: Ipv4Cidr,
    },
}

/// A physical-link change, as refined by the discovery bridge.
#[derive(Clone, Debug)]
pub enum LinkChange {
    Up {
        a: (u64, u16),
        b: (u64, u16),
        subnet: Ipv4Cidr,
        ip_a: Ipv4Addr,
        ip_b: Ipv4Addr,
    },
    Down {
        a: (u64, u16),
        b: (u64, u16),
        /// Virtual-interconnect link mirroring the dead physical link,
        /// if one was built (carried so the lifecycle app can tear it
        /// down after the bridge has already dropped the record).
        sim_link: Option<LinkId>,
    },
    /// A port flap reported by the switch (OSPF dead-interval handles
    /// the routing consequences; apps rarely care).
    PortStatus { dpid: u64, port: u16, up: bool },
}

/// Everything that flows over the control-plane bus.
#[derive(Clone, Debug)]
pub enum ControlEvent {
    /// A raw configuration request from the topology controller,
    /// exactly as received by the RPC server. The discovery bridge
    /// refines these into the typed events below; other apps normally
    /// subscribe to those instead.
    Rpc(RpcRequest),
    /// A switch was detected (first announcement only).
    SwitchUp { dpid: u64, num_ports: u16 },
    /// A switch left the network.
    SwitchDown { dpid: u64 },
    /// A link changed, with addressing already allocated.
    Link(LinkChange),
    /// The VM mirroring `dpid` was provisioned (record exists; not
    /// necessarily booted yet).
    VmSpawned { dpid: u64 },
    /// The VM mirroring `dpid` finished booting and opened its channel.
    VmUp { dpid: u64 },
    /// The OpenFlow channel to `dpid` completed its handshake.
    ChannelUp { dpid: u64 },
    /// A data-plane packet punted to the controller.
    PacketIn {
        dpid: u64,
        in_port: u16,
        data: Bytes,
    },
    /// A VM pushed a FIB change.
    Fib(FibChange),
    /// A timer scheduled through [`AppCtx::schedule`] fired.
    Timer { token: u64 },
}

/// Per-switch record shared by all apps.
#[derive(Clone, Debug)]
pub struct SwitchRec {
    pub num_ports: u16,
    pub vm: Option<AgentId>,
    pub vm_conn: Option<ConnId>,
    pub configured_at: Option<Time>,
}

/// Per-link record shared by all apps.
#[derive(Clone, Debug)]
pub struct LinkRec {
    pub a: (u64, u16),
    pub b: (u64, u16),
    pub subnet: Ipv4Cidr,
    pub ip_a: Ipv4Addr,
    pub ip_b: Ipv4Addr,
    pub sim_link: Option<LinkId>,
}

/// State shared across apps: the controller's view of the network.
///
/// Apps own their private state; anything two apps must agree on lives
/// here. The split mirrors the paper's architecture — switches/links
/// come from discovery, hosts from the edge, `installed` from the
/// route-to-flow mirror.
#[derive(Clone, Default)]
pub struct ControlState {
    /// Known switches (keyed by dpid; present once a VM is provisioned).
    pub switches: BTreeMap<u64, SwitchRec>,
    /// Up links with their allocated addressing.
    pub links: Vec<LinkRec>,
    /// (dpid, port) → (peer dpid, peer port) for next-hop MACs.
    pub port_peer: HashMap<(u64, u16), (u64, u16)>,
    /// Learned hosts: ip → (dpid, port, mac).
    pub hosts: HashMap<Ipv4Addr, (u64, u16, MacAddr)>,
    /// Installed routed flows: (dpid, network, len) → priority.
    pub installed: HashMap<(u64, u32, u8), u16>,
    /// Diagnostics.
    pub flows_installed: u64,
    pub flows_removed: u64,
    pub arp_replies: u64,
    /// OpenFlow messages actually written toward switches (FLOW_MODs,
    /// PACKET_OUTs — transport chores like Hello/Echo excluded).
    pub of_msgs_sent: u64,
    /// Wire bytes of those messages.
    pub of_bytes_sent: u64,
    /// Transport writes carrying them. Equal to `of_msgs_sent` when
    /// every message goes out alone; multi-message pushes make this
    /// smaller — the number the FIB batching stage optimises.
    pub of_pushes: u64,
    /// Multi-message FLOW_MOD pushes flushed by the FIB-mirror batch
    /// stage (0 when `fib_batch` is 1).
    pub fib_batches: u64,
    /// Refusal *events* under
    /// [`super::channel::OverflowPolicy::Defer`]: incremented every
    /// time a bounded channel bounces a message back to its producer,
    /// including re-offers of the same message from a retry backlog.
    /// It therefore measures how long and how hard producers leaned on
    /// a full channel (scaling with stall duration × retry cadence),
    /// not the count of distinct messages. Producers retry, so
    /// deferral is pacing, not loss.
    pub of_deferred: u64,
    /// Queued messages evicted under
    /// [`super::channel::OverflowPolicy::DropOldest`] — real loss,
    /// visible as FIB divergence.
    pub of_dropped: u64,
    /// Deepest per-switch channel queue observed over the run: how
    /// hard producers leaned on the bounded channels.
    pub of_queue_hwm: u64,
}

impl ControlState {
    /// Interface table for a VM: link interfaces + host-port gateways.
    pub fn vm_interfaces(&self, cfg: &RfControllerConfig, dpid: u64) -> Vec<(u16, Ipv4Cidr)> {
        let mut out = Vec::new();
        for l in &self.links {
            if l.a.0 == dpid {
                out.push((l.a.1, Ipv4Cidr::new(l.ip_a, l.subnet.prefix_len)));
            }
            if l.b.0 == dpid {
                out.push((l.b.1, Ipv4Cidr::new(l.ip_b, l.subnet.prefix_len)));
            }
        }
        for h in &cfg.host_ports {
            if h.dpid == dpid {
                out.push((h.port, Ipv4Cidr::new(h.gateway, h.subnet.prefix_len)));
            }
        }
        out.sort_by_key(|(p, _)| *p);
        out
    }
}

/// Object-safe cloning for boxed control apps; blanket-implemented for
/// every `ControlApp + Clone` type, making `Box<dyn ControlApp>: Clone`
/// (the controller-side mirror of [`rf_sim::CloneAgent`]).
pub trait CloneControlApp {
    fn clone_app(&self) -> Box<dyn ControlApp>;
}

impl<T> CloneControlApp for T
where
    T: 'static + ControlApp + Clone,
{
    fn clone_app(&self) -> Box<dyn ControlApp> {
        Box::new(self.clone())
    }
}

impl Clone for Box<dyn ControlApp> {
    fn clone(&self) -> Self {
        self.clone_app()
    }
}

/// Engine-owned I/O surface the apps reach through [`AppCtx`].
///
/// Keeping the connection maps out of [`ControlState`] means apps can
/// never depend on transport details — everything they send goes
/// through the dpid-addressed [`SwitchChannel`] layer, which bounds
/// and meters the queues (and parks messages while channels are down).
#[derive(Clone)]
pub(crate) struct BusIo {
    pub(crate) dpid_of: HashMap<u64, ConnId>,
    /// Per-switch bounded send channels (keyed deterministically; the
    /// drain tick iterates this map).
    pub(crate) channels: BTreeMap<u64, SwitchChannel>,
    /// True while a [`super::channel::CHANNEL_DRAIN_TOKEN`] tick is
    /// scheduled.
    pub(crate) drain_armed: bool,
    pub(crate) xid: u32,
}

impl BusIo {
    pub(crate) fn new() -> BusIo {
        BusIo {
            dpid_of: HashMap::new(),
            channels: BTreeMap::new(),
            drain_armed: false,
            xid: 1,
        }
    }

    pub(crate) fn next_xid(&mut self) -> u32 {
        self.xid = self.xid.wrapping_add(1);
        self.xid
    }

    /// Reserve `n` consecutive xids; returns the first.
    pub(crate) fn take_xids(&mut self, n: u32) -> u32 {
        let first = self.xid.wrapping_add(1);
        self.xid = self.xid.wrapping_add(n);
        first
    }
}

/// The handle an app uses while processing one event: simulator access,
/// shared state, dpid-addressed send helpers, and `raise` to publish
/// follow-up events onto the bus.
pub struct AppCtx<'a, 'b> {
    pub(crate) sim: &'a mut Ctx<'b>,
    pub state: &'a mut ControlState,
    pub(crate) config: &'a RfControllerConfig,
    pub(crate) io: &'a mut BusIo,
    pub(crate) bus: &'a mut VecDeque<ControlEvent>,
}

impl<'b> AppCtx<'_, 'b> {
    fn channel_layer(&mut self) -> ChannelLayer<'_, 'b> {
        ChannelLayer {
            io: self.io,
            state: self.state,
            config: self.config,
            sim: self.sim,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.sim.now()
    }

    /// The controller agent's id (e.g. as the VM's RF-server address).
    pub fn controller_id(&self) -> AgentId {
        self.sim.self_id()
    }

    /// Controller configuration (host ports, boot delay, link profile).
    pub fn config(&self) -> &RfControllerConfig {
        self.config
    }

    /// Publish a follow-up event; it is dispatched to every app (in
    /// registration order) after the current event finishes.
    pub fn raise(&mut self, ev: ControlEvent) {
        self.bus.push_back(ev);
    }

    /// Offer an OpenFlow message to `dpid`'s bounded send channel. The
    /// message goes to the wire immediately when the channel is up,
    /// un-stalled and has credits; otherwise it queues within the
    /// capacity bound, and past the bound the configured
    /// [`super::channel::OverflowPolicy`] decides. Consume the outcome:
    /// a deferred message is the caller's to retry.
    pub fn send_of(&mut self, dpid: u64, msg: OfMessage) -> SendOutcome {
        self.channel_layer().offer(dpid, vec![msg])
    }

    /// Offer several OpenFlow messages to `dpid`'s channel at once.
    /// Contiguous runs that clear the queue go out as one multi-message
    /// push (one transport write, consecutive xids; see
    /// [`OfMessage::encode_batch`]); a bounded channel may split the
    /// run at its credit limit and defer or drop the tail.
    pub fn send_of_batch(&mut self, dpid: u64, msgs: Vec<OfMessage>) -> SendOutcome {
        self.channel_layer().offer(dpid, msgs)
    }

    /// Send an RF-protocol message to the VM mirroring `dpid`. Returns
    /// [`VmSendOutcome::Deferred`] when the VM channel is not open —
    /// the producer re-pushes on the next `VmUp`.
    pub fn send_to_vm(&mut self, dpid: u64, msg: RfMessage) -> VmSendOutcome {
        if let Some(conn) = self.state.switches.get(&dpid).and_then(|s| s.vm_conn) {
            self.sim.conn_send(conn, msg.encode());
            VmSendOutcome::Delivered
        } else {
            VmSendOutcome::Deferred
        }
    }

    /// Fire a [`ControlEvent::Timer`] on the bus after `delay`. Tokens
    /// share one namespace across apps; use a per-app prefix.
    pub fn schedule(&mut self, delay: std::time::Duration, token: u64) {
        self.sim.schedule(delay, token);
    }

    /// Spawn an agent into the simulation (the lifecycle app's VMs).
    pub fn spawn_agent(&mut self, name: &str, agent: Box<dyn rf_sim::Agent>) -> AgentId {
        self.sim.spawn(name, agent)
    }

    /// Remove an agent from the simulation.
    pub fn kill_agent(&mut self, agent: AgentId) {
        self.sim.kill(agent)
    }

    /// Mirror a link in the virtual environment.
    pub fn add_sim_link(
        &mut self,
        a: (AgentId, u32),
        b: (AgentId, u32),
        profile: rf_sim::LinkProfile,
    ) -> LinkId {
        self.sim.add_link(a, b, profile)
    }

    /// Tear a virtual link down.
    pub fn remove_sim_link(&mut self, id: LinkId) {
        self.sim.remove_link(id)
    }

    /// Emit an info-level trace event.
    pub fn trace(&mut self, kind: &str, detail: impl Into<String>) {
        self.sim.trace(kind, detail)
    }

    /// Increment a named metric counter.
    pub fn count(&mut self, name: &str, delta: u64) {
        self.sim.count(name, delta)
    }
}

/// A composable control-plane application.
///
/// Implement the hooks you care about; [`ControlApp::on_event`] routes
/// each [`ControlEvent`] to the matching hook by default, so an app
/// that only mirrors FIB entries overrides nothing but
/// [`ControlApp::on_fib_update`]. Override `on_event` itself to observe
/// the raw stream (loggers, invariant checkers).
///
/// Apps must be `Send`: the whole controller (and the `Sim` holding it)
/// crosses thread boundaries when scenarios are swept in parallel by
/// [`crate::scenario::ScenarioMatrix`]. App state is plain owned data
/// in practice, so this costs nothing. They must also be `Clone` (the
/// [`CloneControlApp`] supertrait, satisfied by `#[derive(Clone)]`): a
/// converged controller is deep-copied wholesale when a scenario is
/// checkpointed for fork (see `Scenario::snapshot`).
#[allow(unused_variables)]
pub trait ControlApp: 'static + Send + CloneControlApp {
    /// Stable name, for traces and diagnostics.
    fn name(&self) -> &'static str;

    /// A raw topology-controller RPC request arrived (normally only
    /// the discovery bridge cares; most apps use the refined events).
    fn on_rpc(&mut self, cx: &mut AppCtx<'_, '_>, req: &RpcRequest) {}
    /// A switch was detected for the first time.
    fn on_switch_up(&mut self, cx: &mut AppCtx<'_, '_>, dpid: u64, num_ports: u16) {}
    /// A switch left.
    fn on_switch_down(&mut self, cx: &mut AppCtx<'_, '_>, dpid: u64) {}
    /// A link came up, went down, or flapped a port.
    fn on_link_event(&mut self, cx: &mut AppCtx<'_, '_>, change: &LinkChange) {}
    /// A packet was punted to the controller.
    fn on_packet_in(&mut self, cx: &mut AppCtx<'_, '_>, dpid: u64, in_port: u16, data: &Bytes) {}
    /// A VM reported a FIB change.
    fn on_fib_update(&mut self, cx: &mut AppCtx<'_, '_>, change: &FibChange) {}
    /// A bus timer fired.
    fn on_timer(&mut self, cx: &mut AppCtx<'_, '_>, token: u64) {}
    /// The VM mirroring `dpid` was provisioned (not yet booted).
    fn on_vm_spawned(&mut self, cx: &mut AppCtx<'_, '_>, dpid: u64) {}
    /// The VM mirroring `dpid` booted and opened its channel.
    fn on_vm_up(&mut self, cx: &mut AppCtx<'_, '_>, dpid: u64) {}
    /// The OpenFlow channel to `dpid` completed its handshake.
    fn on_channel_up(&mut self, cx: &mut AppCtx<'_, '_>, dpid: u64) {}

    /// Full-fidelity event hook; the default routes every event to its
    /// named hook. Override only to observe the raw stream (loggers,
    /// invariant checkers) — everything else belongs in a named hook.
    fn on_event(&mut self, cx: &mut AppCtx<'_, '_>, ev: &ControlEvent) {
        match ev {
            ControlEvent::Rpc(req) => self.on_rpc(cx, req),
            ControlEvent::SwitchUp { dpid, num_ports } => self.on_switch_up(cx, *dpid, *num_ports),
            ControlEvent::SwitchDown { dpid } => self.on_switch_down(cx, *dpid),
            ControlEvent::Link(change) => self.on_link_event(cx, change),
            ControlEvent::PacketIn {
                dpid,
                in_port,
                data,
            } => self.on_packet_in(cx, *dpid, *in_port, data),
            ControlEvent::Fib(change) => self.on_fib_update(cx, change),
            ControlEvent::Timer { token } => self.on_timer(cx, *token),
            ControlEvent::VmSpawned { dpid } => self.on_vm_spawned(cx, *dpid),
            ControlEvent::VmUp { dpid } => self.on_vm_up(cx, *dpid),
            ControlEvent::ChannelUp { dpid } => self.on_channel_up(cx, *dpid),
        }
    }
}
