//! Backpressure-aware control channels: one bounded, credit-metered
//! send queue per switch.
//!
//! The controller used to push OpenFlow messages into an unbounded
//! per-dpid `Vec` whenever a channel was down — a slow or stalled
//! switch would silently absorb infinite FLOW_MODs. Every producer now
//! routes through a [`SwitchChannel`]:
//!
//! * **Bounded queue.** `channel_capacity` caps how many messages may
//!   wait per switch (`None` = unbounded, the paper-faithful default).
//! * **Credits.** Each drain interval ([`CHANNEL_DRAIN_TICK`]) grants a
//!   channel `capacity` send credits; wire writes spend one credit per
//!   message, so a bounded channel drains at a bounded rate instead of
//!   blasting arbitrarily large bursts into one push.
//! * **Overflow policy.** When the queue is full the channel either
//!   refuses the tail ([`OverflowPolicy::Defer`] — the producer keeps
//!   the messages and retries), evicts the oldest queued message
//!   ([`OverflowPolicy::DropOldest`]), or aborts the run
//!   ([`OverflowPolicy::Fatal`]).
//! * **Stall faults.** `Fault::ChannelStall { dpid, from, until }`
//!   (carried here as [`ChannelStallWindow`]) freezes a channel's wire
//!   for a window of simulated time: offers keep queueing, nothing
//!   flushes, and the drain tick releases the backlog when the window
//!   closes.
//!
//! Every outcome is accounted in [`ControlState`]: `of_deferred`
//! (messages refused back to producers), `of_dropped` (evictions), and
//! `of_queue_hwm` (deepest queue observed) — the schema-v3 sweep
//! metrics.

use super::bus::{AppCtx, BusIo, ControlState};
use crate::rfcontroller::RfControllerConfig;
use rf_openflow::OfMessage;
use rf_sim::{Ctx, Time};
use std::collections::{BTreeMap, VecDeque};
use std::time::Duration;

/// What a bounded channel does with an offer that does not fit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Refuse the overflow: the messages come back to the producer in
    /// [`SendOutcome::deferred`] and remain its responsibility. With a
    /// retrying producer this policy is lossless — final FIBs are
    /// byte-identical to the unbounded run.
    #[default]
    Defer,
    /// Evict the oldest queued message to make room (accounted in
    /// `of_dropped`). Lossy by design: freshest state wins.
    DropOldest,
    /// Panic. For experiments asserting that a workload fits a budget.
    Fatal,
}

impl OverflowPolicy {
    /// Stable lower-case name, used in knob names and reports.
    pub fn name(self) -> &'static str {
        match self {
            OverflowPolicy::Defer => "defer",
            OverflowPolicy::DropOldest => "drop-oldest",
            OverflowPolicy::Fatal => "fatal",
        }
    }
}

/// A control-channel stall window: the OpenFlow channel to `dpid`
/// stops draining between `from` and `until` (simulated time from the
/// scenario epoch). Queues fill, policies engage, and the drain tick
/// releases the backlog once the window closes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChannelStallWindow {
    pub dpid: u64,
    pub from: Duration,
    pub until: Duration,
}

impl ChannelStallWindow {
    pub fn covers(&self, dpid: u64, now: Time) -> bool {
        self.dpid == dpid && now >= Time::ZERO + self.from && now < Time::ZERO + self.until
    }
}

/// What happened to an offer of OpenFlow messages. Producers must
/// consume this — a deferred tail silently dropped is exactly the bug
/// the channel layer exists to surface.
#[must_use = "a deferred tail must be retried or deliberately shed"]
#[derive(Debug, Default)]
pub struct SendOutcome {
    /// Messages of this offer that entered the channel (wire or queue).
    pub accepted: usize,
    /// Messages written to the wire during this offer. FIFO order means
    /// this may include backlog from earlier offers that flushed first.
    pub wired: usize,
    /// Queued messages evicted by [`OverflowPolicy::DropOldest`] to
    /// make room (always the oldest in the queue at that moment).
    pub dropped: u64,
    /// Messages the channel refused under [`OverflowPolicy::Defer`],
    /// in offer order. The caller retries them (before anything newer
    /// for the same switch, or per-switch ordering breaks).
    pub deferred: Vec<OfMessage>,
}

impl SendOutcome {
    /// True when nothing was refused or evicted.
    pub fn fully_accepted(&self) -> bool {
        self.deferred.is_empty() && self.dropped == 0
    }
}

/// Whether an RF-protocol push toward a VM was delivered or must wait
/// for the VM channel to (re)open.
#[must_use = "a deferred config push must be re-sent when the VM channel opens"]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmSendOutcome {
    /// Written to the VM channel.
    Delivered,
    /// The VM channel is not open; the engine re-raises `VmUp` when it
    /// is, and the producer re-pushes then.
    Deferred,
}

/// Timer token of the engine-owned channel drain tick. Fires only
/// while some up-channel holds queued messages; intercepted by the
/// engine before bus dispatch, so apps never see it.
pub(crate) const CHANNEL_DRAIN_TOKEN: u64 = 0xC4A7_0000_0000_0000;

/// The credit replenish / retry cadence of a blocked channel.
pub(crate) const CHANNEL_DRAIN_TICK: Duration = Duration::from_millis(25);

/// A producer-side retry backlog for messages a bounded channel
/// refused under [`OverflowPolicy::Defer`].
///
/// Both FLOW_MOD producers ([`super::FibMirrorApp`],
/// [`super::ArpProxyApp`]) own one: refused tails park here per
/// switch, a bus timer retries them in order, and while a switch has
/// a backlog every new message for it joins the tail — so the wire
/// never sees reordering within one switch. One implementation, two
/// apps: the retry logic cannot diverge between them.
#[derive(Clone)]
pub(crate) struct DeferBuffer {
    /// Bus-timer token of the retry tick (tokens share one namespace
    /// across a controller's apps, so each buffer gets its owner's).
    token: u64,
    /// Retry cadence.
    tick: Duration,
    backlog: BTreeMap<u64, Vec<OfMessage>>,
    tick_armed: bool,
}

impl DeferBuffer {
    pub(crate) fn new(token: u64, tick: Duration) -> DeferBuffer {
        DeferBuffer {
            token,
            tick,
            backlog: BTreeMap::new(),
            tick_armed: false,
        }
    }

    /// True while `dpid` has refused messages waiting — new traffic
    /// for it must be appended behind them to preserve order.
    pub(crate) fn is_backlogged(&self, dpid: u64) -> bool {
        self.backlog.get(&dpid).is_some_and(|q| !q.is_empty())
    }

    /// Park messages behind `dpid`'s backlog and arm the retry tick.
    pub(crate) fn park(&mut self, cx: &mut AppCtx<'_, '_>, dpid: u64, msgs: Vec<OfMessage>) {
        if msgs.is_empty() {
            return;
        }
        self.backlog.entry(dpid).or_default().extend(msgs);
        self.arm(cx);
    }

    /// Consume a channel outcome: park the refused tail (counted under
    /// `counter`) and arm the retry tick. Returns whether anything was
    /// wired.
    pub(crate) fn absorb(
        &mut self,
        cx: &mut AppCtx<'_, '_>,
        dpid: u64,
        outcome: SendOutcome,
        counter: &str,
    ) -> bool {
        let wired = outcome.wired > 0;
        if !outcome.deferred.is_empty() {
            cx.count(counter, outcome.deferred.len() as u64);
            self.park(cx, dpid, outcome.deferred);
        }
        wired
    }

    /// Pull `dpid`'s backlog for a combined re-offer (the caller sends
    /// it ahead of any newer traffic, then `absorb`s the outcome).
    pub(crate) fn take(&mut self, dpid: u64) -> Vec<OfMessage> {
        self.backlog.remove(&dpid).unwrap_or_default()
    }

    /// Backlogged switches, in deterministic order.
    pub(crate) fn dpids(&self) -> Vec<u64> {
        self.backlog.keys().copied().collect()
    }

    /// Handle a bus timer: returns true (with the tick disarmed) when
    /// it is this buffer's retry tick and the owner should re-offer.
    pub(crate) fn on_tick(&mut self, token: u64) -> bool {
        if token != self.token {
            return false;
        }
        self.tick_armed = false;
        true
    }

    /// Drop a dead switch's backlog.
    pub(crate) fn forget(&mut self, dpid: u64) {
        self.backlog.remove(&dpid);
    }

    fn arm(&mut self, cx: &mut AppCtx<'_, '_>) {
        if !self.tick_armed {
            cx.schedule(self.tick, self.token);
            self.tick_armed = true;
        }
    }
}

/// Per-switch bounded send state.
#[derive(Clone, Debug)]
pub(crate) struct SwitchChannel {
    /// Messages accepted but not yet on the wire.
    pub(crate) queue: VecDeque<OfMessage>,
    /// Send credits left in the current drain interval. Refilled to
    /// the channel capacity by the drain tick; unbounded channels hold
    /// `usize::MAX` and never run out.
    pub(crate) credits: usize,
}

impl SwitchChannel {
    fn new(capacity: Option<usize>) -> SwitchChannel {
        SwitchChannel {
            queue: VecDeque::new(),
            credits: capacity.unwrap_or(usize::MAX),
        }
    }
}

/// The channel layer's view over the engine's split borrows: the I/O
/// table, the shared counters, the configuration and the simulator.
/// Both the apps (through `AppCtx`) and the engine (channel-up flush,
/// drain tick) operate on channels through this one type, so the
/// accounting can never diverge between paths.
pub(crate) struct ChannelLayer<'a, 'b> {
    pub(crate) io: &'a mut BusIo,
    pub(crate) state: &'a mut ControlState,
    pub(crate) config: &'a RfControllerConfig,
    pub(crate) sim: &'a mut Ctx<'b>,
}

impl ChannelLayer<'_, '_> {
    fn stalled(&self, dpid: u64) -> bool {
        let now = self.sim.now();
        self.config
            .channel_stalls
            .iter()
            .any(|w| w.covers(dpid, now))
    }

    /// Offer messages to `dpid`'s channel: enqueue within the bound,
    /// flush what credits and stall state allow, apply the overflow
    /// policy to the rest.
    pub(crate) fn offer(&mut self, dpid: u64, msgs: Vec<OfMessage>) -> SendOutcome {
        let mut out = SendOutcome::default();
        if msgs.is_empty() {
            return out;
        }
        let capacity = self.config.channel_capacity;
        let policy = self.config.overflow;
        self.io
            .channels
            .entry(dpid)
            .or_insert_with(|| SwitchChannel::new(capacity));
        for msg in msgs {
            loop {
                let ch = self.io.channels.get_mut(&dpid).expect("channel exists");
                if capacity.is_none_or(|cap| ch.queue.len() < cap) {
                    ch.queue.push_back(msg);
                    out.accepted += 1;
                    self.state.of_queue_hwm = self.state.of_queue_hwm.max(ch.queue.len() as u64);
                    break;
                }
                // Full: a flush may free room (if credits remain and
                // the channel is neither down nor stalled).
                let before = ch.queue.len();
                out.wired += self.flush(dpid);
                if self.io.channels[&dpid].queue.len() < before {
                    continue;
                }
                match policy {
                    OverflowPolicy::Defer => {
                        self.state.of_deferred += 1;
                        out.deferred.push(msg);
                    }
                    OverflowPolicy::DropOldest => {
                        let ch = self.io.channels.get_mut(&dpid).expect("channel exists");
                        ch.queue.pop_front();
                        ch.queue.push_back(msg);
                        out.accepted += 1;
                        self.state.of_dropped += 1;
                        out.dropped += 1;
                        self.sim.count("rf.channel_drop_oldest", 1);
                    }
                    OverflowPolicy::Fatal => panic!(
                        "switch channel {dpid:#x} overflowed its capacity of {} \
                         under OverflowPolicy::Fatal",
                        capacity.unwrap_or(usize::MAX)
                    ),
                }
                break;
            }
        }
        out.wired += self.flush(dpid);
        out
    }

    /// Write as much of `dpid`'s queue as credits, stall state and the
    /// connection allow — as one multi-message push. Returns the number
    /// of messages wired.
    pub(crate) fn flush(&mut self, dpid: u64) -> usize {
        let Some(&conn) = self.io.dpid_of.get(&dpid) else {
            return 0; // channel down: ChannelUp replays the queue
        };
        if self.stalled(dpid) {
            self.arm_drain();
            return 0;
        }
        let Some(ch) = self.io.channels.get_mut(&dpid) else {
            return 0;
        };
        let n = ch.queue.len().min(ch.credits);
        if n == 0 {
            if !ch.queue.is_empty() {
                self.arm_drain(); // out of credits: wait for a refill
            }
            return 0;
        }
        let msgs: Vec<OfMessage> = ch.queue.drain(..n).collect();
        ch.credits -= n;
        let leftover = !ch.queue.is_empty();
        let first_xid = self.io.take_xids(n as u32);
        let wire = OfMessage::encode_batch(&msgs, first_xid);
        self.state.of_msgs_sent += n as u64;
        self.state.of_bytes_sent += wire.len() as u64;
        self.state.of_pushes += 1;
        self.sim.conn_send(conn, wire);
        if leftover {
            self.arm_drain();
        }
        n
    }

    /// The drain tick: refill every channel's credits and flush what
    /// can move. Re-arms itself while any up-channel still holds
    /// queued messages (a stalled window, a credit-capped backlog).
    pub(crate) fn drain_all(&mut self) {
        self.io.drain_armed = false;
        let capacity = self.config.channel_capacity;
        for ch in self.io.channels.values_mut() {
            ch.credits = capacity.unwrap_or(usize::MAX);
        }
        let dpids: Vec<u64> = self.io.channels.keys().copied().collect();
        for dpid in dpids {
            let _ = self.flush(dpid);
        }
    }

    fn arm_drain(&mut self) {
        if !self.io.drain_armed {
            self.io.drain_armed = true;
            self.sim.schedule(CHANNEL_DRAIN_TICK, CHANNEL_DRAIN_TOKEN);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::bus::BusIo;
    use rf_openflow::{Action, OfMessage, OFPP_NONE, OFP_NO_BUFFER};
    use rf_sim::{Agent, Sim, SimConfig};
    use std::sync::{Arc, Mutex};

    fn po(tag: u8) -> OfMessage {
        OfMessage::PacketOut {
            buffer_id: OFP_NO_BUFFER,
            in_port: OFPP_NONE,
            actions: vec![Action::output(1)],
            data: bytes::Bytes::from(vec![tag; 4]),
        }
    }

    /// Exercise the channel layer from inside a real dispatch (a `Ctx`
    /// only exists there). The harness agent runs `f` once on start and
    /// publishes the outcome through shared state.
    #[derive(Clone)]
    struct Harness {
        cfg: RfControllerConfig,
        out: Arc<Mutex<Vec<SendOutcome>>>,
        counters: Arc<Mutex<(u64, u64, u64)>>, // deferred, dropped, hwm
        script: Vec<(u64, Vec<OfMessage>)>,
        /// Pretend this dpid's OF channel is up (conn id 0 — a real
        /// conn the harness opens to itself so writes are harmless).
        up_dpid: Option<u64>,
    }

    impl Agent for Harness {
        fn on_start(&mut self, ctx: &mut rf_sim::Ctx<'_>) {
            ctx.listen(9); // self-connection target
            let mut io = BusIo::new();
            if let Some(d) = self.up_dpid {
                let conn = ctx.connect(ctx.self_id(), 9, Default::default());
                io.dpid_of.insert(d, conn);
            }
            let mut state = ControlState::default();
            let script = std::mem::take(&mut self.script);
            for (dpid, msgs) in script {
                let outcome = ChannelLayer {
                    io: &mut io,
                    state: &mut state,
                    config: &self.cfg,
                    sim: ctx,
                }
                .offer(dpid, msgs);
                self.out.lock().unwrap().push(outcome);
            }
            *self.counters.lock().unwrap() =
                (state.of_deferred, state.of_dropped, state.of_queue_hwm);
        }
    }

    fn run_script(
        cfg: RfControllerConfig,
        up_dpid: Option<u64>,
        script: Vec<(u64, Vec<OfMessage>)>,
    ) -> (Vec<SendOutcome>, (u64, u64, u64)) {
        let out = Arc::new(Mutex::new(Vec::new()));
        let counters = Arc::new(Mutex::new((0, 0, 0)));
        let mut sim = Sim::new(SimConfig::default());
        sim.add_agent(
            "harness",
            Box::new(Harness {
                cfg,
                out: Arc::clone(&out),
                counters: Arc::clone(&counters),
                script,
                up_dpid,
            }),
        );
        sim.run_until(rf_sim::Time::from_secs(1));
        let o = std::mem::take(&mut *out.lock().unwrap());
        let c = *counters.lock().unwrap();
        (o, c)
    }

    fn cfg(capacity: Option<usize>, overflow: OverflowPolicy) -> RfControllerConfig {
        RfControllerConfig {
            channel_capacity: capacity,
            overflow,
            ..RfControllerConfig::default()
        }
    }

    #[test]
    fn capacity_zero_defers_every_message() {
        let (outs, (deferred, dropped, hwm)) = run_script(
            cfg(Some(0), OverflowPolicy::Defer),
            Some(1),
            vec![(1, vec![po(1), po(2)]), (1, vec![po(3)])],
        );
        assert_eq!(outs.len(), 2);
        assert_eq!(outs[0].deferred.len(), 2);
        assert_eq!(outs[1].deferred.len(), 1);
        assert_eq!(outs[0].accepted + outs[1].accepted, 0);
        assert_eq!((deferred, dropped, hwm), (3, 0, 0));
    }

    #[test]
    fn drop_oldest_accounting_matches_of_dropped() {
        // Channel down (no conn): nothing can flush, so a capacity-3
        // queue offered 10 messages must evict exactly 7 — and keep
        // the newest 3.
        let (outs, (deferred, dropped, hwm)) = run_script(
            cfg(Some(3), OverflowPolicy::DropOldest),
            None,
            vec![(5, (0..10).map(po).collect())],
        );
        assert_eq!(outs[0].dropped, 7);
        assert_eq!(outs[0].accepted, 10, "every offered message entered");
        assert!(outs[0].deferred.is_empty());
        assert_eq!((deferred, dropped), (0, 7));
        assert_eq!(hwm, 3, "high-water mark is the capacity");
    }

    #[test]
    fn defer_returns_tail_in_order_when_channel_down() {
        let (outs, (deferred, ..)) = run_script(
            cfg(Some(2), OverflowPolicy::Defer),
            None,
            vec![(5, (0..5).map(po).collect())],
        );
        assert_eq!(outs[0].accepted, 2);
        assert_eq!(outs[0].deferred.len(), 3);
        assert_eq!(deferred, 3);
        // The refused tail preserves offer order (2, 3, 4).
        for (i, m) in outs[0].deferred.iter().enumerate() {
            let OfMessage::PacketOut { data, .. } = m else {
                panic!("packet-outs in, packet-outs back");
            };
            assert_eq!(data[0], 2 + i as u8);
        }
    }

    #[test]
    fn credits_meter_the_wire_but_unbounded_flows_freely() {
        // Up channel, capacity 2: the first offer wires 2 (spending
        // both credits), queues what fits, defers the rest.
        let (outs, ..) = run_script(
            cfg(Some(2), OverflowPolicy::Defer),
            Some(1),
            vec![(1, (0..6).map(po).collect())],
        );
        assert_eq!(outs[0].wired, 2, "capacity grants that many credits");
        assert_eq!(outs[0].accepted, 4, "2 wired + a full queue of 2");
        assert_eq!(outs[0].deferred.len(), 2, "the rest bounces");
        // Unbounded: everything wires immediately.
        let (outs, (d, dr, _)) = run_script(
            cfg(None, OverflowPolicy::Defer),
            Some(1),
            vec![(1, (0..6).map(po).collect())],
        );
        assert_eq!(outs[0].wired, 6);
        assert!(outs[0].fully_accepted());
        assert_eq!((d, dr), (0, 0));
    }

    #[test]
    #[should_panic(expected = "OverflowPolicy::Fatal")]
    fn fatal_policy_panics_on_overflow() {
        let _ = run_script(
            cfg(Some(1), OverflowPolicy::Fatal),
            None,
            vec![(1, vec![po(0), po(1)])],
        );
    }
}
