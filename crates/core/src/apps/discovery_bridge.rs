//! Discovery bridge: refines raw topology-controller RPC requests into
//! typed bus events and owns the link/port bookkeeping every other app
//! reads.

use super::bus::{AppCtx, ControlApp, ControlEvent, LinkChange, LinkRec};
use rf_rpc::RpcRequest;
use std::collections::HashSet;

/// Translates [`RpcRequest`]s into [`ControlEvent`]s:
///
/// * `SwitchDetected` → [`ControlEvent::SwitchUp`] (first time only);
/// * `SwitchRemoved` → [`ControlEvent::SwitchDown`], dropping the dead
///   switch's link records;
/// * `LinkDetected` → [`LinkChange::Up`], held back until the VMs on
///   both ends have been provisioned (re-tried on every
///   [`ControlEvent::VmSpawned`]);
/// * `LinkRemoved` → [`LinkChange::Down`];
/// * `PortStatus` → [`LinkChange::PortStatus`].
#[derive(Clone)]
pub struct DiscoveryBridgeApp {
    /// Switches already announced on the bus.
    known: HashSet<u64>,
    /// Links seen before both VMs existed.
    pending_links: Vec<RpcRequest>,
}

impl DiscoveryBridgeApp {
    pub fn new() -> DiscoveryBridgeApp {
        DiscoveryBridgeApp {
            known: HashSet::new(),
            pending_links: Vec::new(),
        }
    }

    fn handle_rpc(&mut self, cx: &mut AppCtx<'_, '_>, req: RpcRequest) {
        match req {
            RpcRequest::SwitchDetected { dpid, num_ports } => {
                if !self.known.insert(dpid) {
                    return; // relay retransmission or switch re-probe
                }
                cx.raise(ControlEvent::SwitchUp { dpid, num_ports });
            }
            RpcRequest::SwitchRemoved { dpid } => {
                if !self.known.remove(&dpid) {
                    return;
                }
                cx.state
                    .port_peer
                    .retain(|(d, _), (pd, _)| *d != dpid && *pd != dpid);
                cx.state.links.retain(|l| l.a.0 != dpid && l.b.0 != dpid);
                cx.raise(ControlEvent::SwitchDown { dpid });
            }
            RpcRequest::LinkDetected {
                a_dpid,
                a_port,
                b_dpid,
                b_port,
                subnet,
                ip_a,
                ip_b,
            } => {
                let both_provisioned = cx.state.switches.get(&a_dpid).and_then(|s| s.vm).is_some()
                    && cx.state.switches.get(&b_dpid).and_then(|s| s.vm).is_some();
                if !both_provisioned {
                    self.pending_links.push(RpcRequest::LinkDetected {
                        a_dpid,
                        a_port,
                        b_dpid,
                        b_port,
                        subnet,
                        ip_a,
                        ip_b,
                    });
                    return;
                }
                if cx
                    .state
                    .links
                    .iter()
                    .any(|l| l.a == (a_dpid, a_port) && l.b == (b_dpid, b_port))
                {
                    return; // duplicate
                }
                cx.state.links.push(LinkRec {
                    a: (a_dpid, a_port),
                    b: (b_dpid, b_port),
                    subnet,
                    ip_a,
                    ip_b,
                    sim_link: None,
                });
                cx.state
                    .port_peer
                    .insert((a_dpid, a_port), (b_dpid, b_port));
                cx.state
                    .port_peer
                    .insert((b_dpid, b_port), (a_dpid, a_port));
                cx.raise(ControlEvent::Link(LinkChange::Up {
                    a: (a_dpid, a_port),
                    b: (b_dpid, b_port),
                    subnet,
                    ip_a,
                    ip_b,
                }));
            }
            RpcRequest::LinkRemoved {
                a_dpid,
                a_port,
                b_dpid,
                b_port,
            } => {
                let sim_link = cx
                    .state
                    .links
                    .iter()
                    .position(|l| l.a == (a_dpid, a_port) && l.b == (b_dpid, b_port))
                    .and_then(|pos| cx.state.links.remove(pos).sim_link);
                cx.state.port_peer.remove(&(a_dpid, a_port));
                cx.state.port_peer.remove(&(b_dpid, b_port));
                // Even when the record is already gone (e.g. the switch
                // vanished first), downstream apps still get the event
                // so both ends' configurations are rewritten.
                cx.raise(ControlEvent::Link(LinkChange::Down {
                    a: (a_dpid, a_port),
                    b: (b_dpid, b_port),
                    sim_link,
                }));
            }
            RpcRequest::PortStatus { dpid, port, up } => {
                cx.raise(ControlEvent::Link(LinkChange::PortStatus {
                    dpid,
                    port,
                    up,
                }));
            }
        }
    }
}

impl Default for DiscoveryBridgeApp {
    fn default() -> Self {
        DiscoveryBridgeApp::new()
    }
}

impl ControlApp for DiscoveryBridgeApp {
    fn name(&self) -> &'static str {
        "discovery-bridge"
    }

    fn on_rpc(&mut self, cx: &mut AppCtx<'_, '_>, req: &RpcRequest) {
        self.handle_rpc(cx, req.clone());
    }

    fn on_vm_spawned(&mut self, cx: &mut AppCtx<'_, '_>, _dpid: u64) {
        // A new VM may complete the endpoint pair of links that
        // arrived early.
        let pending = std::mem::take(&mut self.pending_links);
        for req in pending {
            self.handle_rpc(cx, req);
        }
    }
}
