//! The control-plane engine: wire I/O demultiplexing and bus dispatch.
//!
//! The engine is the only [`Agent`] on the controller side. It owns the
//! OpenFlow channels (from FlowVisor or switches), the embedded RPC
//! server (from the topology controller) and the RF-protocol channels
//! (from the VMs), translates their bytes into [`ControlEvent`]s, and
//! publishes them to the registered [`ControlApp`]s. Transport chores
//! that no app should ever see — Hello/Echo, handshake bookkeeping,
//! flushing FLOW_MODs queued while a channel was down, RPC acks and
//! dedup — are handled here.

use super::bus::{AppCtx, BusIo, ControlApp, ControlEvent, ControlState, FibChange};
use super::channel::{ChannelLayer, CHANNEL_DRAIN_TOKEN};
use super::{ArpProxyApp, DiscoveryBridgeApp, FibMirrorApp, VmLifecycleApp};
use crate::rfcontroller::RfControllerConfig;
use rf_openflow::{MessageReader, OfMessage};
use rf_rpc::{RpcServerEndpoint, RPC_SERVER_SERVICE};
use rf_sim::{Agent, ConnId, Ctx, StreamEvent, Time};
use rf_vnet::rfproto::{RfFrameReader, RfMessage, RF_SERVICE};
use std::collections::{HashMap, VecDeque};

/// The RouteFlow controller as an event-bus engine hosting pluggable
/// control apps. [`crate::rfcontroller::RfController`] is an alias for
/// this type, so existing deployments and downcasts keep working.
#[derive(Clone)]
pub struct ControlPlane {
    cfg: RfControllerConfig,
    apps: Vec<Box<dyn ControlApp>>,
    state: ControlState,
    io: BusIo,
    bus: VecDeque<ControlEvent>,
    /// True while the bus loop is draining (re-entrant publishes from
    /// nested I/O must only enqueue, not start a second drain).
    dispatching: bool,
    // Wire demux.
    of_readers: HashMap<ConnId, MessageReader>,
    of_dpid: HashMap<ConnId, u64>,
    rpc: RpcServerEndpoint,
    rpc_conns: Vec<ConnId>,
    vm_readers: HashMap<ConnId, RfFrameReader>,
    vm_dpid: HashMap<ConnId, u64>,
    /// Reused per-event decode buffer (capacity persists across events).
    of_scratch: Vec<(OfMessage, u32)>,
}

impl ControlPlane {
    /// Engine with the standard four apps: discovery bridge, VM
    /// lifecycle, FIB mirror, ARP proxy — together they reproduce the
    /// monolithic RF-controller's behaviour.
    pub fn new(cfg: RfControllerConfig) -> ControlPlane {
        let mut cp = ControlPlane::bare(cfg);
        cp.register(Box::new(DiscoveryBridgeApp::new()));
        cp.register(Box::new(VmLifecycleApp::new()));
        cp.register(Box::new(FibMirrorApp::new()));
        cp.register(Box::new(ArpProxyApp::new()));
        cp
    }

    /// Engine with no apps registered — for tests and bespoke stacks
    /// that compose their own pipeline.
    pub fn bare(cfg: RfControllerConfig) -> ControlPlane {
        ControlPlane {
            cfg,
            apps: Vec::new(),
            state: ControlState::default(),
            io: BusIo::new(),
            bus: VecDeque::new(),
            dispatching: false,
            of_readers: HashMap::new(),
            of_dpid: HashMap::new(),
            rpc: RpcServerEndpoint::new(),
            rpc_conns: Vec::new(),
            vm_readers: HashMap::new(),
            vm_dpid: HashMap::new(),
            of_scratch: Vec::new(),
        }
    }

    /// Register an app; it sees every event after the ones registered
    /// before it. Returns `self` for chaining.
    pub fn register(&mut self, app: Box<dyn ControlApp>) -> &mut ControlPlane {
        self.apps.push(app);
        self
    }

    /// Builder-style [`ControlPlane::register`].
    pub fn with_app(mut self, app: Box<dyn ControlApp>) -> ControlPlane {
        self.apps.push(app);
        self
    }

    /// Names of the registered apps, in dispatch order.
    pub fn app_names(&self) -> Vec<&'static str> {
        self.apps.iter().map(|a| a.name()).collect()
    }

    /// Shared control-plane state (tests, metrics harvesting).
    pub fn state(&self) -> &ControlState {
        &self.state
    }

    /// Controller configuration.
    pub fn config(&self) -> &RfControllerConfig {
        &self.cfg
    }

    /// Append a channel-stall window to the configuration at runtime.
    /// A window that lies entirely in the future is indistinguishable
    /// from one declared at construction (stalls only act through
    /// `covers(now)` checks at send/drain time), which is what lets a
    /// forked scenario inject a cell's stall schedule post-fork.
    pub fn add_channel_stall(&mut self, window: crate::apps::ChannelStallWindow) {
        self.cfg.channel_stalls.push(window);
    }

    // ------------------------------------------------------------------
    // Compatibility accessors (the old RfController surface).
    // ------------------------------------------------------------------

    /// Per-switch configured state: the paper's GUI turns a switch
    /// green "when it has a corresponding VM".
    pub fn switch_states(&self) -> Vec<(u64, bool)> {
        self.state
            .switches
            .iter()
            .map(|(d, s)| (*d, s.configured_at.is_some()))
            .collect()
    }

    /// Port count recorded for each switch.
    pub fn switch_port_counts(&self) -> Vec<(u64, u16)> {
        self.state
            .switches
            .iter()
            .map(|(d, s)| (*d, s.num_ports))
            .collect()
    }

    /// Number of switches whose VM is up (green in the GUI).
    pub fn configured_switches(&self) -> usize {
        self.state
            .switches
            .values()
            .filter(|s| s.configured_at.is_some())
            .count()
    }

    /// Time each switch turned green.
    pub fn configured_times(&self) -> Vec<(u64, Option<Time>)> {
        self.state
            .switches
            .iter()
            .map(|(d, s)| (*d, s.configured_at))
            .collect()
    }

    /// When the last of the first `n` switches turned green.
    pub fn all_configured_at(&self, n: usize) -> Option<Time> {
        if self.configured_switches() < n {
            return None;
        }
        self.state
            .switches
            .values()
            .filter_map(|s| s.configured_at)
            .max()
    }

    /// Routed + host flows pushed to the data plane.
    pub fn flows_installed(&self) -> u64 {
        self.state.flows_installed
    }

    /// Flow deletions pushed to the data plane.
    pub fn flows_removed(&self) -> u64 {
        self.state.flows_removed
    }

    /// Gateway ARPs answered on behalf of the VMs.
    pub fn arp_replies(&self) -> u64 {
        self.state.arp_replies
    }

    /// OpenFlow messages written toward switches (excludes Hello/Echo
    /// transport chores).
    pub fn of_msgs_sent(&self) -> u64 {
        self.state.of_msgs_sent
    }

    /// Wire bytes of those messages.
    pub fn of_bytes_sent(&self) -> u64 {
        self.state.of_bytes_sent
    }

    /// Transport writes carrying them (smaller than `of_msgs_sent`
    /// when multi-message pushes coalesce bursts).
    pub fn of_pushes(&self) -> u64 {
        self.state.of_pushes
    }

    /// Multi-message FLOW_MOD pushes flushed by the FIB batching stage.
    pub fn fib_batches(&self) -> u64 {
        self.state.fib_batches
    }

    /// Messages refused back to producers by bounded channels (Defer).
    pub fn of_deferred(&self) -> u64 {
        self.state.of_deferred
    }

    /// Queued messages evicted by bounded channels (DropOldest).
    pub fn of_dropped(&self) -> u64 {
        self.state.of_dropped
    }

    /// Deepest switch-channel queue observed over the run.
    pub fn of_queue_hwm(&self) -> u64 {
        self.state.of_queue_hwm
    }

    /// Messages currently parked in switch-channel queues (stalled,
    /// credit-capped, or waiting for their channel to come up).
    pub fn channel_queued(&self) -> usize {
        self.io.channels.values().map(|c| c.queue.len()).sum()
    }

    // ------------------------------------------------------------------
    // Bus dispatch.
    // ------------------------------------------------------------------

    /// Publish an event and drain the bus: every app sees every event
    /// in registration order; events raised while handling one are
    /// processed after it (breadth-first), keeping dispatch
    /// deterministic however deeply apps cascade.
    pub fn publish(&mut self, ctx: &mut Ctx<'_>, ev: ControlEvent) {
        self.bus.push_back(ev);
        if self.dispatching {
            return; // the active drain loop will pick it up
        }
        self.dispatching = true;
        while let Some(ev) = self.bus.pop_front() {
            for app in &mut self.apps {
                let mut cx = AppCtx {
                    sim: ctx,
                    state: &mut self.state,
                    config: &self.cfg,
                    io: &mut self.io,
                    bus: &mut self.bus,
                };
                app.on_event(&mut cx, &ev);
            }
        }
        self.dispatching = false;
    }

    // ------------------------------------------------------------------
    // Wire handlers.
    // ------------------------------------------------------------------

    fn handle_of_msg(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, msg: OfMessage, xid: u32) {
        match msg {
            OfMessage::Hello => {}
            OfMessage::EchoRequest(d) => {
                ctx.conn_send(conn, OfMessage::EchoReply(d).encode(xid));
            }
            OfMessage::FeaturesReply(f) => {
                let dpid = f.datapath_id;
                self.of_dpid.insert(conn, dpid);
                self.io.dpid_of.insert(dpid, conn);
                // Flush messages queued before the channel came up —
                // one multi-message push, as far as credits and stall
                // windows allow (the drain tick finishes the rest).
                let _ = ChannelLayer {
                    io: &mut self.io,
                    state: &mut self.state,
                    config: &self.cfg,
                    sim: ctx,
                }
                .flush(dpid);
                self.publish(ctx, ControlEvent::ChannelUp { dpid });
            }
            OfMessage::PacketIn { in_port, data, .. } => {
                let Some(&dpid) = self.of_dpid.get(&conn) else {
                    return;
                };
                self.publish(
                    ctx,
                    ControlEvent::PacketIn {
                        dpid,
                        in_port,
                        data,
                    },
                );
            }
            _ => {}
        }
    }

    fn handle_vm_msg(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, msg: RfMessage) {
        match msg {
            RfMessage::Booted { dpid } => {
                self.vm_dpid.insert(conn, dpid);
                if let Some(rec) = self.state.switches.get_mut(&dpid) {
                    rec.vm_conn = Some(conn);
                }
                self.publish(ctx, ControlEvent::VmUp { dpid });
            }
            RfMessage::RouteAdd {
                prefix,
                next_hop,
                out_iface,
                metric,
            } => {
                let Some(&dpid) = self.vm_dpid.get(&conn) else {
                    return;
                };
                self.publish(
                    ctx,
                    ControlEvent::Fib(FibChange::Add {
                        dpid,
                        prefix,
                        next_hop,
                        out_iface,
                        metric,
                    }),
                );
            }
            RfMessage::RouteDel { prefix } => {
                let Some(&dpid) = self.vm_dpid.get(&conn) else {
                    return;
                };
                self.publish(ctx, ControlEvent::Fib(FibChange::Del { dpid, prefix }));
            }
            RfMessage::WriteConfigs { .. } => {} // server → VM only
        }
    }
}

impl Agent for ControlPlane {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.listen(self.cfg.of_service);
        ctx.listen(RPC_SERVER_SERVICE);
        ctx.listen(RF_SERVICE);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == CHANNEL_DRAIN_TOKEN {
            // Engine-owned transport chore: replenish channel credits
            // and flush what can move. Apps never see this tick.
            ChannelLayer {
                io: &mut self.io,
                state: &mut self.state,
                config: &self.cfg,
                sim: ctx,
            }
            .drain_all();
            return;
        }
        self.publish(ctx, ControlEvent::Timer { token });
    }

    fn on_stream(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, event: StreamEvent) {
        match event {
            StreamEvent::Opened {
                service,
                initiated_by_us,
                ..
            } => {
                if initiated_by_us {
                    return;
                }
                match service {
                    s if s == RPC_SERVER_SERVICE => self.rpc_conns.push(conn),
                    s if s == RF_SERVICE => {
                        self.vm_readers.insert(conn, RfFrameReader::new());
                    }
                    _ => {
                        // FlowVisor (or a switch directly) on the OF side.
                        self.of_readers.insert(conn, MessageReader::new());
                        ctx.conn_send(conn, OfMessage::Hello.encode(0));
                        let xid = self.io.next_xid();
                        ctx.conn_send(conn, OfMessage::FeaturesRequest.encode(xid));
                    }
                }
            }
            StreamEvent::Data(data) => {
                if self.rpc_conns.contains(&conn) {
                    let (fresh, acks) = self.rpc.feed_bytes(data);
                    for ack in acks {
                        ctx.conn_send(conn, ack);
                    }
                    for req in fresh {
                        self.publish(ctx, ControlEvent::Rpc(req));
                    }
                } else if self.vm_readers.contains_key(&conn) {
                    let msgs = {
                        let r = self.vm_readers.get_mut(&conn).unwrap();
                        r.push(&data);
                        let mut v = Vec::new();
                        while let Some(m) = r.next() {
                            v.push(m);
                        }
                        v
                    };
                    for m in msgs {
                        self.handle_vm_msg(ctx, conn, m);
                    }
                } else if let Some(r) = self.of_readers.get_mut(&conn) {
                    let mut msgs = std::mem::take(&mut self.of_scratch);
                    msgs.clear();
                    r.push_bytes(data);
                    while let Some(Ok(m)) = r.next() {
                        msgs.push(m);
                    }
                    for (m, xid) in msgs.drain(..) {
                        self.handle_of_msg(ctx, conn, m, xid);
                    }
                    self.of_scratch = msgs;
                }
            }
            StreamEvent::Closed => {
                self.rpc_conns.retain(|c| *c != conn);
                self.vm_readers.remove(&conn);
                self.of_readers.remove(&conn);
                if let Some(dpid) = self.of_dpid.remove(&conn) {
                    self.io.dpid_of.remove(&dpid);
                }
                if let Some(dpid) = self.vm_dpid.remove(&conn) {
                    if let Some(rec) = self.state.switches.get_mut(&dpid) {
                        rec.vm_conn = None;
                    }
                }
            }
        }
    }
}
