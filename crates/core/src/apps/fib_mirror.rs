//! FIB → FLOW_MOD mirror: every route a VM's routing stack installs
//! becomes a flow on the mirrored physical switch, with prefix length
//! encoded in flow priority so OF 1.0's single table performs
//! longest-prefix matching.
//!
//! With `fib_batch > 1` the mirror adds a per-switch batching stage:
//! FLOW_MODs coalesce in a per-dpid queue and go out as one
//! multi-message push ([`OfMessage::encode_batch`]) when the queue
//! reaches the batch threshold or the next flush tick fires — cutting
//! controller transport writes on reconvergence bursts and cold
//! starts. Per-switch message order is preserved, so the final FIB is
//! identical to the unbatched run (see `tests/fib_batching.rs`).

use super::bus::{AppCtx, ControlApp, FibChange};
use super::channel::DeferBuffer;
use rf_openflow::{Action, FlowModCommand, OfMatch, OfMessage, OFPP_NONE, OFP_NO_BUFFER};
use rf_wire::MacAddr;
use std::collections::BTreeMap;
use std::time::Duration;

/// Flow priority encoding: longest-prefix-match via OF 1.0 priorities.
/// A /32 lands at `0x1100`, still below [`HOST_FLOW_PRIORITY`].
pub fn route_priority(prefix_len: u8) -> u16 {
    0x1000 + u16::from(prefix_len) * 8
}

/// Host /32 delivery flows outrank every routed prefix.
pub const HOST_FLOW_PRIORITY: u16 = 0x2000;

/// Bus-timer token of the batch flush tick (timer tokens share one
/// namespace across this controller's apps, so the prefix is the
/// app's). The scenario harness also fires it at harvest time so a
/// sub-tick tail batch cannot be left unsent in a short cell.
pub(crate) const FIB_FLUSH_TOKEN: u64 = 0xF1B0_0000_0000_0000;

/// How long a queued FLOW_MOD may wait for the batch to fill before
/// the tick pushes it anyway.
const FIB_FLUSH_TICK: Duration = Duration::from_millis(50);

/// Mirrors VM FIB changes onto the data plane.
#[derive(Clone)]
pub struct FibMirrorApp {
    /// FLOW_MODs queued per switch while a batch fills (`fib_batch > 1`
    /// only; keyed deterministically so flush order never wobbles).
    pending: BTreeMap<u64, Vec<OfMessage>>,
    /// FLOW_MODs a bounded switch channel refused under `Defer`,
    /// retried on the flush tick. That retry loop is what makes
    /// `Defer` lossless: the final FIB is byte-identical to the
    /// unbounded run whenever nothing is dropped.
    deferred: DeferBuffer,
    /// True while a flush tick is scheduled for the *batch* stage (the
    /// deferral backlog arms its own, sharing the same token).
    tick_armed: bool,
}

impl Default for FibMirrorApp {
    fn default() -> Self {
        FibMirrorApp::new()
    }
}

impl FibMirrorApp {
    pub fn new() -> FibMirrorApp {
        FibMirrorApp {
            pending: BTreeMap::new(),
            deferred: DeferBuffer::new(FIB_FLUSH_TOKEN, FIB_FLUSH_TICK),
            tick_armed: false,
        }
    }

    fn arm_tick(&mut self, cx: &mut AppCtx<'_, '_>) {
        if !self.tick_armed {
            cx.schedule(FIB_FLUSH_TICK, FIB_FLUSH_TOKEN);
            self.tick_armed = true;
        }
    }

    /// Hand a FLOW_MOD to the batching stage: immediate send at
    /// `fib_batch <= 1` (paper-faithful), otherwise queue per switch
    /// and flush on the size threshold. A switch with a deferral
    /// backlog keeps accumulating behind it so per-switch order holds.
    fn emit(&mut self, cx: &mut AppCtx<'_, '_>, dpid: u64, fm: OfMessage) {
        let batch = cx.config().fib_batch;
        if batch <= 1 {
            if self.deferred.is_backlogged(dpid) {
                self.deferred.park(cx, dpid, vec![fm]);
                return;
            }
            let outcome = cx.send_of(dpid, fm);
            let _ = self.deferred.absorb(cx, dpid, outcome, "rf.fib_deferred");
            return;
        }
        let q = self.pending.entry(dpid).or_default();
        q.push(fm);
        if q.len() >= batch {
            self.flush_switch(cx, dpid);
        } else {
            self.arm_tick(cx);
        }
    }

    /// Push one switch's backlog + pending batch as a single
    /// multi-message offer. Only counts a batch when the push actually
    /// reaches the wire — a down, stalled or credit-starved channel
    /// queues (or defers) the messages instead.
    fn flush_switch(&mut self, cx: &mut AppCtx<'_, '_>, dpid: u64) {
        let mut msgs = self.deferred.take(dpid);
        msgs.extend(self.pending.remove(&dpid).unwrap_or_default());
        if msgs.is_empty() {
            return;
        }
        let outcome = cx.send_of_batch(dpid, msgs);
        if self.deferred.absorb(cx, dpid, outcome, "rf.fib_deferred") {
            cx.count("rf.fib_batch_flush", 1);
            cx.state.fib_batches += 1;
        }
    }
}

impl ControlApp for FibMirrorApp {
    fn name(&self) -> &'static str {
        "fib-mirror"
    }

    fn on_fib_update(&mut self, cx: &mut AppCtx<'_, '_>, change: &FibChange) {
        match *change {
            FibChange::Add {
                dpid,
                prefix,
                next_hop,
                out_iface,
                metric: _,
            } => {
                if next_hop.is_none() {
                    // Connected routes need no transit flow: traffic to
                    // the hosts behind this switch is delivered by the
                    // learned per-host /32 flows; traffic to the /30
                    // router addresses stays in the VM environment.
                    return;
                }
                let Some(&(peer_dpid, peer_port)) = cx.state.port_peer.get(&(dpid, out_iface))
                else {
                    return; // stale route onto a vanished link
                };
                let fm = OfMessage::FlowMod {
                    of_match: OfMatch::ipv4_dst_prefix(prefix.network(), prefix.prefix_len),
                    cookie: u64::from(u32::from(prefix.network())) << 8
                        | u64::from(prefix.prefix_len),
                    command: FlowModCommand::Add,
                    idle_timeout: 0,
                    hard_timeout: 0,
                    priority: route_priority(prefix.prefix_len),
                    buffer_id: OFP_NO_BUFFER,
                    out_port: OFPP_NONE,
                    flags: 0,
                    actions: vec![
                        Action::SetDlSrc(MacAddr::from_dpid_port(dpid, out_iface)),
                        Action::SetDlDst(MacAddr::from_dpid_port(peer_dpid, peer_port)),
                        Action::output(out_iface),
                    ],
                };
                cx.state.installed.insert(
                    (dpid, u32::from(prefix.network()), prefix.prefix_len),
                    route_priority(prefix.prefix_len),
                );
                cx.state.flows_installed += 1;
                cx.count("rf.flow_add", 1);
                self.emit(cx, dpid, fm);
            }
            FibChange::Del { dpid, prefix } => {
                let key = (dpid, u32::from(prefix.network()), prefix.prefix_len);
                let Some(priority) = cx.state.installed.remove(&key) else {
                    return;
                };
                let fm = OfMessage::FlowMod {
                    of_match: OfMatch::ipv4_dst_prefix(prefix.network(), prefix.prefix_len),
                    cookie: 0,
                    command: FlowModCommand::DeleteStrict,
                    idle_timeout: 0,
                    hard_timeout: 0,
                    priority,
                    buffer_id: OFP_NO_BUFFER,
                    out_port: OFPP_NONE,
                    flags: 0,
                    actions: vec![],
                };
                cx.state.flows_removed += 1;
                cx.count("rf.flow_del", 1);
                self.emit(cx, dpid, fm);
            }
        }
    }

    fn on_timer(&mut self, cx: &mut AppCtx<'_, '_>, token: u64) {
        if !self.deferred.on_tick(token) {
            return; // the buffer shares FIB_FLUSH_TOKEN with the batch stage
        }
        self.tick_armed = false;
        let mut dpids: Vec<u64> = self.pending.keys().copied().collect();
        dpids.extend(self.deferred.dpids());
        for dpid in dpids {
            self.flush_switch(cx, dpid);
        }
    }

    fn on_switch_down(&mut self, _cx: &mut AppCtx<'_, '_>, dpid: u64) {
        // Drop FLOW_MODs still waiting in the dead switch's batch
        // window or deferral backlog: flushing them would only park
        // stale routes in the channel's replay queue, to be installed
        // if a switch ever re-attaches with this dpid.
        self.pending.remove(&dpid);
        self.deferred.forget(dpid);
    }
}
