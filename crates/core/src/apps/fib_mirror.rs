//! FIB → FLOW_MOD mirror: every route a VM's routing stack installs
//! becomes a flow on the mirrored physical switch, with prefix length
//! encoded in flow priority so OF 1.0's single table performs
//! longest-prefix matching.

use super::bus::{AppCtx, ControlApp, FibChange};
use rf_openflow::{Action, FlowModCommand, OfMatch, OfMessage, OFPP_NONE, OFP_NO_BUFFER};
use rf_wire::MacAddr;

/// Flow priority encoding: longest-prefix-match via OF 1.0 priorities.
/// A /32 lands at `0x1100`, still below [`HOST_FLOW_PRIORITY`].
pub fn route_priority(prefix_len: u8) -> u16 {
    0x1000 + u16::from(prefix_len) * 8
}

/// Host /32 delivery flows outrank every routed prefix.
pub const HOST_FLOW_PRIORITY: u16 = 0x2000;

/// Mirrors VM FIB changes onto the data plane.
#[derive(Default)]
pub struct FibMirrorApp {
    _priv: (),
}

impl FibMirrorApp {
    pub fn new() -> FibMirrorApp {
        FibMirrorApp::default()
    }
}

impl ControlApp for FibMirrorApp {
    fn name(&self) -> &'static str {
        "fib-mirror"
    }

    fn on_fib_update(&mut self, cx: &mut AppCtx<'_, '_>, change: &FibChange) {
        match *change {
            FibChange::Add {
                dpid,
                prefix,
                next_hop,
                out_iface,
                metric: _,
            } => {
                if next_hop.is_none() {
                    // Connected routes need no transit flow: traffic to
                    // the hosts behind this switch is delivered by the
                    // learned per-host /32 flows; traffic to the /30
                    // router addresses stays in the VM environment.
                    return;
                }
                let Some(&(peer_dpid, peer_port)) = cx.state.port_peer.get(&(dpid, out_iface))
                else {
                    return; // stale route onto a vanished link
                };
                let fm = OfMessage::FlowMod {
                    of_match: OfMatch::ipv4_dst_prefix(prefix.network(), prefix.prefix_len),
                    cookie: u64::from(u32::from(prefix.network())) << 8
                        | u64::from(prefix.prefix_len),
                    command: FlowModCommand::Add,
                    idle_timeout: 0,
                    hard_timeout: 0,
                    priority: route_priority(prefix.prefix_len),
                    buffer_id: OFP_NO_BUFFER,
                    out_port: OFPP_NONE,
                    flags: 0,
                    actions: vec![
                        Action::SetDlSrc(MacAddr::from_dpid_port(dpid, out_iface)),
                        Action::SetDlDst(MacAddr::from_dpid_port(peer_dpid, peer_port)),
                        Action::output(out_iface),
                    ],
                };
                cx.state.installed.insert(
                    (dpid, u32::from(prefix.network()), prefix.prefix_len),
                    route_priority(prefix.prefix_len),
                );
                cx.state.flows_installed += 1;
                cx.count("rf.flow_add", 1);
                cx.send_of(dpid, fm);
            }
            FibChange::Del { dpid, prefix } => {
                let key = (dpid, u32::from(prefix.network()), prefix.prefix_len);
                let Some(priority) = cx.state.installed.remove(&key) else {
                    return;
                };
                let fm = OfMessage::FlowMod {
                    of_match: OfMatch::ipv4_dst_prefix(prefix.network(), prefix.prefix_len),
                    cookie: 0,
                    command: FlowModCommand::DeleteStrict,
                    idle_timeout: 0,
                    hard_timeout: 0,
                    priority,
                    buffer_id: OFP_NO_BUFFER,
                    out_port: OFPP_NONE,
                    flags: 0,
                    actions: vec![],
                };
                cx.state.flows_removed += 1;
                cx.count("rf.flow_del", 1);
                cx.send_of(dpid, fm);
            }
        }
    }
}
