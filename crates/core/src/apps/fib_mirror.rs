//! FIB → FLOW_MOD mirror: every route a VM's routing stack installs
//! becomes a flow on the mirrored physical switch, with prefix length
//! encoded in flow priority so OF 1.0's single table performs
//! longest-prefix matching.
//!
//! With `fib_batch > 1` the mirror adds a per-switch batching stage:
//! FLOW_MODs coalesce in a per-dpid queue and go out as one
//! multi-message push ([`OfMessage::encode_batch`]) when the queue
//! reaches the batch threshold or the next flush tick fires — cutting
//! controller transport writes on reconvergence bursts and cold
//! starts. Per-switch message order is preserved, so the final FIB is
//! identical to the unbatched run (see `tests/fib_batching.rs`).

use super::bus::{AppCtx, ControlApp, FibChange};
use rf_openflow::{Action, FlowModCommand, OfMatch, OfMessage, OFPP_NONE, OFP_NO_BUFFER};
use rf_wire::MacAddr;
use std::collections::BTreeMap;
use std::time::Duration;

/// Flow priority encoding: longest-prefix-match via OF 1.0 priorities.
/// A /32 lands at `0x1100`, still below [`HOST_FLOW_PRIORITY`].
pub fn route_priority(prefix_len: u8) -> u16 {
    0x1000 + u16::from(prefix_len) * 8
}

/// Host /32 delivery flows outrank every routed prefix.
pub const HOST_FLOW_PRIORITY: u16 = 0x2000;

/// Bus-timer token of the batch flush tick (timer tokens share one
/// namespace across this controller's apps, so the prefix is the
/// app's).
const FIB_FLUSH_TOKEN: u64 = 0xF1B0_0000_0000_0000;

/// How long a queued FLOW_MOD may wait for the batch to fill before
/// the tick pushes it anyway.
const FIB_FLUSH_TICK: Duration = Duration::from_millis(50);

/// Mirrors VM FIB changes onto the data plane.
#[derive(Default)]
pub struct FibMirrorApp {
    /// FLOW_MODs queued per switch while a batch fills (`fib_batch > 1`
    /// only; keyed deterministically so flush order never wobbles).
    pending: BTreeMap<u64, Vec<OfMessage>>,
    /// True while a flush tick is scheduled.
    tick_armed: bool,
}

impl FibMirrorApp {
    pub fn new() -> FibMirrorApp {
        FibMirrorApp::default()
    }

    /// Hand a FLOW_MOD to the batching stage: immediate send at
    /// `fib_batch <= 1` (paper-faithful), otherwise queue per switch
    /// and flush on the size threshold.
    fn emit(&mut self, cx: &mut AppCtx<'_, '_>, dpid: u64, fm: OfMessage) {
        let batch = cx.config().fib_batch;
        if batch <= 1 {
            cx.send_of(dpid, fm);
            return;
        }
        let q = self.pending.entry(dpid).or_default();
        q.push(fm);
        if q.len() >= batch {
            self.flush_switch(cx, dpid);
        } else if !self.tick_armed {
            cx.schedule(FIB_FLUSH_TICK, FIB_FLUSH_TOKEN);
            self.tick_armed = true;
        }
    }

    /// Push one switch's queue as a single multi-message write. Only
    /// counts a batch when the push actually reaches the wire — a
    /// down channel queues the messages for the engine's channel-up
    /// replay instead.
    fn flush_switch(&mut self, cx: &mut AppCtx<'_, '_>, dpid: u64) {
        let Some(msgs) = self.pending.remove(&dpid) else {
            return;
        };
        if cx.send_of_batch(dpid, msgs) {
            cx.count("rf.fib_batch_flush", 1);
            cx.state.fib_batches += 1;
        }
    }
}

impl ControlApp for FibMirrorApp {
    fn name(&self) -> &'static str {
        "fib-mirror"
    }

    fn on_fib_update(&mut self, cx: &mut AppCtx<'_, '_>, change: &FibChange) {
        match *change {
            FibChange::Add {
                dpid,
                prefix,
                next_hop,
                out_iface,
                metric: _,
            } => {
                if next_hop.is_none() {
                    // Connected routes need no transit flow: traffic to
                    // the hosts behind this switch is delivered by the
                    // learned per-host /32 flows; traffic to the /30
                    // router addresses stays in the VM environment.
                    return;
                }
                let Some(&(peer_dpid, peer_port)) = cx.state.port_peer.get(&(dpid, out_iface))
                else {
                    return; // stale route onto a vanished link
                };
                let fm = OfMessage::FlowMod {
                    of_match: OfMatch::ipv4_dst_prefix(prefix.network(), prefix.prefix_len),
                    cookie: u64::from(u32::from(prefix.network())) << 8
                        | u64::from(prefix.prefix_len),
                    command: FlowModCommand::Add,
                    idle_timeout: 0,
                    hard_timeout: 0,
                    priority: route_priority(prefix.prefix_len),
                    buffer_id: OFP_NO_BUFFER,
                    out_port: OFPP_NONE,
                    flags: 0,
                    actions: vec![
                        Action::SetDlSrc(MacAddr::from_dpid_port(dpid, out_iface)),
                        Action::SetDlDst(MacAddr::from_dpid_port(peer_dpid, peer_port)),
                        Action::output(out_iface),
                    ],
                };
                cx.state.installed.insert(
                    (dpid, u32::from(prefix.network()), prefix.prefix_len),
                    route_priority(prefix.prefix_len),
                );
                cx.state.flows_installed += 1;
                cx.count("rf.flow_add", 1);
                self.emit(cx, dpid, fm);
            }
            FibChange::Del { dpid, prefix } => {
                let key = (dpid, u32::from(prefix.network()), prefix.prefix_len);
                let Some(priority) = cx.state.installed.remove(&key) else {
                    return;
                };
                let fm = OfMessage::FlowMod {
                    of_match: OfMatch::ipv4_dst_prefix(prefix.network(), prefix.prefix_len),
                    cookie: 0,
                    command: FlowModCommand::DeleteStrict,
                    idle_timeout: 0,
                    hard_timeout: 0,
                    priority,
                    buffer_id: OFP_NO_BUFFER,
                    out_port: OFPP_NONE,
                    flags: 0,
                    actions: vec![],
                };
                cx.state.flows_removed += 1;
                cx.count("rf.flow_del", 1);
                self.emit(cx, dpid, fm);
            }
        }
    }

    fn on_timer(&mut self, cx: &mut AppCtx<'_, '_>, token: u64) {
        if token != FIB_FLUSH_TOKEN {
            return;
        }
        self.tick_armed = false;
        let dpids: Vec<u64> = self.pending.keys().copied().collect();
        for dpid in dpids {
            self.flush_switch(cx, dpid);
        }
    }

    fn on_switch_down(&mut self, _cx: &mut AppCtx<'_, '_>, dpid: u64) {
        // Drop FLOW_MODs still waiting in the dead switch's batch
        // window: flushing them would only park stale routes in the
        // engine's channel-up replay queue, to be installed if a
        // switch ever re-attaches with this dpid.
        self.pending.remove(&dpid);
    }
}
