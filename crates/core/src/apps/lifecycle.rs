//! VM / Quagga lifecycle: provisions one container per detected switch,
//! mirrors physical links in the virtual interconnect, and (re)writes
//! each VM's routing configuration files.

use super::bus::{AppCtx, ControlApp, ControlEvent, LinkChange, SwitchRec};
use super::channel::VmSendOutcome;
use rf_routed::config::VmRouterConfig;
use rf_vnet::rfproto::RfMessage;
use rf_vnet::vm::VmAgent;
use std::collections::{BTreeSet, VecDeque};

/// Paper §2: "the RPC server creates a VM with an ID identical to the
/// switch ID and the number of ports equivalent to the switch ports."
/// Creation is queued and at most `provision_width` containers are in
/// flight at once. The paper-faithful default of 1 reproduces the
/// serial rftest pipeline — what makes automatic configuration time
/// grow with switch count in Fig. 3; wider pipelines overlap the
/// create/boot latency and flatten that curve. Completion is tracked
/// on the event bus: each [`ControlEvent::VmUp`] retires its dpid from
/// the in-flight set and tops the pipeline back up, so there is no
/// lockstep sequencing anywhere.
#[derive(Clone)]
pub struct VmLifecycleApp {
    vm_queue: VecDeque<(u64, u16)>,
    /// Dpids whose VM was spawned but has not reported `VmUp` yet.
    in_flight: BTreeSet<u64>,
}

impl VmLifecycleApp {
    pub fn new() -> VmLifecycleApp {
        VmLifecycleApp {
            vm_queue: VecDeque::new(),
            in_flight: BTreeSet::new(),
        }
    }

    /// Provision queued VMs until the pipeline holds `provision_width`
    /// in-flight creations (FIFO, so spawn order — and therefore the
    /// whole run — stays deterministic at any width).
    fn fill_pipeline(&mut self, cx: &mut AppCtx<'_, '_>) {
        let width = cx.config().provision_width.max(1);
        while self.in_flight.len() < width {
            let Some((dpid, num_ports)) = self.vm_queue.pop_front() else {
                return;
            };
            let controller = cx.controller_id();
            let boot_delay = cx.config().vm_boot_delay;
            let vm = cx.spawn_agent(
                &format!("vm-{dpid:x}"),
                Box::new(VmAgent::new(dpid, controller, boot_delay)),
            );
            cx.trace(
                "rf.vm_create",
                format!(
                    "dpid {dpid:#x} ({num_ports} ports, {} in flight)",
                    self.in_flight.len() + 1
                ),
            );
            self.in_flight.insert(dpid);
            cx.state.switches.insert(
                dpid,
                SwitchRec {
                    num_ports,
                    vm: Some(vm),
                    vm_conn: None,
                    configured_at: None,
                },
            );
            cx.raise(ControlEvent::VmSpawned { dpid });
        }
    }

    /// Regenerate and push this VM's configuration files — "the RPC
    /// server writes routing configuration files (e.g. ospf.conf,
    /// zebra.conf, bgp.conf) using the information present in the
    /// configuration message" (§2).
    fn push_configs(&self, cx: &mut AppCtx<'_, '_>, dpid: u64) {
        let Some(rec) = cx.state.switches.get(&dpid) else {
            return;
        };
        if rec.vm_conn.is_none() {
            return; // VM not booted yet; configs sent on VmUp
        }
        let ifaces = cx.state.vm_interfaces(cx.config, dpid);
        let cfg = VmRouterConfig::generate_with_timers(
            dpid,
            &ifaces,
            cx.config().ospf_hello,
            cx.config().ospf_dead,
        );
        let (zebra, ospf, bgp) = cfg.render_all();
        match cx.send_to_vm(dpid, RfMessage::WriteConfigs { zebra, ospf, bgp }) {
            VmSendOutcome::Delivered => cx.count("rf.configs_written", 1),
            // Unreachable given the guard above, but the outcome is
            // consumed explicitly: a deferred config push is re-sent by
            // the next `VmUp` (the engine re-raises it on reconnect).
            VmSendOutcome::Deferred => cx.count("rf.configs_deferred", 1),
        }
    }
}

impl Default for VmLifecycleApp {
    fn default() -> Self {
        VmLifecycleApp::new()
    }
}

impl ControlApp for VmLifecycleApp {
    fn name(&self) -> &'static str {
        "vm-lifecycle"
    }

    fn on_switch_up(&mut self, cx: &mut AppCtx<'_, '_>, dpid: u64, num_ports: u16) {
        if cx.state.switches.contains_key(&dpid) || self.vm_queue.iter().any(|(d, _)| *d == dpid) {
            return;
        }
        self.vm_queue.push_back((dpid, num_ports));
        self.fill_pipeline(cx);
    }

    fn on_switch_down(&mut self, cx: &mut AppCtx<'_, '_>, dpid: u64) {
        if let Some(rec) = cx.state.switches.remove(&dpid) {
            if let Some(vm) = rec.vm {
                cx.kill_agent(vm);
            }
        }
        self.vm_queue.retain(|(d, _)| *d != dpid);
        if self.in_flight.remove(&dpid) {
            self.fill_pipeline(cx);
        }
    }

    fn on_link_event(&mut self, cx: &mut AppCtx<'_, '_>, change: &LinkChange) {
        match *change {
            LinkChange::Up { a, b, .. } => {
                let (Some(va), Some(vb)) = (
                    cx.state.switches.get(&a.0).and_then(|s| s.vm),
                    cx.state.switches.get(&b.0).and_then(|s| s.vm),
                ) else {
                    return; // bridge only raises Up once both exist
                };
                // Mirror the physical link in the virtual environment.
                let profile = cx.config().vm_link_profile;
                let sim_link = cx.add_sim_link((va, u32::from(a.1)), (vb, u32::from(b.1)), profile);
                if let Some(rec) = cx.state.links.iter_mut().find(|l| l.a == a && l.b == b) {
                    rec.sim_link = Some(sim_link);
                }
                cx.trace(
                    "rf.link_configured",
                    format!("{:#x}:{} <-> {:#x}:{}", a.0, a.1, b.0, b.1),
                );
                // Rewrite both VMs' configuration files.
                self.push_configs(cx, a.0);
                self.push_configs(cx, b.0);
            }
            LinkChange::Down { a, b, sim_link } => {
                if let Some(l) = sim_link {
                    cx.remove_sim_link(l);
                }
                self.push_configs(cx, a.0);
                self.push_configs(cx, b.0);
            }
            LinkChange::PortStatus { .. } => {
                // Port flaps are handled by OSPF's dead-interval on the
                // mirrored interface; nothing to do here.
            }
        }
    }

    fn on_vm_up(&mut self, cx: &mut AppCtx<'_, '_>, dpid: u64) {
        let now = cx.now();
        let newly_green = cx.state.switches.get_mut(&dpid).is_some_and(|rec| {
            rec.configured_at.is_none() && {
                rec.configured_at = Some(now);
                true
            }
        });
        if newly_green {
            // The GUI's red → green transition.
            cx.trace("rf.switch_configured", format!("dpid {dpid:#x}"));
        }
        self.push_configs(cx, dpid);
        // The creation pipeline retires this dpid and tops back up.
        if self.in_flight.remove(&dpid) {
            self.fill_pipeline(cx);
        }
    }
}
