//! Composable control-plane applications.
//!
//! The controller side of the framework is an event pipeline: the
//! [`engine::ControlPlane`] agent owns the wire I/O and publishes
//! [`bus::ControlEvent`]s to registered [`bus::ControlApp`]s. The four
//! standard apps reproduce the paper's RF-controller:
//!
//! | app | subscribes to | does |
//! |-----|---------------|------|
//! | [`DiscoveryBridgeApp`] | `Rpc`, `VmSpawned` | refines raw topology-controller RPC into typed switch/link events; owns link records |
//! | [`VmLifecycleApp`] | `SwitchUp/Down`, `Link`, `VmUp` | provisions one VM per switch (serially), mirrors links in the virtual interconnect, writes Quagga configs |
//! | [`FibMirrorApp`] | `Fib` | turns VM FIB changes into FLOW_MODs with LPM priority encoding |
//! | [`ArpProxyApp`] | `PacketIn` | answers gateway ARPs, learns hosts, installs /32 delivery flows |
//!
//! Anything else — a flow auditor, a latency monitor, an alternative
//! route-to-flow policy — registers alongside them with
//! [`engine::ControlPlane::register`] and sees the same event stream.
//!
//! Everything the apps send toward a switch passes through the
//! bounded, credit-metered [`channel`] layer: per-dpid queues with a
//! capacity knob, an explicit [`OverflowPolicy`], stall-fault support
//! and full deferral/drop accounting — so a slow switch exerts
//! backpressure instead of absorbing unbounded state.

pub mod arp_proxy;
pub mod bus;
pub mod channel;
pub mod discovery_bridge;
pub mod engine;
pub mod fib_mirror;
pub mod lifecycle;

pub use arp_proxy::ArpProxyApp;
pub use bus::{
    AppCtx, ControlApp, ControlEvent, ControlState, FibChange, LinkChange, LinkRec, SwitchRec,
};
pub use channel::{ChannelStallWindow, OverflowPolicy, SendOutcome, VmSendOutcome};
pub use discovery_bridge::DiscoveryBridgeApp;
pub use engine::ControlPlane;
pub use fib_mirror::{route_priority, FibMirrorApp, HOST_FLOW_PRIORITY};
pub use lifecycle::VmLifecycleApp;
