//! One-call assembly of the paper's Fig. 2 deployment.
//!
//! ```text
//!   switches ──> FlowVisor ──> topology controller ──> RPC client
//!                    │                                     │
//!                    └────────> RF-controller  <── RPC ────┘
//!                                (RPC server, VMs, RouteFlow)
//! ```

use crate::rfcontroller::{HostPortConfig, RfController, RfControllerConfig};
use rf_discovery::{TopologyController, TopologyControllerConfig};
use rf_flowvisor::{FlowVisor, FlowVisorConfig, SlicePolicy};
use rf_rpc::{RpcClientAgent, RpcClientConfig};
use rf_sim::{AgentId, LinkProfile, Sim, SimConfig, Time};
use rf_switch::{OpenFlowSwitch, SwitchConfig};
use rf_topo::Topology;
use rf_wire::Ipv4Cidr;
use std::net::Ipv4Addr;
use std::time::Duration;

/// Where to attach a host (edge configuration, declared up front).
#[derive(Clone, Debug)]
pub struct HostAttachment {
    /// Topology node the host hangs off.
    pub node: usize,
    /// The host subnet (a /24 by convention).
    pub subnet: Ipv4Cidr,
}

/// A reserved host port, returned to the caller for wiring host agents.
#[derive(Clone, Debug)]
pub struct HostSlot {
    pub node: usize,
    pub switch: AgentId,
    pub port: u16,
    pub subnet: Ipv4Cidr,
    /// The VM-side gateway address (first host address of the subnet).
    pub gateway: Ipv4Addr,
    /// A free address for the host itself (second host address).
    pub host_ip: Ipv4Addr,
}

/// Deployment parameters.
#[derive(Clone)]
pub struct DeploymentConfig {
    pub topology: Topology,
    pub seed: u64,
    /// Administrator IP range for the virtual environment.
    pub ip_range: Ipv4Cidr,
    /// LLDP probe period.
    pub probe_interval: Duration,
    /// Simulated VM provisioning time.
    pub vm_boot_delay: Duration,
    /// Physical link profile (also used for the virtual interconnect).
    pub link_profile: LinkProfile,
    /// Put FlowVisor between switches and controllers (the paper's
    /// layout). `false` wires both controllers directly into every
    /// switch (OVS multi-controller mode) for the A4 ablation.
    pub use_flowvisor: bool,
    /// Host attachment points.
    pub hosts: Vec<HostAttachment>,
    /// OSPF hello/dead intervals written into every ospfd.conf.
    pub ospf_hello: u16,
    pub ospf_dead: u16,
    /// Trace verbosity.
    pub trace_level: rf_sim::TraceLevel,
}

impl DeploymentConfig {
    pub fn new(topology: Topology) -> DeploymentConfig {
        DeploymentConfig {
            topology,
            seed: 0xC0FFEE,
            ip_range: Ipv4Cidr::new(Ipv4Addr::new(172, 31, 0, 0), 16),
            probe_interval: Duration::from_secs(1),
            vm_boot_delay: Duration::from_secs(1),
            link_profile: LinkProfile::default(),
            use_flowvisor: true,
            hosts: Vec::new(),
            ospf_hello: 10,
            ospf_dead: 40,
            trace_level: rf_sim::TraceLevel::Info,
        }
    }

    pub fn with_host(mut self, node: usize, subnet: &str) -> Self {
        self.hosts.push(HostAttachment {
            node,
            subnet: subnet.parse().expect("valid subnet"),
        });
        self
    }
}

/// The assembled world.
pub struct Deployment {
    pub sim: Sim,
    pub rf_ctrl: AgentId,
    pub topo_ctrl: AgentId,
    pub rpc_client: AgentId,
    pub flowvisor: Option<AgentId>,
    /// Switch agents indexed by topology node.
    pub switches: Vec<AgentId>,
    /// Reserved host ports (same order as `cfg.hosts`).
    pub host_slots: Vec<HostSlot>,
    /// Number of switches in the topology.
    pub expected_switches: usize,
}

impl Deployment {
    /// Build the whole Fig. 2 stack on `cfg.topology`.
    pub fn build(cfg: DeploymentConfig) -> Deployment {
        let n = cfg.topology.node_count();
        let mut sim = Sim::new(SimConfig {
            seed: cfg.seed,
            trace_level: cfg.trace_level,
            max_time: None,
        });

        // Port plan: edges first, then host ports.
        let mut next_port: Vec<u16> = vec![1; n];
        let mut edge_ports: Vec<(usize, u16, usize, u16)> = Vec::new();
        for e in cfg.topology.edges() {
            let pa = next_port[e.a];
            next_port[e.a] += 1;
            let pb = next_port[e.b];
            next_port[e.b] += 1;
            edge_ports.push((e.a, pa, e.b, pb));
        }
        let mut host_port_cfgs = Vec::new();
        let mut host_plan = Vec::new(); // (node, port, subnet, gw, host_ip)
        for h in &cfg.hosts {
            let port = next_port[h.node];
            next_port[h.node] += 1;
            let gw = h.subnet.nth(1).expect("subnet too small");
            let host_ip = h.subnet.nth(2).expect("subnet too small");
            host_port_cfgs.push(HostPortConfig {
                dpid: (h.node + 1) as u64,
                port,
                subnet: h.subnet,
                gateway: gw,
            });
            host_plan.push((h.node, port, h.subnet, gw, host_ip));
        }

        // Controllers.
        let rf_ctrl = sim.add_agent(
            "rf-controller",
            Box::new(RfController::new(RfControllerConfig {
                of_service: 6642,
                vm_boot_delay: cfg.vm_boot_delay,
                vm_link_profile: cfg.link_profile,
                host_ports: host_port_cfgs,
            })),
        );
        let rpc_client = sim.add_agent(
            "rpc-client",
            Box::new(RpcClientAgent::new(RpcClientConfig::new(rf_ctrl))),
        );
        let topo_ctrl = sim.add_agent(
            "topology-controller",
            Box::new(TopologyController::new(
                TopologyControllerConfig {
                    probe_interval: cfg.probe_interval,
                    link_ttl: cfg.probe_interval * 3,
                    ..TopologyControllerConfig::new(cfg.ip_range)
                }
                .with_rpc_client(rpc_client),
            )),
        );
        let flowvisor = if cfg.use_flowvisor {
            Some(sim.add_agent(
                "flowvisor",
                Box::new(FlowVisor::new(FlowVisorConfig::new(vec![
                    SlicePolicy::lldp_slice("topology", topo_ctrl, 6641),
                    SlicePolicy::ip_slice("routeflow", rf_ctrl, 6642),
                ]))),
            ))
        } else {
            None
        };

        // Switches.
        let mut switches = Vec::with_capacity(n);
        for i in 0..n {
            let dpid = (i + 1) as u64;
            let num_ports = next_port[i] - 1;
            let swcfg = match flowvisor {
                Some(fv) => SwitchConfig::new(dpid, num_ports, fv),
                None => SwitchConfig::new(dpid, num_ports, topo_ctrl)
                    .with_service(6641)
                    .add_controller(rf_ctrl, 6642),
            };
            let name = cfg.topology.node(i).name.clone();
            switches.push(sim.add_agent(&name, Box::new(OpenFlowSwitch::new(swcfg))));
        }

        // Physical links.
        for (a, pa, b, pb) in edge_ports {
            sim.add_link(
                (switches[a], u32::from(pa)),
                (switches[b], u32::from(pb)),
                cfg.link_profile,
            );
        }

        let host_slots = host_plan
            .into_iter()
            .map(|(node, port, subnet, gateway, host_ip)| HostSlot {
                node,
                switch: switches[node],
                port,
                subnet,
                gateway,
                host_ip,
            })
            .collect();

        Deployment {
            sim,
            rf_ctrl,
            topo_ctrl,
            rpc_client,
            flowvisor,
            switches,
            host_slots,
            expected_switches: n,
        }
    }

    /// Switches whose VM is up (green in the paper's GUI).
    pub fn configured_switches(&self) -> usize {
        self.sim
            .agent_as::<RfController>(self.rf_ctrl)
            .map(|c| c.configured_switches())
            .unwrap_or(0)
    }

    /// When the last switch turned green, if all have.
    pub fn all_configured_at(&self) -> Option<Time> {
        self.sim
            .agent_as::<RfController>(self.rf_ctrl)?
            .all_configured_at(self.expected_switches)
    }

    /// Run until every switch is configured (or `deadline`); returns
    /// the configuration completion time.
    pub fn run_until_configured(&mut self, deadline: Time) -> Option<Time> {
        // Step in 100 ms slices so we can observe the condition.
        let mut t = self.sim.now();
        while t < deadline {
            t = (t + Duration::from_millis(100)).min(deadline);
            self.sim.run_until(t);
            if let Some(done) = self.all_configured_at() {
                return Some(done);
            }
        }
        None
    }

    /// Total flow entries across all switches (diagnostics).
    pub fn total_flows(&self) -> usize {
        self.switches
            .iter()
            .filter_map(|&s| self.sim.agent_as::<OpenFlowSwitch>(s))
            .map(|s| s.flow_count())
            .sum()
    }
}
