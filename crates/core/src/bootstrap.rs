//! Deprecated compatibility shim over [`crate::scenario`].
//!
//! The one-call `Deployment::build` assembly predates the fluent
//! [`crate::scenario::ScenarioBuilder`]; the builder is now the single
//! build path (checkpoint/fork capture it, see
//! [`crate::scenario::Scenario::snapshot`]), and everything here
//! delegates to it. New code should write
//! `Scenario::on(topo).fast_timers().with_host(0, "10.1.0.0/24").start()`.
//!
//! Migration map:
//!
//! | legacy                        | replacement                              |
//! |-------------------------------|------------------------------------------|
//! | `DeploymentConfig`            | [`crate::scenario::ScenarioConfig`]      |
//! | `Deployment::build(cfg)`      | `ScenarioBuilder::from_config(cfg).start()` |
//! | `Deployment` field access     | the same fields on [`crate::scenario::Scenario`] |

use rf_sim::{AgentId, Sim, Time};

pub use crate::scenario::{HostAttachment, HostSlot};

/// Renamed to [`crate::scenario::ScenarioConfig`].
#[deprecated(note = "renamed to rf_core::scenario::ScenarioConfig")]
pub type DeploymentConfig = crate::scenario::ScenarioConfig;

/// The assembled world (legacy shape; [`crate::scenario::Scenario`] is
/// the richer handle, and the only one snapshot/fork works on).
#[deprecated(note = "use rf_core::scenario::Scenario (ScenarioBuilder::start)")]
pub struct Deployment {
    pub sim: Sim,
    pub rf_ctrl: AgentId,
    pub topo_ctrl: AgentId,
    pub rpc_client: AgentId,
    pub flowvisor: Option<AgentId>,
    /// Switch agents indexed by topology node.
    pub switches: Vec<AgentId>,
    /// Reserved host ports (same order as `cfg.hosts`).
    pub host_slots: Vec<HostSlot>,
    /// Number of switches in the topology.
    pub expected_switches: usize,
}

#[allow(deprecated)]
impl Deployment {
    /// Build the whole Fig. 2 stack on `cfg.topology`.
    pub fn build(cfg: crate::scenario::ScenarioConfig) -> Deployment {
        crate::scenario::ScenarioBuilder::from_config(cfg)
            .start()
            .into_deployment()
    }

    /// Switches whose VM is up (green in the paper's GUI).
    pub fn configured_switches(&self) -> usize {
        crate::scenario::configured_switches(&self.sim, self.rf_ctrl)
    }

    /// When the last switch turned green, if all have.
    pub fn all_configured_at(&self) -> Option<Time> {
        crate::scenario::all_configured_at(&self.sim, self.rf_ctrl, self.expected_switches)
    }

    /// Run until every switch is configured (or `deadline`); returns
    /// the configuration completion time.
    pub fn run_until_configured(&mut self, deadline: Time) -> Option<Time> {
        crate::scenario::run_until_configured(
            &mut self.sim,
            self.rf_ctrl,
            self.expected_switches,
            deadline,
        )
    }

    /// Total flow entries across all switches (diagnostics).
    pub fn total_flows(&self) -> usize {
        crate::scenario::total_flows(&self.sim, &self.switches)
    }
}
