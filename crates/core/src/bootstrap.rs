//! One-call assembly of the paper's Fig. 2 deployment — now a thin
//! compatibility wrapper over [`crate::scenario::ScenarioBuilder`].
//!
//! ```text
//!   switches ──> FlowVisor ──> topology controller ──> RPC client
//!                    │                                     │
//!                    └────────> RF-controller  <── RPC ────┘
//!                                (RPC server, VMs, RouteFlow)
//! ```
//!
//! New code should prefer the fluent builder:
//! `Scenario::on(topo).fast_timers().with_host(0, "10.1.0.0/24").start()`.

use crate::scenario::ScenarioBuilder;
use rf_sim::{AgentId, LinkProfile, Sim, Time};
use rf_topo::Topology;
use rf_wire::Ipv4Cidr;
use std::net::Ipv4Addr;
use std::time::Duration;

/// Where to attach a host (edge configuration, declared up front).
#[derive(Clone, Debug)]
pub struct HostAttachment {
    /// Topology node the host hangs off.
    pub node: usize,
    /// The host subnet (a /24 by convention).
    pub subnet: Ipv4Cidr,
}

/// A reserved host port, returned to the caller for wiring host agents.
#[derive(Clone, Debug)]
pub struct HostSlot {
    pub node: usize,
    pub switch: AgentId,
    pub port: u16,
    pub subnet: Ipv4Cidr,
    /// The VM-side gateway address (first host address of the subnet).
    pub gateway: Ipv4Addr,
    /// A free address for the host itself (second host address).
    pub host_ip: Ipv4Addr,
}

/// Deployment parameters.
#[derive(Clone)]
pub struct DeploymentConfig {
    pub topology: Topology,
    pub seed: u64,
    /// Administrator IP range for the virtual environment.
    pub ip_range: Ipv4Cidr,
    /// LLDP probe period.
    pub probe_interval: Duration,
    /// Simulated VM provisioning time.
    pub vm_boot_delay: Duration,
    /// Physical link profile (also used for the virtual interconnect).
    pub link_profile: LinkProfile,
    /// Put FlowVisor between switches and controllers (the paper's
    /// layout). `false` wires both controllers directly into every
    /// switch (OVS multi-controller mode) for the A4 ablation.
    pub use_flowvisor: bool,
    /// Host attachment points.
    pub hosts: Vec<HostAttachment>,
    /// OSPF hello/dead intervals written into every ospfd.conf.
    pub ospf_hello: u16,
    pub ospf_dead: u16,
    /// VM provisioning pipeline width (1 = the paper's serial rftest
    /// behaviour).
    pub provision_width: usize,
    /// FIB-mirror FLOW_MOD batch size per switch (1 = unbatched).
    pub fib_batch: usize,
    /// Switch-channel send-queue bound (`None` = unbounded, the
    /// paper's fire-and-forget behaviour).
    pub channel_capacity: Option<usize>,
    /// What a full bounded channel does with overflow.
    pub overflow: crate::apps::OverflowPolicy,
    /// Trace verbosity.
    pub trace_level: rf_sim::TraceLevel,
}

impl DeploymentConfig {
    pub fn new(topology: Topology) -> DeploymentConfig {
        DeploymentConfig {
            topology,
            seed: 0xC0FFEE,
            ip_range: Ipv4Cidr::new(Ipv4Addr::new(172, 31, 0, 0), 16),
            probe_interval: Duration::from_secs(1),
            vm_boot_delay: Duration::from_secs(1),
            link_profile: LinkProfile::default(),
            use_flowvisor: true,
            hosts: Vec::new(),
            ospf_hello: 10,
            ospf_dead: 40,
            provision_width: 1,
            fib_batch: 1,
            channel_capacity: None,
            overflow: crate::apps::OverflowPolicy::Defer,
            trace_level: rf_sim::TraceLevel::Info,
        }
    }

    pub fn with_host(mut self, node: usize, subnet: &str) -> Self {
        self.hosts.push(HostAttachment {
            node,
            subnet: subnet.parse().expect("valid subnet"),
        });
        self
    }
}

/// The assembled world (legacy shape; [`crate::scenario::Scenario`] is
/// the richer handle).
pub struct Deployment {
    pub sim: Sim,
    pub rf_ctrl: AgentId,
    pub topo_ctrl: AgentId,
    pub rpc_client: AgentId,
    pub flowvisor: Option<AgentId>,
    /// Switch agents indexed by topology node.
    pub switches: Vec<AgentId>,
    /// Reserved host ports (same order as `cfg.hosts`).
    pub host_slots: Vec<HostSlot>,
    /// Number of switches in the topology.
    pub expected_switches: usize,
}

impl Deployment {
    /// Build the whole Fig. 2 stack on `cfg.topology`.
    pub fn build(cfg: DeploymentConfig) -> Deployment {
        ScenarioBuilder::from_deployment_config(cfg)
            .start()
            .into_deployment()
    }

    /// Switches whose VM is up (green in the paper's GUI).
    pub fn configured_switches(&self) -> usize {
        crate::scenario::configured_switches(&self.sim, self.rf_ctrl)
    }

    /// When the last switch turned green, if all have.
    pub fn all_configured_at(&self) -> Option<Time> {
        crate::scenario::all_configured_at(&self.sim, self.rf_ctrl, self.expected_switches)
    }

    /// Run until every switch is configured (or `deadline`); returns
    /// the configuration completion time.
    pub fn run_until_configured(&mut self, deadline: Time) -> Option<Time> {
        crate::scenario::run_until_configured(
            &mut self.sim,
            self.rf_ctrl,
            self.expected_switches,
            deadline,
        )
    }

    /// Total flow entries across all switches (diagnostics).
    pub fn total_flows(&self) -> usize {
        crate::scenario::total_flows(&self.sim, &self.switches)
    }
}
