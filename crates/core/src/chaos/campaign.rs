//! The chaos campaign runner: N seeded schedules × M topologies,
//! fanned over worker threads, every cell invariant-checked, every
//! violation shrunk to a minimal repro.
//!
//! A campaign is an experiment like any sweep — same byte-stable
//! [`MatrixReport`], same thread-count independence — with two
//! additions: per-cell `chaos_*`/`inv_*` metrics from the invariant
//! checker, and a [`ReproCase`] artifact per violating cell whose
//! minimized schedule replays the violation deterministically.

use super::invariants::{check_invariants, InvariantContext, InvariantViolation};
use super::shrink::shrink_schedule;
use super::{fault_from_json, fault_to_json, ChaosSpec};
use crate::json::Json;
use crate::scenario::matrix::{finish_cell, forkable};
use crate::scenario::{
    CellRecord, Fault, FaultSchedule, MatrixCell, MatrixKnob, MatrixReport, MatrixSpec, Scenario,
    ScenarioMatrix, Snapshot, SnapshotError,
};
use rf_sim::Time;
use rf_topo::Topology;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// A campaign definition: which topologies, how many seeded schedules
/// on each, what the schedules may contain, and the per-cell run
/// policy.
#[derive(Clone, Debug)]
pub struct ChaosCampaign {
    /// Topology names (any [`rf_topo::TopoSpec`] spelling, including
    /// the corpus WANs).
    pub topologies: Vec<String>,
    /// Seeded schedules drawn per topology.
    pub schedules_per_topology: usize,
    /// Campaign master seed; every cell's seed is a deterministic mix
    /// of it with the topology and schedule indices.
    pub seed: u64,
    /// Schedule-shape template. Its `seed` is overridden per cell and
    /// its `protect` list is extended with each topology's standard
    /// workload endpoints (the farthest pair), so the probe traffic
    /// always has two live endpoints to speak between.
    pub template: ChaosSpec,
    /// Scenario parameters for every cell.
    pub knob: MatrixKnob,
    pub configure_deadline: Duration,
    /// Slack after the last fault heals; must comfortably cover an
    /// OSPF dead interval plus reconvergence.
    pub post_fault_window: Duration,
    pub settle: Duration,
    /// Minimize each violating schedule with the shrinker.
    pub shrink: bool,
}

/// Campaign-wide accounting.
#[derive(Clone, Debug, Default)]
pub struct CampaignStats {
    /// Cells that ran (schedules × topologies, minus nothing).
    pub schedules: usize,
    /// Cells whose builder rejected the axes.
    pub build_errors: usize,
    /// Cells with at least one invariant violation.
    pub cells_with_violations: usize,
    /// Total violations across all cells.
    pub violations: usize,
    /// One entry per shrunk cell.
    pub shrinks: Vec<ShrinkRecord>,
}

/// How one violating schedule minimized.
#[derive(Clone, Debug)]
pub struct ShrinkRecord {
    pub key: String,
    /// Faults before/after minimization.
    pub from: usize,
    pub to: usize,
    /// Cell re-runs the minimization cost.
    pub runs: usize,
}

/// Everything a campaign produces.
#[derive(Clone, Debug)]
pub struct ChaosOutcome {
    /// The byte-stable per-cell report (standard metrics plus
    /// `chaos_faults`, `chaos_violations` and `inv_<code>` counts).
    pub report: MatrixReport,
    pub stats: CampaignStats,
    /// One minimized repro per violating cell, in cell-key order.
    pub repros: Vec<ReproCase>,
}

/// A self-contained, replayable account of one violation: topology +
/// seed + (minimized) schedule. [`ChaosCampaign::replay`] re-runs it
/// and returns the violations it provokes — deterministically, byte
/// for byte, which is what makes the artifact a *repro* rather than a
/// war story.
#[derive(Clone, Debug)]
pub struct ReproCase {
    /// The originating cell key.
    pub key: String,
    pub topology: String,
    /// Knob name (replay uses the campaign's knob; the name is
    /// recorded so mismatches are detectable).
    pub knob: String,
    pub seed: u64,
    /// Original generated schedule name (`chaos-<i>-s<seed>`).
    pub schedule: String,
    /// The minimized fault schedule.
    pub faults: Vec<Fault>,
    /// Violation codes + rendered accounts from the minimized replay.
    pub violations: Vec<(String, String)>,
}

impl ReproCase {
    /// Byte-stable JSON (integer-only, sorted keys).
    pub fn to_json(&self) -> String {
        Json::obj([
            ("key".to_string(), Json::Str(self.key.clone())),
            ("topology".to_string(), Json::Str(self.topology.clone())),
            ("knob".to_string(), Json::Str(self.knob.clone())),
            ("seed".to_string(), Json::Int(self.seed as i64)),
            ("schedule".to_string(), Json::Str(self.schedule.clone())),
            (
                "faults".to_string(),
                Json::Arr(self.faults.iter().map(fault_to_json).collect()),
            ),
            (
                "violations".to_string(),
                Json::Arr(
                    self.violations
                        .iter()
                        .map(|(code, detail)| {
                            Json::obj([
                                ("code".to_string(), Json::Str(code.clone())),
                                ("detail".to_string(), Json::Str(detail.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
        .render()
    }

    /// Parse a [`ReproCase::to_json`] document back.
    pub fn parse(text: &str) -> Result<ReproCase, String> {
        let j = Json::parse(text)?;
        let s = |k: &str| {
            j.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("repro missing string field {k:?}"))
        };
        let faults = j
            .get("faults")
            .and_then(Json::as_arr)
            .ok_or("repro missing faults array")?
            .iter()
            .map(fault_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let violations = j
            .get("violations")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .map(|v| {
                Ok((
                    v.get("code")
                        .and_then(Json::as_str)
                        .ok_or("violation missing code")?
                        .to_string(),
                    v.get("detail")
                        .and_then(Json::as_str)
                        .unwrap_or_default()
                        .to_string(),
                ))
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(ReproCase {
            key: s("key")?,
            topology: s("topology")?,
            knob: s("knob")?,
            seed: j
                .get("seed")
                .and_then(Json::as_i64)
                .ok_or("repro missing seed")? as u64,
            schedule: s("schedule")?,
            faults,
            violations,
        })
    }
}

/// Deterministic per-cell seed: a splitmix-style mix of the campaign
/// seed with the topology and schedule indices.
fn mix_seed(base: u64, ti: u64, i: u64) -> u64 {
    let mut z = base
        ^ ti.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ i.wrapping_mul(0xBF58_476D_1CE4_E5B9).rotate_left(17);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A converged schedule-free prefix, captured once and forked for each
/// shrinker predicate evaluation.
struct ForkBase {
    snap: Snapshot,
    configured_at: Option<Time>,
    config_now: Time,
}

impl ChaosCampaign {
    /// CI-sized campaign: the two smoke rings, a handful of schedules
    /// each, full fault-class mix.
    pub fn smoke(seed: u64) -> ChaosCampaign {
        ChaosCampaign {
            topologies: vec!["ring-4".into(), "ring-5".into()],
            schedules_per_topology: 4,
            seed,
            template: ChaosSpec::smoke(0),
            knob: MatrixKnob::fast("chaos").with_provision_width(4),
            configure_deadline: Duration::from_secs(120),
            post_fault_window: Duration::from_secs(45),
            settle: Duration::from_secs(10),
            shrink: true,
        }
    }

    /// The acceptance-scale campaign: 7 topologies (rings, a grid, the
    /// pan-European reference network and two corpus WANs) × 30 seeded
    /// schedules = 210 schedules.
    pub fn full(seed: u64) -> ChaosCampaign {
        ChaosCampaign {
            topologies: vec![
                "ring-4".into(),
                "ring-5".into(),
                "ring-8".into(),
                "grid-4x4".into(),
                "pan-european".into(),
                "geant".into(),
                "abilene".into(),
            ],
            schedules_per_topology: 30,
            template: ChaosSpec::full(0),
            ..ChaosCampaign::smoke(seed)
        }
    }

    /// The internal [`MatrixSpec`] that carries the run-policy windows
    /// into the shared cell-finishing code (its grid axes are unused —
    /// the campaign builds its own cells).
    fn matrix_spec(&self) -> MatrixSpec {
        MatrixSpec {
            seeds: Vec::new(),
            topologies: Vec::new(),
            schedules: Vec::new(),
            knobs: Vec::new(),
            configure_deadline: self.configure_deadline,
            post_fault_window: self.post_fault_window,
            settle: self.settle,
        }
    }

    /// Build every cell of the campaign: parse each topology, draw its
    /// schedules. A topology whose name does not parse still yields
    /// cells (with empty schedules) so it surfaces as `build_error`
    /// records rather than vanishing.
    fn cells(&self) -> Vec<(MatrixCell, Option<Topology>)> {
        let mut out = Vec::with_capacity(self.topologies.len() * self.schedules_per_topology);
        for (ti, name) in self.topologies.iter().enumerate() {
            let topo = name.parse::<rf_topo::TopoSpec>().ok().map(|s| s.build());
            for i in 0..self.schedules_per_topology {
                let seed = mix_seed(self.seed, ti as u64, i as u64);
                let schedule = match &topo {
                    Some(t) => {
                        let mut protect = self.template.protect.clone();
                        if let Some((a, b)) = t.farthest_pair() {
                            // The standard probe workload pings between
                            // the farthest pair; killing an endpoint
                            // would make "did traffic recover?"
                            // unanswerable.
                            protect.push(a);
                            protect.push(b);
                        }
                        let spec = ChaosSpec {
                            seed,
                            protect,
                            ..self.template.clone()
                        };
                        let mut s = spec.generate(t);
                        // The index keys the cell even in the
                        // astronomically-unlikely event of a seed
                        // collision within one topology.
                        s.name = format!("chaos-{i:03}-s{seed}");
                        s
                    }
                    None => FaultSchedule::new(format!("chaos-{i:03}-s{seed}"), Vec::new()),
                };
                out.push((
                    MatrixCell {
                        seed,
                        topology: name.clone(),
                        schedule,
                        knob: self.knob.clone(),
                    },
                    topo.clone(),
                ));
            }
        }
        out
    }

    /// Cold-run one cell and invariant-check the finished scenario.
    fn run_cell(
        &self,
        mspec: &MatrixSpec,
        cell: &MatrixCell,
        topo: Option<&Topology>,
    ) -> (CellRecord, Vec<InvariantViolation>) {
        let mut sc = match ScenarioMatrix::standard_builder(cell) {
            Ok(b) => b.start(),
            Err(_) => {
                return (
                    CellRecord {
                        key: cell.key(),
                        metrics: BTreeMap::from([("build_error".to_string(), 1)]),
                    },
                    Vec::new(),
                );
            }
        };
        let configured_at = sc.run_until_configured(Time::ZERO + self.configure_deadline);
        let config_now = sc.sim.now();
        let (mut rec, _events, sc) = finish_cell(mspec, cell, sc, configured_at, config_now);
        let violations = match topo {
            Some(t) => self.check(&sc, t, &cell.schedule.faults),
            None => Vec::new(),
        };
        annotate(&mut rec, &cell.schedule.faults, &violations);
        (rec, violations)
    }

    fn check(&self, sc: &Scenario, topo: &Topology, faults: &[Fault]) -> Vec<InvariantViolation> {
        check_invariants(
            sc,
            &InvariantContext {
                topo,
                faults,
                overflow: self.knob.overflow,
            },
        )
    }

    /// Capture the converged schedule-free prefix of `cell` for fork
    /// replays (same quiesce-probing contract as the sweep's group
    /// runner).
    fn fork_base(&self, cell: &MatrixCell) -> Option<ForkBase> {
        let prefix_cell = MatrixCell {
            schedule: FaultSchedule::none(),
            ..cell.clone()
        };
        let mut prefix = ScenarioMatrix::standard_builder(&prefix_cell).ok()?.start();
        let configured_at = prefix.run_until_configured(Time::ZERO + self.configure_deadline);
        let config_now = prefix.sim.now();
        configured_at?;
        let probe_limit = config_now + self.settle;
        loop {
            match prefix.snapshot() {
                Ok(snap) => {
                    return Some(ForkBase {
                        snap,
                        configured_at,
                        config_now,
                    })
                }
                Err(SnapshotError::UndrainedChannels { .. })
                    if prefix.sim.now() + Duration::from_millis(100) <= probe_limit =>
                {
                    let t = prefix.sim.now() + Duration::from_millis(100);
                    prefix.run_until(t);
                }
                Err(_) => return None,
            }
        }
    }

    /// Run a candidate schedule for the shrinker: fork the converged
    /// prefix when the candidate's faults all lie past the capture,
    /// cold-start otherwise. Returns the violations it provokes.
    fn run_candidate(
        &self,
        mspec: &MatrixSpec,
        cell: &MatrixCell,
        topo: &Topology,
        faults: &[Fault],
        base: Option<&ForkBase>,
    ) -> Vec<InvariantViolation> {
        let cand = MatrixCell {
            schedule: FaultSchedule::new(cell.schedule.name.clone(), faults.to_vec()),
            ..cell.clone()
        };
        if let Some(b) = base {
            if forkable(&cand.schedule, b.snap.taken_at()) {
                let mut sc = Scenario::fork(&b.snap);
                if sc.inject_faults(&cand.schedule.faults).is_ok() {
                    let (_rec, _events, sc) =
                        finish_cell(mspec, &cand, sc, b.configured_at, b.config_now);
                    return self.check(&sc, topo, faults);
                }
            }
        }
        self.run_cell(mspec, &cand, Some(topo)).1
    }

    /// Run the whole campaign over `threads` workers. The report (and
    /// every repro) is byte-identical whatever the thread count and
    /// fully determined by the campaign definition.
    pub fn run(&self, threads: usize) -> ChaosOutcome {
        let threads = threads.max(1);
        let mspec = self.matrix_spec();
        let cells = self.cells();

        // Phase 1: the fan-out. Work is pulled from an atomic cursor;
        // results are keyed, so collection order cannot matter.
        type Bucket = (CellRecord, Vec<InvariantViolation>, usize);
        let next = AtomicUsize::new(0);
        let results: Mutex<Vec<Bucket>> = Mutex::new(Vec::with_capacity(cells.len()));
        std::thread::scope(|scope| {
            for _ in 0..threads.min(cells.len()) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    let Some((cell, topo)) = cells.get(i) else {
                        break;
                    };
                    let (rec, violations) = self.run_cell(&mspec, cell, topo.as_ref());
                    results.lock().unwrap().push((rec, violations, i));
                });
            }
        });
        let mut buckets = results.into_inner().unwrap();
        buckets.sort_by_key(|(_, _, i)| *i);

        let mut stats = CampaignStats {
            schedules: cells.len(),
            ..CampaignStats::default()
        };
        let mut records = Vec::with_capacity(buckets.len());
        let mut violating: Vec<(usize, Vec<InvariantViolation>)> = Vec::new();
        for (rec, violations, i) in buckets {
            if rec.metrics.contains_key("build_error") {
                stats.build_errors += 1;
            }
            if !violations.is_empty() {
                stats.cells_with_violations += 1;
                stats.violations += violations.len();
                violating.push((i, violations));
            }
            records.push(rec);
        }

        // Phase 2: shrink each violating schedule (serial — the
        // shrinker is itself a sequential search, and violating cells
        // should be rare).
        let mut repros = Vec::new();
        violating.sort_by(|a, b| cells[a.0].0.key().cmp(&cells[b.0].0.key()));
        for (i, violations) in violating {
            let (cell, topo) = &cells[i];
            let Some(topo) = topo else { continue };
            let codes: Vec<&'static str> = violations.iter().map(|v| v.code()).collect();
            let (min_faults, runs) = if self.shrink && !cell.schedule.faults.is_empty() {
                let base = self.fork_base(cell);
                let out = shrink_schedule(&cell.schedule.faults, |cand| {
                    self.run_candidate(&mspec, cell, topo, cand, base.as_ref())
                        .iter()
                        .any(|v| codes.contains(&v.code()))
                });
                (out.faults, out.runs)
            } else {
                (cell.schedule.faults.clone(), 0)
            };
            stats.shrinks.push(ShrinkRecord {
                key: cell.key(),
                from: cell.schedule.faults.len(),
                to: min_faults.len(),
                runs,
            });
            // The repro records the violations the *minimized* schedule
            // provokes (re-derived so the artifact is self-consistent).
            let final_violations = if min_faults.len() == cell.schedule.faults.len() {
                violations
            } else {
                self.run_cell(
                    &mspec,
                    &MatrixCell {
                        schedule: FaultSchedule::new(
                            cell.schedule.name.clone(),
                            min_faults.clone(),
                        ),
                        ..cell.clone()
                    },
                    Some(topo),
                )
                .1
            };
            repros.push(ReproCase {
                key: cell.key(),
                topology: cell.topology.clone(),
                knob: self.knob.name.clone(),
                seed: cell.seed,
                schedule: cell.schedule.name.clone(),
                faults: min_faults,
                violations: final_violations
                    .iter()
                    .map(|v| (v.code().to_string(), v.to_string()))
                    .collect(),
            });
        }

        let grid = BTreeMap::from([
            ("knobs".to_string(), vec![self.knob.name.clone()]),
            ("seeds".to_string(), vec![self.seed.to_string()]),
            (
                "schedules".to_string(),
                (0..self.schedules_per_topology)
                    .map(|i| format!("chaos-{i:03}"))
                    .collect(),
            ),
            ("topologies".to_string(), self.topologies.clone()),
        ]);
        ChaosOutcome {
            report: MatrixReport::new(grid, records),
            stats,
            repros,
        }
    }

    /// Re-run a repro case under this campaign's knob and windows;
    /// returns the violations it provokes (the repro is confirmed when
    /// they match the artifact's recorded ones).
    pub fn replay(&self, repro: &ReproCase) -> Vec<InvariantViolation> {
        let mspec = self.matrix_spec();
        let topo = match repro.topology.parse::<rf_topo::TopoSpec>() {
            Ok(s) => s.build(),
            Err(_) => return Vec::new(),
        };
        let cell = MatrixCell {
            seed: repro.seed,
            topology: repro.topology.clone(),
            schedule: FaultSchedule::new(repro.schedule.clone(), repro.faults.clone()),
            knob: self.knob.clone(),
        };
        self.run_cell(&mspec, &cell, Some(&topo)).1
    }
}

/// Fold the chaos accounting into a cell's metric map.
fn annotate(rec: &mut CellRecord, faults: &[Fault], violations: &[InvariantViolation]) {
    rec.metrics
        .insert("chaos_faults".to_string(), faults.len() as i64);
    rec.metrics
        .insert("chaos_violations".to_string(), violations.len() as i64);
    for v in violations {
        *rec.metrics.entry(format!("inv_{}", v.code())).or_insert(0) += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_mix_is_stable_and_spread() {
        let a = mix_seed(1, 0, 0);
        assert_eq!(a, mix_seed(1, 0, 0));
        assert_ne!(a, mix_seed(1, 0, 1));
        assert_ne!(a, mix_seed(1, 1, 0));
        assert_ne!(a, mix_seed(2, 0, 0));
    }

    #[test]
    fn campaign_cells_are_unique_and_deterministic() {
        let c = ChaosCampaign::smoke(9);
        let cells = c.cells();
        assert_eq!(cells.len(), 8);
        let keys: std::collections::BTreeSet<String> = cells.iter().map(|(c, _)| c.key()).collect();
        assert_eq!(keys.len(), cells.len(), "cell keys must be unique");
        let again = c.cells();
        for (x, y) in cells.iter().zip(&again) {
            assert_eq!(x.0.key(), y.0.key());
            assert_eq!(
                format!("{:?}", x.0.schedule.faults),
                format!("{:?}", y.0.schedule.faults)
            );
        }
    }

    #[test]
    fn repro_json_round_trips() {
        let repro = ReproCase {
            key: "topo=ring-4/fault=chaos-000-s5/knob=chaos/seed=5".into(),
            topology: "ring-4".into(),
            knob: "chaos".into(),
            seed: 5,
            schedule: "chaos-000-s5".into(),
            faults: vec![
                Fault::KillSwitch {
                    node: 1,
                    at: Duration::from_secs(30),
                },
                Fault::ReviveSwitch {
                    node: 1,
                    at: Duration::from_secs(40),
                },
            ],
            violations: vec![("reconverge".into(), "switch 1 never reconfigured".into())],
        };
        let text = repro.to_json();
        let back = ReproCase::parse(&text).unwrap();
        assert_eq!(back.key, repro.key);
        assert_eq!(back.seed, repro.seed);
        assert_eq!(format!("{:?}", back.faults), format!("{:?}", repro.faults));
        assert_eq!(back.violations, repro.violations);
        assert_eq!(back.to_json(), text, "render is byte-stable");
    }
}
