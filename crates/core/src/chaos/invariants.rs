//! Machine-checked post-run invariants.
//!
//! After a chaos schedule plays out (and every disturbance has healed
//! or been accounted for), the finished [`Scenario`] is probed against
//! predicates that must hold of *any* RouteFlow deployment that
//! survived the faults:
//!
//! 1. **Reconvergence** — every surviving switch is configured (its
//!    mirroring VM is up and green).
//! 2. **Adjacency health** — for every usable link between surviving
//!    switches, both endpoint VMs hold a `Full` OSPF adjacency on the
//!    mapped interface; no adjacency is stuck mid-handshake.
//! 3. **FIB ≡ SPF** — every VM's OSPF route toward a link subnet goes
//!    out an interface consistent with shortest paths on the
//!    *surviving* graph, and every such route is mirrored into the
//!    switch flow table the controller tracks.
//! 4. **Defer losslessness** — a `Defer` overflow policy must never
//!    record a dropped controller message.
//! 5. **Traffic conservation** — sinks never accept more than sources
//!    offered; no counter underflows.
//!
//! Violations are *data*, not panics: each is a typed
//! [`InvariantViolation`] that the campaign folds into cell metrics
//! (`inv_<code>` counts) and into minimized repro artifacts.

use crate::apps::OverflowPolicy;
use crate::scenario::{Fault, Scenario, WorkloadReport};
use rf_topo::Topology;
use rf_vnet::VmAgent;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::time::Duration;

/// What the checker needs to know about the cell beyond the scenario
/// itself.
pub struct InvariantContext<'a> {
    /// The physical topology the scenario was built on.
    pub topo: &'a Topology,
    /// The fault schedule that ran (replayed to compute the surviving
    /// graph).
    pub faults: &'a [Fault],
    /// The knob's channel-overflow policy (for the defer-losslessness
    /// check).
    pub overflow: OverflowPolicy,
}

/// One violated predicate. `Display` renders a human-readable account;
/// [`InvariantViolation::code`] buckets it for metrics.
#[derive(Clone, Debug, PartialEq)]
pub enum InvariantViolation {
    /// A surviving switch never (re)configured: its VM is missing or
    /// not green.
    NotReconverged { node: usize, dpid: u64 },
    /// A usable link's endpoint holds no OSPF adjacency on the mapped
    /// interface.
    MissingAdjacency {
        node: usize,
        peer: usize,
        iface: u16,
    },
    /// An adjacency exists but is stuck short of `Full`.
    StuckAdjacency {
        node: usize,
        peer: usize,
        iface: u16,
        state: &'static str,
    },
    /// A VM's OSPF route disagrees with shortest paths on the
    /// surviving graph.
    FibSpfMismatch {
        node: usize,
        prefix: String,
        via: usize,
        best: usize,
        got: usize,
    },
    /// A VM's OSPF route is not mirrored in the controller's installed
    /// flow map for its switch.
    MirrorMissing {
        node: usize,
        dpid: u64,
        prefix: String,
    },
    /// `Defer` overflow policy recorded dropped controller messages.
    DeferLoss { dropped: u64 },
    /// A sink accounted more than its sources offered.
    Conservation {
        what: &'static str,
        offered: u64,
        delivered: u64,
    },
}

impl InvariantViolation {
    /// Stable short bucket for metrics (`inv_<code>`) and repro JSON.
    pub fn code(&self) -> &'static str {
        match self {
            InvariantViolation::NotReconverged { .. } => "reconverge",
            InvariantViolation::MissingAdjacency { .. }
            | InvariantViolation::StuckAdjacency { .. } => "adjacency",
            InvariantViolation::FibSpfMismatch { .. } => "fib_spf",
            InvariantViolation::MirrorMissing { .. } => "fib_mirror",
            InvariantViolation::DeferLoss { .. } => "defer_loss",
            InvariantViolation::Conservation { .. } => "conservation",
        }
    }
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantViolation::NotReconverged { node, dpid } => {
                write!(
                    f,
                    "surviving switch {node} (dpid {dpid}) never reconfigured"
                )
            }
            InvariantViolation::MissingAdjacency { node, peer, iface } => write!(
                f,
                "node {node} has no OSPF neighbor on iface {iface} toward {peer}"
            ),
            InvariantViolation::StuckAdjacency {
                node,
                peer,
                iface,
                state,
            } => write!(
                f,
                "node {node} iface {iface} toward {peer} stuck in {state}"
            ),
            InvariantViolation::FibSpfMismatch {
                node,
                prefix,
                via,
                best,
                got,
            } => write!(
                f,
                "node {node} routes {prefix} via {via} (distance {got}, shortest {best})"
            ),
            InvariantViolation::MirrorMissing { node, dpid, prefix } => write!(
                f,
                "node {node}: OSPF route {prefix} missing from dpid {dpid}'s flow table"
            ),
            InvariantViolation::DeferLoss { dropped } => {
                write!(f, "Defer overflow policy dropped {dropped} messages")
            }
            InvariantViolation::Conservation {
                what,
                offered,
                delivered,
            } => write!(
                f,
                "conservation: {what} delivered {delivered} > offered {offered}"
            ),
        }
    }
}

/// The surviving graph after a fault schedule fully plays out: which
/// nodes are alive and which edges administratively up / not fully
/// lossy at the end of time.
#[derive(Clone, Debug)]
pub struct SurvivingState {
    pub alive: Vec<bool>,
    /// Per edge: up (no un-healed `LinkDown`) *and* final loss < 100 %.
    pub usable: Vec<bool>,
}

impl SurvivingState {
    /// Replay `faults` in effective-time order over an
    /// all-alive/all-up start.
    pub fn replay(faults: &[Fault], nodes: usize, edges: usize) -> SurvivingState {
        let mut alive = vec![true; nodes];
        let mut up = vec![true; edges];
        let mut loss = vec![0.0f64; edges];
        // Sort by (effective instant, original index): schedule order
        // breaks same-instant ties, matching the chaos agent's
        // one-lane timer ordering.
        let eff = |f: &Fault| match *f {
            Fault::KillSwitch { at, .. }
            | Fault::ReviveSwitch { at, .. }
            | Fault::LinkDown { at, .. }
            | Fault::LinkUp { at, .. }
            | Fault::LinkLoss { at, .. } => at,
            Fault::ChannelStall { until, .. } => until,
        };
        let mut order: Vec<usize> = (0..faults.len()).collect();
        order.sort_by_key(|&i| (eff(&faults[i]), i));
        for i in order {
            match faults[i] {
                Fault::KillSwitch { node, .. } => alive[node] = false,
                Fault::ReviveSwitch { node, .. } => alive[node] = true,
                Fault::LinkDown { edge, .. } => up[edge] = false,
                Fault::LinkUp { edge, .. } => up[edge] = true,
                Fault::LinkLoss { edge, loss_pct, .. } => loss[edge] = loss_pct,
                Fault::ChannelStall { .. } => {}
            }
        }
        let usable = (0..edges).map(|e| up[e] && loss[e] < 100.0).collect();
        SurvivingState { alive, usable }
    }
}

/// Recompute the builder's deterministic port plan: edge index →
/// (port at `a`, port at `b`). Per node, ports start at 1 and edges
/// claim them first, in `topo.edges()` order (host ports come after,
/// which the checker never needs).
pub fn edge_ports(topo: &Topology) -> Vec<(u16, u16)> {
    let mut next_port = vec![1u16; topo.node_count()];
    topo.edges()
        .iter()
        .map(|e| {
            let pa = next_port[e.a];
            next_port[e.a] += 1;
            let pb = next_port[e.b];
            next_port[e.b] += 1;
            (pa, pb)
        })
        .collect()
}

/// BFS distances over the surviving graph from `src` (usable edges
/// between alive nodes only); `usize::MAX` = unreachable.
fn surviving_distances(topo: &Topology, s: &SurvivingState, src: usize) -> Vec<usize> {
    let n = topo.node_count();
    let mut dist = vec![usize::MAX; n];
    if !s.alive[src] {
        return dist;
    }
    dist[src] = 0;
    let mut queue = std::collections::VecDeque::from([src]);
    while let Some(u) = queue.pop_front() {
        for (e, edge) in topo.edges().iter().enumerate() {
            if !s.usable[e] {
                continue;
            }
            let v = if edge.a == u {
                edge.b
            } else if edge.b == u {
                edge.a
            } else {
                continue;
            };
            if s.alive[v] && dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Check every invariant against a finished scenario. The returned
/// vector is empty iff the run was clean; order is deterministic
/// (nodes ascending, then the cross-cutting checks).
pub fn check_invariants(sc: &Scenario, ctx: &InvariantContext<'_>) -> Vec<InvariantViolation> {
    let mut out = Vec::new();
    let nodes = ctx.topo.node_count();
    let surviving = SurvivingState::replay(ctx.faults, nodes, ctx.topo.edge_count());
    let state = sc.controller().state();
    let ports = edge_ports(ctx.topo);

    // Per-node distance tables on the surviving graph, computed once.
    let dist: Vec<Vec<usize>> = (0..nodes)
        .map(|n| surviving_distances(ctx.topo, &surviving, n))
        .collect();

    // iface → (edge index, peer node) per node, for usable edges.
    let mut iface_map: Vec<BTreeMap<u16, (usize, usize)>> = vec![BTreeMap::new(); nodes];
    for (e, edge) in ctx.topo.edges().iter().enumerate() {
        let (pa, pb) = ports[e];
        iface_map[edge.a].insert(pa, (e, edge.b));
        iface_map[edge.b].insert(pb, (e, edge.a));
    }

    // Link subnets as the controller allocated them: subnet → owner
    // endpoints (as nodes). `LinkRec` endpoints are (dpid, port).
    let mut subnet_owners: HashMap<(u32, u8), Vec<usize>> = HashMap::new();
    for l in &state.links {
        let key = (u32::from(l.subnet.network()), l.subnet.prefix_len);
        let owners = subnet_owners.entry(key).or_default();
        for (dpid, _) in [l.a, l.b] {
            let node = (dpid - 1) as usize;
            if !owners.contains(&node) {
                owners.push(node);
            }
        }
    }

    // 1. Reconvergence + collect live VM handles.
    let mut vms: Vec<Option<&VmAgent>> = vec![None; nodes];
    for (node, slot) in vms.iter_mut().enumerate() {
        if !surviving.alive[node] {
            continue;
        }
        let dpid = (node + 1) as u64;
        let rec = state.switches.get(&dpid);
        let configured = rec.is_some_and(|r| r.configured_at.is_some());
        let vm = rec
            .and_then(|r| r.vm)
            .and_then(|id| sc.sim.agent_as::<VmAgent>(id));
        if !configured || vm.is_none() {
            out.push(InvariantViolation::NotReconverged { node, dpid });
            continue;
        }
        *slot = vm;
    }

    // 2. Adjacency health over usable surviving edges.
    for (e, edge) in ctx.topo.edges().iter().enumerate() {
        if !surviving.usable[e] || !surviving.alive[edge.a] || !surviving.alive[edge.b] {
            continue;
        }
        let (pa, pb) = ports[e];
        for (node, peer, iface) in [(edge.a, edge.b, pa), (edge.b, edge.a, pb)] {
            let Some(vm) = vms[node] else { continue };
            match vm.ospf_neighbors().iter().find(|(ifc, _, _)| *ifc == iface) {
                None => out.push(InvariantViolation::MissingAdjacency { node, peer, iface }),
                Some((_, _, st)) if *st != rf_routed::ospf::NeighborState::Full => {
                    out.push(InvariantViolation::StuckAdjacency {
                        node,
                        peer,
                        iface,
                        state: neighbor_state_name(st),
                    })
                }
                Some(_) => {}
            }
        }
    }

    // 3. FIB ≡ SPF + controller mirror, per surviving VM.
    for node in 0..nodes {
        let Some(vm) = vms[node] else { continue };
        let dpid = (node + 1) as u64;
        for route in vm.fib_routes() {
            if route.proto != rf_routed::rib::RouteProto::Ospf {
                continue;
            }
            let key = (u32::from(route.prefix.network()), route.prefix.prefix_len);
            // SPF agreement is only checkable for prefixes we can
            // attribute — the link subnets the controller allocated.
            if let Some(owners) = subnet_owners.get(&key) {
                let best = owners
                    .iter()
                    .map(|&o| dist[node][o])
                    .min()
                    .unwrap_or(usize::MAX);
                if let Some(&(e, peer)) = iface_map[node].get(&route.out_iface) {
                    let via_peer = if surviving.usable[e] && surviving.alive[peer] {
                        owners
                            .iter()
                            .map(|&o| dist[peer][o])
                            .min()
                            .unwrap_or(usize::MAX)
                            .saturating_add(1)
                    } else {
                        usize::MAX
                    };
                    if best != usize::MAX && via_peer != best {
                        out.push(InvariantViolation::FibSpfMismatch {
                            node,
                            prefix: format!("{}", route.prefix),
                            via: peer,
                            best,
                            got: via_peer,
                        });
                    }
                }
            }
            // Mirror: every OSPF FIB route must be a flow the
            // controller believes installed on this VM's switch.
            if !state.installed.contains_key(&(dpid, key.0, key.1)) {
                out.push(InvariantViolation::MirrorMissing {
                    node,
                    dpid,
                    prefix: format!("{}", route.prefix),
                });
            }
        }
    }

    // 4. Defer losslessness.
    if ctx.overflow == OverflowPolicy::Defer {
        let dropped = sc.controller().of_dropped();
        if dropped > 0 {
            out.push(InvariantViolation::DeferLoss { dropped });
        }
    }

    // 5. Traffic conservation (workload accounting).
    for report in sc.workload_reports() {
        match report {
            WorkloadReport::Ping(p) => {
                if p.replies.len() > p.sent.len() {
                    out.push(InvariantViolation::Conservation {
                        what: "ping replies",
                        offered: p.sent.len() as u64,
                        delivered: p.replies.len() as u64,
                    });
                }
            }
            WorkloadReport::PingFanIn { clients } => {
                for c in &clients {
                    if c.replies.len() > c.sent.len() {
                        out.push(InvariantViolation::Conservation {
                            what: "fan-in replies",
                            offered: c.sent.len() as u64,
                            delivered: c.replies.len() as u64,
                        });
                    }
                }
            }
            WorkloadReport::Traffic(t) => {
                if t.delivered_bytes > t.offered_bytes {
                    out.push(InvariantViolation::Conservation {
                        what: "traffic bytes",
                        offered: t.offered_bytes,
                        delivered: t.delivered_bytes,
                    });
                }
                if t.frames_delivered > t.frames_sent {
                    out.push(InvariantViolation::Conservation {
                        what: "traffic frames",
                        offered: t.frames_sent,
                        delivered: t.frames_delivered,
                    });
                }
                if t.flows_completed > t.flows_started {
                    out.push(InvariantViolation::Conservation {
                        what: "traffic flows",
                        offered: t.flows_started,
                        delivered: t.flows_completed,
                    });
                }
            }
            WorkloadReport::Video(_) => {}
        }
    }

    out
}

fn neighbor_state_name(s: &rf_routed::ospf::NeighborState) -> &'static str {
    use rf_routed::ospf::NeighborState::*;
    match s {
        Down => "Down",
        Init => "Init",
        ExStart => "ExStart",
        Exchange => "Exchange",
        Loading => "Loading",
        Full => "Full",
    }
}

/// How much slack a chaos cell gets after its last disturbance heals:
/// worst-case OSPF dead-interval expiry plus SPF/flow propagation.
pub fn chaos_settle(ospf_dead: u16) -> Duration {
    Duration::from_secs(u64::from(ospf_dead) * 2 + 20)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surviving_state_replay_honors_order_and_healing() {
        let faults = [
            Fault::KillSwitch {
                node: 1,
                at: Duration::from_secs(30),
            },
            Fault::ReviveSwitch {
                node: 1,
                at: Duration::from_secs(40),
            },
            Fault::LinkDown {
                edge: 0,
                at: Duration::from_secs(31),
            },
            Fault::LinkLoss {
                edge: 2,
                loss_pct: 100.0,
                at: Duration::from_secs(33),
            },
            Fault::LinkLoss {
                edge: 3,
                loss_pct: 50.0,
                at: Duration::from_secs(33),
            },
        ];
        let s = SurvivingState::replay(&faults, 4, 4);
        assert!(s.alive[1], "revive heals the kill");
        assert!(!s.usable[0], "un-healed LinkDown");
        assert!(!s.usable[2], "100% loss is unusable");
        assert!(s.usable[3], "partial loss is usable");
    }

    #[test]
    fn edge_ports_match_builder_plan_on_a_ring() {
        // ring(4) edges: (0,1), (1,2), (2,3), (3,0) — node 0 gets port
        // 1 for edge 0 and port 2 for edge 3.
        let topo = rf_topo::ring(4);
        let ports = edge_ports(&topo);
        assert_eq!(ports[0], (1, 1));
        assert_eq!(ports[3], (2, 2));
    }
}
