//! Chaos campaigns: seeded random fault schedules, machine-checked
//! invariants, and a minimizing shrinker.
//!
//! The deterministic substrate (byte-identical reports, checkpoint +
//! fork, the reserved fault lane) makes randomized failure testing
//! *reproducible*: a [`ChaosSpec`] draws a fault schedule from a seed,
//! a campaign ([`campaign::ChaosCampaign`]) fans hundreds of seeded
//! schedules × topologies over worker threads, every cell's post-run
//! state is checked against real invariants
//! ([`invariants::check_invariants`]), and any violation is minimized
//! by a delta-debugging shrinker ([`shrink::shrink_schedule`]) into a
//! repro JSON ([`ReproCase`]) that replays byte-identically from the
//! seed alone.
//!
//! ```
//! use rf_core::chaos::ChaosSpec;
//!
//! let topo = rf_topo::ring(6);
//! let spec = ChaosSpec::smoke(7);
//! let schedule = spec.generate(&topo);
//! // Same seed, same topology → the identical schedule, always.
//! assert_eq!(format!("{:?}", schedule.faults),
//!            format!("{:?}", spec.generate(&topo).faults));
//! ```

pub mod campaign;
pub mod invariants;
pub mod shrink;

pub use campaign::{CampaignStats, ChaosCampaign, ChaosOutcome, ReproCase, ShrinkRecord};
pub use invariants::{check_invariants, InvariantContext, InvariantViolation, SurvivingState};
pub use shrink::{shrink_schedule, ShrinkOutcome};

use crate::json::Json;
use crate::scenario::{Fault, FaultSchedule};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rf_topo::Topology;
use std::ops::Range;
use std::time::Duration;

/// The fault families a [`ChaosSpec`] may draw from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultClass {
    /// Kill a switch, then boot a pristine replacement a few seconds
    /// later ([`Fault::KillSwitch`] + [`Fault::ReviveSwitch`]).
    KillRevive,
    /// Take a link down, bring it back up ([`Fault::LinkDown`] +
    /// [`Fault::LinkUp`]).
    LinkFlap,
    /// A sustained-loss window on a link (10–90 % frame drop, then
    /// heal; [`Fault::LinkLoss`]).
    LinkLoss,
    /// Stall the controller's OpenFlow channel to one switch
    /// ([`Fault::ChannelStall`]).
    ChannelStall,
}

/// A seeded random-fault-schedule generator. `generate` is a pure
/// function of `(spec, topology)`: the same seed always draws the
/// identical schedule, which is what makes a chaos campaign (and any
/// shrunken repro of it) replayable byte for byte.
///
/// Schedules are topology-aware by construction — node and edge
/// indices are drawn from the live topology, never out of range — and
/// survivability-constrained: protected nodes are never killed, and
/// with `keep_connected` no draw may disconnect the surviving graph
/// (so "the network routes around it" stays a checkable claim).
#[derive(Clone, Debug)]
pub struct ChaosSpec {
    /// Seed of the draw; the whole schedule is a function of it.
    pub seed: u64,
    /// Maximum faults drawn (a draw with no valid target is skipped,
    /// so the schedule may come out shorter).
    pub budget: usize,
    /// Fault families to draw from (uniformly).
    pub classes: Vec<FaultClass>,
    /// Window of simulated time fault onsets are drawn from. Recovery
    /// actions (revive, link-up, loss-clear, stall-end) are clamped to
    /// the window's end, so after `horizon.end` no disturbance remains
    /// and the network is expected to fully heal.
    pub horizon: Range<Duration>,
    /// Nodes that must never be killed (workload endpoints, a
    /// designated "controller-attachment" switch, …).
    pub protect: Vec<usize>,
    /// Refuse draws that would disconnect the graph of alive nodes and
    /// administratively-up links.
    pub keep_connected: bool,
}

impl ChaosSpec {
    /// Small default: every fault class, 4-fault budget, onsets in
    /// 30–60 s.
    pub fn smoke(seed: u64) -> ChaosSpec {
        ChaosSpec {
            seed,
            budget: 4,
            classes: vec![
                FaultClass::KillRevive,
                FaultClass::LinkFlap,
                FaultClass::LinkLoss,
                FaultClass::ChannelStall,
            ],
            horizon: Duration::from_secs(30)..Duration::from_secs(60),
            protect: Vec::new(),
            keep_connected: true,
        }
    }

    /// Campaign default: every fault class, 8-fault budget, onsets in
    /// 30–75 s (overlapping windows are routine at this density).
    pub fn full(seed: u64) -> ChaosSpec {
        ChaosSpec {
            budget: 8,
            horizon: Duration::from_secs(30)..Duration::from_secs(75),
            ..ChaosSpec::smoke(seed)
        }
    }

    /// Draw this spec's schedule over `topo`. Pure and deterministic;
    /// the schedule's name (`chaos-s<seed>`) carries the seed, so cell
    /// keys stay unique per draw.
    pub fn generate(&self, topo: &Topology) -> FaultSchedule {
        assert!(self.horizon.start < self.horizon.end, "empty horizon");
        assert!(!self.classes.is_empty(), "no fault classes");
        let nodes = topo.node_count();
        let edges = topo.edges();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let start_ms = self.horizon.start.as_millis() as u64;
        let end_ms = self.horizon.end.as_millis() as u64;

        // Onsets first, in time order, so the survivability state can
        // be tracked forward through the draw.
        let mut onsets: Vec<u64> = (0..self.budget)
            .map(|_| rng.gen_range(start_ms..end_ms))
            .collect();
        onsets.sort_unstable();

        let mut alive = vec![true; nodes];
        let mut up = vec![true; edges.len()];
        // Recoveries already emitted but not yet in effect at the
        // current onset: (when_ms, what).
        enum Heal {
            Revive(usize),
            LinkUp(usize),
        }
        let mut healing: Vec<(u64, Heal)> = Vec::new();
        let mut faults: Vec<Fault> = Vec::new();

        // Does the graph of alive nodes / up edges stay connected if
        // `drop_node` dies or `drop_edge` goes down?
        let connected_without =
            |alive: &[bool], up: &[bool], drop_node: Option<usize>, drop_edge: Option<usize>| {
                let ok_node = |n: usize| alive[n] && Some(n) != drop_node;
                let Some(src) = (0..nodes).find(|&n| ok_node(n)) else {
                    return true;
                };
                let mut seen = vec![false; nodes];
                seen[src] = true;
                let mut stack = vec![src];
                while let Some(u) = stack.pop() {
                    for (e, edge) in edges.iter().enumerate() {
                        if !up[e] || Some(e) == drop_edge {
                            continue;
                        }
                        let v = if edge.a == u {
                            edge.b
                        } else if edge.b == u {
                            edge.a
                        } else {
                            continue;
                        };
                        if ok_node(v) && !seen[v] {
                            seen[v] = true;
                            stack.push(v);
                        }
                    }
                }
                (0..nodes).all(|n| !ok_node(n) || seen[n])
            };

        for t in onsets {
            // Apply recoveries that have come into effect by now.
            healing.sort_by_key(|(at, _)| *at);
            while healing.first().is_some_and(|(at, _)| *at <= t) {
                match healing.remove(0).1 {
                    Heal::Revive(n) => alive[n] = true,
                    Heal::LinkUp(e) => up[e] = true,
                }
            }
            let at = Duration::from_millis(t);
            let class = self.classes[rng.gen_range(0..self.classes.len())];
            match class {
                FaultClass::KillRevive => {
                    let cands: Vec<usize> = (0..nodes)
                        .filter(|&n| {
                            alive[n]
                                && !self.protect.contains(&n)
                                && (!self.keep_connected
                                    || connected_without(&alive, &up, Some(n), None))
                        })
                        .collect();
                    if cands.is_empty() {
                        continue;
                    }
                    let node = cands[rng.gen_range(0..cands.len())];
                    let rev = (t + 3_000 + rng.gen_range(0..10_000u64)).min(end_ms);
                    if rev <= t {
                        continue;
                    }
                    faults.push(Fault::KillSwitch { node, at });
                    faults.push(Fault::ReviveSwitch {
                        node,
                        at: Duration::from_millis(rev),
                    });
                    alive[node] = false;
                    healing.push((rev, Heal::Revive(node)));
                }
                FaultClass::LinkFlap => {
                    let cands: Vec<usize> = (0..edges.len())
                        .filter(|&e| {
                            up[e]
                                && alive[edges[e].a]
                                && alive[edges[e].b]
                                && (!self.keep_connected
                                    || connected_without(&alive, &up, None, Some(e)))
                        })
                        .collect();
                    if cands.is_empty() {
                        continue;
                    }
                    let edge = cands[rng.gen_range(0..cands.len())];
                    let back = (t + 2_000 + rng.gen_range(0..8_000u64)).min(end_ms);
                    if back <= t {
                        continue;
                    }
                    faults.push(Fault::LinkDown { edge, at });
                    faults.push(Fault::LinkUp {
                        edge,
                        at: Duration::from_millis(back),
                    });
                    up[edge] = false;
                    healing.push((back, Heal::LinkUp(edge)));
                }
                FaultClass::LinkLoss => {
                    let cands: Vec<usize> = (0..edges.len())
                        .filter(|&e| up[e] && alive[edges[e].a] && alive[edges[e].b])
                        .collect();
                    if cands.is_empty() {
                        continue;
                    }
                    let edge = cands[rng.gen_range(0..cands.len())];
                    let loss_pct = 10.0 * (1 + rng.gen_range(0..9u32)) as f64;
                    let heal = (t + 2_000 + rng.gen_range(0..8_000u64)).min(end_ms);
                    if heal <= t {
                        continue;
                    }
                    faults.push(Fault::LinkLoss { edge, loss_pct, at });
                    faults.push(Fault::LinkLoss {
                        edge,
                        loss_pct: 0.0,
                        at: Duration::from_millis(heal),
                    });
                }
                FaultClass::ChannelStall => {
                    let cands: Vec<usize> = (0..nodes).filter(|&n| alive[n]).collect();
                    if cands.is_empty() {
                        continue;
                    }
                    let node = cands[rng.gen_range(0..cands.len())];
                    let until = (t + 1_000 + rng.gen_range(0..5_000u64)).min(end_ms);
                    if until <= t {
                        continue;
                    }
                    faults.push(Fault::ChannelStall {
                        dpid: (node + 1) as u64,
                        from: at,
                        until: Duration::from_millis(until),
                    });
                }
            }
        }

        FaultSchedule::new(format!("chaos-s{}", self.seed), faults)
    }
}

/// Serialize one fault as a JSON object (durations in integer
/// nanoseconds — the repro format must be byte-stable).
pub fn fault_to_json(f: &Fault) -> Json {
    let ns = |d: Duration| Json::Int(d.as_nanos() as i64);
    match *f {
        Fault::KillSwitch { node, at } => Json::obj([
            ("kind".into(), Json::Str("kill_switch".into())),
            ("node".into(), Json::Int(node as i64)),
            ("at_ns".into(), ns(at)),
        ]),
        Fault::ReviveSwitch { node, at } => Json::obj([
            ("kind".into(), Json::Str("revive_switch".into())),
            ("node".into(), Json::Int(node as i64)),
            ("at_ns".into(), ns(at)),
        ]),
        Fault::LinkDown { edge, at } => Json::obj([
            ("kind".into(), Json::Str("link_down".into())),
            ("edge".into(), Json::Int(edge as i64)),
            ("at_ns".into(), ns(at)),
        ]),
        Fault::LinkUp { edge, at } => Json::obj([
            ("kind".into(), Json::Str("link_up".into())),
            ("edge".into(), Json::Int(edge as i64)),
            ("at_ns".into(), ns(at)),
        ]),
        Fault::LinkLoss { edge, loss_pct, at } => Json::obj([
            ("kind".into(), Json::Str("link_loss".into())),
            ("edge".into(), Json::Int(edge as i64)),
            // Tenths of a percent keep the format integer-only.
            (
                "loss_pct_x10".into(),
                Json::Int((loss_pct * 10.0).round() as i64),
            ),
            ("at_ns".into(), ns(at)),
        ]),
        Fault::ChannelStall { dpid, from, until } => Json::obj([
            ("kind".into(), Json::Str("channel_stall".into())),
            ("dpid".into(), Json::Int(dpid as i64)),
            ("from_ns".into(), ns(from)),
            ("until_ns".into(), ns(until)),
        ]),
    }
}

/// Parse a fault back out of its [`fault_to_json`] form.
pub fn fault_from_json(j: &Json) -> Result<Fault, String> {
    let geti = |k: &str| {
        j.get(k)
            .and_then(Json::as_i64)
            .ok_or_else(|| format!("fault missing integer field {k:?}"))
    };
    let dur = |v: i64| Duration::from_nanos(v as u64);
    let kind = j
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("fault missing kind")?;
    Ok(match kind {
        "kill_switch" => Fault::KillSwitch {
            node: geti("node")? as usize,
            at: dur(geti("at_ns")?),
        },
        "revive_switch" => Fault::ReviveSwitch {
            node: geti("node")? as usize,
            at: dur(geti("at_ns")?),
        },
        "link_down" => Fault::LinkDown {
            edge: geti("edge")? as usize,
            at: dur(geti("at_ns")?),
        },
        "link_up" => Fault::LinkUp {
            edge: geti("edge")? as usize,
            at: dur(geti("at_ns")?),
        },
        "link_loss" => Fault::LinkLoss {
            edge: geti("edge")? as usize,
            loss_pct: geti("loss_pct_x10")? as f64 / 10.0,
            at: dur(geti("at_ns")?),
        },
        "channel_stall" => Fault::ChannelStall {
            dpid: geti("dpid")? as u64,
            from: dur(geti("from_ns")?),
            until: dur(geti("until_ns")?),
        },
        other => return Err(format!("unknown fault kind {other:?}")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_in_range() {
        let topo = rf_topo::ring(8);
        let spec = ChaosSpec::full(42);
        let a = spec.generate(&topo);
        let b = spec.generate(&topo);
        assert_eq!(format!("{:?}", a.faults), format!("{:?}", b.faults));
        assert!(!a.faults.is_empty(), "full spec should draw something");
        Fault::validate_schedule(&a.faults, topo.node_count(), topo.edge_count())
            .expect("generated schedules are valid by construction");
        // Different seeds draw different schedules.
        let c = ChaosSpec::full(43).generate(&topo);
        assert_ne!(format!("{:?}", a.faults), format!("{:?}", c.faults));
        assert_ne!(a.name, c.name);
    }

    #[test]
    fn protected_nodes_are_never_killed() {
        let topo = rf_topo::ring(6);
        for seed in 0..20 {
            let spec = ChaosSpec {
                protect: vec![0, 3],
                ..ChaosSpec::full(seed)
            };
            for f in &spec.generate(&topo).faults {
                if let Fault::KillSwitch { node, .. } = f {
                    assert!(*node != 0 && *node != 3, "seed {seed} killed {node}");
                }
            }
        }
    }

    #[test]
    fn every_kill_has_a_revive() {
        let topo = rf_topo::ring(8);
        for seed in 0..20 {
            let sched = ChaosSpec::full(seed).generate(&topo);
            for f in &sched.faults {
                if let Fault::KillSwitch { node, at } = f {
                    assert!(
                        sched.faults.iter().any(|g| matches!(
                            g,
                            Fault::ReviveSwitch { node: n, at: rev } if n == node && rev > at
                        )),
                        "seed {seed}: kill of {node} has no later revive"
                    );
                }
            }
        }
    }

    #[test]
    fn fault_json_round_trips() {
        let faults = vec![
            Fault::KillSwitch {
                node: 3,
                at: Duration::from_millis(30_500),
            },
            Fault::ReviveSwitch {
                node: 3,
                at: Duration::from_secs(40),
            },
            Fault::LinkDown {
                edge: 7,
                at: Duration::from_secs(31),
            },
            Fault::LinkUp {
                edge: 7,
                at: Duration::from_secs(35),
            },
            Fault::LinkLoss {
                edge: 2,
                loss_pct: 40.0,
                at: Duration::from_secs(33),
            },
            Fault::ChannelStall {
                dpid: 2,
                from: Duration::from_secs(30),
                until: Duration::from_secs(36),
            },
        ];
        for f in &faults {
            let j = fault_to_json(f);
            let back = fault_from_json(&Json::parse(&j.render()).unwrap()).unwrap();
            assert_eq!(format!("{f:?}"), format!("{back:?}"));
        }
    }
}
