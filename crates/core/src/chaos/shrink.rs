//! Delta-debugging shrinker for violating fault schedules.
//!
//! Given a schedule that provokes an invariant violation and a
//! predicate that re-runs the cell ("does this sub-schedule still
//! violate?"), [`shrink_schedule`] minimizes along three axes, in
//! order:
//!
//! 1. **Fault subset** — classic ddmin: try dropping ever-finer
//!    complements until no single fault can be removed (1-minimality).
//! 2. **Instant rounding** — round each fault's instant down to a
//!    whole second; round numbers make repros legible.
//! 3. **Window shrinking** — narrow `ChannelStall` windows.
//!
//! The predicate is the expensive part (a full cell re-run), so the
//! shrinker counts its invocations ([`ShrinkOutcome::runs`]) and the
//! campaign re-runs via the checkpoint/fork fast path where it can.
//! Determinism of the substrate guarantees the minimized schedule
//! reproduces the violation byte-for-byte, every time.

use crate::scenario::Fault;
use std::time::Duration;

/// The result of a shrink: the minimal violating schedule and how many
/// predicate evaluations it took to find.
#[derive(Clone, Debug)]
pub struct ShrinkOutcome {
    /// A 1-minimal violating sub-schedule (schedule order preserved).
    pub faults: Vec<Fault>,
    /// Predicate (cell re-run) count.
    pub runs: usize,
}

/// Minimize `faults` under `still_fails`. The caller guarantees
/// `still_fails(&faults)` is true on entry (it is re-checked; if it
/// does not fail, the input comes back unchanged).
pub fn shrink_schedule<F>(faults: &[Fault], mut still_fails: F) -> ShrinkOutcome
where
    F: FnMut(&[Fault]) -> bool,
{
    let mut runs = 0usize;
    let mut check = |cand: &[Fault], runs: &mut usize| {
        *runs += 1;
        still_fails(cand)
    };

    let mut current: Vec<Fault> = faults.to_vec();
    if !check(&current, &mut runs) {
        // Not reproducible — nothing to minimize.
        return ShrinkOutcome {
            faults: current,
            runs,
        };
    }

    // Phase 1: ddmin over fault subsets. Remove chunks (complements of
    // an n-way partition), refining granularity until chunks are
    // single faults and none can go.
    let mut n = 2usize;
    while current.len() >= 2 {
        let chunk = current.len().div_ceil(n);
        let mut reduced = false;
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let cand: Vec<Fault> = current[..start]
                .iter()
                .chain(&current[end..])
                .cloned()
                .collect();
            if !cand.is_empty() && check(&cand, &mut runs) {
                current = cand;
                n = n.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if chunk == 1 {
                break; // 1-minimal.
            }
            n = (n * 2).min(current.len());
        }
    }

    // Phase 2: round instants down to whole seconds, one fault at a
    // time (simultaneous rounding could merge two faults into the same
    // instant and change behaviour more than intended).
    for i in 0..current.len() {
        let rounded = round_fault(&current[i]);
        if format!("{rounded:?}") == format!("{:?}", current[i]) {
            continue;
        }
        let mut cand = current.clone();
        cand[i] = rounded;
        if check(&cand, &mut runs) {
            current = cand;
        }
    }

    // Phase 3: shrink ChannelStall windows — first to a 1 s window,
    // then by halving once.
    for i in 0..current.len() {
        if let Fault::ChannelStall { dpid, from, until } = current[i] {
            for narrowed in [from + Duration::from_secs(1), from + (until - from) / 2] {
                if narrowed >= until || narrowed <= from {
                    continue;
                }
                let mut cand = current.clone();
                cand[i] = Fault::ChannelStall {
                    dpid,
                    from,
                    until: narrowed,
                };
                if check(&cand, &mut runs) {
                    current = cand;
                    break;
                }
            }
        }
    }

    ShrinkOutcome {
        faults: current,
        runs,
    }
}

/// A fault with its instant(s) rounded down to whole seconds.
fn round_fault(f: &Fault) -> Fault {
    let floor = |d: Duration| Duration::from_secs(d.as_secs());
    match *f {
        Fault::KillSwitch { node, at } => Fault::KillSwitch {
            node,
            at: floor(at),
        },
        Fault::ReviveSwitch { node, at } => Fault::ReviveSwitch {
            node,
            at: floor(at),
        },
        Fault::LinkDown { edge, at } => Fault::LinkDown {
            edge,
            at: floor(at),
        },
        Fault::LinkUp { edge, at } => Fault::LinkUp {
            edge,
            at: floor(at),
        },
        Fault::LinkLoss { edge, loss_pct, at } => Fault::LinkLoss {
            edge,
            loss_pct,
            at: floor(at),
        },
        Fault::ChannelStall { dpid, from, until } => Fault::ChannelStall {
            dpid,
            from: floor(from),
            until,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kill(node: usize, s: u64) -> Fault {
        Fault::KillSwitch {
            node,
            at: Duration::from_secs(s),
        }
    }

    #[test]
    fn ddmin_finds_the_single_culprit() {
        // "Fails" iff the schedule still contains the kill of node 3.
        let faults: Vec<Fault> = (0..8).map(|n| kill(n, 30 + n as u64)).collect();
        let out = shrink_schedule(&faults, |cand| {
            cand.iter()
                .any(|f| matches!(f, Fault::KillSwitch { node: 3, .. }))
        });
        assert_eq!(out.faults.len(), 1);
        assert!(matches!(out.faults[0], Fault::KillSwitch { node: 3, .. }));
    }

    #[test]
    fn ddmin_keeps_an_interacting_pair() {
        // Fails iff kills of BOTH node 1 and node 5 are present.
        let faults: Vec<Fault> = (0..8).map(|n| kill(n, 30 + n as u64)).collect();
        let has = |cand: &[Fault], want: usize| {
            cand.iter()
                .any(|f| matches!(f, Fault::KillSwitch { node, .. } if *node == want))
        };
        let out = shrink_schedule(&faults, |cand| has(cand, 1) && has(cand, 5));
        assert_eq!(out.faults.len(), 2);
        assert!(has(&out.faults, 1) && has(&out.faults, 5));
    }

    #[test]
    fn non_reproducing_input_comes_back_unchanged() {
        let faults = vec![kill(0, 30), kill(1, 31)];
        let out = shrink_schedule(&faults, |_| false);
        assert_eq!(out.faults.len(), 2);
        assert_eq!(out.runs, 1);
    }

    #[test]
    fn instants_are_rounded_when_still_failing() {
        let faults = vec![Fault::KillSwitch {
            node: 2,
            at: Duration::from_millis(30_417),
        }];
        let out = shrink_schedule(&faults, |cand| {
            cand.iter()
                .any(|f| matches!(f, Fault::KillSwitch { node: 2, .. }))
        });
        assert_eq!(out.faults.len(), 1);
        assert!(
            matches!(out.faults[0], Fault::KillSwitch { at, .. } if at == Duration::from_secs(30))
        );
    }

    #[test]
    fn stall_windows_shrink() {
        let faults = vec![Fault::ChannelStall {
            dpid: 1,
            from: Duration::from_secs(30),
            until: Duration::from_secs(50),
        }];
        let out = shrink_schedule(&faults, |cand| {
            cand.iter().any(|f| matches!(f, Fault::ChannelStall { .. }))
        });
        assert!(matches!(
            out.faults[0],
            Fault::ChannelStall { until, .. } if until == Duration::from_secs(31)
        ));
    }
}
