//! A minimal JSON value: byte-stable emission and a strict parser.
//!
//! Matrix reports must be *diffable* — the same grid must serialize to
//! the same bytes on every run and every worker-thread count — and CI
//! must parse a checked-in baseline back for tolerance comparison.
//! This build environment has no crates.io access, so `serde_json` is
//! out; the subset we need (objects, arrays, strings, integers, bools,
//! null) fits comfortably in one module.
//!
//! Stability rules: objects are `BTreeMap`s (keys always sorted),
//! numbers are integers only (metric times are nanosecond counts, so
//! nothing needs a float and no formatting ambiguity exists), and
//! rendering uses fixed two-space indentation.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON document fragment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    pub fn obj(entries: impl IntoIterator<Item = (String, Json)>) -> Json {
        Json::Obj(entries.into_iter().collect())
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Member lookup on an object (`None` elsewhere).
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj()?.get(key)
    }

    /// Render with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(v) if v.is_empty() => out.push_str("[]"),
            Json::Arr(v) => {
                out.push('[');
                for (i, item) in v.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(m) if m.is_empty() => out.push_str("{}"),
            Json::Obj(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Parse a complete document; trailing whitespace is allowed,
    /// trailing content is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing content at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, want: u8) -> Result<(), String> {
        if self.peek() == Some(want) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", want as char, self.pos))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("expected '{lit}' at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'n') => self.eat_lit("null").map(|()| Json::Null),
            Some(b't') => self.eat_lit("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat_lit("false").map(|()| Json::Bool(false)),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            if map.insert(key.clone(), val).is_some() {
                return Err(format!("duplicate key {key:?}"));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Advance over the plain (unescaped, non-quote) run in one go.
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\') {
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid utf-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or(format!("\\u{hex} is not a scalar value"))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                _ => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(format!(
                "float at byte {start}: reports carry integers only"
            ));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .unwrap()
            .parse::<i64>()
            .map(Json::Int)
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Json {
        Json::obj([
            ("b".to_string(), Json::Int(-7)),
            (
                "a".to_string(),
                Json::Arr(vec![Json::Int(1), Json::Str("x\"y".into()), Json::Null]),
            ),
            ("c".to_string(), Json::obj([])),
            ("d".to_string(), Json::Bool(true)),
        ])
    }

    #[test]
    fn round_trips() {
        let v = sample();
        let text = v.render();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn render_is_stable_and_sorted() {
        let text = sample().render();
        // Keys emit in sorted order regardless of insertion order.
        let a = text.find("\"a\"").unwrap();
        let b = text.find("\"b\"").unwrap();
        assert!(a < b);
        assert_eq!(text, sample().render());
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn rejects_floats_and_trailing_garbage() {
        assert!(Json::parse("1.5").is_err());
        assert!(Json::parse("1e3").is_err());
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("{\"k\": 1, \"k\": 2}").is_err());
    }

    #[test]
    fn parses_escapes() {
        let v = Json::parse(r#""a\n\tA\"""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\n\tA\"");
    }

    #[test]
    fn accessors() {
        let v = sample();
        assert_eq!(v.get("b").unwrap().as_i64(), Some(-7));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert!(v.get("missing").is_none());
    }
}
