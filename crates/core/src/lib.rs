//! # rf-core — RouteFlow and its automatic-configuration framework
//!
//! The primary contribution of the paper, assembled from the substrate
//! crates:
//!
//! * [`rfcontroller::RfController`] — the RF-controller: an OpenFlow
//!   slice controller hosting the **RPC server**. On `SwitchDetected`
//!   it spawns a VM whose ID equals the switch's datapath id with the
//!   same number of interfaces; on `LinkDetected` it builds the virtual
//!   interconnect mirroring the physical link, assigns the addresses
//!   the topology controller allocated, and (re)writes the Quagga
//!   configuration files the VM boots from. Every FIB change a VM
//!   reports becomes a `FLOW_MOD` on the mirrored physical switch
//!   (match `nw_dst` prefix → rewrite MACs → output port), with prefix
//!   length encoded in flow priority so OF 1.0's single table performs
//!   longest-prefix matching. It also answers hosts' gateway ARPs and
//!   learns host MACs to install per-host /32 delivery flows.
//! * [`manual::ManualConfigModel`] — the paper's manual-baseline time
//!   model (5 min VM creation + 2 min interface mapping + 8 min routing
//!   configuration per switch) used in Fig. 3.
//! * [`bootstrap`] — one-call assembly of the full Fig. 2 deployment
//!   (switches → FlowVisor → topology controller + RF-controller, RPC
//!   client in between) on any [`rf_topo::Topology`], with optional
//!   host attachment points for end-to-end traffic.
//!
//! ## Quickstart
//!
//! ```
//! use rf_core::bootstrap::{Deployment, DeploymentConfig};
//! use rf_sim::Time;
//!
//! let mut dep = Deployment::build(DeploymentConfig::new(rf_topo::ring(4)));
//! dep.sim.run_until(Time::from_secs(60));
//! assert_eq!(dep.configured_switches(), 4);
//! ```

pub mod bootstrap;
pub mod manual;
pub mod rfcontroller;

pub use bootstrap::{Deployment, DeploymentConfig, HostAttachment};
pub use manual::ManualConfigModel;
pub use rfcontroller::{HostPortConfig, RfController, RfControllerConfig};
