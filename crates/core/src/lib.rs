//! # rf-core — RouteFlow and its automatic-configuration framework
//!
//! The primary contribution of the paper, assembled from the substrate
//! crates and exposed as two composable layers:
//!
//! * **Controller side** — [`apps`]: the RF-controller is an event-bus
//!   engine ([`apps::ControlPlane`], still downcastable under its old
//!   name [`rfcontroller::RfController`]) running pluggable
//!   [`apps::ControlApp`]s. The four standard apps reproduce the
//!   paper's behaviour: on `SwitchDetected` the lifecycle app spawns a
//!   VM whose ID equals the switch's datapath id; on `LinkDetected` it
//!   builds the virtual interconnect mirroring the physical link and
//!   (re)writes the Quagga configuration files; every FIB change a VM
//!   reports becomes a `FLOW_MOD` with prefix length encoded in flow
//!   priority so OF 1.0's single table performs longest-prefix
//!   matching; and the ARP proxy answers hosts' gateway ARPs and
//!   installs per-host /32 delivery flows. Your own apps register on
//!   the same bus and see the same events.
//! * **Experiment side** — [`scenario`]: the fluent
//!   [`scenario::ScenarioBuilder`] assembles the full Fig. 2 stack
//!   (switches → FlowVisor → topology controller + RF-controller, RPC
//!   client in between) on any [`rf_topo::Topology`], with hosts,
//!   traffic workloads, fault schedules and extra control apps, and
//!   hands back a [`scenario::Scenario`] with typed metrics. A
//!   converged scenario can be checkpointed with
//!   [`scenario::Scenario::snapshot`] and forked into divergent
//!   continuations with [`scenario::Scenario::fork`] — the sweep's
//!   shared-prefix mechanism. (The pre-redesign `bootstrap::Deployment`
//!   wrapper is deprecated.)
//! * [`manual::ManualConfigModel`] — the paper's manual-baseline time
//!   model (5 min VM creation + 2 min interface mapping + 8 min routing
//!   configuration per switch) used in Fig. 3.
//!
//! ## Quickstart
//!
//! ```
//! use rf_core::scenario::Scenario;
//! use rf_sim::Time;
//!
//! let mut sc = Scenario::on(rf_topo::ring(4)).start();
//! sc.run_until(Time::from_secs(60));
//! assert_eq!(sc.finish().configured_switches, 4);
//! ```

pub mod apps;
pub mod bootstrap;
pub mod chaos;
pub mod json;
pub mod manual;
pub mod rfcontroller;
pub mod scenario;
pub mod traffic;

pub use apps::{
    AppCtx, ControlApp, ControlEvent, ControlPlane, ControlState, FibChange, LinkChange,
};
#[allow(deprecated)]
pub use bootstrap::{Deployment, DeploymentConfig};
pub use chaos::{
    CampaignStats, ChaosCampaign, ChaosOutcome, ChaosSpec, FaultClass, InvariantViolation,
    ReproCase,
};
pub use manual::ManualConfigModel;
pub use rfcontroller::{HostPortConfig, RfController, RfControllerConfig};
pub use scenario::{
    CellRecord, Fault, FaultError, FaultSchedule, ForkError, HostAttachment, HostSlot, MatrixCell,
    MatrixKnob, MatrixReport, MatrixSpec, Scenario, ScenarioBuilder, ScenarioConfig,
    ScenarioMatrix, ScenarioMetrics, Snapshot, SnapshotError, Workload, WorkloadReport,
};
pub use traffic::{
    TrafficConfig, TrafficMode, TrafficPattern, TrafficReport, TrafficSpec, WorkloadError,
};
