//! The manual-configuration time model from the paper.
//!
//! §2.1: "In manual configurations, we assume that the administrator
//! takes 5 minutes in creating a VM (writing VM configurations,
//! installing Linux distributions and packages like Quagga), 2 minutes
//! in creating mapping between switch interfaces and VM interfaces, and
//! 8 minutes in writing routing configurations for a VM." — 15 minutes
//! per switch, serially. The intro derives "typically 7 hours for 28
//! switches" and "many days" for 1000 from the same model.

use std::time::Duration;

/// The per-switch manual effort model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ManualConfigModel {
    /// Creating a VM (write configs, install distro + Quagga).
    pub vm_creation: Duration,
    /// Mapping switch interfaces ↔ VM interfaces.
    pub interface_mapping: Duration,
    /// Writing the routing configuration files.
    pub routing_config: Duration,
}

impl Default for ManualConfigModel {
    fn default() -> Self {
        ManualConfigModel {
            vm_creation: Duration::from_secs(5 * 60),
            interface_mapping: Duration::from_secs(2 * 60),
            routing_config: Duration::from_secs(8 * 60),
        }
    }
}

impl ManualConfigModel {
    /// Time to configure one switch.
    pub fn per_switch(&self) -> Duration {
        self.vm_creation + self.interface_mapping + self.routing_config
    }

    /// Total manual configuration time for `n` switches (serial: one
    /// administrator, as in the paper).
    pub fn total(&self, n: usize) -> Duration {
        self.per_switch() * n as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_model_is_15_minutes_per_switch() {
        let m = ManualConfigModel::default();
        assert_eq!(m.per_switch(), Duration::from_secs(15 * 60));
    }

    #[test]
    fn twenty_eight_switches_take_seven_hours() {
        // The intro's headline number: "typically 7 hours for 28
        // switches".
        let m = ManualConfigModel::default();
        assert_eq!(m.total(28), Duration::from_secs(7 * 3600));
    }

    #[test]
    fn thousand_switches_take_days() {
        // "For a large topology (typically for 1000 switches), it may
        // take many days": 15 min × 1000 = 250 h ≈ 10.4 days.
        let m = ManualConfigModel::default();
        let days = m.total(1000).as_secs_f64() / 86_400.0;
        assert!(days > 10.0 && days < 11.0, "{days} days");
    }
}
