//! The RF-controller, as configuration plus a compatibility alias.
//!
//! Since the control-plane redesign the controller is the
//! [`crate::apps::ControlPlane`] event-bus engine running four standard
//! [`crate::apps::ControlApp`]s; this module keeps the original paths
//! (`RfController`, `RfControllerConfig`, `HostPortConfig`) working so
//! pre-redesign code and downcasts compile unchanged.

use rf_openflow::PortNumber;
use rf_sim::LinkProfile;
use rf_wire::Ipv4Cidr;
use std::net::Ipv4Addr;
use std::time::Duration;

/// The RouteFlow controller agent: an alias for the event-bus engine,
/// so `sim.agent_as::<RfController>(id)` still downcasts.
pub type RfController = crate::apps::ControlPlane;

/// Administrator-declared host attachment point: the one piece of edge
/// configuration LLDP discovery cannot learn (hosts do not speak LLDP).
/// See DESIGN.md — the paper's demo likewise pre-wires where the video
/// server and client sit.
#[derive(Clone, Debug)]
pub struct HostPortConfig {
    pub dpid: u64,
    pub port: PortNumber,
    /// The host subnet, advertised into OSPF by the mirroring VM.
    pub subnet: Ipv4Cidr,
    /// Gateway address the VM interface takes (hosts point their
    /// default route here).
    pub gateway: Ipv4Addr,
}

/// RF-controller configuration.
#[derive(Clone, Debug)]
pub struct RfControllerConfig {
    /// OpenFlow service this controller listens on (FlowVisor dials it).
    pub of_service: u16,
    /// Simulated VM provisioning/boot latency ("creating a VM" in the
    /// paper's manual model takes 5 minutes; LXC takes ~1 s).
    pub vm_boot_delay: Duration,
    /// Link profile of the virtual interconnect between VMs.
    pub vm_link_profile: LinkProfile,
    /// Host attachment points (edge configuration).
    pub host_ports: Vec<HostPortConfig>,
    /// OSPF hello/dead intervals written into every VM's ospfd.conf
    /// (defaults: Quagga's 10 s / 40 s).
    pub ospf_hello: u16,
    pub ospf_dead: u16,
    /// How many VM create/configure operations may be in flight at
    /// once. `1` reproduces the paper's serial rftest pipeline (the
    /// Fig. 3 bottleneck); larger widths overlap provisioning.
    pub provision_width: usize,
    /// FIB-mirror batching: coalesce up to this many FLOW_MODs per
    /// switch into one multi-message push. `1` sends each FLOW_MOD
    /// immediately (paper-faithful); larger values flush on the batch
    /// threshold or the next flush tick.
    pub fib_batch: usize,
    /// Bound on each switch channel's send queue, which also sets the
    /// per-drain-interval send credits. `None` (default) reproduces
    /// the paper's unbounded fire-and-forget behaviour; `Some(0)`
    /// refuses every message (the degenerate everything-defers case).
    pub channel_capacity: Option<usize>,
    /// What a full bounded channel does with the overflow.
    pub overflow: crate::apps::OverflowPolicy,
    /// Scheduled control-channel stalls (normally injected through
    /// `Fault::ChannelStall` on a `ScenarioBuilder`).
    pub channel_stalls: Vec<crate::apps::ChannelStallWindow>,
}

impl Default for RfControllerConfig {
    fn default() -> Self {
        RfControllerConfig {
            of_service: 6642,
            vm_boot_delay: Duration::from_secs(1),
            vm_link_profile: LinkProfile::default(),
            host_ports: Vec::new(),
            ospf_hello: 10,
            ospf_dead: 40,
            provision_width: 1,
            fib_batch: 1,
            channel_capacity: None,
            overflow: crate::apps::OverflowPolicy::Defer,
            channel_stalls: Vec::new(),
        }
    }
}
