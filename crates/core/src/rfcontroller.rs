//! The RF-controller: RouteFlow + the RPC server.

use bytes::Bytes;
use rf_openflow::{
    Action, FlowModCommand, MessageReader, OfMatch, OfMessage, PortNumber, OFPP_NONE,
    OFP_NO_BUFFER,
};
use rf_rpc::{RpcRequest, RpcServerEndpoint, RPC_SERVER_SERVICE};
use rf_routed::config::VmRouterConfig;
use rf_sim::{Agent, AgentId, ConnId, Ctx, LinkId, LinkProfile, StreamEvent, Time};
use rf_vnet::rfproto::{RfFrameReader, RfMessage, RF_SERVICE};
use rf_vnet::vm::VmAgent;
use rf_wire::{ArpOp, ArpPacket, EtherType, EthernetFrame, Ipv4Cidr, MacAddr};
use std::collections::{BTreeMap, HashMap};
use std::net::Ipv4Addr;
use std::time::Duration;

/// Administrator-declared host attachment point: the one piece of edge
/// configuration LLDP discovery cannot learn (hosts do not speak LLDP).
/// See DESIGN.md — the paper's demo likewise pre-wires where the video
/// server and client sit.
#[derive(Clone, Debug)]
pub struct HostPortConfig {
    pub dpid: u64,
    pub port: PortNumber,
    /// The host subnet, advertised into OSPF by the mirroring VM.
    pub subnet: Ipv4Cidr,
    /// Gateway address the VM interface takes (hosts point their
    /// default route here).
    pub gateway: Ipv4Addr,
}

/// RF-controller configuration.
#[derive(Clone, Debug)]
pub struct RfControllerConfig {
    /// OpenFlow service this controller listens on (FlowVisor dials it).
    pub of_service: u16,
    /// Simulated VM provisioning/boot latency ("creating a VM" in the
    /// paper's manual model takes 5 minutes; LXC takes ~1 s).
    pub vm_boot_delay: Duration,
    /// Link profile of the virtual interconnect between VMs.
    pub vm_link_profile: LinkProfile,
    /// Host attachment points (edge configuration).
    pub host_ports: Vec<HostPortConfig>,
}

impl Default for RfControllerConfig {
    fn default() -> Self {
        RfControllerConfig {
            of_service: 6642,
            vm_boot_delay: Duration::from_secs(1),
            vm_link_profile: LinkProfile::default(),
            host_ports: Vec::new(),
        }
    }
}

/// Flow priority encoding: longest-prefix-match via OF 1.0 priorities.
fn route_priority(prefix_len: u8) -> u16 {
    0x1000 + u16::from(prefix_len) * 8
}
/// Host /32 delivery flows outrank every routed prefix.
const HOST_FLOW_PRIORITY: u16 = 0x2000;

#[derive(Clone, Debug)]
struct SwitchRec {
    num_ports: u16,
    vm: Option<AgentId>,
    vm_conn: Option<ConnId>,
    configured_at: Option<Time>,
}

#[derive(Clone, Debug)]
struct LinkRec {
    a: (u64, u16),
    b: (u64, u16),
    subnet: Ipv4Cidr,
    ip_a: Ipv4Addr,
    ip_b: Ipv4Addr,
    sim_link: Option<LinkId>,
}

/// The RouteFlow controller agent.
pub struct RfController {
    cfg: RfControllerConfig,
    // OpenFlow side.
    of_readers: HashMap<ConnId, MessageReader>,
    of_dpid: HashMap<ConnId, u64>,
    dpid_of: HashMap<u64, ConnId>,
    // RPC side.
    rpc: RpcServerEndpoint,
    rpc_conns: Vec<ConnId>,
    // VM side.
    vm_readers: HashMap<ConnId, RfFrameReader>,
    vm_dpid: HashMap<ConnId, u64>,
    // RouteFlow state.
    switches: BTreeMap<u64, SwitchRec>,
    links: Vec<LinkRec>,
    /// (dpid, port) → (peer dpid, peer port) for next-hop MACs.
    port_peer: HashMap<(u64, u16), (u64, u16)>,
    /// Learned hosts: ip → (dpid, port, mac).
    hosts: HashMap<Ipv4Addr, (u64, u16, MacAddr)>,
    /// Installed routed flows: (dpid, network, len) → priority.
    installed: HashMap<(u64, u32, u8), u16>,
    /// Pending FLOW_MODs for switches whose OF conn is not up yet.
    pending_flows: HashMap<u64, Vec<OfMessage>>,
    /// Links seen before both VMs existed.
    pending_links: Vec<RpcRequest>,
    /// VM-creation queue: the RPC server provisions containers one at
    /// a time (LXC creation is serial in RouteFlow's rftest scripts),
    /// which is what makes automatic configuration time grow with the
    /// switch count in Fig. 3.
    vm_queue: std::collections::VecDeque<(u64, u16)>,
    vm_creating: Option<u64>,
    xid: u32,
    /// Diagnostics.
    pub flows_installed: u64,
    pub flows_removed: u64,
    pub arp_replies: u64,
}

impl RfController {
    pub fn new(cfg: RfControllerConfig) -> RfController {
        RfController {
            cfg,
            of_readers: HashMap::new(),
            of_dpid: HashMap::new(),
            dpid_of: HashMap::new(),
            rpc: RpcServerEndpoint::new(),
            rpc_conns: Vec::new(),
            vm_readers: HashMap::new(),
            vm_dpid: HashMap::new(),
            switches: BTreeMap::new(),
            links: Vec::new(),
            port_peer: HashMap::new(),
            hosts: HashMap::new(),
            installed: HashMap::new(),
            pending_flows: HashMap::new(),
            pending_links: Vec::new(),
            vm_queue: std::collections::VecDeque::new(),
            vm_creating: None,
            xid: 1,
            flows_installed: 0,
            flows_removed: 0,
            arp_replies: 0,
        }
    }

    /// Per-switch configured state: the paper's GUI turns a switch
    /// green "when it has a corresponding VM".
    pub fn switch_states(&self) -> Vec<(u64, bool)> {
        self.switches
            .iter()
            .map(|(d, s)| (*d, s.configured_at.is_some()))
            .collect()
    }

    /// Port count recorded for each switch (the VM is created "with
    /// the number of ports equivalent to the switch ports").
    pub fn switch_port_counts(&self) -> Vec<(u64, u16)> {
        self.switches
            .iter()
            .map(|(d, s)| (*d, s.num_ports))
            .collect()
    }

    /// Number of switches whose VM is up (green in the GUI).
    pub fn configured_switches(&self) -> usize {
        self.switches
            .values()
            .filter(|s| s.configured_at.is_some())
            .count()
    }

    /// Time each switch turned green.
    pub fn configured_times(&self) -> Vec<(u64, Option<Time>)> {
        self.switches
            .iter()
            .map(|(d, s)| (*d, s.configured_at))
            .collect()
    }

    /// When the last of the first `n` switches turned green.
    pub fn all_configured_at(&self, n: usize) -> Option<Time> {
        if self.configured_switches() < n {
            return None;
        }
        self.switches
            .values()
            .filter_map(|s| s.configured_at)
            .max()
    }

    fn next_xid(&mut self) -> u32 {
        self.xid = self.xid.wrapping_add(1);
        self.xid
    }

    fn send_of(&mut self, ctx: &mut Ctx<'_>, dpid: u64, msg: OfMessage) {
        let xid = self.next_xid();
        if let Some(&conn) = self.dpid_of.get(&dpid) {
            ctx.conn_send(conn, msg.encode(xid));
        } else {
            self.pending_flows.entry(dpid).or_default().push(msg);
        }
    }

    // ------------------------------------------------------------------
    // RPC server: the automatic-configuration engine.
    // ------------------------------------------------------------------

    fn handle_rpc(&mut self, ctx: &mut Ctx<'_>, req: RpcRequest) {
        match req {
            RpcRequest::SwitchDetected { dpid, num_ports } => {
                if self.switches.contains_key(&dpid)
                    || self.vm_queue.iter().any(|(d, _)| *d == dpid)
                {
                    return;
                }
                // Paper §2: "the RPC server creates a VM with an ID
                // identical to the switch ID and the number of ports
                // equivalent to the switch ports." Creation is queued:
                // containers are provisioned one at a time.
                self.vm_queue.push_back((dpid, num_ports));
                self.spawn_next_vm(ctx);
            }
            RpcRequest::SwitchRemoved { dpid } => {
                if let Some(rec) = self.switches.remove(&dpid) {
                    if let Some(vm) = rec.vm {
                        ctx.kill(vm);
                    }
                }
                self.port_peer.retain(|(d, _), (pd, _)| *d != dpid && *pd != dpid);
                self.links.retain(|l| l.a.0 != dpid && l.b.0 != dpid);
            }
            RpcRequest::LinkDetected {
                a_dpid,
                a_port,
                b_dpid,
                b_port,
                subnet,
                ip_a,
                ip_b,
            } => {
                let (Some(va), Some(vb)) = (
                    self.switches.get(&a_dpid).and_then(|s| s.vm),
                    self.switches.get(&b_dpid).and_then(|s| s.vm),
                ) else {
                    self.pending_links.push(RpcRequest::LinkDetected {
                        a_dpid,
                        a_port,
                        b_dpid,
                        b_port,
                        subnet,
                        ip_a,
                        ip_b,
                    });
                    return;
                };
                if self
                    .links
                    .iter()
                    .any(|l| l.a == (a_dpid, a_port) && l.b == (b_dpid, b_port))
                {
                    return; // duplicate
                }
                // Mirror the physical link in the virtual environment.
                let sim_link = ctx.add_link(
                    (va, u32::from(a_port)),
                    (vb, u32::from(b_port)),
                    self.cfg.vm_link_profile,
                );
                self.links.push(LinkRec {
                    a: (a_dpid, a_port),
                    b: (b_dpid, b_port),
                    subnet,
                    ip_a,
                    ip_b,
                    sim_link: Some(sim_link),
                });
                self.port_peer.insert((a_dpid, a_port), (b_dpid, b_port));
                self.port_peer.insert((b_dpid, b_port), (a_dpid, a_port));
                ctx.trace(
                    "rf.link_configured",
                    format!("{a_dpid:#x}:{a_port} <-> {b_dpid:#x}:{b_port} {subnet}"),
                );
                // Rewrite both VMs' configuration files.
                self.push_configs(ctx, a_dpid);
                self.push_configs(ctx, b_dpid);
            }
            RpcRequest::LinkRemoved {
                a_dpid,
                a_port,
                b_dpid,
                b_port,
            } => {
                if let Some(pos) = self
                    .links
                    .iter()
                    .position(|l| l.a == (a_dpid, a_port) && l.b == (b_dpid, b_port))
                {
                    let rec = self.links.remove(pos);
                    if let Some(l) = rec.sim_link {
                        ctx.remove_link(l);
                    }
                }
                self.port_peer.remove(&(a_dpid, a_port));
                self.port_peer.remove(&(b_dpid, b_port));
                self.push_configs(ctx, a_dpid);
                self.push_configs(ctx, b_dpid);
            }
            RpcRequest::PortStatus { .. } => {
                // Port flaps are handled by OSPF's dead-interval on the
                // mirrored interface; nothing to do here.
            }
        }
    }

    /// Provision the next queued VM, if the creation pipeline is idle.
    fn spawn_next_vm(&mut self, ctx: &mut Ctx<'_>) {
        if self.vm_creating.is_some() {
            return;
        }
        let Some((dpid, num_ports)) = self.vm_queue.pop_front() else {
            return;
        };
        let vm = ctx.spawn(
            &format!("vm-{dpid:x}"),
            Box::new(VmAgent::new(dpid, ctx.self_id(), self.cfg.vm_boot_delay)),
        );
        ctx.trace("rf.vm_create", format!("dpid {dpid:#x} ({num_ports} ports)"));
        self.vm_creating = Some(dpid);
        self.switches.insert(
            dpid,
            SwitchRec {
                num_ports,
                vm: Some(vm),
                vm_conn: None,
                configured_at: None,
            },
        );
        // Any links that arrived early can be wired now.
        let pending = std::mem::take(&mut self.pending_links);
        for p in pending {
            self.handle_rpc(ctx, p);
        }
    }

    /// Interface table for a VM: link interfaces + host-port gateways.
    fn vm_interfaces(&self, dpid: u64) -> Vec<(u16, Ipv4Cidr)> {
        let mut out = Vec::new();
        for l in &self.links {
            if l.a.0 == dpid {
                out.push((l.a.1, Ipv4Cidr::new(l.ip_a, l.subnet.prefix_len)));
            }
            if l.b.0 == dpid {
                out.push((l.b.1, Ipv4Cidr::new(l.ip_b, l.subnet.prefix_len)));
            }
        }
        for h in &self.cfg.host_ports {
            if h.dpid == dpid {
                out.push((h.port, Ipv4Cidr::new(h.gateway, h.subnet.prefix_len)));
            }
        }
        out.sort_by_key(|(p, _)| *p);
        out
    }

    /// Regenerate and push this VM's configuration files — "the RPC
    /// server writes routing configuration files (e.g. ospf.conf,
    /// zebra.conf, bgp.conf) using the information present in the
    /// configuration message" (§2).
    fn push_configs(&mut self, ctx: &mut Ctx<'_>, dpid: u64) {
        let Some(rec) = self.switches.get(&dpid) else {
            return;
        };
        let Some(conn) = rec.vm_conn else {
            return; // VM not booted yet; configs sent on Booted
        };
        let ifaces = self.vm_interfaces(dpid);
        let cfg = VmRouterConfig::generate(dpid, &ifaces);
        let (zebra, ospf, bgp) = cfg.render_all();
        ctx.conn_send(conn, RfMessage::WriteConfigs { zebra, ospf, bgp }.encode());
        ctx.count("rf.configs_written", 1);
    }

    // ------------------------------------------------------------------
    // RouteFlow: route → flow translation.
    // ------------------------------------------------------------------

    fn handle_vm_msg(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, msg: RfMessage) {
        match msg {
            RfMessage::Booted { dpid } => {
                self.vm_dpid.insert(conn, dpid);
                if let Some(rec) = self.switches.get_mut(&dpid) {
                    rec.vm_conn = Some(conn);
                    if rec.configured_at.is_none() {
                        rec.configured_at = Some(ctx.now());
                        // The GUI's red → green transition.
                        ctx.trace("rf.switch_configured", format!("dpid {dpid:#x}"));
                    }
                }
                self.push_configs(ctx, dpid);
                // The creation pipeline moves on to the next switch.
                if self.vm_creating == Some(dpid) {
                    self.vm_creating = None;
                    self.spawn_next_vm(ctx);
                }
            }
            RfMessage::RouteAdd {
                prefix,
                next_hop,
                out_iface,
                metric: _,
            } => {
                let Some(&dpid) = self.vm_dpid.get(&conn) else {
                    return;
                };
                if next_hop.is_none() {
                    // Connected routes need no transit flow: traffic to
                    // the hosts behind this switch is delivered by the
                    // learned per-host /32 flows; traffic to the /30
                    // router addresses stays in the VM environment.
                    return;
                }
                let Some(&(peer_dpid, peer_port)) = self.port_peer.get(&(dpid, out_iface)) else {
                    return; // stale route onto a vanished link
                };
                let match_ = OfMatch::ipv4_dst_prefix(prefix.network(), prefix.prefix_len);
                let fm = OfMessage::FlowMod {
                    of_match: match_,
                    cookie: u64::from(u32::from(prefix.network())) << 8
                        | u64::from(prefix.prefix_len),
                    command: FlowModCommand::Add,
                    idle_timeout: 0,
                    hard_timeout: 0,
                    priority: route_priority(prefix.prefix_len),
                    buffer_id: OFP_NO_BUFFER,
                    out_port: OFPP_NONE,
                    flags: 0,
                    actions: vec![
                        Action::SetDlSrc(MacAddr::from_dpid_port(dpid, out_iface)),
                        Action::SetDlDst(MacAddr::from_dpid_port(peer_dpid, peer_port)),
                        Action::output(out_iface),
                    ],
                };
                self.installed.insert(
                    (dpid, u32::from(prefix.network()), prefix.prefix_len),
                    route_priority(prefix.prefix_len),
                );
                self.flows_installed += 1;
                ctx.count("rf.flow_add", 1);
                self.send_of(ctx, dpid, fm);
            }
            RfMessage::RouteDel { prefix } => {
                let Some(&dpid) = self.vm_dpid.get(&conn) else {
                    return;
                };
                let key = (dpid, u32::from(prefix.network()), prefix.prefix_len);
                let Some(priority) = self.installed.remove(&key) else {
                    return;
                };
                let fm = OfMessage::FlowMod {
                    of_match: OfMatch::ipv4_dst_prefix(prefix.network(), prefix.prefix_len),
                    cookie: 0,
                    command: FlowModCommand::DeleteStrict,
                    idle_timeout: 0,
                    hard_timeout: 0,
                    priority,
                    buffer_id: OFP_NO_BUFFER,
                    out_port: OFPP_NONE,
                    flags: 0,
                    actions: vec![],
                };
                self.flows_removed += 1;
                ctx.count("rf.flow_del", 1);
                self.send_of(ctx, dpid, fm);
            }
            RfMessage::WriteConfigs { .. } => {} // server → VM only
        }
    }

    // ------------------------------------------------------------------
    // OpenFlow side: gateway ARP + host learning.
    // ------------------------------------------------------------------

    fn handle_of_msg(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, msg: OfMessage, xid: u32) {
        match msg {
            OfMessage::Hello => {}
            OfMessage::EchoRequest(d) => {
                ctx.conn_send(conn, OfMessage::EchoReply(d).encode(xid));
            }
            OfMessage::FeaturesReply(f) => {
                self.of_dpid.insert(conn, f.datapath_id);
                self.dpid_of.insert(f.datapath_id, conn);
                // Flush flow mods queued before the channel came up.
                if let Some(q) = self.pending_flows.remove(&f.datapath_id) {
                    for fm in q {
                        let xid = self.next_xid();
                        ctx.conn_send(conn, fm.encode(xid));
                    }
                }
            }
            OfMessage::PacketIn { in_port, data, .. } => {
                let Some(&dpid) = self.of_dpid.get(&conn) else {
                    return;
                };
                let Ok(eth) = EthernetFrame::parse(&data) else {
                    return;
                };
                if eth.ethertype == EtherType::IPV4 {
                    // A punted IPv4 packet destined to a host we have
                    // not learned yet: resolve it on demand, like a
                    // router ARPs for a directly-connected next hop.
                    // The punted packet itself is dropped (no ARP
                    // queue); the sender's retry flows once the /32 is
                    // installed.
                    if let Ok(ip) = rf_wire::Ipv4Packet::parse(&eth.payload) {
                        if !self.hosts.contains_key(&ip.dst) {
                            let target = self
                                .cfg
                                .host_ports
                                .iter()
                                .find(|h| h.dpid == dpid && h.subnet.contains(ip.dst))
                                .cloned();
                            if let Some(h) = target {
                                let gw_mac = MacAddr::from_dpid_port(h.dpid, h.port);
                                let req = ArpPacket::request(gw_mac, h.gateway, ip.dst);
                                let frame = EthernetFrame::new(
                                    MacAddr::BROADCAST,
                                    gw_mac,
                                    EtherType::ARP,
                                    req.emit(),
                                );
                                let po = OfMessage::PacketOut {
                                    buffer_id: OFP_NO_BUFFER,
                                    in_port: OFPP_NONE,
                                    actions: vec![Action::output(h.port)],
                                    data: frame.emit(),
                                };
                                ctx.count("rf.arp_probe", 1);
                                let xid = self.next_xid();
                                ctx.conn_send(conn, po.encode(xid));
                            }
                        }
                    }
                    return;
                }
                if eth.ethertype != EtherType::ARP {
                    return;
                }
                let Ok(arp) = ArpPacket::parse(&eth.payload) else {
                    return;
                };
                // Learn the sender if it is a host on a declared port.
                let on_host_port = self
                    .cfg
                    .host_ports
                    .iter()
                    .any(|h| h.dpid == dpid && h.port == in_port && h.subnet.contains(arp.sender_ip));
                if on_host_port && arp.sender_ip != Ipv4Addr::UNSPECIFIED {
                    let newly = self
                        .hosts
                        .insert(arp.sender_ip, (dpid, in_port, arp.sender_mac))
                        .is_none();
                    if newly {
                        ctx.trace(
                            "rf.host_learned",
                            format!("{} at {dpid:#x}:{in_port}", arp.sender_ip),
                        );
                        self.install_host_flow(ctx, arp.sender_ip, dpid, in_port, arp.sender_mac);
                    }
                }
                // Answer gateway ARP requests on the VM's behalf.
                if arp.op == ArpOp::Request {
                    let gw = self
                        .cfg
                        .host_ports
                        .iter()
                        .find(|h| h.dpid == dpid && h.port == in_port && h.gateway == arp.target_ip);
                    if let Some(h) = gw {
                        let gw_mac = MacAddr::from_dpid_port(h.dpid, h.port);
                        let reply = ArpPacket::reply_to(&arp, gw_mac);
                        let frame = EthernetFrame::new(
                            arp.sender_mac,
                            gw_mac,
                            EtherType::ARP,
                            reply.emit(),
                        );
                        let po = OfMessage::PacketOut {
                            buffer_id: OFP_NO_BUFFER,
                            in_port: OFPP_NONE,
                            actions: vec![Action::output(in_port)],
                            data: frame.emit(),
                        };
                        self.arp_replies += 1;
                        ctx.count("rf.arp_reply", 1);
                        let xid = self.next_xid();
                        ctx.conn_send(conn, po.encode(xid));
                    }
                }
            }
            _ => {}
        }
    }

    fn install_host_flow(
        &mut self,
        ctx: &mut Ctx<'_>,
        ip: Ipv4Addr,
        dpid: u64,
        port: u16,
        mac: MacAddr,
    ) {
        let fm = OfMessage::FlowMod {
            of_match: OfMatch::ipv4_dst_prefix(ip, 32),
            cookie: 0x4F53_5400, // "HOST"
            command: FlowModCommand::Add,
            idle_timeout: 0,
            hard_timeout: 0,
            priority: HOST_FLOW_PRIORITY,
            buffer_id: OFP_NO_BUFFER,
            out_port: OFPP_NONE,
            flags: 0,
            actions: vec![
                Action::SetDlSrc(MacAddr::from_dpid_port(dpid, port)),
                Action::SetDlDst(mac),
                Action::output(port),
            ],
        };
        self.flows_installed += 1;
        ctx.count("rf.flow_add", 1);
        self.send_of(ctx, dpid, fm);
    }
}

impl Agent for RfController {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.listen(self.cfg.of_service);
        ctx.listen(RPC_SERVER_SERVICE);
        ctx.listen(RF_SERVICE);
    }

    fn on_stream(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, event: StreamEvent) {
        match event {
            StreamEvent::Opened {
                service,
                initiated_by_us,
                ..
            } => {
                if initiated_by_us {
                    return;
                }
                match service {
                    s if s == RPC_SERVER_SERVICE => self.rpc_conns.push(conn),
                    s if s == RF_SERVICE => {
                        self.vm_readers.insert(conn, RfFrameReader::new());
                    }
                    _ => {
                        // FlowVisor (or a switch directly) on the OF side.
                        self.of_readers.insert(conn, MessageReader::new());
                        ctx.conn_send(conn, OfMessage::Hello.encode(0));
                        let xid = self.next_xid();
                        ctx.conn_send(conn, OfMessage::FeaturesRequest.encode(xid));
                    }
                }
            }
            StreamEvent::Data(data) => {
                if self.rpc_conns.contains(&conn) {
                    let (fresh, acks) = self.rpc.feed(&data);
                    for ack in acks {
                        ctx.conn_send(conn, ack);
                    }
                    for req in fresh {
                        self.handle_rpc(ctx, req);
                    }
                } else if self.vm_readers.contains_key(&conn) {
                    let msgs = {
                        let r = self.vm_readers.get_mut(&conn).unwrap();
                        r.push(&data);
                        let mut v = Vec::new();
                        while let Some(m) = r.next() {
                            v.push(m);
                        }
                        v
                    };
                    for m in msgs {
                        self.handle_vm_msg(ctx, conn, m);
                    }
                } else if self.of_readers.contains_key(&conn) {
                    let msgs = {
                        let r = self.of_readers.get_mut(&conn).unwrap();
                        r.push(&data);
                        let mut v = Vec::new();
                        while let Some(Ok(m)) = r.next() {
                            v.push(m);
                        }
                        v
                    };
                    for (m, xid) in msgs {
                        self.handle_of_msg(ctx, conn, m, xid);
                    }
                }
            }
            StreamEvent::Closed => {
                self.rpc_conns.retain(|c| *c != conn);
                self.vm_readers.remove(&conn);
                self.of_readers.remove(&conn);
                if let Some(dpid) = self.of_dpid.remove(&conn) {
                    self.dpid_of.remove(&dpid);
                }
                if let Some(dpid) = self.vm_dpid.remove(&conn) {
                    if let Some(rec) = self.switches.get_mut(&dpid) {
                        rec.vm_conn = None;
                    }
                }
            }
        }
    }
}

// Silence the unused-import lint for Bytes (used only in trait bounds
// via encode() return values).
#[allow(dead_code)]
fn _bytes_witness(_: Bytes) {}
