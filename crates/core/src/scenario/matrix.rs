//! `ScenarioMatrix` — a parallel sweep driver over scenario grids.
//!
//! The simulator is single-threaded, but scenarios are independent:
//! each (seed × topology × fault-schedule × knob) cell builds its own
//! [`Sim`] and runs to completion inside one worker thread. The
//! [`Agent`](rf_sim::Agent) and [`ControlApp`](crate::apps::ControlApp)
//! traits are `Send`, so the whole build path crosses the spawn
//! boundary without ceremony.
//!
//! Determinism contract: a grid produces the *same report bytes* at
//! any worker count. Cells are keyed and sorted, each cell's sim is
//! seeded from the cell alone, and nothing wall-clock ever enters the
//! report.
//!
//! ```no_run
//! use rf_core::scenario::{MatrixSpec, ScenarioMatrix};
//!
//! let spec = MatrixSpec {
//!     seeds: vec![1],
//!     topologies: vec!["ring-4".into()],
//!     ..MatrixSpec::smoke()
//! };
//! let report = ScenarioMatrix::new(spec).run(2);
//! // seeds × topologies × schedules × knobs
//! assert_eq!(report.cells.len(), 1 * 1 * 4 * 4);
//! ```

use super::report::{CellRecord, MatrixReport};
use super::{Fault, Scenario, ScenarioBuilder, Snapshot, SnapshotError, Workload, WorkloadReport};
use crate::apps::OverflowPolicy;
use crate::traffic::{FlowSize, TrafficSpec, WorkloadError};
use rf_sim::Time;
use rf_topo::TopoSpec;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A named fault schedule — one axis value of the grid.
#[derive(Clone, Debug)]
pub struct FaultSchedule {
    /// Stable name, used in cell keys (`fault=<name>`).
    pub name: String,
    pub faults: Vec<Fault>,
}

impl FaultSchedule {
    /// The empty schedule (`fault=none`).
    pub fn none() -> FaultSchedule {
        FaultSchedule {
            name: "none".into(),
            faults: Vec::new(),
        }
    }

    pub fn new(name: impl Into<String>, faults: Vec<Fault>) -> FaultSchedule {
        FaultSchedule {
            name: name.into(),
            faults,
        }
    }

    /// Kill the switch at `node` at time `at`.
    pub fn kill_switch(node: usize, at: Duration) -> FaultSchedule {
        FaultSchedule {
            name: format!("kill{node}@{}", fmt_at(at)),
            faults: vec![Fault::KillSwitch { node, at }],
        }
    }

    /// Kill the switch at `node` at `kill_at`, then boot a pristine
    /// replacement into its slot at `revive_at` — the full
    /// fail-and-heal cycle (the revived switch reconnects, a fresh VM
    /// is provisioned, OSPF re-forms, the FIB re-mirrors).
    pub fn kill_revive(node: usize, kill_at: Duration, revive_at: Duration) -> FaultSchedule {
        assert!(kill_at < revive_at, "revive must follow the kill");
        FaultSchedule {
            name: format!("kill{node}@{}+rev@{}", fmt_at(kill_at), fmt_at(revive_at)),
            faults: vec![
                Fault::KillSwitch { node, at: kill_at },
                Fault::ReviveSwitch {
                    node,
                    at: revive_at,
                },
            ],
        }
    }

    /// Flap topology link `edge`: down/up `cycles` times starting at
    /// `first_down`, each phase lasting `half_period`. The soak ends
    /// with the link up, so the network is expected to fully heal.
    pub fn link_flap(
        edge: usize,
        first_down: Duration,
        half_period: Duration,
        cycles: u32,
    ) -> FaultSchedule {
        assert!(cycles >= 1);
        let mut faults = Vec::new();
        for k in 0..cycles {
            let down = first_down + 2 * k * half_period;
            faults.push(Fault::LinkDown { edge, at: down });
            faults.push(Fault::LinkUp {
                edge,
                at: down + half_period,
            });
        }
        // The half period is part of the name: two flap schedules
        // differing only in cadence must produce distinct cell keys,
        // or the report aggregation rejects the grid as duplicate.
        FaultSchedule {
            name: format!(
                "flap{edge}x{cycles}@{}+{}",
                fmt_at(first_down),
                fmt_at(half_period)
            ),
            faults,
        }
    }

    /// Stall the controller's channel to `dpid` over `from..until` —
    /// the control-plane fault the bounded channel layer exists for.
    pub fn channel_stall(dpid: u64, from: Duration, until: Duration) -> FaultSchedule {
        FaultSchedule {
            name: format!("stall{dpid}@{}-{}", fmt_at(from), fmt_at(until)),
            faults: vec![Fault::ChannelStall { dpid, from, until }],
        }
    }

    /// Sustained-loss soak: topology link `edge` drops `rate` percent
    /// of frames for the `span` window, then heals. Both the loss
    /// onset and the restore are scheduled faults, so recovery is
    /// measured from the heal.
    pub fn link_loss(edge: usize, rate: f64, span: std::ops::Range<Duration>) -> FaultSchedule {
        assert!(span.start < span.end, "loss window must be non-empty");
        FaultSchedule {
            name: format!(
                "loss{edge}x{rate}@{}-{}",
                fmt_at(span.start),
                fmt_at(span.end)
            ),
            faults: vec![
                Fault::LinkLoss {
                    edge,
                    loss_pct: rate,
                    at: span.start,
                },
                Fault::LinkLoss {
                    edge,
                    loss_pct: 0.0,
                    at: span.end,
                },
            ],
        }
    }

    /// When the last scheduled disturbance ends, if any. Recovery is
    /// measured from this instant: after it, no further disturbance is
    /// coming, so the next successful probe marks the healed network.
    /// (A stall window "fires" when it closes.)
    pub fn last_fault_at(&self) -> Option<Duration> {
        self.faults
            .iter()
            .map(|f| match f {
                Fault::KillSwitch { at, .. }
                | Fault::ReviveSwitch { at, .. }
                | Fault::LinkDown { at, .. }
                | Fault::LinkUp { at, .. }
                | Fault::LinkLoss { at, .. } => *at,
                Fault::ChannelStall { until, .. } => *until,
            })
            .max()
    }
}

fn fmt_at(d: Duration) -> String {
    if d.subsec_nanos() == 0 {
        format!("{}s", d.as_secs())
    } else {
        format!("{}ms", d.as_millis())
    }
}

/// The probe workload a knob attaches to each cell.
#[derive(Clone, Debug, PartialEq)]
pub enum MatrixWorkload {
    /// One pinger across the topology's farthest switch pair (the
    /// historical default).
    FarthestPing,
    /// `clients` pingers converging on the farthest switch — fan-in
    /// control-plane load (ARP answers and /32 flows all from one edge
    /// switch).
    PingFanIn { clients: usize },
    /// A stochastic traffic workload, placed on the concrete topology
    /// at cell build time (see [`TrafficSpec::instantiate`]).
    Traffic(TrafficSpec),
}

/// A named bundle of scenario parameters — the `knob` axis.
#[derive(Clone, Debug)]
pub struct MatrixKnob {
    /// Stable name, used in cell keys (`knob=<name>`).
    pub name: String,
    pub probe_interval: Duration,
    pub vm_boot_delay: Duration,
    pub ospf_hello: u16,
    pub ospf_dead: u16,
    pub use_flowvisor: bool,
    /// VM provisioning pipeline width (1 = paper-serial).
    pub provision_width: usize,
    /// FIB-mirror FLOW_MOD batch size per switch (1 = unbatched).
    pub fib_batch: usize,
    /// Switch-channel send-queue bound (`None` = unbounded).
    pub channel_capacity: Option<usize>,
    /// Overflow policy of a bounded channel.
    pub overflow: OverflowPolicy,
    /// The probe workload built into each cell.
    pub workload: MatrixWorkload,
    /// Worker threads for the cell's post-convergence spans (1 =
    /// sequential). Deliberately *not* part of the cell key: the
    /// parallel kernel is byte-identical to the sequential one, so the
    /// same cell at any core count is the same experiment. The matrix
    /// scheduler may raise this at run time with spare cores
    /// ([`ScenarioMatrix::run_instrumented`]).
    pub parallel_cores: usize,
}

impl MatrixKnob {
    /// The fast-timer settings every quick test uses (1 s hello / 4 s
    /// dead / 500 ms probes).
    pub fn fast(name: impl Into<String>) -> MatrixKnob {
        MatrixKnob {
            name: name.into(),
            probe_interval: Duration::from_millis(500),
            vm_boot_delay: Duration::from_secs(1),
            ospf_hello: 1,
            ospf_dead: 4,
            use_flowvisor: true,
            provision_width: 1,
            fib_batch: 1,
            channel_capacity: None,
            overflow: OverflowPolicy::Defer,
            workload: MatrixWorkload::FarthestPing,
            parallel_cores: 1,
        }
    }

    /// The paper's defaults (Quagga 10 s / 40 s timers, 1 s probes).
    pub fn paper(name: impl Into<String>) -> MatrixKnob {
        MatrixKnob {
            name: name.into(),
            probe_interval: Duration::from_secs(1),
            vm_boot_delay: Duration::from_secs(1),
            ospf_hello: 10,
            ospf_dead: 40,
            use_flowvisor: true,
            provision_width: 1,
            fib_batch: 1,
            channel_capacity: None,
            overflow: OverflowPolicy::Defer,
            workload: MatrixWorkload::FarthestPing,
            parallel_cores: 1,
        }
    }

    pub fn with_probe_interval(mut self, d: Duration) -> Self {
        self.probe_interval = d;
        self
    }

    pub fn with_vm_boot_delay(mut self, d: Duration) -> Self {
        self.vm_boot_delay = d;
        self
    }

    pub fn with_ospf_timers(mut self, hello: u16, dead: u16) -> Self {
        self.ospf_hello = hello;
        self.ospf_dead = dead;
        self
    }

    pub fn without_flowvisor(mut self) -> Self {
        self.use_flowvisor = false;
        self
    }

    /// VM provisioning pipeline width (the Fig. 3 fast path).
    pub fn with_provision_width(mut self, k: usize) -> Self {
        self.provision_width = k.max(1);
        self
    }

    /// FIB-mirror FLOW_MOD batch size per switch.
    pub fn with_fib_batch(mut self, n: usize) -> Self {
        self.fib_batch = n.max(1);
        self
    }

    /// Bound each switch channel's send queue (and per-interval send
    /// credits) to `n` messages.
    pub fn with_channel_capacity(mut self, n: usize) -> Self {
        self.channel_capacity = Some(n);
        self
    }

    /// Overflow policy of a bounded channel.
    pub fn with_overflow(mut self, policy: OverflowPolicy) -> Self {
        self.overflow = policy;
        self
    }

    /// Replace the probe workload with an `n`-client fan-in.
    pub fn with_fan_in(mut self, clients: usize) -> Self {
        assert!(clients >= 1);
        self.workload = MatrixWorkload::PingFanIn { clients };
        self
    }

    /// Replace the probe workload with a stochastic traffic workload.
    pub fn with_traffic(mut self, spec: TrafficSpec) -> Self {
        self.workload = MatrixWorkload::Traffic(spec);
        self
    }

    /// Step the cell's post-convergence spans on the parallel kernel
    /// with up to `n` regions.
    pub fn with_parallel_cores(mut self, n: usize) -> Self {
        self.parallel_cores = n.max(1);
        self
    }

    /// Apply this knob to a builder.
    pub fn apply(&self, b: ScenarioBuilder) -> ScenarioBuilder {
        let mut b = b
            .probe_interval(self.probe_interval)
            .vm_boot_delay(self.vm_boot_delay)
            .ospf_timers(self.ospf_hello, self.ospf_dead)
            .provision_width(self.provision_width)
            .fib_batch(self.fib_batch)
            .overflow_policy(self.overflow)
            .parallel_cores(self.parallel_cores);
        if let Some(cap) = self.channel_capacity {
            b = b.channel_capacity(cap);
        }
        if self.use_flowvisor {
            b
        } else {
            b.without_flowvisor()
        }
    }
}

/// One grid point, handed to the builder closure.
#[derive(Clone, Debug)]
pub struct MatrixCell {
    pub seed: u64,
    /// Topology name. Kept as the spelled-out string (not a parsed
    /// [`TopoSpec`]) because it is part of the cell key and because a
    /// *malformed* name must still form a cell — one that reports
    /// `build_error = 1` — rather than be rejected at grid-assembly
    /// time. `TopoSpec`'s `Display` emits exactly these names, so
    /// typed construction via [`MatrixCell::new`] is lossless.
    pub topology: String,
    pub schedule: FaultSchedule,
    pub knob: MatrixKnob,
}

impl MatrixCell {
    /// Typed construction: any `impl Into<TopoSpec>` names the
    /// topology; the key string comes from the spec's `Display`, which
    /// round-trips through `FromStr`, so keys stay byte-stable.
    pub fn new(
        seed: u64,
        topology: impl Into<TopoSpec>,
        schedule: FaultSchedule,
        knob: MatrixKnob,
    ) -> MatrixCell {
        MatrixCell {
            seed,
            topology: topology.into().to_string(),
            schedule,
            knob,
        }
    }

    /// The cell's topology as a typed spec, if the name parses.
    pub fn topo_spec(&self) -> Result<TopoSpec, rf_topo::TopoParseError> {
        self.topology.parse()
    }

    /// The stable report key. Axis order is fixed; sorting keys groups
    /// cells by topology first, which is how humans read the report.
    pub fn key(&self) -> String {
        format!(
            "topo={}/fault={}/knob={}/seed={}",
            self.topology, self.schedule.name, self.knob.name, self.seed
        )
    }
}

/// The grid definition plus the per-cell run policy.
#[derive(Clone, Debug)]
pub struct MatrixSpec {
    pub seeds: Vec<u64>,
    pub topologies: Vec<String>,
    pub schedules: Vec<FaultSchedule>,
    pub knobs: Vec<MatrixKnob>,
    /// Give up on a cell's configuration phase after this much
    /// simulated time (the cell still reports, without config metrics).
    pub configure_deadline: Duration,
    /// After configuration, keep the world running this long past the
    /// last scheduled fault so recovery can be observed.
    pub post_fault_window: Duration,
    /// Fault-free settle time after configuration (lets the probe
    /// workload log a few round trips).
    pub settle: Duration,
}

impl MatrixSpec {
    /// The CI smoke grid: two seeds × two small rings × four fault
    /// schedules (none, transit-switch kill, link flap, cold-start
    /// channel stall) × six knobs (paper-serial fast timers, the
    /// k-wide + batched fast path, a bounded capacity-2 channel with
    /// deferral, a 3-client fan-in, a packet-level Poisson
    /// request/response load, and a flow-level incast). Seconds of
    /// wall clock, but every fault path, both controller pipelines,
    /// the backpressure machinery and both traffic granularities are
    /// exercised.
    pub fn smoke() -> MatrixSpec {
        MatrixSpec {
            seeds: vec![1, 2],
            topologies: vec!["ring-4".into(), "ring-5".into()],
            schedules: vec![
                FaultSchedule::none(),
                // Node 1 is transit between the standard probe pair on
                // small rings; both rings route around its death.
                FaultSchedule::kill_switch(1, Duration::from_secs(30)),
                FaultSchedule::link_flap(0, Duration::from_secs(30), Duration::from_secs(8), 2),
                // Stall a transit switch's control channel across the
                // cold-start burst: FLOW_MODs queue, then converge.
                FaultSchedule::channel_stall(2, Duration::from_secs(2), Duration::from_secs(30)),
            ],
            knobs: vec![
                MatrixKnob::fast("fast"),
                MatrixKnob::fast("fast-k4b8")
                    .with_provision_width(4)
                    .with_fib_batch(8),
                MatrixKnob::fast("fast-cap2").with_channel_capacity(2),
                MatrixKnob::fast("fast-fanin3").with_fan_in(3),
                // Stochastic load rides the same grid: a packet-level
                // Poisson request/response mix and a flow-level incast,
                // both offering inside the post-config window.
                MatrixKnob::fast("fast-poisson").with_traffic(
                    TrafficSpec::poisson(2, 4.0, FlowSize::fixed(40_000))
                        .window(Duration::from_secs(25), Duration::from_secs(15)),
                ),
                MatrixKnob::fast("fast-incast3f").with_traffic(
                    TrafficSpec::incast(3, FlowSize::fixed(60_000), Duration::from_secs(2), 5)
                        .flow_level()
                        .window(Duration::from_secs(25), Duration::from_secs(15)),
                ),
            ],
            configure_deadline: Duration::from_secs(120),
            post_fault_window: Duration::from_secs(45),
            settle: Duration::from_secs(10),
        }
    }

    /// The full trend-tracking grid: more seeds, bigger rings, the
    /// pan-European reference network, the two largest corpus WANs,
    /// the 320-switch fat-tree, and a paper-timer knob. The giant
    /// cells are tractable because the sweep hands its spare threads
    /// to the costliest cells' parallel kernels
    /// ([`ScenarioMatrix::run_instrumented`]).
    pub fn full() -> MatrixSpec {
        MatrixSpec {
            seeds: vec![1, 2, 3, 4, 5],
            topologies: vec![
                "ring-4".into(),
                "ring-8".into(),
                "ring-16".into(),
                "grid-4x4".into(),
                "pan-european".into(),
                "geant".into(),
                "att-na".into(),
                "fat-tree-k16".into(),
            ],
            schedules: vec![
                FaultSchedule::none(),
                FaultSchedule::kill_switch(1, Duration::from_secs(120)),
                FaultSchedule::link_flap(0, Duration::from_secs(120), Duration::from_secs(15), 3),
                FaultSchedule::channel_stall(2, Duration::from_secs(5), Duration::from_secs(120)),
            ],
            knobs: vec![
                MatrixKnob::fast("fast"),
                MatrixKnob::fast("fast-k8b16")
                    .with_provision_width(8)
                    .with_fib_batch(16),
                MatrixKnob::fast("fast-cap8").with_channel_capacity(8),
                MatrixKnob::paper("paper"),
                // The stochastic block: heavy-tailed request/response,
                // a wide packet-level incast and a flow-level multicast
                // fan-out, all offering after even pan-european has
                // configured on the k-wide pipeline.
                MatrixKnob::fast("fast-rrP")
                    .with_provision_width(8)
                    .with_traffic(
                        TrafficSpec::poisson(4, 5.0, FlowSize::pareto(2_000, 200_000))
                            .window(Duration::from_secs(120), Duration::from_secs(30)),
                    ),
                MatrixKnob::fast("fast-incast6")
                    .with_provision_width(8)
                    .with_traffic(
                        TrafficSpec::incast(6, FlowSize::fixed(80_000), Duration::from_secs(3), 8)
                            .window(Duration::from_secs(120), Duration::from_secs(30)),
                    ),
                MatrixKnob::fast("fast-mcast6f")
                    .with_provision_width(8)
                    .with_traffic(
                        TrafficSpec::multicast(6, 2_000_000)
                            .flow_level()
                            .window(Duration::from_secs(120), Duration::from_secs(30)),
                    ),
            ],
            configure_deadline: Duration::from_secs(1800),
            post_fault_window: Duration::from_secs(120),
            settle: Duration::from_secs(15),
        }
    }

    /// Replace the topology axis with typed specs. `Display` spells
    /// each spec exactly as its registry name, so cell keys are
    /// byte-identical to spelling the strings out by hand.
    pub fn with_topologies<I, T>(mut self, topologies: I) -> Self
    where
        I: IntoIterator<Item = T>,
        T: Into<TopoSpec>,
    {
        self.topologies = topologies
            .into_iter()
            .map(|t| t.into().to_string())
            .collect();
        self
    }

    /// The corpus breadth grid: every checked-in WAN shape plus the
    /// classic parametric families at both ends of the scale — rings,
    /// a grid, pan-european, fat-trees (k=4 and the 80-switch k=8),
    /// leaf-spines, and seeded random graphs. Fault-free with a single
    /// wide-pipeline knob: this grid measures *configuration across
    /// shapes* (per-topology medians in the trend table), not fault
    /// recovery, which the smoke/full grids already soak.
    pub fn corpus() -> MatrixSpec {
        let mut topologies: Vec<String> = rf_topo::corpus::names()
            .iter()
            .map(|s| s.to_string())
            .collect();
        topologies.extend(
            [
                "ring-16",
                "grid-8x8",
                "pan-european",
                "fat-tree-k4",
                "fat-tree-k8",
                "leaf-spine-4x8x0",
                "leaf-spine-8x16x0",
                "er-32-s7",
                "waxman-32-s7",
            ]
            .map(String::from),
        );
        MatrixSpec {
            seeds: vec![1, 2],
            topologies,
            schedules: vec![FaultSchedule::none()],
            knobs: vec![MatrixKnob::fast("fast-k8b16")
                .with_provision_width(8)
                .with_fib_batch(16)],
            configure_deadline: Duration::from_secs(900),
            post_fault_window: Duration::from_secs(45),
            settle: Duration::from_secs(10),
        }
    }

    /// A CI-sized slice of [`MatrixSpec::corpus`]: a handful of WAN
    /// files spanning the corpus alphabet plus one of each datacenter
    /// family, one seed each — eight cells, seconds of wall clock,
    /// exercising the corpus loader and both parametric generators
    /// end-to-end under `--check`.
    pub fn corpus_smoke() -> MatrixSpec {
        MatrixSpec {
            seeds: vec![1],
            topologies: [
                "abilene",
                "geant",
                "nsfnet",
                "sprint",
                "uninett",
                "fat-tree-k4",
                "leaf-spine-2x4x1",
                "er-16-s3",
            ]
            .map(String::from)
            .to_vec(),
            schedules: vec![FaultSchedule::none()],
            knobs: vec![MatrixKnob::fast("fast-k8b16")
                .with_provision_width(8)
                .with_fib_batch(16)],
            configure_deadline: Duration::from_secs(300),
            post_fault_window: Duration::from_secs(45),
            settle: Duration::from_secs(10),
        }
    }

    /// The traffic-engine perf grid: fault-free, two topologies whose
    /// bottlenecks differ (ring vs star hub), each shape at both
    /// granularities — the events/sec comparison that justifies the
    /// flow-level fast path rides on this.
    pub fn traffic() -> MatrixSpec {
        let window = |s: TrafficSpec| s.window(Duration::from_secs(25), Duration::from_secs(15));
        let rr = || {
            window(TrafficSpec::poisson(
                3,
                8.0,
                FlowSize::pareto(2_000, 100_000),
            ))
        };
        let incast = || {
            window(TrafficSpec::incast(
                4,
                FlowSize::fixed(60_000),
                Duration::from_secs(2),
                6,
            ))
        };
        let mcast = || window(TrafficSpec::multicast(4, 2_000_000));
        MatrixSpec {
            seeds: vec![1, 2],
            topologies: vec!["ring-8".into(), "star-8".into()],
            schedules: vec![FaultSchedule::none()],
            knobs: vec![
                MatrixKnob::fast("rr-pkt").with_traffic(rr()),
                MatrixKnob::fast("rr-flow").with_traffic(rr().flow_level()),
                MatrixKnob::fast("incast-pkt").with_traffic(incast()),
                MatrixKnob::fast("incast-flow").with_traffic(incast().flow_level()),
                MatrixKnob::fast("mcast-pkt").with_traffic(mcast()),
                MatrixKnob::fast("mcast-flow").with_traffic(mcast().flow_level()),
            ],
            configure_deadline: Duration::from_secs(120),
            post_fault_window: Duration::from_secs(45),
            settle: Duration::from_secs(10),
        }
    }

    /// Expand the axes into cells, topology-major. The order is
    /// deterministic but irrelevant to the report, which sorts by key.
    pub fn cells(&self) -> Vec<MatrixCell> {
        let mut out = Vec::new();
        for topology in &self.topologies {
            for schedule in &self.schedules {
                for knob in &self.knobs {
                    for &seed in &self.seeds {
                        out.push(MatrixCell {
                            seed,
                            topology: topology.clone(),
                            schedule: schedule.clone(),
                            knob: knob.clone(),
                        });
                    }
                }
            }
        }
        out
    }

    /// The grid axes as they appear in the report header.
    pub fn grid_axes(&self) -> BTreeMap<String, Vec<String>> {
        [
            (
                "seeds".to_string(),
                self.seeds.iter().map(u64::to_string).collect(),
            ),
            ("topologies".to_string(), self.topologies.clone()),
            (
                "schedules".to_string(),
                self.schedules.iter().map(|s| s.name.clone()).collect(),
            ),
            (
                "knobs".to_string(),
                self.knobs.iter().map(|k| k.name.clone()).collect(),
            ),
        ]
        .into_iter()
        .collect()
    }
}

/// Wall-clock observations for one cell of an instrumented sweep.
/// Never part of the [`MatrixReport`] — wall time is machine noise,
/// and the report is a determinism artifact.
#[derive(Clone, Debug)]
pub struct CellStat {
    /// The cell's report key.
    pub key: String,
    /// Wall-clock time to build, run and harvest the cell.
    pub wall: Duration,
    /// Kernel events dispatched by the cell's simulation
    /// (deterministic — same cell, same count, any machine).
    pub events: u64,
}

/// Aggregate wall-clock observations from an instrumented sweep.
#[derive(Clone, Debug)]
pub struct SweepStats {
    /// End-to-end wall time of the sweep (all workers).
    pub wall: Duration,
    /// Per-cell observations, sorted by cell key.
    pub cells: Vec<CellStat>,
    /// How many cells ran as forks of a shared prefix snapshot (always
    /// zero for the cold sweep entry points; in forked mode, the rest
    /// of the cells fell back to a cold start).
    pub forked: usize,
}

impl SweepStats {
    /// Total events dispatched across all cells.
    pub fn total_events(&self) -> u64 {
        self.cells.iter().map(|c| c.events).sum()
    }
}

/// The sweep driver. Construct with a [`MatrixSpec`], then [`run`]
/// (standard builder) or [`run_with`] (custom builder closure).
///
/// [`run`]: ScenarioMatrix::run
/// [`run_with`]: ScenarioMatrix::run_with
pub struct ScenarioMatrix {
    spec: MatrixSpec,
}

/// Deterministic relative cost estimate for longest-expected-first
/// scheduling: cells whose simulations run longest (big topologies,
/// slow timers, late faults with long post-fault windows) should
/// start first, so the sweep's tail is never one straggler cell that
/// happened to be picked last. Only the *ordering* depends on this —
/// the report is identical for any schedule.
fn expected_cost(spec: &MatrixSpec, cell: &MatrixCell) -> u64 {
    // The estimate never builds the topology: `node_count_estimate`
    // and `edge_count_estimate` are closed-form (or a corpus line
    // count), which matters when the corpus grid schedules a hundred
    // cells.
    let (nodes, edges) = cell
        .topo_spec()
        .map(|s| {
            (
                s.node_count_estimate() as u64,
                s.edge_count_estimate() as u64,
            )
        })
        .unwrap_or((8, 8));
    // Event volume per simulated second tracks the graph *size*, not
    // just its order: every link floods hellos and carries probe
    // frames each interval, every switch ticks its own timers. The
    // distinction matters once dense fabrics share a grid with sparse
    // WANs — fat-tree-k16 has 320 switches but 2048 links, and its
    // wall time scales with the latter.
    let size = nodes + 2 * edges;
    // Configuration phase: serial provisioning scales with n/k, and
    // slow OSPF timers stretch convergence.
    let config_est = cell.knob.vm_boot_delay.as_secs()
        + u64::from(cell.knob.ospf_hello) * 4
        + nodes / cell.knob.provision_width.max(1) as u64;
    // Post-configuration horizon (see run_cell's run_to). Traffic
    // knobs extend the run to the end of their offered-load window —
    // and packet-level cells are far denser per simulated second than
    // flow-level ones, which the mode weight reflects, scaled by how
    // many endpoints offer load at once.
    let mut run_window = spec.settle.as_secs()
        + cell
            .schedule
            .last_fault_at()
            .map(|l| l.as_secs() + spec.post_fault_window.as_secs())
            .unwrap_or(0);
    if let MatrixWorkload::Traffic(ref tspec) = cell.knob.workload {
        let weight = match tspec.mode {
            crate::traffic::TrafficMode::Packet => 4,
            crate::traffic::TrafficMode::Flow => 1,
        };
        let endpoints = match tspec.shape {
            crate::traffic::TrafficShape::RequestResponse { clients, .. } => clients + 1,
            crate::traffic::TrafficShape::Incast { senders, .. } => senders + 1,
            crate::traffic::TrafficShape::Multicast { receivers, .. } => receivers + 1,
            crate::traffic::TrafficShape::CbrMix { ref rates_bps } => 2 * rates_bps.len(),
        } as u64;
        run_window = run_window.max(tspec.stop_at().as_secs() + 2)
            + weight * tspec.duration.as_secs() * endpoints.div_ceil(4);
    }
    size * (config_est + run_window)
}

impl ScenarioMatrix {
    pub fn new(spec: MatrixSpec) -> ScenarioMatrix {
        ScenarioMatrix { spec }
    }

    pub fn spec(&self) -> &MatrixSpec {
        &self.spec
    }

    /// The scheduler's cost estimate for one cell (arbitrary units;
    /// only the ordering matters). Public so harnesses — `perf_sweep`'s
    /// parallel-kernel probe, the calibration test — can see the same
    /// ranking the sweep schedules by.
    pub fn expected_cell_cost(&self, cell: &MatrixCell) -> u64 {
        expected_cost(&self.spec, cell)
    }

    /// How many extra worker threads the cell pulled at position `pos`
    /// of the longest-expected-first schedule may borrow for its own
    /// parallel kernel. With `units` schedulable units and `threads`
    /// workers, `W = min(threads, units)` workers run concurrently and
    /// `threads − W` threads would idle; those spares go to the
    /// earliest-scheduled (costliest) positions, one share each,
    /// left-overs to the front. Deterministic in (threads, units, pos)
    /// alone — the *report* is identical however many cores a cell
    /// borrows, so this only shapes wall clock, never results.
    fn spare_cores(threads: usize, units: usize, pos: usize) -> usize {
        let w = threads.min(units.max(1));
        let spare = threads.saturating_sub(w);
        if pos >= w || spare == 0 {
            return 0;
        }
        spare / w + usize::from(pos < spare % w)
    }

    /// The default per-cell assembly: parse the topology name into a
    /// [`TopoSpec`] and build it, attach the knob's probe workload (a
    /// ping across the farthest switch pair, a fan-in converging on
    /// it, or a traffic spec placed on the topology), apply the knob
    /// and the fault schedule.
    ///
    /// A malformed or unknown topology name returns
    /// [`WorkloadError::BadTopology`] naming the offending token, and
    /// [`run_with`] records it as a `build_error` cell — same as any
    /// workload-constructor rejection — so one bad axis value cannot
    /// take down the rest of the sweep.
    ///
    /// [`run_with`]: ScenarioMatrix::run_with
    pub fn standard_builder(cell: &MatrixCell) -> Result<ScenarioBuilder, WorkloadError> {
        let topo = cell.topo_spec()?.build();
        // A malformed schedule (out-of-range node/edge, loss outside
        // [0,100], empty stall window) marks this one cell
        // `build_error=1`; it must not panic the worker mid-sweep.
        Fault::validate_schedule(&cell.schedule.faults, topo.node_count(), topo.edge_count())
            .map_err(WorkloadError::BadFault)?;
        let (a, b) = topo
            .farthest_pair()
            .expect("topology has at least two nodes");
        let workload = match cell.knob.workload {
            MatrixWorkload::FarthestPing => Workload::ping(a, b),
            MatrixWorkload::PingFanIn { clients } => {
                // The first `clients` nodes that are not the server,
                // deterministically.
                let picked: Vec<usize> = (0..topo.node_count())
                    .filter(|&n| n != b)
                    .take(clients)
                    .collect();
                if picked.len() < clients {
                    return Err(WorkloadError::TopologyTooSmall {
                        need: clients + 1,
                        have: topo.node_count(),
                    });
                }
                Workload::ping_fan_in(picked, b)?
            }
            MatrixWorkload::Traffic(ref spec) => Workload::traffic(spec.instantiate(&topo)?)?,
        };
        Ok(cell
            .knob
            .apply(Scenario::on(topo))
            .seed(cell.seed)
            .trace_level(rf_sim::TraceLevel::Off)
            .with_workload(workload)
            .with_faults(cell.schedule.faults.iter().cloned()))
    }

    /// Sweep the grid with the standard builder.
    pub fn run(&self, threads: usize) -> MatrixReport {
        self.run_with(threads, Self::standard_builder)
    }

    /// Sweep the grid, building each cell's scenario with `build`.
    /// Cells are distributed over `threads` workers; the report is
    /// identical whatever the count. A cell whose builder returns an
    /// error reports `build_error = 1` and nothing else.
    pub fn run_with<F>(&self, threads: usize, build: F) -> MatrixReport
    where
        F: Fn(&MatrixCell) -> Result<ScenarioBuilder, WorkloadError> + Send + Sync,
    {
        self.run_instrumented(threads, build).0
    }

    /// [`ScenarioMatrix::run_with`] plus wall-clock/event-count
    /// observations per cell — the substrate of the `perf_sweep`
    /// harness. Work is pulled from a shared atomic cursor over a
    /// longest-expected-first cell order (work stealing: a worker that
    /// lands a cheap cell immediately takes another; the expensive
    /// cells all start early).
    pub fn run_instrumented<F>(&self, threads: usize, build: F) -> (MatrixReport, SweepStats)
    where
        F: Fn(&MatrixCell) -> Result<ScenarioBuilder, WorkloadError> + Send + Sync,
    {
        let threads = threads.max(1);
        let cells = self.spec.cells();
        // Longest-expected-first order; ties keep declaration order so
        // the schedule is fully deterministic.
        let mut order: Vec<usize> = (0..cells.len()).collect();
        let cost: Vec<u64> = cells.iter().map(|c| expected_cost(&self.spec, c)).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(cost[i]), i));
        let next = AtomicUsize::new(0);
        type Bucket = (CellRecord, CellStat);
        let results: Mutex<Vec<Bucket>> = Mutex::new(Vec::with_capacity(cells.len()));
        let started = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..threads.min(cells.len()) {
                scope.spawn(|| loop {
                    let pos = next.fetch_add(1, Ordering::SeqCst);
                    let Some(&i) = order.get(pos) else { break };
                    let cell = &cells[i];
                    // The costliest cells start first *and* borrow the
                    // threads that would otherwise idle (more cells
                    // than workers leaves no spares; more workers than
                    // cells hands the excess to the giants).
                    let extra = Self::spare_cores(threads, cells.len(), pos);
                    let cell_start = Instant::now();
                    let (rec, events) = run_cell(&self.spec, cell, &build, extra);
                    let stat = CellStat {
                        key: rec.key.clone(),
                        wall: cell_start.elapsed(),
                        events,
                    };
                    results.lock().unwrap().push((rec, stat));
                });
            }
        });
        let wall = started.elapsed();
        let (records, mut stats): (Vec<CellRecord>, Vec<CellStat>) =
            results.into_inner().unwrap().into_iter().unzip();
        stats.sort_by(|a, b| a.key.cmp(&b.key));
        (
            MatrixReport::new(self.spec.grid_axes(), records),
            SweepStats {
                wall,
                cells: stats,
                forked: 0,
            },
        )
    }

    /// Sweep the grid with the standard builder, sharing each
    /// (topology × knob × seed) group's convergence prefix via
    /// checkpoint/fork. Byte-identical report to [`run`], at a
    /// fraction of the wall clock (see [`run_with_forked`]).
    ///
    /// [`run`]: ScenarioMatrix::run
    /// [`run_with_forked`]: ScenarioMatrix::run_with_forked
    pub fn run_forked(&self, threads: usize) -> MatrixReport {
        self.run_with_forked(threads, Self::standard_builder)
    }

    /// Like [`run_with`], but cells that differ only in fault schedule
    /// share their expensive prefix: each (topology × knob × seed)
    /// group builds one fault-free scenario, runs it to configuration,
    /// [`Scenario::snapshot`]s at a quiesce point and
    /// [`Scenario::fork`]s every member from the capture, injecting
    /// the member's fault schedule post-fork. Members whose faults
    /// fire at or before the snapshot instant (the smoke grid's early
    /// channel stalls, say) fall back to a cold start — as does the
    /// whole group if its prefix never converges or never quiesces —
    /// so the mode is a pure optimisation, never a semantics change.
    ///
    /// Determinism contract: the report is **byte-identical** to
    /// [`run_with`]'s, at any thread count. The builder closure must
    /// derive all fault wiring from `cell.schedule.faults` alone (as
    /// [`standard_builder`] does), because the prefix is built from a
    /// schedule-less copy of the cell.
    ///
    /// [`run_with`]: ScenarioMatrix::run_with
    /// [`standard_builder`]: ScenarioMatrix::standard_builder
    pub fn run_with_forked<F>(&self, threads: usize, build: F) -> MatrixReport
    where
        F: Fn(&MatrixCell) -> Result<ScenarioBuilder, WorkloadError> + Send + Sync,
    {
        self.run_instrumented_forked(threads, build).0
    }

    /// [`ScenarioMatrix::run_with_forked`] plus per-cell wall-clock and
    /// event-count observations. Workers pull whole *groups* from the
    /// shared cursor (a group's forks reuse its snapshot, so the group
    /// is the scheduling unit), costliest group first.
    pub fn run_instrumented_forked<F>(&self, threads: usize, build: F) -> (MatrixReport, SweepStats)
    where
        F: Fn(&MatrixCell) -> Result<ScenarioBuilder, WorkloadError> + Send + Sync,
    {
        let threads = threads.max(1);
        let cells = self.spec.cells();
        let cost: Vec<u64> = cells.iter().map(|c| expected_cost(&self.spec, c)).collect();
        // Group cells sharing (topology, knob, seed) — the fault
        // schedule is the divergent axis. BTreeMap keeps group
        // assembly deterministic; members keep declaration order.
        let mut by_prefix: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, c) in cells.iter().enumerate() {
            by_prefix
                .entry(format!("{}|{}|{}", c.topology, c.knob.name, c.seed))
                .or_default()
                .push(i);
        }
        let mut groups: Vec<Vec<usize>> = by_prefix.into_values().collect();
        groups.sort_by_key(|g| {
            (
                std::cmp::Reverse(g.iter().map(|&i| cost[i]).sum::<u64>()),
                g[0],
            )
        });
        let next = AtomicUsize::new(0);
        let forked = AtomicUsize::new(0);
        type Bucket = (CellRecord, CellStat);
        let results: Mutex<Vec<Bucket>> = Mutex::new(Vec::with_capacity(cells.len()));
        let started = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..threads.min(groups.len()) {
                scope.spawn(|| loop {
                    let pos = next.fetch_add(1, Ordering::SeqCst);
                    let Some(group) = groups.get(pos) else { break };
                    // Same spare-thread budgeting as the cold sweep,
                    // over groups: the whole group (prefix and forks)
                    // runs on the borrowed cores.
                    let extra = Self::spare_cores(threads, groups.len(), pos);
                    let (out, group_forked) = run_group(&self.spec, &cells, group, &build, extra);
                    forked.fetch_add(group_forked, Ordering::SeqCst);
                    results.lock().unwrap().extend(out);
                });
            }
        });
        let wall = started.elapsed();
        let (records, mut stats): (Vec<CellRecord>, Vec<CellStat>) =
            results.into_inner().unwrap().into_iter().unzip();
        stats.sort_by(|a, b| a.key.cmp(&b.key));
        (
            MatrixReport::new(self.spec.grid_axes(), records),
            SweepStats {
                wall,
                cells: stats,
                forked: forked.into_inner(),
            },
        )
    }
}

/// Can `schedule` still be injected after a snapshot taken at `t`?
/// Every fault's *first* effect (`at`, or `from` for a stall window)
/// must lie strictly in the future: anything at or before the capture
/// would already have dispatched in a cold run.
pub(crate) fn forkable(schedule: &FaultSchedule, taken_at: Time) -> bool {
    schedule.faults.iter().all(|f| {
        let eff = match *f {
            Fault::KillSwitch { at, .. }
            | Fault::ReviveSwitch { at, .. }
            | Fault::LinkDown { at, .. }
            | Fault::LinkUp { at, .. }
            | Fault::LinkLoss { at, .. } => at,
            Fault::ChannelStall { from, .. } => from,
        };
        Time::ZERO + eff > taken_at
    })
}

/// Cold-start one cell and wrap its record in a [`CellStat`].
fn cold_stat<F>(
    spec: &MatrixSpec,
    cell: &MatrixCell,
    build: &F,
    extra_cores: usize,
) -> (CellRecord, CellStat)
where
    F: Fn(&MatrixCell) -> Result<ScenarioBuilder, WorkloadError>,
{
    let t0 = Instant::now();
    let (rec, events) = run_cell(spec, cell, build, extra_cores);
    let stat = CellStat {
        key: rec.key.clone(),
        wall: t0.elapsed(),
        events,
    };
    (rec, stat)
}

/// Run one (topology × knob × seed) group: the shared fault-free
/// prefix once, a fork per member whose divergence lies in the future,
/// cold starts for the rest. The second return counts the members
/// that actually forked.
fn run_group<F>(
    spec: &MatrixSpec,
    cells: &[MatrixCell],
    group: &[usize],
    build: &F,
    extra_cores: usize,
) -> (Vec<(CellRecord, CellStat)>, usize)
where
    F: Fn(&MatrixCell) -> Result<ScenarioBuilder, WorkloadError>,
{
    let all_cold = |g: &[usize]| -> (Vec<(CellRecord, CellStat)>, usize) {
        (
            g.iter()
                .map(|&i| cold_stat(spec, &cells[i], build, extra_cores))
                .collect(),
            0,
        )
    };
    // A singleton group has no prefix worth sharing.
    if group.len() < 2 {
        return all_cold(group);
    }
    // The prefix is the first member with its fault schedule erased:
    // every member builds the identical world apart from that axis
    // (the chaos agent is present either way, with an empty op list
    // here), so one converged capture serves them all.
    let prefix_cell = MatrixCell {
        schedule: FaultSchedule::none(),
        ..cells[group[0]].clone()
    };
    let Ok(b) = build(&prefix_cell) else {
        // A builder that rejects the axes marks each cell through the
        // cold path (`build_error` records).
        return all_cold(group);
    };
    let mut prefix = b.start();
    // Spare-thread grant: the prefix, the snapshot and every fork
    // inherit the raised budget (forks clone the scenario, flag and
    // all). Parallel spans are byte-identical to sequential ones, so
    // this cannot perturb the fork/cold equivalence contract.
    let granted = prefix.parallel_cores().max(1 + extra_cores);
    prefix.set_parallel_cores(granted);
    let deadline = Time::ZERO + spec.configure_deadline;
    let configured_at = prefix.run_until_configured(deadline);
    // The instant a cold run's settle window starts from; forks must
    // measure from here, not from any later quiesce-probe instant.
    let config_now = prefix.sim.now();
    if configured_at.is_none() {
        return all_cold(group);
    }
    // Quiesce probing: the capture is refused while a tail batch waits
    // out its tick, so step in short slices — bounded well inside the
    // settle window every member runs through anyway, which keeps the
    // probe invisible to the determinism contract.
    let probe_limit = config_now + spec.settle;
    let snap: Option<Snapshot> = loop {
        match prefix.snapshot() {
            Ok(s) => break Some(s),
            Err(SnapshotError::UndrainedChannels { .. })
                if prefix.sim.now() + Duration::from_millis(100) <= probe_limit =>
            {
                let t = prefix.sim.now() + Duration::from_millis(100);
                prefix.run_until(t);
            }
            Err(_) => break None,
        }
    };
    let Some(snap) = snap else {
        return all_cold(group);
    };

    // The prefix scenario *is* the snapshot state — hand it to the
    // first fork instead of cloning a fourth copy of the world.
    let mut prefix_sc = Some(prefix);
    let mut out = Vec::with_capacity(group.len());
    let mut forked_count = 0;
    for &i in group {
        let cell = &cells[i];
        if !forkable(&cell.schedule, snap.taken_at()) {
            out.push(cold_stat(spec, cell, build, extra_cores));
            continue;
        }
        let t0 = Instant::now();
        let mut sc = prefix_sc.take().unwrap_or_else(|| Scenario::fork(&snap));
        if sc.inject_faults(&cell.schedule.faults).is_err() {
            // Unreachable given the forkable() gate, but a cold start
            // is always a correct answer.
            out.push(cold_stat(spec, cell, build, extra_cores));
            continue;
        }
        let (rec, events, _) = finish_cell(spec, cell, sc, configured_at, config_now);
        let stat = CellStat {
            key: rec.key.clone(),
            wall: t0.elapsed(),
            events,
        };
        out.push((rec, stat));
        forked_count += 1;
    }
    (out, forked_count)
}

/// Build, run and harvest one cell. All times are reported in
/// nanoseconds of simulated time; the second return is the number of
/// kernel events the cell dispatched (for the perf harness).
fn run_cell<F>(
    spec: &MatrixSpec,
    cell: &MatrixCell,
    build: &F,
    extra_cores: usize,
) -> (CellRecord, u64)
where
    F: Fn(&MatrixCell) -> Result<ScenarioBuilder, WorkloadError>,
{
    let mut sc = match build(cell) {
        Ok(b) => b.start(),
        Err(_) => {
            // A bad axis value marks this cell, not the sweep: the
            // record carries the flag and nothing else, so `--check`
            // diffs surface exactly which cells failed to assemble.
            let metrics = BTreeMap::from([("build_error".to_string(), 1)]);
            return (
                CellRecord {
                    key: cell.key(),
                    metrics,
                },
                0,
            );
        }
    };
    // Cells keep their knob's core budget plus whatever the scheduler
    // spared; either way the record is byte-identical to a 1-core run.
    let granted = sc.parallel_cores().max(1 + extra_cores);
    sc.set_parallel_cores(granted);
    let deadline = Time::ZERO + spec.configure_deadline;
    let configured_at = sc.run_until_configured(deadline);
    let config_now = sc.sim.now();
    let (rec, events, _) = finish_cell(spec, cell, sc, configured_at, config_now);
    (rec, events)
}

/// The post-configuration half of a cell run: settle, play out faults
/// and workloads, harvest. Shared verbatim by the cold path
/// ([`run_cell`]), the fork path ([`run_group`]) and the chaos
/// campaign (which checks invariants on the returned scenario);
/// `config_now` is the instant the configuration phase handed the
/// scenario over (the forked scenario's clock may already be slightly
/// past it from quiesce probing, which the horizon arithmetic must not
/// see). The finished scenario is handed back for post-run probing —
/// it is a terminal read, never snapshot it again.
pub(crate) fn finish_cell(
    spec: &MatrixSpec,
    cell: &MatrixCell,
    mut sc: Scenario,
    configured_at: Option<Time>,
    config_now: Time,
) -> (CellRecord, u64, Scenario) {
    // Keep the world running long enough to see the probe workload and
    // every scheduled fault play out, whichever ends later — and, for
    // traffic knobs, the whole offered-load window plus a drain tail.
    let settle_until = config_now + spec.settle;
    let mut run_to = match cell.schedule.last_fault_at() {
        Some(last) => settle_until.max(Time::ZERO + last + spec.post_fault_window),
        None => settle_until,
    };
    if let MatrixWorkload::Traffic(ref tspec) = cell.knob.workload {
        run_to = run_to.max(Time::ZERO + tspec.stop_at() + Duration::from_secs(2));
    }
    sc.run_until(run_to);

    let m = sc.finish();
    let mut metrics: BTreeMap<String, i64> = BTreeMap::new();
    let mut put = |name: &str, v: i64| {
        metrics.insert(name.to_string(), v);
    };
    put("switches", m.expected_switches as i64);
    put("configured_switches_final", m.configured_switches as i64);
    if let Some(t) = configured_at {
        put("all_configured_ns", t.as_nanos() as i64);
    }
    let mut greens: Vec<i64> = m
        .per_switch_config_time
        .iter()
        .filter_map(|(_, t)| t.map(|t| t.as_nanos() as i64))
        .collect();
    greens.sort_unstable();
    if !greens.is_empty() {
        put("green_first_ns", greens[0]);
        put("green_median_ns", greens[(greens.len() - 1) / 2]);
        put("green_last_ns", greens[greens.len() - 1]);
    }
    put("flows_installed", m.flows_installed as i64);
    put("flows_removed", m.flows_removed as i64);
    put("dataplane_flows", m.dataplane_flows as i64);
    put("arp_replies", m.arp_replies as i64);
    // Controller transport cost — the pan-European cold-start byte
    // count the batching stage is judged on.
    put("of_msgs_sent", m.of_msgs_sent as i64);
    put("of_bytes_sent", m.of_bytes_sent as i64);
    put("of_pushes", m.of_pushes as i64);
    put("fib_batches", m.fib_batches as i64);
    // Backpressure accounting (schema v3): deferral pacing, drop loss,
    // and the deepest channel queue the run provoked.
    put("of_deferred", m.of_deferred as i64);
    put("of_dropped", m.of_dropped as i64);
    put("of_queue_hwm", m.of_queue_hwm as i64);

    // Workloads: ping probes yield reply counts, first contact, and —
    // when a fault schedule ran — recovery time from the last fault to
    // the next successful round trip; video streams yield the paper's
    // §3 timeline. Only the first workload of each kind reports.
    let mut seen_ping = false;
    let mut seen_video = false;
    let mut seen_fanin = false;
    let mut seen_traffic = false;
    for report in sc.workload_reports() {
        match report {
            WorkloadReport::Ping(probe) if !seen_ping => {
                seen_ping = true;
                put("ping_replies", probe.replies.len() as i64);
                if let Some(t) = probe.first_reply_at {
                    put("ping_first_reply_ns", t.as_nanos() as i64);
                }
                if let Some(last) = cell.schedule.last_fault_at() {
                    // Recovery counts only probes *sent* after the
                    // last fault: a reply already in flight when the
                    // fault fires would otherwise record a near-zero
                    // recovery that says nothing about reconvergence.
                    let fault_t = Time::ZERO + last;
                    let answered = probe
                        .replies
                        .iter()
                        .filter(|(seq, _)| {
                            probe
                                .sent
                                .iter()
                                .any(|(s, sent_t)| s == seq && *sent_t > fault_t)
                        })
                        .map(|(_, t)| *t)
                        .min();
                    if let Some(t) = answered {
                        put("recovery_ns", (t.as_nanos() - fault_t.as_nanos()) as i64);
                    }
                }
            }
            WorkloadReport::PingFanIn { clients } if !seen_fanin => {
                seen_fanin = true;
                put("fanin_clients", clients.len() as i64);
                put(
                    "fanin_replies",
                    clients.iter().map(|c| c.replies.len() as i64).sum(),
                );
                put(
                    "fanin_clients_served",
                    clients
                        .iter()
                        .filter(|c| c.first_reply_at.is_some())
                        .count() as i64,
                );
                // The fan-in's "everyone is through" instant: the last
                // client's first successful round trip.
                if let Some(worst) = clients
                    .iter()
                    .map(|c| c.first_reply_at)
                    .collect::<Option<Vec<_>>>()
                    .and_then(|ts| ts.into_iter().max())
                {
                    put("fanin_all_served_ns", worst.as_nanos() as i64);
                }
                if let Some(last) = cell.schedule.last_fault_at() {
                    // Worst-client recovery: every client must heal.
                    let fault_t = Time::ZERO + last;
                    let per_client: Vec<Option<Time>> = clients
                        .iter()
                        .map(|c| {
                            c.replies
                                .iter()
                                .filter(|(seq, _)| {
                                    c.sent
                                        .iter()
                                        .any(|(s, sent_t)| s == seq && *sent_t > fault_t)
                                })
                                .map(|(_, t)| *t)
                                .min()
                        })
                        .collect();
                    if let Some(worst) = per_client
                        .into_iter()
                        .collect::<Option<Vec<_>>>()
                        .and_then(|ts| ts.into_iter().max())
                    {
                        put(
                            "fanin_recovery_ns",
                            (worst.as_nanos() - fault_t.as_nanos()) as i64,
                        );
                    }
                }
            }
            WorkloadReport::Video(v) if !seen_video => {
                seen_video = true;
                put("video_packets", v.packets as i64);
                put("video_gaps", v.gaps as i64);
                if let Some(t) = v.first_byte_at {
                    put("video_first_byte_ns", t.as_nanos() as i64);
                }
                if let Some(t) = v.playback_at {
                    put("video_playback_ns", t.as_nanos() as i64);
                }
            }
            // Traffic metrics (schema v4): offered vs delivered load,
            // flow completion times, loss and latency percentiles —
            // integer nanoseconds/bytes only, so reports stay
            // byte-stable.
            WorkloadReport::Traffic(t) if !seen_traffic => {
                seen_traffic = true;
                put("traffic_offered_bytes", t.offered_bytes as i64);
                put("traffic_delivered_bytes", t.delivered_bytes as i64);
                put("traffic_flows_started", t.flows_started as i64);
                put("traffic_flows_completed", t.flows_completed as i64);
                put("traffic_frames_lost", t.frames_lost() as i64);
                if let Some(p) = t.fct_percentile(50) {
                    put("traffic_fct_p50_ns", p.as_nanos() as i64);
                }
                if let Some(p) = t.fct_percentile(95) {
                    put("traffic_fct_p95_ns", p.as_nanos() as i64);
                }
                if let Some(p) = t.latency_percentile(50) {
                    put("traffic_lat_p50_ns", p.as_nanos() as i64);
                }
                if let Some(p) = t.latency_percentile(95) {
                    put("traffic_lat_p95_ns", p.as_nanos() as i64);
                }
            }
            _ => {}
        }
    }

    let events = sc.sim.events_dispatched();
    (
        CellRecord {
            key: cell.key(),
            metrics,
        },
        events,
        sc,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_build_path_is_send() {
        // The whole point of the Send bounds: a builder closure and the
        // scenarios it produces may cross into worker threads.
        fn assert_send<T: Send>() {}
        assert_send::<ScenarioBuilder>();
        assert_send::<Scenario>();
        assert_send::<MatrixCell>();
    }

    #[test]
    fn cell_keys_are_stable_and_unique() {
        let spec = MatrixSpec::smoke();
        let cells = spec.cells();
        assert_eq!(
            cells.len(),
            spec.seeds.len() * spec.topologies.len() * spec.schedules.len() * spec.knobs.len()
        );
        let mut keys: Vec<String> = cells.iter().map(MatrixCell::key).collect();
        let total = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), total, "keys must be unique");
        assert!(keys[0].starts_with("topo="), "{}", keys[0]);
    }

    #[test]
    fn link_flap_schedule_shape() {
        let s = FaultSchedule::link_flap(2, Duration::from_secs(10), Duration::from_secs(5), 2);
        assert_eq!(s.faults.len(), 4);
        assert_eq!(s.last_fault_at(), Some(Duration::from_secs(25)));
        assert_eq!(s.name, "flap2x2@10s+5s");
        // Cadence disambiguates otherwise-identical schedules.
        let other = FaultSchedule::link_flap(2, Duration::from_secs(10), Duration::from_secs(8), 2);
        assert_ne!(s.name, other.name);
        assert!(matches!(
            s.faults[3],
            Fault::LinkUp { edge: 2, at } if at == Duration::from_secs(25)
        ));
    }

    #[test]
    fn standard_builder_rejects_unknown_topology_as_build_error() {
        // An unknown family and a malformed parameterization both come
        // back as typed errors naming the offending token — the cell
        // reports `build_error = 1`, the sweep never panics.
        for (name, token) in [("hypercube-9", "hypercube-9"), ("grid-4x", "")] {
            let cell = MatrixCell {
                seed: 1,
                topology: name.into(),
                schedule: FaultSchedule::none(),
                knob: MatrixKnob::fast("fast"),
            };
            match ScenarioMatrix::standard_builder(&cell) {
                Err(WorkloadError::BadTopology(err)) => {
                    assert_eq!(err.name, name);
                    assert_eq!(err.token, token);
                }
                Err(other) => panic!("expected BadTopology for {name:?}, got {other:?}"),
                Ok(_) => panic!("expected BadTopology for {name:?}, got Ok"),
            }
        }
    }

    #[test]
    fn typed_cells_match_stringly_keys() {
        let typed = MatrixCell::new(
            7,
            TopoSpec::Grid { w: 4, h: 4 },
            FaultSchedule::none(),
            MatrixKnob::fast("fast"),
        );
        let stringly = MatrixCell {
            seed: 7,
            topology: "grid-4x4".into(),
            schedule: FaultSchedule::none(),
            knob: MatrixKnob::fast("fast"),
        };
        assert_eq!(typed.key(), stringly.key());
        let spec = MatrixSpec::smoke().with_topologies([
            TopoSpec::Ring(4),
            TopoSpec::FatTree { k: 4 },
            TopoSpec::Corpus("abilene"),
        ]);
        assert_eq!(
            spec.topologies,
            vec!["ring-4", "fat-tree-k4", "abilene"],
            "Display must spell registry names exactly"
        );
    }

    #[test]
    fn corpus_grid_is_wide_enough() {
        let spec = MatrixSpec::corpus();
        assert!(
            spec.topologies.len() >= 50,
            "corpus grid sweeps {} topologies",
            spec.topologies.len()
        );
        assert!(spec.topologies.iter().any(|t| t == "fat-tree-k8"));
        let mut unique = spec.topologies.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(
            unique.len(),
            spec.topologies.len(),
            "no duplicate topologies"
        );
        for name in &spec.topologies {
            assert!(
                name.parse::<TopoSpec>().is_ok(),
                "corpus grid name {name:?} must parse"
            );
        }
        for name in &MatrixSpec::corpus_smoke().topologies {
            assert!(
                name.parse::<TopoSpec>().is_ok(),
                "corpus smoke name {name:?} must parse"
            );
        }
    }
}
