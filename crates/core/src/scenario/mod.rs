//! The experiment-side API: a fluent [`ScenarioBuilder`] that assembles
//! the paper's Fig. 2 stack on any topology, with hosts, workloads,
//! fault schedules and custom [`ControlApp`]s, and a [`Scenario`]
//! handle exposing typed metrics.
//!
//! This module is the single build path: the legacy
//! `crate::bootstrap::Deployment` wrapper is deprecated and delegates
//! here. A converged scenario can be captured with
//! [`Scenario::snapshot`] and resumed any number of times with
//! [`Scenario::fork`] — the checkpoint/fork mechanism the matrix sweep
//! uses to run each (topology × knob × seed) convergence prefix once.
//!
//! ```
//! use rf_core::scenario::{Scenario, Workload};
//! use rf_sim::Time;
//!
//! // The ring-4 auto-configuration, end to end: discovery finds the
//! // switches, VMs boot, OSPF converges, flows appear — and a ping
//! // workload crosses the fabric.
//! let mut sc = Scenario::on(rf_topo::ring(4))
//!     .fast_timers()
//!     .with_workload(Workload::ping(0, 2))
//!     .start();
//! let done = sc.run_until_configured(Time::from_secs(120)).unwrap();
//! assert!(done < Time::from_secs(60), "configured in {done}");
//!
//! let m = sc.finish();
//! assert_eq!(m.configured_switches, 4);
//! assert_eq!(m.per_switch_config_time.len(), 4);
//! ```

pub mod matrix;
pub mod report;

pub use matrix::{
    CellStat, FaultSchedule, MatrixCell, MatrixKnob, MatrixSpec, MatrixWorkload, ScenarioMatrix,
    SweepStats,
};
pub use report::{CellRecord, MatrixReport, MetricSummary};

use crate::apps::arp_proxy::ARP_RETRY_TOKEN;
use crate::apps::channel::CHANNEL_DRAIN_TOKEN;
use crate::apps::fib_mirror::FIB_FLUSH_TOKEN;
use crate::apps::{ChannelStallWindow, ControlApp, ControlPlane, OverflowPolicy};
use crate::rfcontroller::{HostPortConfig, RfControllerConfig};
use crate::traffic::packet::{
    IncastSender, PacedSource, TrafficClient, TrafficServer, TrafficSink,
};
use crate::traffic::{
    paced_interval, ArrivalStream, FlowLevelEngine, TrafficConfig, TrafficMode, TrafficPattern,
    TrafficReport, WaveStream, WorkloadError,
};
use rf_apps::video::{VideoClient, VideoClientReport, VideoServer};
use rf_apps::{EchoHost, HostConfig, Pinger};
use rf_discovery::{TopologyController, TopologyControllerConfig};
use rf_flowvisor::{FlowVisor, FlowVisorConfig, SlicePolicy};
use rf_rpc::{RpcClientAgent, RpcClientConfig};
use rf_sim::{Agent, AgentId, Ctx, LinkId, LinkProfile, ParallelOutcome, Sim, SimConfig, Time};
use rf_switch::{OpenFlowSwitch, SwitchConfig};
use rf_topo::Topology;
use rf_wire::{Ipv4Cidr, MacAddr};
use std::net::Ipv4Addr;
use std::time::Duration;

/// Where to attach a host (edge configuration, declared up front).
#[derive(Clone, Debug)]
pub struct HostAttachment {
    /// Topology node the host hangs off.
    pub node: usize,
    /// The host subnet (a /24 by convention).
    pub subnet: Ipv4Cidr,
}

/// A reserved host port, returned to the caller for wiring host agents.
#[derive(Clone, Debug)]
pub struct HostSlot {
    pub node: usize,
    pub switch: AgentId,
    pub port: u16,
    pub subnet: Ipv4Cidr,
    /// The VM-side gateway address (first host address of the subnet).
    pub gateway: Ipv4Addr,
    /// A free address for the host itself (second host address).
    pub host_ip: Ipv4Addr,
}

/// Scenario parameters — everything [`ScenarioBuilder`]'s fluent
/// methods write into. (Formerly `bootstrap::DeploymentConfig`, which
/// remains as a deprecated alias.)
#[derive(Clone)]
pub struct ScenarioConfig {
    pub topology: Topology,
    pub seed: u64,
    /// Administrator IP range for the virtual environment.
    pub ip_range: Ipv4Cidr,
    /// LLDP probe period.
    pub probe_interval: Duration,
    /// Simulated VM provisioning time.
    pub vm_boot_delay: Duration,
    /// Physical link profile (also used for the virtual interconnect).
    pub link_profile: LinkProfile,
    /// Put FlowVisor between switches and controllers (the paper's
    /// layout). `false` wires both controllers directly into every
    /// switch (OVS multi-controller mode) for the A4 ablation.
    pub use_flowvisor: bool,
    /// Host attachment points.
    pub hosts: Vec<HostAttachment>,
    /// OSPF hello/dead intervals written into every ospfd.conf.
    pub ospf_hello: u16,
    pub ospf_dead: u16,
    /// VM provisioning pipeline width (1 = the paper's serial rftest
    /// behaviour).
    pub provision_width: usize,
    /// FIB-mirror FLOW_MOD batch size per switch (1 = unbatched).
    pub fib_batch: usize,
    /// Switch-channel send-queue bound (`None` = unbounded, the
    /// paper's fire-and-forget behaviour).
    pub channel_capacity: Option<usize>,
    /// What a full bounded channel does with overflow.
    pub overflow: OverflowPolicy,
    /// Trace verbosity.
    pub trace_level: rf_sim::TraceLevel,
    /// Worker threads for the conservative parallel kernel (1 =
    /// sequential). Only post-convergence spans are partitioned, and
    /// results are byte-identical either way; see [`rf_sim::partition`].
    pub parallel_cores: usize,
}

impl ScenarioConfig {
    pub fn new(topology: Topology) -> ScenarioConfig {
        ScenarioConfig {
            topology,
            seed: 0xC0FFEE,
            ip_range: Ipv4Cidr::new(Ipv4Addr::new(172, 31, 0, 0), 16),
            probe_interval: Duration::from_secs(1),
            vm_boot_delay: Duration::from_secs(1),
            link_profile: LinkProfile::default(),
            use_flowvisor: true,
            hosts: Vec::new(),
            ospf_hello: 10,
            ospf_dead: 40,
            provision_width: 1,
            fib_batch: 1,
            channel_capacity: None,
            overflow: OverflowPolicy::Defer,
            trace_level: rf_sim::TraceLevel::Info,
            parallel_cores: 1,
        }
    }

    pub fn with_host(mut self, node: usize, subnet: &str) -> Self {
        self.hosts.push(HostAttachment {
            node,
            subnet: subnet.parse().expect("valid subnet"),
        });
        self
    }
}

/// A scheduled disturbance, injected while the scenario runs.
#[derive(Clone, Debug)]
pub enum Fault {
    /// Kill the switch at topology node `node` (its OF sessions drop,
    /// discovery ages the links out, OSPF routes around it).
    KillSwitch { node: usize, at: Duration },
    /// Boot a pristine replacement switch into node `node`'s slot (the
    /// inverse of [`Fault::KillSwitch`] — kill is no longer terminal).
    /// The revived switch keeps its dpid and port wiring, reconnects
    /// to the controller, gets a fresh mirroring VM provisioned, and
    /// OSPF re-forms its adjacencies. Reviving a live switch is a
    /// forced reboot.
    ReviveSwitch { node: usize, at: Duration },
    /// Administratively take the `edge`-th topology link down.
    LinkDown { edge: usize, at: Duration },
    /// Bring the `edge`-th topology link back up.
    LinkUp { edge: usize, at: Duration },
    /// Set the `edge`-th topology link's per-frame drop probability to
    /// `loss_pct` percent at `at` (0 restores a clean link) — the
    /// sustained-loss soak primitive.
    LinkLoss {
        edge: usize,
        loss_pct: f64,
        at: Duration,
    },
    /// Stall the controller's OpenFlow channel to `dpid` between
    /// `from` and `until`: nothing the control plane sends that switch
    /// reaches the wire inside the window. Queues fill, the overflow
    /// policy engages, and the drain tick releases the backlog when
    /// the window closes. (Injected into the controller's
    /// configuration, not the chaos agent — the stall is a
    /// control-plane condition, not a data-plane one.)
    ChannelStall {
        dpid: u64,
        from: Duration,
        until: Duration,
    },
}

/// Why a [`Fault`] cannot be applied to a given topology — the typed
/// result of [`Fault::validate`]. The matrix/chaos build paths check
/// every schedule up front and record a `build_error=1` cell instead
/// of panicking mid-sweep.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultError {
    /// `node` is not a valid topology node index.
    NodeOutOfRange { node: usize, nodes: usize },
    /// `edge` is not a valid topology edge index.
    EdgeOutOfRange { edge: usize, edges: usize },
    /// `loss_pct` is outside [0, 100].
    LossOutOfRange { loss_pct: f64 },
    /// A [`Fault::ChannelStall`] with `until <= from`.
    EmptyStallWindow { from: Duration, until: Duration },
    /// A [`Fault::ChannelStall`] naming a dpid no switch carries
    /// (dpids are `1..=nodes`).
    StallDpidOutOfRange { dpid: u64, nodes: usize },
}

// The `loss_pct` carried by `LossOutOfRange` is never NaN (a NaN loss
// is itself out of range and compares unequal to everything, which is
// the right answer for a malformed fault), so equality is total.
impl Eq for FaultError {}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            FaultError::NodeOutOfRange { node, nodes } => {
                write!(f, "fault references node {node}, topology has {nodes}")
            }
            FaultError::EdgeOutOfRange { edge, edges } => {
                write!(f, "fault references edge {edge}, topology has {edges}")
            }
            FaultError::LossOutOfRange { loss_pct } => {
                write!(f, "link loss {loss_pct}% is outside [0, 100]")
            }
            FaultError::EmptyStallWindow { from, until } => {
                write!(f, "stall window [{from:?}, {until:?}) is empty")
            }
            FaultError::StallDpidOutOfRange { dpid, nodes } => {
                write!(f, "stall names dpid {dpid}, topology has dpids 1..={nodes}")
            }
        }
    }
}

impl std::error::Error for FaultError {}

impl Fault {
    /// Check this fault against a topology of `nodes` nodes and
    /// `edges` edges. Everything the chaos agent would otherwise panic
    /// on (or silently misbehave under) is rejected here, typed.
    pub fn validate(&self, nodes: usize, edges: usize) -> Result<(), FaultError> {
        let check_node = |node: usize| {
            if node >= nodes {
                Err(FaultError::NodeOutOfRange { node, nodes })
            } else {
                Ok(())
            }
        };
        let check_edge = |edge: usize| {
            if edge >= edges {
                Err(FaultError::EdgeOutOfRange { edge, edges })
            } else {
                Ok(())
            }
        };
        match *self {
            Fault::KillSwitch { node, .. } | Fault::ReviveSwitch { node, .. } => check_node(node),
            Fault::LinkDown { edge, .. } | Fault::LinkUp { edge, .. } => check_edge(edge),
            Fault::LinkLoss { edge, loss_pct, .. } => {
                check_edge(edge)?;
                if !(0.0..=100.0).contains(&loss_pct) {
                    return Err(FaultError::LossOutOfRange { loss_pct });
                }
                Ok(())
            }
            Fault::ChannelStall { dpid, from, until } => {
                if until <= from {
                    return Err(FaultError::EmptyStallWindow { from, until });
                }
                if dpid == 0 || dpid > nodes as u64 {
                    return Err(FaultError::StallDpidOutOfRange { dpid, nodes });
                }
                Ok(())
            }
        }
    }

    /// Validate a whole schedule; the first offending fault's error.
    pub fn validate_schedule(
        faults: &[Fault],
        nodes: usize,
        edges: usize,
    ) -> Result<(), FaultError> {
        faults.iter().try_for_each(|f| f.validate(nodes, edges))
    }
}

/// A traffic workload attached to the scenario's edge.
#[derive(Clone, Debug)]
pub enum Workload {
    /// ICMP echo probing from a host on `client` to a host on `server`,
    /// one ping per second.
    Ping { client: usize, server: usize },
    /// The paper's §3 demo: a CBR UDP video stream from a host on
    /// `server` to a host on `client`.
    Video { server: usize, client: usize },
    /// Many pingers converging on one server — the fan-in pattern that
    /// turns a stalled or bounded control channel into visible
    /// backpressure (every client needs ARP answers and /32 flows from
    /// the same edge switch).
    PingFanIn { clients: Vec<usize>, server: usize },
    /// A stochastic traffic workload (see [`crate::traffic`]): seeded
    /// arrival processes, incast/multicast patterns, at packet or flow
    /// granularity.
    Traffic(TrafficConfig),
}

/// Widest fan-in the `[2, 0xE1.., k, 0, 0, 1]` MAC scheme can address.
const MAX_FAN_IN: usize = 30;

impl Workload {
    pub fn ping(client: usize, server: usize) -> Workload {
        Workload::Ping { client, server }
    }

    pub fn video(server: usize, client: usize) -> Workload {
        Workload::Video { server, client }
    }

    /// A fan-in of pingers. Fails typed (instead of panicking) so a bad
    /// matrix axis marks one cell, not the whole sweep.
    pub fn ping_fan_in(clients: Vec<usize>, server: usize) -> Result<Workload, WorkloadError> {
        if clients.is_empty() {
            return Err(WorkloadError::NoEndpoints("fan-in needs clients"));
        }
        if clients.len() > MAX_FAN_IN {
            return Err(WorkloadError::TooManyEndpoints {
                given: clients.len(),
                max: MAX_FAN_IN,
            });
        }
        Ok(Workload::PingFanIn { clients, server })
    }

    /// A validated stochastic traffic workload.
    pub fn traffic(cfg: TrafficConfig) -> Result<Workload, WorkloadError> {
        cfg.validate()?;
        Ok(Workload::Traffic(cfg))
    }

    /// Topology nodes hosting this workload's endpoints, in host-slot
    /// allocation order.
    fn endpoint_nodes(&self) -> Vec<usize> {
        match self {
            Workload::Ping { client, server } => vec![*client, *server],
            Workload::Video { server, client } => vec![*server, *client],
            Workload::PingFanIn { clients, server } => {
                let mut v = clients.clone();
                v.push(*server);
                v
            }
            Workload::Traffic(cfg) => cfg.pattern.endpoint_nodes(),
        }
    }
}

/// One pinger's timeline (used standalone by [`WorkloadReport::Ping`]
/// and per client by [`WorkloadReport::PingFanIn`]).
#[derive(Clone, Debug)]
pub struct PingProbeReport {
    /// Time of the first successful round trip.
    pub first_reply_at: Option<Time>,
    /// Completed round trips: (seq, rtt).
    pub rtts: Vec<(u16, Duration)>,
    /// Ping departure times: (seq, when sent).
    pub sent: Vec<(u16, Time)>,
    /// Reply arrival times: (seq, when) — together with `sent`, the
    /// timeline recovery measurements are read off.
    pub replies: Vec<(u16, Time)>,
}

/// What a workload measured, harvested via [`Scenario::workload_reports`].
#[derive(Clone, Debug)]
pub enum WorkloadReport {
    /// A lone pinger's timeline.
    Ping(PingProbeReport),
    Video(VideoClientReport),
    /// Per-client timelines of a fan-in, in `clients` declaration
    /// order.
    PingFanIn {
        clients: Vec<PingProbeReport>,
    },
    /// Aggregated traffic accounting, merged across the workload's
    /// agents (or produced whole by the flow-level engine).
    Traffic(TrafficReport),
}

impl PingProbeReport {
    /// Read a pinger's timeline off the live agent.
    fn harvest(p: &Pinger) -> PingProbeReport {
        PingProbeReport {
            first_reply_at: p.first_reply_at,
            rtts: p.rtts.clone(),
            sent: p.sent_at.clone(),
            replies: p.replies.clone(),
        }
    }
}

/// Typed scenario metrics: the numbers the paper's figures are made of.
#[derive(Clone, Debug)]
pub struct ScenarioMetrics {
    /// Switches in the topology.
    pub expected_switches: usize,
    /// Switches whose mirroring VM is up (green in the paper's GUI).
    pub configured_switches: usize,
    /// Per-switch configuration time (dpid → when it turned green).
    pub per_switch_config_time: Vec<(u64, Option<Time>)>,
    /// When the last switch turned green (Fig. 3's y-axis), if all did.
    pub all_configured_at: Option<Time>,
    /// FLOW_MODs pushed by the controller (adds, including host /32s).
    pub flows_installed: u64,
    /// FLOW_MOD deletions pushed by the controller.
    pub flows_removed: u64,
    /// Flow entries currently resident across all switch tables.
    pub dataplane_flows: usize,
    /// Gateway ARPs answered on the VMs' behalf.
    pub arp_replies: u64,
    /// OpenFlow messages the controller wrote toward switches
    /// (FLOW_MODs and PACKET_OUTs; Hello/Echo chores excluded).
    pub of_msgs_sent: u64,
    /// Wire bytes of those messages.
    pub of_bytes_sent: u64,
    /// Transport writes carrying them (multi-message pushes make this
    /// smaller than `of_msgs_sent`).
    pub of_pushes: u64,
    /// Multi-message FLOW_MOD pushes flushed by the FIB batch stage.
    pub fib_batches: u64,
    /// Deferral events: every time a bounded channel refused a
    /// message back to its producer (`Defer` pacing — producers
    /// retried them, and each re-refusal counts again, so this scales
    /// with how long the channel stayed full).
    pub of_deferred: u64,
    /// Queued messages bounded channels evicted (`DropOldest` loss).
    pub of_dropped: u64,
    /// Deepest per-switch channel queue observed over the run.
    pub of_queue_hwm: u64,
}

/// Internal fault-scheduler agent: one timer per scheduled fault.
#[derive(Clone)]
struct ChaosAgent {
    ops: Vec<(Duration, ChaosOp)>,
}

#[derive(Clone)]
enum ChaosOp {
    Kill(AgentId),
    /// Re-install a pristine switch agent into a killed slot. The
    /// payload is built from the retained [`SwitchConfig`] at schedule
    /// time, so the revived switch boots exactly like the original.
    Revive(AgentId, Box<dyn Agent>),
    SetLink(LinkId, bool),
    SetLinkLoss(LinkId, f64),
}

impl Agent for ChaosAgent {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        // Reserved-lane timers: a fault fires before every ordinarily
        // scheduled event at its instant, whether it was armed here at
        // t=0 or injected into a forked scenario mid-run — so cold and
        // forked runs dispatch identically around fault instants.
        for (i, (at, _)) in self.ops.iter().enumerate() {
            ctx.schedule_reserved(*at, i as u64);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        match &self.ops[token as usize].1 {
            ChaosOp::Kill(agent) => {
                let agent = *agent;
                ctx.trace("chaos.kill", format!("{agent}"));
                ctx.kill(agent);
            }
            ChaosOp::Revive(agent, fresh) => {
                let (agent, fresh) = (*agent, fresh.clone());
                ctx.trace("chaos.revive", format!("{agent}"));
                ctx.revive(agent, fresh);
            }
            ChaosOp::SetLink(link, up) => {
                let (link, up) = (*link, *up);
                ctx.trace("chaos.link", format!("link {} -> {}", link.0, up));
                ctx.set_link_up(link, up);
            }
            ChaosOp::SetLinkLoss(link, pct) => {
                let (link, pct) = (*link, *pct);
                ctx.trace("chaos.loss", format!("link {} -> {pct}% loss", link.0));
                ctx.set_link_loss(link, pct);
            }
        }
    }
}

/// Which traffic agent type lives behind an [`AgentId`], so the
/// harvest can downcast to the right concrete type.
#[derive(Clone)]
enum TrafficPart {
    Client(AgentId),
    Server(AgentId),
    IncastSender(AgentId),
    PacedSource(AgentId),
    Sink(AgentId),
    FlowEngine(AgentId),
}

#[derive(Clone)]
enum WorkloadHandle {
    Ping { pinger: AgentId },
    Video { client: AgentId },
    PingFanIn { pingers: Vec<AgentId> },
    Traffic { parts: Vec<TrafficPart> },
}

/// Fluent assembly of a full experiment; start with [`Scenario::on`].
pub struct ScenarioBuilder {
    cfg: ScenarioConfig,
    faults: Vec<Fault>,
    workloads: Vec<Workload>,
    extra_apps: Vec<Box<dyn ControlApp>>,
}

impl ScenarioBuilder {
    /// Builder over an existing [`ScenarioConfig`].
    pub fn from_config(cfg: ScenarioConfig) -> ScenarioBuilder {
        ScenarioBuilder {
            cfg,
            faults: Vec::new(),
            workloads: Vec::new(),
            extra_apps: Vec::new(),
        }
    }

    /// Renamed to [`ScenarioBuilder::from_config`].
    #[deprecated(note = "use ScenarioBuilder::from_config")]
    pub fn from_deployment_config(cfg: ScenarioConfig) -> ScenarioBuilder {
        ScenarioBuilder::from_config(cfg)
    }

    /// Simulation seed (default `0xC0FFEE`).
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// OSPF hello/dead intervals written into every ospfd.conf
    /// (defaults: Quagga's 10 s / 40 s).
    pub fn ospf_timers(mut self, hello: u16, dead: u16) -> Self {
        self.cfg.ospf_hello = hello;
        self.cfg.ospf_dead = dead;
        self
    }

    /// LLDP probe period of the topology controller.
    pub fn probe_interval(mut self, d: Duration) -> Self {
        self.cfg.probe_interval = d;
        self
    }

    /// 1 s hello / 4 s dead / 500 ms probes — the settings every fast
    /// test uses.
    pub fn fast_timers(self) -> Self {
        self.ospf_timers(1, 4)
            .probe_interval(Duration::from_millis(500))
    }

    /// Simulated VM provisioning time (default 1 s, LXC-like).
    pub fn vm_boot_delay(mut self, d: Duration) -> Self {
        self.cfg.vm_boot_delay = d;
        self
    }

    /// VM provisioning pipeline width: up to `k` VM create/configure
    /// operations in flight at once (default 1, the paper's serial
    /// rftest behaviour — the Fig. 3 bottleneck).
    pub fn provision_width(mut self, k: usize) -> Self {
        self.cfg.provision_width = k.max(1);
        self
    }

    /// FIB-mirror batching: coalesce up to `n` FLOW_MODs per switch
    /// into one multi-message push (default 1 = send each immediately).
    pub fn fib_batch(mut self, n: usize) -> Self {
        self.cfg.fib_batch = n.max(1);
        self
    }

    /// Bound each switch channel's send queue to `n` messages, which
    /// also sets the channel's per-drain-interval send credits. The
    /// default is unbounded (the paper's fire-and-forget behaviour);
    /// `0` is the degenerate everything-defers channel.
    pub fn channel_capacity(mut self, n: usize) -> Self {
        self.cfg.channel_capacity = Some(n);
        self
    }

    /// What a full bounded channel does with overflow (default
    /// [`OverflowPolicy::Defer`], which is lossless with the standard
    /// retrying apps).
    pub fn overflow_policy(mut self, policy: OverflowPolicy) -> Self {
        self.cfg.overflow = policy;
        self
    }

    /// Physical link profile (also used for the virtual interconnect).
    pub fn link_profile(mut self, p: LinkProfile) -> Self {
        self.cfg.link_profile = p;
        self
    }

    /// Wire both controllers directly into every switch instead of
    /// going through FlowVisor (the A4 ablation).
    pub fn without_flowvisor(mut self) -> Self {
        self.cfg.use_flowvisor = false;
        self
    }

    /// Trace verbosity (default `Info`).
    pub fn trace_level(mut self, level: rf_sim::TraceLevel) -> Self {
        self.cfg.trace_level = level;
        self
    }

    /// Step post-convergence spans on the conservative parallel kernel
    /// with up to `n` regions (default 1 = sequential). Reports are
    /// byte-identical whatever the value — the kernel falls back to
    /// sequential execution whenever the partition contract cannot
    /// hold; see [`rf_sim::partition`].
    pub fn parallel_cores(mut self, n: usize) -> Self {
        self.cfg.parallel_cores = n.max(1);
        self
    }

    /// Attach a host subnet at a topology node; slots appear in
    /// [`Scenario::host_slots`] in declaration order.
    pub fn with_host(mut self, node: usize, subnet: &str) -> Self {
        self.cfg.hosts.push(HostAttachment {
            node,
            subnet: subnet.parse().expect("valid subnet"),
        });
        self
    }

    /// Attach several hosts at once.
    pub fn with_hosts<'a>(mut self, hosts: impl IntoIterator<Item = (usize, &'a str)>) -> Self {
        for (node, subnet) in hosts {
            self = self.with_host(node, subnet);
        }
        self
    }

    /// Schedule a fault.
    pub fn with_fault(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Schedule several faults.
    pub fn with_faults(mut self, faults: impl IntoIterator<Item = Fault>) -> Self {
        self.faults.extend(faults);
        self
    }

    /// Attach a traffic workload; its endpoints get auto-allocated
    /// `10.200+k.0.0/24` host subnets.
    pub fn with_workload(mut self, workload: Workload) -> Self {
        self.workloads.push(workload);
        self
    }

    /// Register an extra [`ControlApp`] on the controller's event bus,
    /// after the four standard apps.
    pub fn with_app(mut self, app: Box<dyn ControlApp>) -> Self {
        self.extra_apps.push(app);
        self
    }

    /// Register several extra apps.
    pub fn with_apps(mut self, apps: impl IntoIterator<Item = Box<dyn ControlApp>>) -> Self {
        self.extra_apps.extend(apps);
        self
    }

    /// Assemble the world: switches → FlowVisor → topology controller +
    /// RF-controller (RPC client in between), physical links, host
    /// slots, workload agents and the fault schedule.
    pub fn start(self) -> Scenario {
        let ScenarioBuilder {
            mut cfg,
            faults,
            workloads,
            extra_apps,
        } = self;

        // Workload endpoints ride on auto-allocated host subnets,
        // appended after user-declared hosts so explicit slot indices
        // stay stable. Two-endpoint workloads keep the historical
        // 10.(200+k).(2k)/((2k)+1) scheme; fan-ins extend the third
        // octet past it (the overlap assertion below catches any
        // pathological combination).
        let user_hosts = cfg.hosts.len();
        let mut workload_slots: Vec<Vec<usize>> = Vec::new(); // per workload: host-slot indices
        for (k, w) in workloads.iter().enumerate() {
            let nodes = w.endpoint_nodes();
            let base = cfg.hosts.len();
            let oct = 200 + (k as u8 % 50);
            for (j, &node) in nodes.iter().enumerate() {
                let third = 2 * k + j;
                assert!(
                    third < 256,
                    "workload {k} endpoint {j}: subnet space exhausted"
                );
                cfg.hosts.push(HostAttachment {
                    node,
                    subnet: Ipv4Cidr::new(Ipv4Addr::new(10, oct, third as u8, 0), 24),
                });
            }
            workload_slots.push((base..base + nodes.len()).collect());
        }

        // No two host subnets (user-declared or workload-allocated) may
        // overlap: duplicate gateway/host addresses would make ARP
        // learning deliver one host's traffic to the other's switch.
        for (i, a) in cfg.hosts.iter().enumerate() {
            for b in &cfg.hosts[i + 1..] {
                assert!(
                    !a.subnet.contains(b.subnet.network())
                        && !b.subnet.contains(a.subnet.network()),
                    "host subnets overlap: {} (node {}) and {} (node {})",
                    a.subnet,
                    a.node,
                    b.subnet,
                    b.node
                );
            }
        }

        let n = cfg.topology.node_count();
        let mut sim = Sim::new(SimConfig {
            seed: cfg.seed,
            trace_level: cfg.trace_level,
            max_time: None,
        });

        // Port plan: edges first, then host ports.
        let mut next_port: Vec<u16> = vec![1; n];
        let mut edge_ports: Vec<(usize, u16, usize, u16)> = Vec::new();
        for e in cfg.topology.edges() {
            let pa = next_port[e.a];
            next_port[e.a] += 1;
            let pb = next_port[e.b];
            next_port[e.b] += 1;
            edge_ports.push((e.a, pa, e.b, pb));
        }
        let mut host_port_cfgs = Vec::new();
        let mut host_plan = Vec::new(); // (node, port, subnet, gw, host_ip)
        for h in &cfg.hosts {
            let port = next_port[h.node];
            next_port[h.node] += 1;
            let gw = h.subnet.nth(1).expect("subnet too small");
            let host_ip = h.subnet.nth(2).expect("subnet too small");
            host_port_cfgs.push(HostPortConfig {
                dpid: (h.node + 1) as u64,
                port,
                subnet: h.subnet,
                gateway: gw,
            });
            host_plan.push((h.node, port, h.subnet, gw, host_ip));
        }

        // Channel stalls are a controller-side condition: they ride in
        // the engine configuration, not the chaos agent.
        let channel_stalls: Vec<ChannelStallWindow> = faults
            .iter()
            .filter_map(|f| match *f {
                Fault::ChannelStall { dpid, from, until } => {
                    assert!(from < until, "stall window must be non-empty");
                    Some(ChannelStallWindow { dpid, from, until })
                }
                _ => None,
            })
            .collect();

        // Controllers.
        let mut engine = ControlPlane::new(RfControllerConfig {
            of_service: 6642,
            vm_boot_delay: cfg.vm_boot_delay,
            vm_link_profile: cfg.link_profile,
            host_ports: host_port_cfgs,
            ospf_hello: cfg.ospf_hello,
            ospf_dead: cfg.ospf_dead,
            provision_width: cfg.provision_width,
            fib_batch: cfg.fib_batch,
            channel_capacity: cfg.channel_capacity,
            overflow: cfg.overflow,
            channel_stalls,
        });
        for app in extra_apps {
            engine.register(app);
        }
        let rf_ctrl = sim.add_agent("rf-controller", Box::new(engine));
        let rpc_client = sim.add_agent(
            "rpc-client",
            Box::new(RpcClientAgent::new(RpcClientConfig::new(rf_ctrl))),
        );
        let topo_ctrl = sim.add_agent(
            "topology-controller",
            Box::new(TopologyController::new(
                TopologyControllerConfig {
                    probe_interval: cfg.probe_interval,
                    link_ttl: cfg.probe_interval * 3,
                    ..TopologyControllerConfig::new(cfg.ip_range)
                }
                .with_rpc_client(rpc_client),
            )),
        );
        let flowvisor = if cfg.use_flowvisor {
            Some(sim.add_agent(
                "flowvisor",
                Box::new(FlowVisor::new(FlowVisorConfig::new(vec![
                    SlicePolicy::lldp_slice("topology", topo_ctrl, 6641),
                    SlicePolicy::ip_slice("routeflow", rf_ctrl, 6642),
                ]))),
            ))
        } else {
            None
        };

        // Switches. The per-node configs are retained: a
        // [`Fault::ReviveSwitch`] boots a pristine replacement from
        // the same config (same dpid, same port count, same
        // controller wiring).
        let mut switches = Vec::with_capacity(n);
        let mut switch_cfgs = Vec::with_capacity(n);
        for (i, ports) in next_port.iter().enumerate() {
            let dpid = (i + 1) as u64;
            let num_ports = ports - 1;
            let swcfg = match flowvisor {
                Some(fv) => SwitchConfig::new(dpid, num_ports, fv),
                None => SwitchConfig::new(dpid, num_ports, topo_ctrl)
                    .with_service(6641)
                    .add_controller(rf_ctrl, 6642),
            };
            let name = cfg.topology.node(i).name.clone();
            switches.push(sim.add_agent(&name, Box::new(OpenFlowSwitch::new(swcfg.clone()))));
            switch_cfgs.push(swcfg);
        }

        // Physical links (ids kept for the fault schedule).
        let mut phys_links = Vec::with_capacity(edge_ports.len());
        for (a, pa, b, pb) in edge_ports {
            phys_links.push(sim.add_link(
                (switches[a], u32::from(pa)),
                (switches[b], u32::from(pb)),
                cfg.link_profile,
            ));
        }

        let host_slots: Vec<HostSlot> = host_plan
            .into_iter()
            .map(|(node, port, subnet, gateway, host_ip)| HostSlot {
                node,
                switch: switches[node],
                port,
                subnet,
                gateway,
                host_ip,
            })
            .collect();

        // Workload endpoint agents.
        let mut workload_handles = Vec::new();
        for (k, w) in workloads.iter().enumerate() {
            let slots = &workload_slots[k];
            let mac = |which: u8| MacAddr([2, 0xE0 + which, k as u8, 0, 0, 1]);
            let host_cfg = |slot: &HostSlot, which: u8| HostConfig {
                mac: mac(which),
                addr: Ipv4Cidr::new(slot.host_ip, slot.subnet.prefix_len),
                gateway: slot.gateway,
            };
            let handle = match *w {
                Workload::Ping { .. } => {
                    let a = host_slots[slots[0]].clone();
                    let b = host_slots[slots[1]].clone();
                    let echo = sim.add_agent(
                        &format!("echo-host-{k}"),
                        Box::new(EchoHost::new(host_cfg(&b, 1))),
                    );
                    let pinger = sim.add_agent(
                        &format!("pinger-{k}"),
                        Box::new(Pinger::new(host_cfg(&a, 0), b.host_ip)),
                    );
                    sim.add_link((b.switch, u32::from(b.port)), (echo, 1), cfg.link_profile);
                    sim.add_link((a.switch, u32::from(a.port)), (pinger, 1), cfg.link_profile);
                    WorkloadHandle::Ping { pinger }
                }
                Workload::Video { .. } => {
                    let a = host_slots[slots[0]].clone();
                    let b = host_slots[slots[1]].clone();
                    let server = sim.add_agent(
                        &format!("video-server-{k}"),
                        Box::new(VideoServer::new(host_cfg(&a, 0))),
                    );
                    let client = sim.add_agent(
                        &format!("video-client-{k}"),
                        Box::new(VideoClient::new(host_cfg(&b, 1), a.host_ip)),
                    );
                    sim.add_link((a.switch, u32::from(a.port)), (server, 1), cfg.link_profile);
                    sim.add_link((b.switch, u32::from(b.port)), (client, 1), cfg.link_profile);
                    WorkloadHandle::Video { client }
                }
                Workload::PingFanIn { ref clients, .. } => {
                    assert!(
                        clients.len() <= 30,
                        "fan-in wider than 30 exhausts the MAC scheme"
                    );
                    // The server slot is allocated last.
                    let srv = host_slots[*slots.last().expect("server slot")].clone();
                    let echo = sim.add_agent(
                        &format!("echo-host-{k}"),
                        Box::new(EchoHost::new(host_cfg(&srv, 0))),
                    );
                    sim.add_link(
                        (srv.switch, u32::from(srv.port)),
                        (echo, 1),
                        cfg.link_profile,
                    );
                    let mut pingers = Vec::with_capacity(clients.len());
                    for (j, _) in clients.iter().enumerate() {
                        let c = host_slots[slots[j]].clone();
                        let pinger = sim.add_agent(
                            &format!("pinger-{k}-{j}"),
                            Box::new(Pinger::new(host_cfg(&c, 1 + j as u8), srv.host_ip)),
                        );
                        sim.add_link((c.switch, u32::from(c.port)), (pinger, 1), cfg.link_profile);
                        pingers.push(pinger);
                    }
                    WorkloadHandle::PingFanIn { pingers }
                }
                Workload::Traffic(ref tcfg) => WorkloadHandle::Traffic {
                    parts: wire_traffic(&mut sim, &cfg, k, tcfg, slots, &host_slots),
                },
            };
            workload_handles.push(handle);
        }

        // Fault schedule. The chaos agent is *always* present — with an
        // empty schedule when no faults were declared — so every world
        // built from the same (topology, knob, seed) has an identical
        // agent table regardless of its fault axis. That structural
        // identity is what lets a fork of a fault-free prefix inject a
        // cell's faults ([`Scenario::inject_faults`]) and still match a
        // cold run byte for byte.
        let ops = chaos_ops(&faults, &switches, &switch_cfgs, &phys_links);
        let chaos = sim.add_agent("chaos", Box::new(ChaosAgent { ops }));

        Scenario {
            sim,
            rf_ctrl,
            topo_ctrl,
            rpc_client,
            flowvisor,
            switches,
            switch_cfgs,
            phys_links,
            host_slots,
            expected_switches: n,
            user_hosts,
            workload_handles,
            chaos,
            parallel_cores: cfg.parallel_cores,
            configured: false,
            last_parallel: None,
        }
    }
}

/// Map a fault schedule onto chaos-agent operations against already
/// constructed switch agents and physical links. (`ChannelStall` is a
/// controller-side condition and is handled in the engine
/// configuration, not here.)
fn chaos_ops(
    faults: &[Fault],
    switches: &[AgentId],
    switch_cfgs: &[SwitchConfig],
    phys_links: &[LinkId],
) -> Vec<(Duration, ChaosOp)> {
    let switch_of = |node: usize| {
        *switches.get(node).unwrap_or_else(|| {
            panic!(
                "fault references node {node}, topology has {}",
                switches.len()
            )
        })
    };
    let link_of = |edge: usize| {
        *phys_links.get(edge).unwrap_or_else(|| {
            panic!(
                "fault references edge {edge}, topology has {}",
                phys_links.len()
            )
        })
    };
    faults
        .iter()
        .filter_map(|f| match *f {
            Fault::KillSwitch { node, at } => Some((at, ChaosOp::Kill(switch_of(node)))),
            Fault::ReviveSwitch { node, at } => {
                let id = switch_of(node);
                let fresh = Box::new(OpenFlowSwitch::new(switch_cfgs[node].clone()));
                Some((at, ChaosOp::Revive(id, fresh)))
            }
            Fault::LinkDown { edge, at } => Some((at, ChaosOp::SetLink(link_of(edge), false))),
            Fault::LinkUp { edge, at } => Some((at, ChaosOp::SetLink(link_of(edge), true))),
            Fault::LinkLoss { edge, loss_pct, at } => {
                Some((at, ChaosOp::SetLinkLoss(link_of(edge), loss_pct)))
            }
            Fault::ChannelStall { .. } => None,
        })
        .collect()
}

/// Wire one traffic workload into the simulation: real host agents at
/// packet granularity, or a single timer-driven engine at flow
/// granularity (same demand seeds either way — see [`crate::traffic`]).
/// Returns typed handles for the harvest.
fn wire_traffic(
    sim: &mut Sim,
    cfg: &ScenarioConfig,
    k: usize,
    tcfg: &TrafficConfig,
    slots: &[usize],
    host_slots: &[HostSlot],
) -> Vec<TrafficPart> {
    use crate::traffic::endpoint_seed;
    let host_cfg = |j: usize| {
        let slot = &host_slots[slots[j]];
        HostConfig {
            mac: MacAddr([2, 0xD0, k as u8, (j >> 8) as u8, j as u8, 1]),
            addr: Ipv4Cidr::new(slot.host_ip, slot.subnet.prefix_len),
            gateway: slot.gateway,
        }
    };
    let ip_of = |j: usize| host_slots[slots[j]].host_ip;
    let attach = |sim: &mut Sim, name: String, agent: Box<dyn Agent>, j: usize| -> AgentId {
        let id = sim.add_agent(&name, agent);
        let slot = &host_slots[slots[j]];
        sim.add_link(
            (slot.switch, u32::from(slot.port)),
            (id, 1),
            cfg.link_profile,
        );
        id
    };
    let mut parts = Vec::new();

    if tcfg.mode == TrafficMode::Flow {
        // The endpoints' host slots stay allocated (the control plane
        // configures the same ports either way), but no host agents
        // exist — one engine replays the whole workload on timers.
        let topo = &cfg.topology;
        let engine = FlowLevelEngine::from_config(
            tcfg,
            cfg.seed,
            k,
            cfg.link_profile.bandwidth_bps,
            cfg.link_profile.latency,
            |a, b| {
                if a == b {
                    return 2; // host → shared switch → host
                }
                let d = topo.bfs_distances(a)[b];
                if d == usize::MAX {
                    2
                } else {
                    d as u32 + 2 // fabric hops plus both access links
                }
            },
        );
        let id = sim.add_agent(&format!("traffic-flow-{k}"), Box::new(engine));
        parts.push(TrafficPart::FlowEngine(id));
        return parts;
    }

    match &tcfg.pattern {
        TrafficPattern::RequestResponse {
            clients,
            arrivals,
            response,
            ..
        } => {
            // The server slot is allocated last, like a fan-in's.
            let server_j = clients.len();
            let server_ip = ip_of(server_j);
            let sid = attach(
                sim,
                format!("traffic-server-{k}"),
                Box::new(TrafficServer::new(host_cfg(server_j), tcfg.start_at)),
                server_j,
            );
            parts.push(TrafficPart::Server(sid));
            for j in 0..clients.len() {
                let stream = ArrivalStream::new(
                    endpoint_seed(cfg.seed, k, j),
                    *arrivals,
                    *response,
                    tcfg.start_at,
                    tcfg.stop_at,
                );
                let id = attach(
                    sim,
                    format!("traffic-client-{k}-{j}"),
                    Box::new(TrafficClient::new(
                        host_cfg(j),
                        server_ip,
                        stream,
                        j,
                        tcfg.start_at,
                    )),
                    j,
                );
                parts.push(TrafficPart::Client(id));
            }
        }
        TrafficPattern::CbrMix { streams } => {
            for (i, s) in streams.iter().enumerate() {
                let (src_j, sink_j) = (2 * i, 2 * i + 1);
                let sink_id = attach(
                    sim,
                    format!("traffic-sink-{k}-{i}"),
                    Box::new(TrafficSink::new(host_cfg(sink_j), tcfg.start_at)),
                    sink_j,
                );
                parts.push(TrafficPart::Sink(sink_id));
                let src_id = attach(
                    sim,
                    format!("traffic-cbr-{k}-{i}"),
                    Box::new(PacedSource::new(
                        host_cfg(src_j),
                        vec![ip_of(sink_j)],
                        paced_interval(s.rate_bps),
                        src_j,
                        tcfg.start_at,
                        tcfg.stop_at,
                    )),
                    src_j,
                );
                parts.push(TrafficPart::PacedSource(src_id));
            }
        }
        TrafficPattern::Incast {
            senders,
            flow,
            period,
            waves,
            ..
        } => {
            let recv_j = senders.len();
            let recv_ip = ip_of(recv_j);
            let sink_id = attach(
                sim,
                format!("traffic-sink-{k}"),
                Box::new(TrafficSink::new(host_cfg(recv_j), tcfg.start_at)),
                recv_j,
            );
            parts.push(TrafficPart::Sink(sink_id));
            for j in 0..senders.len() {
                let stream = WaveStream::new(
                    endpoint_seed(cfg.seed, k, j),
                    *flow,
                    tcfg.start_at,
                    *period,
                    *waves,
                );
                let id = attach(
                    sim,
                    format!("traffic-incast-{k}-{j}"),
                    Box::new(IncastSender::new(
                        host_cfg(j),
                        recv_ip,
                        stream,
                        j,
                        tcfg.start_at,
                    )),
                    j,
                );
                parts.push(TrafficPart::IncastSender(id));
            }
        }
        TrafficPattern::Multicast {
            receivers,
            rate_bps,
            ..
        } => {
            // Source at slot 0, receivers after.
            let mut dsts = Vec::with_capacity(receivers.len());
            for r in 0..receivers.len() {
                let sink_j = 1 + r;
                dsts.push(ip_of(sink_j));
                let sink_id = attach(
                    sim,
                    format!("traffic-sink-{k}-{r}"),
                    Box::new(TrafficSink::new(host_cfg(sink_j), tcfg.start_at)),
                    sink_j,
                );
                parts.push(TrafficPart::Sink(sink_id));
            }
            let src_id = attach(
                sim,
                format!("traffic-mcast-{k}"),
                Box::new(PacedSource::new(
                    host_cfg(0),
                    dsts,
                    paced_interval(*rate_bps),
                    0,
                    tcfg.start_at,
                    tcfg.stop_at,
                )),
                0,
            );
            parts.push(TrafficPart::PacedSource(src_id));
        }
    }
    parts
}

/// Switches whose VM is up, read off the controller agent (shared by
/// [`Scenario`] and the legacy `Deployment` wrapper).
pub(crate) fn configured_switches(sim: &Sim, rf_ctrl: AgentId) -> usize {
    sim.agent_as::<ControlPlane>(rf_ctrl)
        .map(|c| c.configured_switches())
        .unwrap_or(0)
}

/// When the last of `expected` switches turned green, if all have.
pub(crate) fn all_configured_at(sim: &Sim, rf_ctrl: AgentId, expected: usize) -> Option<Time> {
    sim.agent_as::<ControlPlane>(rf_ctrl)?
        .all_configured_at(expected)
}

/// Run until every switch is configured (or `deadline`), stepping in
/// 100 ms slices so the condition is observable.
pub(crate) fn run_until_configured(
    sim: &mut Sim,
    rf_ctrl: AgentId,
    expected: usize,
    deadline: Time,
) -> Option<Time> {
    let mut t = sim.now();
    while t < deadline {
        t = (t + Duration::from_millis(100)).min(deadline);
        sim.run_until(t);
        if let Some(done) = all_configured_at(sim, rf_ctrl, expected) {
            return Some(done);
        }
    }
    None
}

/// Flow entries currently resident across all switch tables.
pub(crate) fn total_flows(sim: &Sim, switches: &[AgentId]) -> usize {
    switches
        .iter()
        .filter_map(|&s| sim.agent_as::<OpenFlowSwitch>(s))
        .map(|s| s.flow_count())
        .sum()
}

/// A running experiment: the simulator plus handles to every layer of
/// the Fig. 2 stack.
///
/// `Clone` performs a deep copy of the entire world — kernel event
/// queue, every agent's state, links, streams and the seeded RNG
/// mid-stream — which is what [`Scenario::snapshot`] and
/// [`Scenario::fork`] are built on.
#[derive(Clone)]
pub struct Scenario {
    pub sim: Sim,
    pub rf_ctrl: AgentId,
    pub topo_ctrl: AgentId,
    pub rpc_client: AgentId,
    pub flowvisor: Option<AgentId>,
    /// Switch agents indexed by topology node.
    pub switches: Vec<AgentId>,
    /// Per-node switch configs, retained so [`Fault::ReviveSwitch`]
    /// can boot a pristine replacement into a killed slot.
    switch_cfgs: Vec<SwitchConfig>,
    /// Physical link ids, indexed like `topology.edges()`.
    pub phys_links: Vec<LinkId>,
    /// Reserved host ports: user-declared first, then two per workload.
    pub host_slots: Vec<HostSlot>,
    /// Number of switches in the topology.
    pub expected_switches: usize,
    /// How many of `host_slots` were declared via `with_host`.
    user_hosts: usize,
    workload_handles: Vec<WorkloadHandle>,
    /// The always-present fault scheduler (possibly with an empty
    /// schedule); the fork path injects faults into it.
    chaos: AgentId,
    /// Worker threads for post-convergence `run_until` spans (1 =
    /// sequential).
    parallel_cores: usize,
    /// Set once [`Scenario::run_until_configured`] observes
    /// convergence; the parallel kernel never engages before it (the
    /// configuration phase spawns VMs and opens control channels —
    /// both partition violations — so attempting it would only buy
    /// rollback churn). A fork inherits the flag: snapshots are taken
    /// at converged quiesce points by contract.
    configured: bool,
    /// How the most recent parallel-eligible [`Scenario::run_until`]
    /// span actually executed (`None` until one happens).
    pub last_parallel: Option<ParallelOutcome>,
}

/// Why [`Scenario::snapshot`] refused to capture at the current
/// instant. A snapshot is only meaningful at a quiesce point — the
/// control plane converged and nothing buffered in flight — because a
/// fork taken mid-transient would bake half-delivered state into every
/// descendant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// Not every switch has turned green yet.
    NotConverged { configured: usize, expected: usize },
    /// The controller still holds queued channel output (a FIB batch
    /// waiting out its tick, a deferral backlog, credit-capped
    /// messages). Run further — e.g. another
    /// [`Scenario::run_until`] slice — and retry; snapshotting never
    /// force-drains, because a drain mutates the very state being
    /// captured.
    UndrainedChannels { queued: usize },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            SnapshotError::NotConverged {
                configured,
                expected,
            } => write!(
                f,
                "scenario not converged: {configured}/{expected} switches configured"
            ),
            SnapshotError::UndrainedChannels { queued } => {
                write!(f, "controller holds {queued} undrained channel message(s)")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Why [`Scenario::inject_faults`] refused a fault.
#[derive(Clone, Debug, PartialEq)]
pub enum ForkError {
    /// The fault's (first) effect is not strictly after the fork
    /// point; a cold run would already have dispatched it, so the fork
    /// could never match.
    FaultNotAfterFork { at: Duration, now: Time },
}

impl std::fmt::Display for ForkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ForkError::FaultNotAfterFork { at, now } => write!(
                f,
                "fault at {at:?} is not strictly after the fork point {now}"
            ),
        }
    }
}

impl std::error::Error for ForkError {}

/// A deep capture of a converged [`Scenario`], taken by
/// [`Scenario::snapshot`]. Fork as many divergent continuations from
/// it as you like with [`Scenario::fork`]; the snapshot itself stays
/// immutable.
#[derive(Clone)]
pub struct Snapshot {
    scenario: Scenario,
    taken_at: Time,
}

impl Snapshot {
    /// Simulated time at which the capture was taken.
    pub fn taken_at(&self) -> Time {
        self.taken_at
    }
}

impl Scenario {
    /// Start building a scenario on `topology`.
    pub fn on(topology: Topology) -> ScenarioBuilder {
        ScenarioBuilder::from_config(ScenarioConfig::new(topology))
    }

    /// Start building a scenario on a typed topology spec — anything
    /// convertible into an [`rf_topo::TopoSpec`]. Building a spec is
    /// infallible; parse names with `str::parse::<TopoSpec>()` first.
    pub fn on_spec(spec: impl Into<rf_topo::TopoSpec>) -> ScenarioBuilder {
        Scenario::on(spec.into().build())
    }

    /// The control-plane engine (state, app list, counters).
    pub fn controller(&self) -> &ControlPlane {
        self.sim
            .agent_as::<ControlPlane>(self.rf_ctrl)
            .expect("controller agent alive")
    }

    /// Host slots declared via `with_host` (excludes workload slots).
    pub fn user_host_slots(&self) -> &[HostSlot] {
        &self.host_slots[..self.user_hosts]
    }

    /// Run until simulated time `t`.
    ///
    /// When `parallel_cores ≥ 2` and the scenario has converged, spans
    /// of at least one simulated second are stepped on the
    /// conservative parallel kernel ([`rf_sim::partition`]); shorter
    /// slices (convergence probing, output draining) stay sequential —
    /// the split/merge cost would dwarf them. Either path produces
    /// byte-identical state.
    pub fn run_until(&mut self, t: Time) {
        const MIN_PARALLEL_SPAN: Duration = Duration::from_secs(1);
        if self.parallel_cores >= 2
            && self.configured
            && t.since(self.sim.now()) >= MIN_PARALLEL_SPAN
        {
            let cores = self.parallel_cores;
            self.last_parallel = Some(rf_sim::run_parallel_until(&mut self.sim, t, cores));
        } else {
            self.sim.run_until(t);
        }
    }

    /// Run until simulated time `t` on the parallel kernel with up to
    /// `cores` regions, regardless of the configured knob (still
    /// subject to the kernel's own serial fallbacks). Returns how the
    /// span executed.
    pub fn run_parallel(&mut self, t: Time, cores: usize) -> ParallelOutcome {
        let out = rf_sim::run_parallel_until(&mut self.sim, t, cores);
        self.last_parallel = Some(out.clone());
        out
    }

    /// Worker threads post-convergence `run_until` spans may use.
    pub fn parallel_cores(&self) -> usize {
        self.parallel_cores
    }

    /// Re-budget the parallel kernel (the matrix scheduler hands spare
    /// cores to expensive cells after building them).
    pub fn set_parallel_cores(&mut self, n: usize) {
        self.parallel_cores = n.max(1);
    }

    /// Switches whose VM is up (green in the paper's GUI).
    pub fn configured_switches(&self) -> usize {
        configured_switches(&self.sim, self.rf_ctrl)
    }

    /// When the last switch turned green, if all have.
    pub fn all_configured_at(&self) -> Option<Time> {
        all_configured_at(&self.sim, self.rf_ctrl, self.expected_switches)
    }

    /// Run until every switch is configured (or `deadline`); returns
    /// the configuration completion time. Observing convergence arms
    /// the parallel kernel for subsequent [`Scenario::run_until`]
    /// spans.
    pub fn run_until_configured(&mut self, deadline: Time) -> Option<Time> {
        let done = run_until_configured(
            &mut self.sim,
            self.rf_ctrl,
            self.expected_switches,
            deadline,
        );
        if done.is_some() {
            self.configured = true;
        }
        done
    }

    /// Flow entries currently resident across all switch tables.
    pub fn total_flows(&self) -> usize {
        total_flows(&self.sim, &self.switches)
    }

    /// Capture the whole world — kernel queue, agents, streams, RNG —
    /// at the current instant, for later [`Scenario::fork`]s.
    ///
    /// ## Quiesce contract
    ///
    /// The capture is refused (typed, not panicking) unless the
    /// scenario is at a quiesce point:
    ///
    /// * every switch is configured ([`SnapshotError::NotConverged`]
    ///   otherwise) — forks diverge *after* the shared convergence
    ///   prefix, never during it;
    /// * the controller's channel queues are empty
    ///   ([`SnapshotError::UndrainedChannels`] otherwise) — a buffered
    ///   tail batch would be replayed into every fork from a state the
    ///   producer apps no longer agree with. Snapshotting never
    ///   force-drains; run further and retry instead.
    ///
    /// Pending *timers* (probes, hellos, workload arrivals) are part of
    /// the capture — they must be, for forks to continue the run
    /// rather than restart it.
    pub fn snapshot(&self) -> Result<Snapshot, SnapshotError> {
        let configured = self.configured_switches();
        if self.all_configured_at().is_none() {
            return Err(SnapshotError::NotConverged {
                configured,
                expected: self.expected_switches,
            });
        }
        let queued = self.controller().channel_queued();
        if queued > 0 {
            return Err(SnapshotError::UndrainedChannels { queued });
        }
        Ok(Snapshot {
            scenario: self.clone(),
            taken_at: self.sim.now(),
        })
    }

    /// Resume a fresh, independent scenario from a [`Snapshot`]. The
    /// fork continues exactly where the capture stopped — same pending
    /// events, same RNG stream position — so a fork that receives no
    /// further intervention behaves byte-identically to the captured
    /// run continuing. Diverge it with [`Scenario::inject_faults`] or
    /// any other mutation.
    pub fn fork(snapshot: &Snapshot) -> Scenario {
        snapshot.scenario.clone()
    }

    /// Schedule `faults` into a running (typically just-forked)
    /// scenario, exactly as if they had been declared on the builder:
    /// data-plane faults go to the resident chaos agent through the
    /// event queue's reserved lane (so dispatch order at each fault
    /// instant matches a cold run that armed the same schedule at t=0),
    /// and [`Fault::ChannelStall`] windows are appended to the
    /// controller's configuration.
    ///
    /// Every fault's first effect (`at`, or `from` for a stall) must
    /// lie strictly after the current instant — a cold run would
    /// already have dispatched anything earlier, so such a fork could
    /// never match one. Nothing is scheduled unless all faults pass.
    pub fn inject_faults(&mut self, faults: &[Fault]) -> Result<(), ForkError> {
        let now = self.sim.now();
        for f in faults {
            let effective = match *f {
                Fault::KillSwitch { at, .. }
                | Fault::ReviveSwitch { at, .. }
                | Fault::LinkDown { at, .. }
                | Fault::LinkUp { at, .. }
                | Fault::LinkLoss { at, .. } => at,
                Fault::ChannelStall { from, until, .. } => {
                    assert!(from < until, "stall window must be non-empty");
                    from
                }
            };
            if Time::ZERO + effective <= now {
                return Err(ForkError::FaultNotAfterFork { at: effective, now });
            }
        }

        let ops = chaos_ops(faults, &self.switches, &self.switch_cfgs, &self.phys_links);
        let base = {
            let chaos = self
                .sim
                .agent_as_mut::<ChaosAgent>(self.chaos)
                .expect("chaos agent alive");
            let base = chaos.ops.len();
            chaos.ops.extend(ops.iter().cloned());
            base
        };
        for (i, (at, _)) in ops.iter().enumerate() {
            let delay = Duration::from_nanos((Time::ZERO + *at).as_nanos() - now.as_nanos());
            self.sim
                .schedule_timer_reserved(self.chaos, delay, (base + i) as u64);
        }

        for f in faults {
            if let Fault::ChannelStall { dpid, from, until } = *f {
                self.sim
                    .agent_as_mut::<ControlPlane>(self.rf_ctrl)
                    .expect("controller agent alive")
                    .add_channel_stall(ChannelStallWindow { dpid, from, until });
            }
        }
        Ok(())
    }

    /// Drain the controller's buffered output so a harvest observes a
    /// settled control plane: a FIB batch waiting out its 50 ms tick,
    /// a deferral backlog mid-retry, or a credit-capped channel queue
    /// would otherwise leave the last FLOW_MODs unsent in a cell that
    /// stops inside the window. Fires the flush/drain timers and runs
    /// short slices until the counters stop moving (stalled channels
    /// cannot move, so a mid-stall harvest converges too). Bounded, so
    /// it terminates even with a producer that keeps deferring.
    pub fn drain_pending_output(&mut self) {
        for _ in 0..64 {
            let ctrl = self.controller();
            let before = (ctrl.of_pushes(), ctrl.of_msgs_sent(), ctrl.channel_queued());
            self.sim
                .schedule_timer(self.rf_ctrl, Duration::ZERO, FIB_FLUSH_TOKEN);
            self.sim
                .schedule_timer(self.rf_ctrl, Duration::ZERO, ARP_RETRY_TOKEN);
            self.sim
                .schedule_timer(self.rf_ctrl, Duration::from_millis(1), CHANNEL_DRAIN_TOKEN);
            // Long enough for the pushes to traverse the FlowVisor hop
            // and land in the switch tables.
            let t = self.sim.now() + Duration::from_millis(10);
            self.sim.run_until(t);
            let ctrl = self.controller();
            let after = (ctrl.of_pushes(), ctrl.of_msgs_sent(), ctrl.channel_queued());
            if after == before {
                break;
            }
        }
    }

    /// Finish the measurement: drain buffered controller output (see
    /// [`Scenario::drain_pending_output`]) and harvest the scenario's
    /// typed metrics. The drain *advances the simulation* a bounded
    /// amount, so short cells cannot under-report their own FLOW_MODs
    /// — which also means `finish()` is a terminal read: never take a
    /// [`Scenario::snapshot`] after it, the drain ticks it fired are
    /// not part of any cold run. For a non-mutating mid-run probe use
    /// [`Scenario::peek_metrics`].
    pub fn finish(&mut self) -> ScenarioMetrics {
        self.drain_pending_output();
        self.peek_metrics()
    }

    /// Renamed to [`Scenario::finish`] (the name now says that it
    /// mutates: the pre-harvest drain advances the simulation).
    #[deprecated(note = "renamed to Scenario::finish")]
    pub fn metrics(&mut self) -> ScenarioMetrics {
        self.finish()
    }

    /// Read the scenario's typed metrics as they stand, without the
    /// tail drain: pure observation, no simulation step, safe at any
    /// instant (including just before a [`Scenario::snapshot`]). A
    /// FIB batch still waiting out its tick or a deferral backlog
    /// mid-retry is simply not counted yet.
    pub fn peek_metrics(&self) -> ScenarioMetrics {
        let ctrl = self.controller();
        ScenarioMetrics {
            expected_switches: self.expected_switches,
            configured_switches: ctrl.configured_switches(),
            per_switch_config_time: ctrl.configured_times(),
            all_configured_at: ctrl.all_configured_at(self.expected_switches),
            flows_installed: ctrl.flows_installed(),
            flows_removed: ctrl.flows_removed(),
            dataplane_flows: self.total_flows(),
            arp_replies: ctrl.arp_replies(),
            of_msgs_sent: ctrl.of_msgs_sent(),
            of_bytes_sent: ctrl.of_bytes_sent(),
            of_pushes: ctrl.of_pushes(),
            fib_batches: ctrl.fib_batches(),
            of_deferred: ctrl.of_deferred(),
            of_dropped: ctrl.of_dropped(),
            of_queue_hwm: ctrl.of_queue_hwm(),
        }
    }

    /// Renamed to [`Scenario::peek_metrics`].
    #[deprecated(note = "renamed to Scenario::peek_metrics")]
    pub fn metrics_undrained(&self) -> ScenarioMetrics {
        self.peek_metrics()
    }

    /// Harvest each workload's measurements, in `with_workload` order.
    pub fn workload_reports(&self) -> Vec<WorkloadReport> {
        self.workload_handles
            .iter()
            .map(|h| match *h {
                WorkloadHandle::Ping { pinger } => {
                    let p = self
                        .sim
                        .agent_as::<Pinger>(pinger)
                        .expect("pinger agent alive");
                    WorkloadReport::Ping(PingProbeReport::harvest(p))
                }
                WorkloadHandle::Video { client } => {
                    let c = self
                        .sim
                        .agent_as::<VideoClient>(client)
                        .expect("video client agent alive");
                    WorkloadReport::Video(c.report)
                }
                WorkloadHandle::PingFanIn { ref pingers } => WorkloadReport::PingFanIn {
                    clients: pingers
                        .iter()
                        .map(|&id| {
                            let p = self
                                .sim
                                .agent_as::<Pinger>(id)
                                .expect("fan-in pinger agent alive");
                            PingProbeReport::harvest(p)
                        })
                        .collect(),
                },
                WorkloadHandle::Traffic { ref parts } => {
                    let mut total = TrafficReport::default();
                    for part in parts {
                        let partial = match *part {
                            TrafficPart::Client(id) => self
                                .sim
                                .agent_as::<TrafficClient>(id)
                                .expect("traffic client alive")
                                .report(),
                            TrafficPart::Server(id) => self
                                .sim
                                .agent_as::<TrafficServer>(id)
                                .expect("traffic server alive")
                                .report(),
                            TrafficPart::IncastSender(id) => self
                                .sim
                                .agent_as::<IncastSender>(id)
                                .expect("incast sender alive")
                                .report(),
                            TrafficPart::PacedSource(id) => self
                                .sim
                                .agent_as::<PacedSource>(id)
                                .expect("paced source alive")
                                .report(),
                            TrafficPart::Sink(id) => self
                                .sim
                                .agent_as::<TrafficSink>(id)
                                .expect("traffic sink alive")
                                .report(),
                            TrafficPart::FlowEngine(id) => self
                                .sim
                                .agent_as::<FlowLevelEngine>(id)
                                .expect("flow engine alive")
                                .report_at(self.sim.now()),
                        };
                        total.merge(&partial);
                    }
                    WorkloadReport::Traffic(total)
                }
            })
            .collect()
    }

    /// Tear the scenario down into the legacy
    /// [`crate::bootstrap::Deployment`] shape.
    #[deprecated(note = "use Scenario directly; Deployment is a compatibility shim")]
    #[allow(deprecated)]
    pub fn into_deployment(self) -> crate::bootstrap::Deployment {
        crate::bootstrap::Deployment {
            sim: self.sim,
            rf_ctrl: self.rf_ctrl,
            topo_ctrl: self.topo_ctrl,
            rpc_client: self.rpc_client,
            flowvisor: self.flowvisor,
            switches: self.switches,
            host_slots: self.host_slots,
            expected_switches: self.expected_switches,
        }
    }
}
