//! The diffable sweep report: one record per matrix cell, a
//! min/median/max roll-up per metric, and byte-stable JSON in both
//! directions (emit for artifacts, parse for CI baseline gating).
//!
//! Stability contract (what "diffable" means here):
//! * `schema_version` bumps on any shape change;
//! * cells appear sorted by key, never by completion order;
//! * every number is an integer (times are nanoseconds), so no float
//!   formatting can wobble;
//! * serialization is [`crate::json::Json::render`], which sorts
//!   object keys — the same report is the same bytes, whatever thread
//!   count produced it.

use crate::json::Json;
use std::collections::BTreeMap;

/// Version of the report shape; bump when fields change meaning.
/// v2: controller-transport metrics (`of_msgs_sent`, `of_bytes_sent`,
/// `of_pushes`, `fib_batches`) joined every cell, and grids may carry
/// `provision_width`/`fib_batch` knob axes.
/// v3: backpressure metrics (`of_deferred`, `of_dropped`,
/// `of_queue_hwm`) joined every cell; grids may carry
/// `channel_capacity`/`overflow` knob axes, `stall*` fault schedules
/// and fan-in workload knobs (`fanin_*` metrics).
/// v4: traffic-engine knobs joined the grids (`traffic_*` metrics:
/// offered/delivered bytes, flow counts, frame loss, FCT and latency
/// percentiles), and a cell whose workload constructor rejects its
/// axes reports `build_error = 1` instead of panicking the sweep.
pub const SCHEMA_VERSION: i64 = 4;

/// One matrix cell's harvest: a key identifying the grid point and a
/// flat name → integer metric map (times in nanoseconds).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellRecord {
    pub key: String,
    pub metrics: BTreeMap<String, i64>,
}

/// Distribution of one metric across all cells that reported it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MetricSummary {
    pub count: i64,
    pub min: i64,
    /// Lower median (element `(count-1)/2` of the sorted values) — an
    /// actual observed value, so it stays an integer.
    pub median: i64,
    pub max: i64,
}

/// The aggregated sweep result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MatrixReport {
    pub schema_version: i64,
    /// Grid axes, by name (`seeds`, `topologies`, ...), as the cell-key
    /// fragments they contribute.
    pub grid: BTreeMap<String, Vec<String>>,
    /// Sorted by key; keys are unique.
    pub cells: Vec<CellRecord>,
    /// Per-metric roll-up across cells.
    pub summary: BTreeMap<String, MetricSummary>,
}

impl MatrixReport {
    /// Assemble from raw cell records: sorts by key, rejects duplicate
    /// keys, computes the summary.
    pub fn new(grid: BTreeMap<String, Vec<String>>, mut cells: Vec<CellRecord>) -> MatrixReport {
        cells.sort_by(|a, b| a.key.cmp(&b.key));
        for pair in cells.windows(2) {
            assert_ne!(pair[0].key, pair[1].key, "duplicate cell key in matrix");
        }
        let mut by_metric: BTreeMap<String, Vec<i64>> = BTreeMap::new();
        for c in &cells {
            for (name, value) in &c.metrics {
                by_metric.entry(name.clone()).or_default().push(*value);
            }
        }
        let summary = by_metric
            .into_iter()
            .map(|(name, mut vals)| {
                vals.sort_unstable();
                let s = MetricSummary {
                    count: vals.len() as i64,
                    min: vals[0],
                    median: vals[(vals.len() - 1) / 2],
                    max: vals[vals.len() - 1],
                };
                (name, s)
            })
            .collect();
        MatrixReport {
            schema_version: SCHEMA_VERSION,
            grid,
            cells,
            summary,
        }
    }

    /// Serialize to the canonical byte-stable JSON document.
    pub fn to_json(&self) -> String {
        let grid = Json::Obj(
            self.grid
                .iter()
                .map(|(k, vs)| {
                    (
                        k.clone(),
                        Json::Arr(vs.iter().map(|v| Json::Str(v.clone())).collect()),
                    )
                })
                .collect(),
        );
        let cells = Json::Arr(
            self.cells
                .iter()
                .map(|c| {
                    Json::obj([
                        ("key".to_string(), Json::Str(c.key.clone())),
                        (
                            "metrics".to_string(),
                            Json::Obj(
                                c.metrics
                                    .iter()
                                    .map(|(k, v)| (k.clone(), Json::Int(*v)))
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        );
        let summary = Json::Obj(
            self.summary
                .iter()
                .map(|(k, s)| {
                    (
                        k.clone(),
                        Json::obj([
                            ("count".to_string(), Json::Int(s.count)),
                            ("min".to_string(), Json::Int(s.min)),
                            ("median".to_string(), Json::Int(s.median)),
                            ("max".to_string(), Json::Int(s.max)),
                        ]),
                    )
                })
                .collect(),
        );
        Json::obj([
            ("schema_version".to_string(), Json::Int(self.schema_version)),
            ("grid".to_string(), grid),
            ("cells".to_string(), cells),
            ("summary".to_string(), summary),
        ])
        .render()
    }

    /// Parse a document produced by [`MatrixReport::to_json`] (for the
    /// CI baseline gate). The summary is recomputed from the cells, so
    /// a hand-edited baseline cannot disagree with itself.
    pub fn parse(text: &str) -> Result<MatrixReport, String> {
        let doc = Json::parse(text)?;
        let version = doc
            .get("schema_version")
            .and_then(Json::as_i64)
            .ok_or("missing schema_version")?;
        if version != SCHEMA_VERSION {
            return Err(format!(
                "schema_version {version} (this build reads {SCHEMA_VERSION}); \
                 regenerate the baseline"
            ));
        }
        let grid = doc
            .get("grid")
            .and_then(Json::as_obj)
            .ok_or("missing grid")?
            .iter()
            .map(|(k, v)| {
                let vals = v
                    .as_arr()
                    .ok_or("grid axis must be an array")?
                    .iter()
                    .map(|s| {
                        s.as_str()
                            .map(String::from)
                            .ok_or("axis value must be a string")
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok((k.clone(), vals))
            })
            .collect::<Result<BTreeMap<_, _>, &str>>()?;
        let cells = doc
            .get("cells")
            .and_then(Json::as_arr)
            .ok_or("missing cells")?
            .iter()
            .map(|c| {
                let key = c
                    .get("key")
                    .and_then(Json::as_str)
                    .ok_or("cell missing key")?
                    .to_string();
                let metrics = c
                    .get("metrics")
                    .and_then(Json::as_obj)
                    .ok_or("cell missing metrics")?
                    .iter()
                    .map(|(k, v)| {
                        v.as_i64()
                            .map(|n| (k.clone(), n))
                            .ok_or("metric must be an integer")
                    })
                    .collect::<Result<BTreeMap<_, _>, &str>>()?;
                Ok(CellRecord { key, metrics })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(MatrixReport::new(grid, cells))
    }

    /// Lower-median of `metric` per topology, in the cells' sorted
    /// order. The topology is read back out of the cell key
    /// (`topo=<name>/...`), so this works on parsed baselines too; a
    /// cell without the metric (e.g. a `build_error` cell) simply does
    /// not contribute. Computed on demand — never serialized — so the
    /// report schema and checked-in baselines are unaffected.
    pub fn per_topology_medians(&self, metric: &str) -> Vec<(String, MetricSummary)> {
        let mut by_topo: Vec<(String, Vec<i64>)> = Vec::new();
        for cell in &self.cells {
            let Some(topo) = cell
                .key
                .strip_prefix("topo=")
                .and_then(|rest| rest.split('/').next())
            else {
                continue;
            };
            let Some(&value) = cell.metrics.get(metric) else {
                continue;
            };
            match by_topo.last_mut() {
                Some((name, vals)) if name == topo => vals.push(value),
                _ => by_topo.push((topo.to_string(), vec![value])),
            }
        }
        by_topo
            .into_iter()
            .map(|(name, mut vals)| {
                vals.sort_unstable();
                let s = MetricSummary {
                    count: vals.len() as i64,
                    min: vals[0],
                    median: vals[(vals.len() - 1) / 2],
                    max: vals[vals.len() - 1],
                };
                (name, s)
            })
            .collect()
    }

    /// Compare against a baseline with per-metric relative tolerance.
    ///
    /// Returns human-readable deviations: cells or metrics present on
    /// one side only, and metric values differing by more than
    /// `tolerance` relative to the larger magnitude. Deviations in
    /// *either* direction are reported — a big improvement also means
    /// the checked-in baseline no longer describes the code, and should
    /// be refreshed deliberately.
    pub fn diff_against(&self, baseline: &MatrixReport, tolerance: f64) -> Vec<String> {
        let mut out = Vec::new();
        let ours: BTreeMap<&str, &CellRecord> =
            self.cells.iter().map(|c| (c.key.as_str(), c)).collect();
        let theirs: BTreeMap<&str, &CellRecord> =
            baseline.cells.iter().map(|c| (c.key.as_str(), c)).collect();
        for key in theirs.keys() {
            if !ours.contains_key(key) {
                out.push(format!("cell {key}: in baseline but not in this run"));
            }
        }
        for (key, cell) in &ours {
            let Some(base) = theirs.get(key) else {
                out.push(format!("cell {key}: new (not in baseline)"));
                continue;
            };
            for (name, want) in &base.metrics {
                if !cell.metrics.contains_key(name) {
                    out.push(format!(
                        "cell {key}: metric {name} disappeared (baseline {want})"
                    ));
                }
            }
            for (name, &value) in &cell.metrics {
                let Some(&want) = base.metrics.get(name) else {
                    out.push(format!(
                        "cell {key}: metric {name} = {value} is new (not in baseline)"
                    ));
                    continue;
                };
                let scale = value.abs().max(want.abs()).max(1) as f64;
                let rel = (value - want).abs() as f64 / scale;
                if rel > tolerance {
                    out.push(format!(
                        "cell {key}: {name} = {value}, baseline {want} \
                         ({:+.1}% > ±{:.0}% tolerance)",
                        100.0 * (value - want) as f64 / want.abs().max(1) as f64,
                        100.0 * tolerance,
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(key: &str, metrics: &[(&str, i64)]) -> CellRecord {
        CellRecord {
            key: key.to_string(),
            metrics: metrics.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        }
    }

    fn grid() -> BTreeMap<String, Vec<String>> {
        [("seeds".to_string(), vec!["1".to_string(), "2".to_string()])]
            .into_iter()
            .collect()
    }

    #[test]
    fn cells_sort_by_key_not_insertion_order() {
        let fwd = MatrixReport::new(grid(), vec![rec("a", &[("m", 1)]), rec("b", &[("m", 2)])]);
        let rev = MatrixReport::new(grid(), vec![rec("b", &[("m", 2)]), rec("a", &[("m", 1)])]);
        assert_eq!(fwd, rev);
        assert_eq!(fwd.to_json(), rev.to_json());
        assert_eq!(fwd.cells[0].key, "a");
    }

    #[test]
    fn summary_min_median_max() {
        let r = MatrixReport::new(
            grid(),
            vec![
                rec("a", &[("t", 30)]),
                rec("b", &[("t", 10)]),
                rec("c", &[("t", 20)]),
                rec("d", &[("t", 40)]),
            ],
        );
        let s = r.summary["t"];
        assert_eq!((s.count, s.min, s.median, s.max), (4, 10, 20, 40));
    }

    #[test]
    fn json_round_trip() {
        let r = MatrixReport::new(
            grid(),
            vec![rec("a", &[("t", 30), ("n", 2)]), rec("b", &[("t", 10)])],
        );
        let parsed = MatrixReport::parse(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
        assert_eq!(parsed.to_json(), r.to_json());
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let text = MatrixReport::new(grid(), vec![]).to_json().replace(
            &format!("\"schema_version\": {SCHEMA_VERSION}"),
            "\"schema_version\": 999",
        );
        let err = MatrixReport::parse(&text).unwrap_err();
        assert!(err.contains("regenerate"), "{err}");
    }

    #[test]
    fn diff_flags_out_of_tolerance_and_shape_changes() {
        let base = MatrixReport::new(
            grid(),
            vec![
                rec("a", &[("t", 100), ("gone", 1)]),
                rec("dropped", &[("t", 5)]),
            ],
        );
        let cur = MatrixReport::new(
            grid(),
            vec![
                rec("a", &[("t", 130), ("fresh", 1)]),
                rec("added", &[("t", 5)]),
            ],
        );
        let diffs = cur.diff_against(&base, 0.2);
        let text = diffs.join("\n");
        assert!(text.contains("t = 130"), "{text}");
        assert!(text.contains("dropped"), "{text}");
        assert!(text.contains("added"), "{text}");
        assert!(text.contains("gone"), "{text}");
        assert!(text.contains("fresh"), "{text}");
        // Within tolerance: no complaint.
        let ok = MatrixReport::new(
            grid(),
            vec![
                rec("a", &[("t", 110), ("gone", 1)]),
                rec("dropped", &[("t", 5)]),
            ],
        );
        assert!(ok.diff_against(&base, 0.2).is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate cell key")]
    fn duplicate_keys_panic() {
        MatrixReport::new(grid(), vec![rec("a", &[]), rec("a", &[])]);
    }

    #[test]
    fn per_topology_medians_group_contiguous_cells() {
        let r = MatrixReport::new(
            grid(),
            vec![
                rec("topo=abilene/fault=none/knob=f/seed=1", &[("t", 30)]),
                rec("topo=abilene/fault=none/knob=f/seed=2", &[("t", 10)]),
                rec("topo=ring-4/fault=none/knob=f/seed=1", &[("t", 7)]),
                // A build_error cell contributes nothing to `t`.
                rec(
                    "topo=zzz-bad/fault=none/knob=f/seed=1",
                    &[("build_error", 1)],
                ),
            ],
        );
        let med = r.per_topology_medians("t");
        assert_eq!(med.len(), 2);
        assert_eq!(med[0].0, "abilene");
        assert_eq!(
            (med[0].1.count, med[0].1.min, med[0].1.median, med[0].1.max),
            (2, 10, 10, 30)
        );
        assert_eq!(med[1].0, "ring-4");
        assert_eq!(med[1].1.median, 7);
    }
}
