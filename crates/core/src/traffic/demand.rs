//! The seeded demand model shared by both traffic granularities.
//!
//! Packet-level agents and the flow-level engine consume the *same*
//! [`ArrivalStream`]/[`WaveStream`] types, drawing from per-endpoint
//! generators in the same order — so switching `TrafficMode` changes
//! how load moves through the network, never how much load there is.

use super::WorkloadError;
use rand::distributions::{BoundedPareto, Exp};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// When requests leave an endpoint.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ArrivalProcess {
    /// One arrival every `interval` (closed-loop cadence, like the
    /// legacy ping workload).
    Fixed { interval: Duration },
    /// Memoryless arrivals at `rate_per_sec` (exponential gaps).
    Poisson { rate_per_sec: f64 },
    /// Heavy-tailed gaps: bounded Pareto on `[min_gap, max_gap]` with
    /// shape `alpha_milli / 1000` — long silences punctuated by bursts.
    ParetoGaps {
        min_gap: Duration,
        max_gap: Duration,
        alpha_milli: u32,
    },
}

impl ArrivalProcess {
    pub fn validate(&self) -> Result<(), WorkloadError> {
        match *self {
            ArrivalProcess::Fixed { interval } => {
                if interval.is_zero() {
                    return Err(WorkloadError::ZeroRate("fixed arrival interval"));
                }
            }
            ArrivalProcess::Poisson { rate_per_sec } => {
                Exp::new(rate_per_sec).map_err(WorkloadError::BadDistribution)?;
            }
            ArrivalProcess::ParetoGaps {
                min_gap,
                max_gap,
                alpha_milli,
            } => {
                BoundedPareto::new(
                    f64::from(alpha_milli) / 1000.0,
                    min_gap.as_nanos() as f64,
                    max_gap.as_nanos() as f64,
                )
                .map_err(WorkloadError::BadDistribution)?;
            }
        }
        Ok(())
    }

    /// Draw the next inter-arrival gap (at least 1 µs, so a pathological
    /// rate cannot collapse the event loop into zero-width steps).
    pub fn next_gap(&self, rng: &mut StdRng) -> Duration {
        let ns = match *self {
            ArrivalProcess::Fixed { interval } => return interval,
            ArrivalProcess::Poisson { rate_per_sec } => {
                let exp = Exp::new(rate_per_sec).expect("validated rate");
                (exp.sample(rng) * 1e9) as u64
            }
            ArrivalProcess::ParetoGaps {
                min_gap,
                max_gap,
                alpha_milli,
            } => {
                let p = BoundedPareto::new(
                    f64::from(alpha_milli) / 1000.0,
                    min_gap.as_nanos() as f64,
                    max_gap.as_nanos() as f64,
                )
                .expect("validated gap distribution");
                p.sample(rng) as u64
            }
        };
        Duration::from_nanos(ns.max(1_000))
    }
}

/// How many payload bytes a flow carries.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FlowSize {
    Fixed {
        bytes: u64,
    },
    /// Bounded Pareto on `[min_bytes, max_bytes]` with shape
    /// `alpha_milli / 1000` — many mice, occasional elephants.
    Pareto {
        min_bytes: u64,
        max_bytes: u64,
        alpha_milli: u32,
    },
}

impl FlowSize {
    pub fn fixed(bytes: u64) -> FlowSize {
        FlowSize::Fixed { bytes }
    }

    /// The canonical heavy-tailed mix: shape 1.2 between `min` and
    /// `max` bytes.
    pub fn pareto(min_bytes: u64, max_bytes: u64) -> FlowSize {
        FlowSize::Pareto {
            min_bytes,
            max_bytes,
            alpha_milli: 1200,
        }
    }

    pub fn validate(&self) -> Result<(), WorkloadError> {
        match *self {
            FlowSize::Fixed { bytes } => {
                if bytes == 0 {
                    return Err(WorkloadError::ZeroRate("flow size"));
                }
            }
            FlowSize::Pareto {
                min_bytes,
                max_bytes,
                alpha_milli,
            } => {
                BoundedPareto::new(
                    f64::from(alpha_milli) / 1000.0,
                    min_bytes as f64,
                    max_bytes as f64,
                )
                .map_err(WorkloadError::BadDistribution)?;
            }
        }
        Ok(())
    }

    /// Draw a flow size in bytes (at least 1).
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        match *self {
            FlowSize::Fixed { bytes } => bytes,
            FlowSize::Pareto {
                min_bytes,
                max_bytes,
                alpha_milli,
            } => {
                let p = BoundedPareto::new(
                    f64::from(alpha_milli) / 1000.0,
                    min_bytes as f64,
                    max_bytes as f64,
                )
                .expect("validated size distribution");
                (p.sample(rng) as u64).max(1)
            }
        }
    }
}

/// One endpoint's arrival timeline: absolute offsets from t = 0, with
/// a flow size drawn per arrival. Both granularities step this with
/// identical draw order, so the offered load matches exactly.
#[derive(Clone, Debug)]
pub struct ArrivalStream {
    arrivals: ArrivalProcess,
    size: FlowSize,
    rng: StdRng,
    cursor: Duration,
    stop: Duration,
}

impl ArrivalStream {
    pub fn new(
        seed: u64,
        arrivals: ArrivalProcess,
        size: FlowSize,
        start: Duration,
        stop: Duration,
    ) -> ArrivalStream {
        ArrivalStream {
            arrivals,
            size,
            rng: StdRng::seed_from_u64(seed),
            cursor: start,
            stop,
        }
    }

    /// The next `(arrival offset, flow bytes)`, or `None` once the
    /// window is exhausted. The gap is drawn before the bounds check
    /// and the size only after it, so every consumer observes the same
    /// stream positions.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(Duration, u64)> {
        let at = self.cursor + self.arrivals.next_gap(&mut self.rng);
        if at >= self.stop {
            return None;
        }
        self.cursor = at;
        let bytes = self.size.sample(&mut self.rng);
        Some((at, bytes))
    }
}

/// One incast sender's wave timeline: `waves` blasts, `period` apart,
/// each with an independently drawn flow size.
#[derive(Clone, Debug)]
pub struct WaveStream {
    size: FlowSize,
    rng: StdRng,
    start: Duration,
    period: Duration,
    waves: u32,
    fired: u32,
}

impl WaveStream {
    pub fn new(seed: u64, size: FlowSize, start: Duration, period: Duration, waves: u32) -> Self {
        WaveStream {
            size,
            rng: StdRng::seed_from_u64(seed),
            start,
            period,
            waves,
            fired: 0,
        }
    }

    /// The next `(wave offset, flow bytes)`, or `None` after the last
    /// wave.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(Duration, u64)> {
        if self.fired >= self.waves {
            return None;
        }
        let at = self.start + self.period * self.fired;
        self.fired += 1;
        let bytes = self.size.sample(&mut self.rng);
        Some((at, bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> Duration {
        Duration::from_secs(s)
    }

    #[test]
    fn poisson_stream_is_reproducible_and_windowed() {
        let mk = || {
            ArrivalStream::new(
                42,
                ArrivalProcess::Poisson { rate_per_sec: 10.0 },
                FlowSize::pareto(1_000, 100_000),
                secs(5),
                secs(15),
            )
        };
        let mut a = mk();
        let mut b = mk();
        let mut count = 0;
        while let Some((at, bytes)) = a.next() {
            assert_eq!(b.next(), Some((at, bytes)));
            assert!(at >= secs(5) && at < secs(15));
            assert!((1_000..=100_000).contains(&bytes));
            count += 1;
        }
        assert!(b.next().is_none());
        // ~10/s over 10 s, loosely.
        assert!((50..200).contains(&count), "{count} arrivals");
    }

    #[test]
    fn different_seeds_diverge() {
        let arrivals = ArrivalProcess::Poisson { rate_per_sec: 5.0 };
        let size = FlowSize::pareto(1_000, 50_000);
        let mut a = ArrivalStream::new(1, arrivals, size, secs(0), secs(10));
        let mut b = ArrivalStream::new(2, arrivals, size, secs(0), secs(10));
        assert_ne!(a.next(), b.next());
    }

    #[test]
    fn waves_fire_on_schedule() {
        let mut w = WaveStream::new(3, FlowSize::fixed(9_000), secs(2), secs(4), 3);
        let times: Vec<Duration> = std::iter::from_fn(|| w.next()).map(|(t, _)| t).collect();
        assert_eq!(times, vec![secs(2), secs(6), secs(10)]);
    }

    #[test]
    fn fixed_cadence_never_drifts() {
        let mut s = ArrivalStream::new(
            0,
            ArrivalProcess::Fixed {
                interval: Duration::from_millis(250),
            },
            FlowSize::fixed(100),
            secs(1),
            secs(2),
        );
        let times: Vec<Duration> = std::iter::from_fn(|| s.next()).map(|(t, _)| t).collect();
        assert_eq!(times.len(), 3, "1.25, 1.5, 1.75 — 2.0 is out of window");
        assert_eq!(times[0], Duration::from_millis(1250));
    }
}
