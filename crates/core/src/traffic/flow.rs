//! Flow-level fast path: one event per flow start/stop instead of one
//! per frame.
//!
//! The engine models every endpoint as sitting behind an access link of
//! `capacity_bps` (the fabric's configured bandwidth), and shares those
//! links among concurrent bounded flows by **max-min fairness** —
//! progressive water-filling over a `BTreeMap` of `(endpoint,
//! direction)` resources, so iteration order (and therefore every f64
//! operation order) is a pure function of the workload, never of hash
//! seeds. This matches the packet level well precisely where the packet
//! level congests: at access links, which is where request/response
//! fan-in and SCDP-style incast pile up. Cross-fabric contention is not
//! modeled; validation in `tests/traffic.rs` therefore uses patterns
//! whose bottleneck is an access link.
//!
//! Demand comes from the *same* seeded [`ArrivalStream`]/[`WaveStream`]
//! generators the packet agents use, drawn in the same order — offered
//! load is identical between granularities by construction.
//!
//! Paced (CBR / multicast) streams are handled analytically: they
//! reserve no state per frame, and their sent/delivered counts are
//! closed-form functions of the clock. They assume the configured rates
//! fit the links — matrix knobs keep paced mixes under capacity.

use super::demand::{ArrivalStream, WaveStream};
use super::report::TrafficReport;
use super::{
    chunk_wire_bytes, endpoint_seed, frames_for, paced_interval, wire_bytes, TrafficConfig,
    TrafficPattern, STACK_OVERHEAD,
};
use rf_sim::{Agent, Ctx, Time};
use std::collections::BTreeMap;
use std::time::Duration;

const T_STEP: u64 = 1;
/// Wire bytes of one request frame (16-byte request + framing).
const REQ_WIRE_BYTES: u64 = 16 + STACK_OVERHEAD;
/// A flow with less than half a byte left is done (absorbs f64 drift).
const DONE_EPS: f64 = 0.5;

/// Serialization time of `bytes` at `capacity_bps`, in nanoseconds
/// (zero on infinite-bandwidth links).
fn ser_ns(bytes: u64, capacity_bps: u64) -> u64 {
    (bytes * 8)
        .saturating_mul(1_000_000_000)
        .checked_div(capacity_bps)
        .unwrap_or(0)
}

/// One source endpoint's bounded-flow generator.
#[derive(Clone)]
enum Gen {
    /// Request/response client: arrivals here, data flows back from
    /// `src_ep` after a one-way request delay.
    Arrivals {
        stream: ArrivalStream,
        req_delay_ns: u64,
    },
    /// Incast sender: waves blast immediately.
    Waves { stream: WaveStream },
}

impl Gen {
    fn next(&mut self) -> Option<(Duration, u64)> {
        match self {
            Gen::Arrivals { stream, .. } => stream.next(),
            Gen::Waves { stream } => stream.next(),
        }
    }

    fn req_delay_ns(&self) -> u64 {
        match self {
            Gen::Arrivals { req_delay_ns, .. } => *req_delay_ns,
            Gen::Waves { .. } => 0,
        }
    }
}

/// Static per-generator routing: which endpoints the data flow uses
/// and how many link hops it crosses.
#[derive(Clone, Copy)]
struct GenRoute {
    src_ep: usize,
    dst_ep: usize,
    hops: u32,
}

/// A bounded flow in flight.
#[derive(Clone)]
struct ActiveFlow {
    src_ep: usize,
    dst_ep: usize,
    hops: u32,
    data_total: u64,
    wire_total: f64,
    remaining_wire: f64,
    started_ns: u64,
    /// Current max-min rate in bits per second.
    rate_bps: f64,
}

/// An analytic paced stream (CBR unicast or one multicast branch).
#[derive(Clone, Copy)]
struct PacedStream {
    interval_ns: u64,
    /// Source-to-sink frame latency (hops × (latency + serialization)).
    lat_ns: u64,
}

impl PacedStream {
    /// Frames on the wire at `now`, given the `[start, stop)` window.
    fn sent(&self, now_ns: u64, start_ns: u64, stop_ns: u64) -> u64 {
        if now_ns < start_ns {
            return 0;
        }
        let total = (stop_ns - start_ns - 1) / self.interval_ns + 1;
        ((now_ns - start_ns) / self.interval_ns + 1).min(total)
    }

    /// Frames arrived at the sink by `now`: what was sent one stream
    /// latency ago.
    fn delivered(&self, now_ns: u64, start_ns: u64, stop_ns: u64) -> u64 {
        self.sent(now_ns.saturating_sub(self.lat_ns), start_ns, stop_ns)
    }
}

/// Scheduled discrete event, keyed by `(time, insertion seq)`.
#[derive(Clone)]
enum Ev {
    /// A generator's next flow materializes (offered load is counted
    /// here, matching the packet clients).
    Arrival { gen: usize, bytes: u64 },
    /// The source starts blasting (request has crossed the network).
    Xfer {
        gen: usize,
        bytes: u64,
        flow_id: u64,
    },
}

/// Everything that evolves — kept in one `Clone`-able core so
/// [`FlowLevelEngine::report_at`] can advance a scratch copy to the
/// harvest instant without mutating the live engine.
#[derive(Clone)]
struct Core {
    capacity_bps: u64,
    latency_ns: u64,
    start_ns: u64,
    stop_ns: u64,
    gens: Vec<Gen>,
    routes: Vec<GenRoute>,
    flow_seqs: Vec<u64>,
    queue: BTreeMap<(u64, u64), Ev>,
    seq: u64,
    flows: BTreeMap<u64, ActiveFlow>,
    paced: Vec<PacedStream>,
    cursor_ns: u64,
    offered_bytes: u64,
    delivered_bytes: u64,
    flows_started: u64,
    flows_completed: u64,
    frames_sent: u64,
    frames_delivered: u64,
    fct_ns: Vec<u64>,
}

impl Core {
    fn push_ev(&mut self, at_ns: u64, ev: Ev) {
        self.queue.insert((at_ns, self.seq), ev);
        self.seq += 1;
    }

    /// Queue a generator's next arrival, if it has one.
    fn arm_gen(&mut self, gen: usize) {
        if let Some((at, bytes)) = self.gens[gen].next() {
            self.push_ev(at.as_nanos() as u64, Ev::Arrival { gen, bytes });
        }
    }

    /// Propagation + store-and-forward tail after the last byte leaves
    /// the source: each hop adds latency, and every hop past the first
    /// re-serializes the final frame.
    fn tail_ns(&self, hops: u32) -> u64 {
        u64::from(hops) * self.latency_ns
            + u64::from(hops.saturating_sub(1)) * ser_ns(chunk_wire_bytes(), self.capacity_bps)
    }

    fn complete(&mut self, flow_id: u64, done_ns: u64) {
        let f = self.flows.remove(&flow_id).expect("completing a live flow");
        self.delivered_bytes += f.data_total;
        self.frames_delivered += frames_for(f.data_total);
        self.flows_completed += 1;
        self.fct_ns
            .push(done_ns.saturating_sub(f.started_ns) + self.tail_ns(f.hops));
    }

    /// Max-min water-fill over access-link resources. `(endpoint, dir)`
    /// keys (dir 0 = tx, 1 = rx) in a BTreeMap keep the fill order —
    /// and with it every floating-point result — deterministic.
    fn recompute_rates(&mut self) {
        if self.capacity_bps == 0 || self.flows.is_empty() {
            return;
        }
        let mut cap: BTreeMap<(usize, u8), f64> = BTreeMap::new();
        let mut users: BTreeMap<(usize, u8), Vec<u64>> = BTreeMap::new();
        for (&id, f) in &self.flows {
            for r in [(f.src_ep, 0u8), (f.dst_ep, 1u8)] {
                cap.entry(r).or_insert(self.capacity_bps as f64);
                users.entry(r).or_default().push(id);
            }
        }
        let mut unassigned: BTreeMap<u64, ()> = self.flows.keys().map(|&id| (id, ())).collect();
        while !unassigned.is_empty() {
            // The bottleneck: smallest fair share among live resources.
            let mut best: Option<((usize, u8), f64)> = None;
            for (&r, ids) in &users {
                let live = ids.iter().filter(|id| unassigned.contains_key(id)).count();
                if live == 0 {
                    continue;
                }
                let share = cap[&r] / live as f64;
                if best.is_none_or(|(_, s)| share < s) {
                    best = Some((r, share));
                }
            }
            let Some((bottleneck, share)) = best else {
                break;
            };
            let assigned: Vec<u64> = users[&bottleneck]
                .iter()
                .copied()
                .filter(|id| unassigned.contains_key(id))
                .collect();
            for id in assigned {
                let f = self.flows.get_mut(&id).expect("live flow");
                f.rate_bps = share;
                for r in [(f.src_ep, 0u8), (f.dst_ep, 1u8)] {
                    if r != bottleneck {
                        *cap.get_mut(&r).expect("resource present") -= share;
                    }
                }
                unassigned.remove(&id);
            }
        }
    }

    /// Earliest completion among in-flight flows, as `(flow_id, ns)`.
    fn next_completion(&self) -> Option<(u64, f64)> {
        let mut best: Option<(u64, f64)> = None;
        for (&id, f) in &self.flows {
            let dt = f.remaining_wire * 8.0 * 1e9 / f.rate_bps;
            let at = self.cursor_ns as f64 + dt;
            if best.is_none_or(|(_, t)| at < t) {
                best = Some((id, at));
            }
        }
        best
    }

    /// Drain in-flight flows up to `target_ns`, firing completions.
    fn advance_to(&mut self, target_ns: u64) {
        while self.cursor_ns < target_ns {
            if self.flows.is_empty() {
                self.cursor_ns = target_ns;
                return;
            }
            let (first_id, done_at) = self.next_completion().expect("flows is non-empty");
            if done_at <= target_ns as f64 {
                let dt = done_at - self.cursor_ns as f64;
                for f in self.flows.values_mut() {
                    f.remaining_wire -= f.rate_bps * dt / 8e9;
                }
                // The argmin flow is done by construction; f64 drift
                // must not strand it.
                self.flows
                    .get_mut(&first_id)
                    .expect("live flow")
                    .remaining_wire = 0.0;
                let done_ns = (done_at.ceil() as u64).min(target_ns);
                let done: Vec<u64> = self
                    .flows
                    .iter()
                    .filter(|(_, f)| f.remaining_wire <= DONE_EPS)
                    .map(|(&id, _)| id)
                    .collect();
                for id in done {
                    self.complete(id, done_ns);
                }
                self.recompute_rates();
                self.cursor_ns = self.cursor_ns.max(done_ns);
            } else {
                let dt = (target_ns - self.cursor_ns) as f64;
                for f in self.flows.values_mut() {
                    f.remaining_wire -= f.rate_bps * dt / 8e9;
                }
                self.cursor_ns = target_ns;
            }
        }
    }

    fn handle(&mut self, at_ns: u64, ev: Ev) {
        match ev {
            Ev::Arrival { gen, bytes } => {
                self.flows_started += 1;
                self.offered_bytes += bytes;
                let flow_id = ((gen as u64 + 1) << 32) | self.flow_seqs[gen];
                self.flow_seqs[gen] += 1;
                self.push_ev(
                    at_ns + self.gens[gen].req_delay_ns(),
                    Ev::Xfer {
                        gen,
                        bytes,
                        flow_id,
                    },
                );
                self.arm_gen(gen);
            }
            Ev::Xfer {
                gen,
                bytes,
                flow_id,
            } => {
                self.frames_sent += frames_for(bytes);
                let route = self.routes[gen];
                if self.capacity_bps == 0 {
                    // Infinite bandwidth: the flow lands after pure
                    // propagation.
                    self.delivered_bytes += bytes;
                    self.frames_delivered += frames_for(bytes);
                    self.flows_completed += 1;
                    self.fct_ns.push(self.tail_ns(route.hops));
                    return;
                }
                let wire = wire_bytes(bytes) as f64;
                self.flows.insert(
                    flow_id,
                    ActiveFlow {
                        src_ep: route.src_ep,
                        dst_ep: route.dst_ep,
                        hops: route.hops,
                        data_total: bytes,
                        wire_total: wire,
                        remaining_wire: wire,
                        started_ns: at_ns,
                        rate_bps: self.capacity_bps as f64,
                    },
                );
                self.recompute_rates();
            }
        }
    }

    /// Process everything due at or before `now_ns` — queue events in
    /// `(time, seq)` order, interleaved with fluid completions.
    fn step_to(&mut self, now_ns: u64) {
        while let Some((&(at, sk), _)) = self.queue.first_key_value() {
            if at > now_ns {
                break;
            }
            self.advance_to(at);
            let ev = self.queue.remove(&(at, sk)).expect("peeked key");
            self.handle(at, ev);
        }
        self.advance_to(now_ns);
    }

    /// When the engine next needs the clock, strictly after `now_ns`.
    fn next_wake(&self, now_ns: u64) -> Option<u64> {
        let q = self.queue.first_key_value().map(|((at, _), _)| *at);
        let c = self.next_completion().map(|(_, at)| at.ceil() as u64);
        match (q, c) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
        .map(|t| t.max(now_ns + 1))
    }

    /// Assemble the report for the clock at `now_ns` (consumes the
    /// core's recorded counters; call on a scratch clone).
    fn report(&self, now_ns: u64) -> TrafficReport {
        let mut r = TrafficReport {
            offered_bytes: self.offered_bytes,
            delivered_bytes: self.delivered_bytes,
            flows_started: self.flows_started,
            flows_completed: self.flows_completed,
            frames_sent: self.frames_sent,
            frames_delivered: self.frames_delivered,
            fct_ns: self.fct_ns.clone(),
            frame_latency_ns: Vec::new(),
        };
        // In-flight flows count their delivered prefix, like a packet
        // sink that has accepted some frames of an unfinished flow.
        for f in self.flows.values() {
            let frac = (1.0 - f.remaining_wire / f.wire_total).clamp(0.0, 1.0);
            r.delivered_bytes += (f.data_total as f64 * frac) as u64;
            r.frames_delivered += (frames_for(f.data_total) as f64 * frac) as u64;
        }
        // Paced streams are closed-form.
        let chunk = super::CHUNK_BYTES;
        for s in &self.paced {
            let sent = s.sent(now_ns, self.start_ns, self.stop_ns);
            let delivered = s.delivered(now_ns, self.start_ns, self.stop_ns);
            r.frames_sent += sent;
            r.offered_bytes += sent * chunk;
            r.frames_delivered += delivered;
            r.delivered_bytes += delivered * chunk;
            if delivered > 0 {
                // One modeled latency sample per stream (the packet
                // level records one per frame; percentiles remain
                // comparable when uncongested).
                r.frame_latency_ns.push(s.lat_ns);
            }
        }
        r
    }
}

/// The flow-level traffic engine: a single agent driving the whole
/// workload on timers, with no host stacks and no frames.
#[derive(Clone)]
pub struct FlowLevelEngine {
    core: Core,
}

impl FlowLevelEngine {
    /// Build the engine for `cfg`, mirroring the packet-level wiring:
    /// `hop_of(a, b)` must return the number of *link* hops between the
    /// hosts at topology nodes `a` and `b`, including both access
    /// links. `capacity_bps` is the fabric's per-link bandwidth (0 for
    /// infinite) and `hop_latency` its per-link latency — the same
    /// values the packet-level cell gives its links.
    pub fn from_config(
        cfg: &TrafficConfig,
        cell_seed: u64,
        workload_idx: usize,
        capacity_bps: u64,
        hop_latency: Duration,
        hop_of: impl Fn(usize, usize) -> u32,
    ) -> FlowLevelEngine {
        let start = cfg.start_at;
        let stop = cfg.stop_at;
        let latency_ns = hop_latency.as_nanos() as u64;
        let mut core = Core {
            capacity_bps,
            latency_ns,
            start_ns: start.as_nanos() as u64,
            stop_ns: stop.as_nanos() as u64,
            gens: Vec::new(),
            routes: Vec::new(),
            flow_seqs: Vec::new(),
            queue: BTreeMap::new(),
            seq: 0,
            flows: BTreeMap::new(),
            paced: Vec::new(),
            cursor_ns: 0,
            offered_bytes: 0,
            delivered_bytes: 0,
            flows_started: 0,
            flows_completed: 0,
            frames_sent: 0,
            frames_delivered: 0,
            fct_ns: Vec::new(),
        };
        let stream_lat =
            |hops: u32| u64::from(hops) * (latency_ns + ser_ns(chunk_wire_bytes(), capacity_bps));
        match &cfg.pattern {
            TrafficPattern::RequestResponse {
                clients,
                server,
                arrivals,
                response,
            } => {
                let server_ep = clients.len();
                for (j, &node) in clients.iter().enumerate() {
                    let hops = hop_of(node, *server);
                    let req_delay_ns =
                        u64::from(hops) * (latency_ns + ser_ns(REQ_WIRE_BYTES, capacity_bps));
                    core.gens.push(Gen::Arrivals {
                        stream: ArrivalStream::new(
                            endpoint_seed(cell_seed, workload_idx, j),
                            *arrivals,
                            *response,
                            start,
                            stop,
                        ),
                        req_delay_ns,
                    });
                    // Data flows server → client.
                    core.routes.push(GenRoute {
                        src_ep: server_ep,
                        dst_ep: j,
                        hops,
                    });
                    core.flow_seqs.push(0);
                }
            }
            TrafficPattern::Incast {
                senders,
                receiver,
                flow,
                period,
                waves,
            } => {
                let receiver_ep = senders.len();
                for (j, &node) in senders.iter().enumerate() {
                    core.gens.push(Gen::Waves {
                        stream: WaveStream::new(
                            endpoint_seed(cell_seed, workload_idx, j),
                            *flow,
                            start,
                            *period,
                            *waves,
                        ),
                    });
                    core.routes.push(GenRoute {
                        src_ep: j,
                        dst_ep: receiver_ep,
                        hops: hop_of(node, *receiver),
                    });
                    core.flow_seqs.push(0);
                }
            }
            TrafficPattern::CbrMix { streams } => {
                for s in streams {
                    core.paced.push(PacedStream {
                        interval_ns: paced_interval(s.rate_bps).as_nanos() as u64,
                        lat_ns: stream_lat(hop_of(s.source, s.sink)),
                    });
                }
            }
            TrafficPattern::Multicast {
                source,
                receivers,
                rate_bps,
            } => {
                for &node in receivers {
                    core.paced.push(PacedStream {
                        interval_ns: paced_interval(*rate_bps).as_nanos() as u64,
                        lat_ns: stream_lat(hop_of(*source, node)),
                    });
                }
            }
        }
        for gen in 0..core.gens.len() {
            core.arm_gen(gen);
        }
        FlowLevelEngine { core }
    }

    /// The workload's report as of `now` — non-mutating: a scratch copy
    /// of the core is advanced to the harvest instant, so calling this
    /// never perturbs the live simulation.
    pub fn report_at(&self, now: Time) -> TrafficReport {
        let now_ns = now.as_nanos();
        let mut scratch = self.core.clone();
        scratch.step_to(now_ns);
        scratch.report(now_ns)
    }
}

impl Agent for FlowLevelEngine {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(at) = self.core.next_wake(ctx.now().as_nanos()) {
            ctx.schedule_at(Time::ZERO + Duration::from_nanos(at), T_STEP);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        let now_ns = ctx.now().as_nanos();
        self.core.step_to(now_ns);
        if let Some(at) = self.core.next_wake(now_ns) {
            ctx.schedule_at(Time::ZERO + Duration::from_nanos(at), T_STEP);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::demand::{ArrivalProcess, FlowSize};
    use super::super::TrafficMode;
    use super::*;

    fn secs(s: u64) -> Duration {
        Duration::from_secs(s)
    }

    fn cfg(pattern: TrafficPattern) -> TrafficConfig {
        TrafficConfig {
            pattern,
            mode: TrafficMode::Flow,
            start_at: secs(1),
            stop_at: secs(3),
        }
    }

    #[test]
    fn lone_flow_runs_at_line_rate() {
        // One client, fixed 100 KB responses every 500 ms, 100 Mbps,
        // 3 hops at 1 ms each.
        let c = cfg(TrafficPattern::RequestResponse {
            clients: vec![0],
            server: 2,
            arrivals: ArrivalProcess::Fixed {
                interval: Duration::from_millis(500),
            },
            response: FlowSize::fixed(100_000),
        });
        let eng =
            FlowLevelEngine::from_config(&c, 7, 0, 100_000_000, Duration::from_millis(1), |_, _| 3);
        let r = eng.report_at(Time::ZERO + secs(10));
        // Arrivals at 1.5, 2.0, 2.5 (3.0 is out of window).
        assert_eq!(r.flows_started, 3);
        assert_eq!(r.flows_completed, 3);
        assert_eq!(r.offered_bytes, 300_000);
        assert_eq!(r.delivered_bytes, 300_000);
        // Uncontended: wire = 100000 + 98 frames * 74 B ≈ 107.3 KB at
        // 100 Mbps ≈ 8.58 ms drain + 3 ms propagation + 2 store-and-
        // forward serializations ≈ 11.8 ms.
        let fct = r.fct_percentile(50).unwrap();
        assert!(
            (Duration::from_millis(11)..Duration::from_millis(13)).contains(&fct),
            "{fct:?}"
        );
    }

    #[test]
    fn incast_shares_the_receiver_link() {
        // 4 senders, one wave of fixed 50 KB each: the receiver's rx
        // link is the bottleneck, so each flow gets C/4 and finishes
        // ~4x slower than it would alone.
        let c = cfg(TrafficPattern::Incast {
            senders: vec![0, 1, 2, 3],
            receiver: 4,
            flow: FlowSize::fixed(50_000),
            period: secs(1),
            waves: 1,
        });
        let eng =
            FlowLevelEngine::from_config(&c, 7, 0, 100_000_000, Duration::from_millis(1), |_, _| 2);
        let r = eng.report_at(Time::ZERO + secs(10));
        assert_eq!(r.flows_completed, 4);
        // Wire ≈ 53.6 KB; alone ≈ 4.3 ms; shared 4 ways ≈ 17.2 ms
        // drain, + 2 ms tail.
        let fct = r.fct_percentile(95).unwrap();
        assert!(
            (Duration::from_millis(17)..Duration::from_millis(22)).contains(&fct),
            "{fct:?}"
        );
        assert_eq!(r.frames_lost(), 0);
    }

    #[test]
    fn paced_streams_count_in_closed_form() {
        let c = cfg(TrafficPattern::CbrMix {
            streams: vec![super::super::CbrStream {
                source: 0,
                sink: 1,
                rate_bps: 1_000_000,
            }],
        });
        let eng =
            FlowLevelEngine::from_config(&c, 7, 0, 100_000_000, Duration::from_millis(1), |_, _| 2);
        // Mid-window: ~0.5 s of 1 Mbps in 8.192 ms ticks.
        let mid = eng.report_at(Time::ZERO + Duration::from_millis(1500));
        assert_eq!(mid.frames_sent, 500_000_000 / 8_192_000 + 1);
        assert!(mid.frames_delivered <= mid.frames_sent);
        // Well past the window: everything sent has landed.
        let end = eng.report_at(Time::ZERO + secs(10));
        assert_eq!(end.frames_sent, (2_000_000_000 - 1) / 8_192_000 + 1);
        assert_eq!(end.frames_delivered, end.frames_sent);
        assert_eq!(end.offered_bytes, end.frames_sent * 1024);
        assert_eq!(end.delivered_bytes, end.offered_bytes);
        assert_eq!(end.frame_latency_ns.len(), 1);
        assert_eq!(end.flows_started, 0);
    }

    #[test]
    fn report_at_is_pure_and_deterministic() {
        let c = cfg(TrafficPattern::RequestResponse {
            clients: vec![0, 1, 2],
            server: 3,
            arrivals: ArrivalProcess::Poisson { rate_per_sec: 20.0 },
            response: FlowSize::pareto(2_000, 200_000),
        });
        let mk = || {
            FlowLevelEngine::from_config(&c, 11, 0, 50_000_000, Duration::from_millis(1), |_, _| 3)
        };
        let eng = mk();
        let a = eng.report_at(Time::ZERO + secs(5));
        let b = eng.report_at(Time::ZERO + secs(5));
        assert_eq!(a, b, "report_at must not mutate the engine");
        let fresh = mk().report_at(Time::ZERO + secs(5));
        assert_eq!(a, fresh, "same seed, same report");
        let other =
            FlowLevelEngine::from_config(&c, 12, 0, 50_000_000, Duration::from_millis(1), |_, _| 3)
                .report_at(Time::ZERO + secs(5));
        assert_ne!(a.offered_bytes, other.offered_bytes, "seeds must matter");
        assert!(a.flows_started > 50, "three 20/s clients over 2 s");
        assert!(a.flows_completed <= a.flows_started);
    }
}
