//! Stochastic traffic engine: production-shaped load for the matrix.
//!
//! Every workload the scenario layer previously knew was fixed-cadence
//! (1 Hz pings, one CBR video). This module generates the shapes real
//! deployments see — Poisson and heavy-tailed request/response flows,
//! CBR mixes, SCDP-style incast and SRMCA-style multicast fan-out —
//! under the same determinism contract as everything else in the
//! matrix: all randomness flows from per-endpoint [`rand`] generators
//! seeded by `(cell seed, workload index, endpoint index)` alone, so a
//! cell's offered load is a pure function of its key.
//!
//! Two simulation granularities share one demand model:
//!
//! * **Packet level** ([`packet`]) — real host agents blast UDP frames
//!   through the switch fabric; congestion, queueing and loss emerge
//!   from the link model.
//! * **Flow level** ([`flow`]) — one event per flow start/stop, with
//!   throughput modeled by max-min fair sharing over the endpoints'
//!   access links. Orders of magnitude fewer events; validated against
//!   packet-level runs in `tests/traffic.rs`.
//!
//! Both modes draw arrivals and flow sizes from the *same*
//! [`demand::ArrivalStream`]s, so offered load is identical between
//! them by construction, not by coincidence.

pub mod demand;
pub mod flow;
pub mod packet;
pub mod report;
pub mod spec;

pub use demand::{ArrivalProcess, ArrivalStream, FlowSize, WaveStream};
pub use flow::FlowLevelEngine;
pub use report::{percentile, TrafficReport};
pub use spec::{TrafficShape, TrafficSpec};

use std::fmt;
use std::time::Duration;

/// UDP port traffic servers listen on for flow requests.
pub const REQ_PORT: u16 = 7700;
/// UDP port traffic sinks listen on for data frames.
pub const DATA_PORT: u16 = 7701;

/// Data bytes carried per traffic frame (flows are chunked into frames
/// of this size; the last frame may be shorter).
pub const CHUNK_BYTES: u64 = 1024;
/// Traffic header inside each UDP payload:
/// `[flow_id u64][flow_bytes u64][flow_start_ns u64][send_ns u64]`.
pub const HEADER_BYTES: u64 = 32;
/// Ethernet (14) + IPv4 (20) + UDP (8) framing per frame.
pub const STACK_OVERHEAD: u64 = 42;

/// Frames needed to carry `data` bytes.
pub fn frames_for(data: u64) -> u64 {
    data.div_ceil(CHUNK_BYTES).max(1)
}

/// Wire bytes of a flow carrying `data` bytes (payload + per-frame
/// header and stack overhead). The flow-level model drains exactly
/// this many bytes, so both granularities agree on what a flow costs.
pub fn wire_bytes(data: u64) -> u64 {
    data + frames_for(data) * (HEADER_BYTES + STACK_OVERHEAD)
}

/// Wire bytes of one full-chunk data frame.
pub const fn chunk_wire_bytes() -> u64 {
    CHUNK_BYTES + HEADER_BYTES + STACK_OVERHEAD
}

/// Inter-frame interval of a paced stream offering `rate_bps` of
/// payload data, in whole nanoseconds. Shared by the packet-level
/// pacer and the flow-level delivery formula — integer math, so both
/// count the same frames.
pub fn paced_interval(rate_bps: u64) -> Duration {
    Duration::from_nanos((CHUNK_BYTES * 8 * 1_000_000_000) / rate_bps.max(1))
}

/// Mix `(cell seed, workload index, endpoint index)` into an
/// independent per-endpoint seed (splitmix64 finalizer over the
/// concatenation). Endpoints never share a generator, so adding one
/// endpoint cannot shift another's draw stream.
pub fn endpoint_seed(cell_seed: u64, workload: usize, endpoint: usize) -> u64 {
    let mut z = cell_seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((workload as u64) << 32 | endpoint as u64)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Simulation granularity of a traffic workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrafficMode {
    /// Per-frame simulation through the switch fabric.
    Packet,
    /// One event per flow start/stop with modeled throughput.
    Flow,
}

/// One CBR stream of a [`TrafficPattern::CbrMix`].
#[derive(Clone, Debug, PartialEq)]
pub struct CbrStream {
    /// Topology node hosting the source.
    pub source: usize,
    /// Topology node hosting the sink.
    pub sink: usize,
    /// Offered payload rate in bits per second.
    pub rate_bps: u64,
}

/// The load shape a traffic workload generates.
#[derive(Clone, Debug, PartialEq)]
pub enum TrafficPattern {
    /// Open-loop request/response: each client draws request arrivals
    /// from `arrivals` and asks the server for a response flow whose
    /// size is drawn from `response`.
    RequestResponse {
        clients: Vec<usize>,
        server: usize,
        arrivals: ArrivalProcess,
        response: FlowSize,
    },
    /// Constant-bit-rate streams with distinct per-stream rates.
    CbrMix { streams: Vec<CbrStream> },
    /// `senders` synchronized onto one receiver (SCDP-style): every
    /// `period`, each sender blasts a flow drawn from `flow` at the
    /// receiver, `waves` times.
    Incast {
        senders: Vec<usize>,
        receiver: usize,
        flow: FlowSize,
        period: Duration,
        waves: u32,
    },
    /// One source paces a stream to every receiver (SRMCA-style
    /// multicast delivery, replicated at the source's access link).
    Multicast {
        source: usize,
        receivers: Vec<usize>,
        rate_bps: u64,
    },
}

impl TrafficPattern {
    /// Topology nodes hosting the pattern's endpoints, in host-slot
    /// allocation order. Senders/clients first, sinks after — except
    /// request/response and incast, whose single server/receiver slot
    /// is allocated last (mirroring `PingFanIn`).
    pub fn endpoint_nodes(&self) -> Vec<usize> {
        match self {
            TrafficPattern::RequestResponse {
                clients, server, ..
            } => {
                let mut v = clients.clone();
                v.push(*server);
                v
            }
            TrafficPattern::CbrMix { streams } => {
                streams.iter().flat_map(|s| [s.source, s.sink]).collect()
            }
            TrafficPattern::Incast {
                senders, receiver, ..
            } => {
                let mut v = senders.clone();
                v.push(*receiver);
                v
            }
            TrafficPattern::Multicast {
                source, receivers, ..
            } => {
                let mut v = vec![*source];
                v.extend(receivers);
                v
            }
        }
    }

    fn validate(&self) -> Result<(), WorkloadError> {
        let check_count = |n: usize, what: &'static str| {
            if n == 0 {
                Err(WorkloadError::NoEndpoints(what))
            } else if n > MAX_ENDPOINTS {
                Err(WorkloadError::TooManyEndpoints {
                    given: n,
                    max: MAX_ENDPOINTS,
                })
            } else {
                Ok(())
            }
        };
        match self {
            TrafficPattern::RequestResponse {
                clients,
                arrivals,
                response,
                ..
            } => {
                check_count(clients.len(), "request/response needs clients")?;
                arrivals.validate()?;
                response.validate()
            }
            TrafficPattern::CbrMix { streams } => {
                check_count(streams.len(), "CBR mix needs streams")?;
                if streams.iter().any(|s| s.rate_bps == 0) {
                    return Err(WorkloadError::ZeroRate("CBR stream rate"));
                }
                Ok(())
            }
            TrafficPattern::Incast {
                senders,
                flow,
                period,
                waves,
                ..
            } => {
                check_count(senders.len(), "incast needs senders")?;
                flow.validate()?;
                if period.is_zero() {
                    return Err(WorkloadError::ZeroRate("incast wave period"));
                }
                if *waves == 0 {
                    return Err(WorkloadError::EmptyWindow);
                }
                Ok(())
            }
            TrafficPattern::Multicast {
                receivers,
                rate_bps,
                ..
            } => {
                check_count(receivers.len(), "multicast needs receivers")?;
                if *rate_bps == 0 {
                    return Err(WorkloadError::ZeroRate("multicast stream rate"));
                }
                Ok(())
            }
        }
    }
}

/// Endpoint cap per traffic workload — bounds the MAC/subnet scheme
/// (the traffic MAC encodes the endpoint index in two bytes, but the
/// subnet third octet is the real ceiling).
pub const MAX_ENDPOINTS: usize = 120;

/// A fully-specified traffic workload, ready for
/// `Workload::traffic(..)`.
#[derive(Clone, Debug, PartialEq)]
pub struct TrafficConfig {
    pub pattern: TrafficPattern,
    pub mode: TrafficMode,
    /// When sources start offering load (simulated time from t = 0).
    /// Leave room for the cell's configuration phase: traffic into an
    /// unconfigured fabric is simply lost at packet level, while the
    /// flow model assumes a converged network.
    pub start_at: Duration,
    /// When sources stop offering load.
    pub stop_at: Duration,
}

impl TrafficConfig {
    pub fn new(pattern: TrafficPattern) -> TrafficConfig {
        TrafficConfig {
            pattern,
            mode: TrafficMode::Packet,
            start_at: Duration::from_secs(25),
            stop_at: Duration::from_secs(40),
        }
    }

    /// Switch to the flow-level abstraction.
    pub fn flow_level(mut self) -> Self {
        self.mode = TrafficMode::Flow;
        self
    }

    /// Offer load over `[start, start + duration)`.
    pub fn window(mut self, start: Duration, duration: Duration) -> Self {
        self.start_at = start;
        self.stop_at = start + duration;
        self
    }

    pub fn validate(&self) -> Result<(), WorkloadError> {
        if self.stop_at <= self.start_at {
            return Err(WorkloadError::EmptyWindow);
        }
        self.pattern.validate()
    }
}

/// Why a workload constructor rejected its parameters. Surfaced as a
/// failed matrix *cell* (`build_error = 1`), never a sweep panic: one
/// bad axis value must not take down the other few hundred cells.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WorkloadError {
    /// A pattern with an empty endpoint list.
    NoEndpoints(&'static str),
    /// More endpoints than the addressing scheme can host.
    TooManyEndpoints { given: usize, max: usize },
    /// A rate or period of zero.
    ZeroRate(&'static str),
    /// `stop_at <= start_at`, or zero waves.
    EmptyWindow,
    /// A distribution with invalid parameters.
    BadDistribution(&'static str),
    /// The topology cannot host the requested endpoint placement.
    TopologyTooSmall { need: usize, have: usize },
    /// A topology name that does not parse (see
    /// [`rf_topo::TopoParseError`]) — carried here so a malformed grid
    /// axis value fails its cells, not the whole sweep.
    BadTopology(rf_topo::TopoParseError),
    /// A fault schedule that cannot apply to the cell's topology
    /// (out-of-range node/edge index, loss outside [0,100], empty
    /// stall window — see [`crate::scenario::FaultError`]).
    BadFault(crate::scenario::FaultError),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::NoEndpoints(what) => write!(f, "{what}"),
            WorkloadError::TooManyEndpoints { given, max } => {
                write!(f, "{given} endpoints exceed the per-workload cap of {max}")
            }
            WorkloadError::ZeroRate(what) => write!(f, "{what} must be positive"),
            WorkloadError::EmptyWindow => write!(f, "traffic window is empty"),
            WorkloadError::BadDistribution(what) => write!(f, "bad distribution: {what}"),
            WorkloadError::TopologyTooSmall { need, have } => {
                write!(f, "workload needs {need} nodes, topology has {have}")
            }
            WorkloadError::BadTopology(err) => write!(f, "{err}"),
            WorkloadError::BadFault(err) => write!(f, "{err}"),
        }
    }
}

impl std::error::Error for WorkloadError {}

impl From<crate::scenario::FaultError> for WorkloadError {
    fn from(err: crate::scenario::FaultError) -> WorkloadError {
        WorkloadError::BadFault(err)
    }
}

impl From<rf_topo::TopoParseError> for WorkloadError {
    fn from(err: rf_topo::TopoParseError) -> WorkloadError {
        WorkloadError::BadTopology(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_math() {
        assert_eq!(frames_for(1), 1);
        assert_eq!(frames_for(1024), 1);
        assert_eq!(frames_for(1025), 2);
        assert_eq!(wire_bytes(1024), 1024 + 32 + 42);
        assert_eq!(wire_bytes(2048), 2048 + 2 * (32 + 42));
        assert_eq!(chunk_wire_bytes(), 1098);
        // 1 Mbps of payload: one 1024-byte chunk every 8.192 ms.
        assert_eq!(paced_interval(1_000_000), Duration::from_nanos(8_192_000));
    }

    #[test]
    fn endpoint_seeds_are_distinct() {
        let mut seen = std::collections::BTreeSet::new();
        for w in 0..4 {
            for e in 0..16 {
                assert!(seen.insert(endpoint_seed(7, w, e)));
            }
        }
        assert_eq!(endpoint_seed(7, 1, 2), endpoint_seed(7, 1, 2));
        assert_ne!(endpoint_seed(7, 1, 2), endpoint_seed(8, 1, 2));
    }

    #[test]
    fn validation_catches_bad_axes() {
        let empty = TrafficPattern::Incast {
            senders: vec![],
            receiver: 0,
            flow: FlowSize::fixed(1000),
            period: Duration::from_secs(1),
            waves: 3,
        };
        assert_eq!(
            TrafficConfig::new(empty).validate(),
            Err(WorkloadError::NoEndpoints("incast needs senders"))
        );
        let zero_rate = TrafficPattern::Multicast {
            source: 0,
            receivers: vec![1, 2],
            rate_bps: 0,
        };
        assert!(matches!(
            TrafficConfig::new(zero_rate).validate(),
            Err(WorkloadError::ZeroRate(_))
        ));
        let ok = TrafficPattern::Multicast {
            source: 0,
            receivers: vec![1, 2],
            rate_bps: 1_000_000,
        };
        let inverted = TrafficConfig::new(ok).window(Duration::from_secs(10), Duration::ZERO);
        assert_eq!(inverted.validate(), Err(WorkloadError::EmptyWindow));
    }
}
