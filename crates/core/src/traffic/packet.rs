//! Packet-level traffic agents: real host stacks blasting UDP frames
//! through the simulated fabric. Congestion is not modeled here — it
//! *emerges* from the link layer's serialization horizons, which is
//! exactly what the flow-level abstraction is validated against.
//!
//! Wire format (UDP payload):
//!
//! * data frame, port [`DATA_PORT`]: 32-byte header
//!   `[flow_id][flow_bytes][flow_start_ns][send_ns]` + chunk payload.
//!   `flow_bytes == 0` marks a paced (unbounded) stream: sinks record
//!   per-frame latency instead of completion times.
//! * request frame, port [`REQ_PORT`]: `[flow_id][flow_bytes]` — "send
//!   me a `flow_bytes` response".

use super::demand::{ArrivalStream, WaveStream};
use super::report::TrafficReport;
use super::{frames_for, CHUNK_BYTES, DATA_PORT, HEADER_BYTES, REQ_PORT};
use bytes::{BufMut, Bytes, BytesMut};
use rf_apps::{HostConfig, HostStack, StackOutput};
use rf_sim::{Agent, Ctx, Time};
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::time::Duration;

const T_ARRIVAL: u64 = 1;
const T_TICK: u64 = 2;
const T_WAVE: u64 = 3;
const T_WARM: u64 = 4;

/// Build one data frame's payload.
fn data_frame(
    flow_id: u64,
    flow_bytes: u64,
    flow_start_ns: u64,
    send_ns: u64,
    chunk: u64,
) -> Bytes {
    let mut b = BytesMut::with_capacity((HEADER_BYTES + chunk) as usize);
    b.put_u64(flow_id);
    b.put_u64(flow_bytes);
    b.put_u64(flow_start_ns);
    b.put_u64(send_ns);
    b.put_bytes(b'T', chunk as usize);
    b.freeze()
}

fn read_u64(p: &Bytes, at: usize) -> u64 {
    u64::from_be_bytes(p[at..at + 8].try_into().expect("bounds checked"))
}

/// Shared sink-side accounting: per-flow reassembly, completion times
/// for bounded flows, per-frame latency for paced streams.
#[derive(Default, Clone)]
struct SinkCore {
    flows: HashMap<u64, FlowRx>,
    delivered_bytes: u64,
    frames_delivered: u64,
    flows_completed: u64,
    fct_ns: Vec<u64>,
    frame_latency_ns: Vec<u64>,
}

#[derive(Clone)]
struct FlowRx {
    total: u64,
    received: u64,
}

impl SinkCore {
    fn on_data(&mut self, now: Time, payload: &Bytes) {
        if payload.len() < HEADER_BYTES as usize {
            return;
        }
        let flow_id = read_u64(payload, 0);
        let total = read_u64(payload, 8);
        let start_ns = read_u64(payload, 16);
        let send_ns = read_u64(payload, 24);
        let chunk = (payload.len() - HEADER_BYTES as usize) as u64;
        self.delivered_bytes += chunk;
        self.frames_delivered += 1;
        if total == 0 {
            // Paced stream: latency sample, no completion.
            self.frame_latency_ns
                .push(now.as_nanos().saturating_sub(send_ns));
            return;
        }
        let rx = self
            .flows
            .entry(flow_id)
            .or_insert(FlowRx { total, received: 0 });
        rx.received += chunk;
        if rx.received >= rx.total {
            self.flows_completed += 1;
            self.fct_ns.push(now.as_nanos().saturating_sub(start_ns));
            self.flows.remove(&flow_id);
        }
    }

    fn fold_into(&self, r: &mut TrafficReport) {
        r.delivered_bytes += self.delivered_bytes;
        r.frames_delivered += self.frames_delivered;
        r.flows_completed += self.flows_completed;
        r.fct_ns.extend_from_slice(&self.fct_ns);
        r.frame_latency_ns.extend_from_slice(&self.frame_latency_ns);
    }
}

/// Emit stack outputs, feeding received datagrams to `sink`.
fn pump(ctx: &mut Ctx<'_>, sink: Option<&mut SinkCore>, outs: Vec<StackOutput>) {
    let mut sink = sink;
    for o in outs {
        match o {
            StackOutput::Tx(f) => ctx.send_frame(1, f),
            StackOutput::Udp {
                dst_port, payload, ..
            } => {
                if dst_port == DATA_PORT {
                    if let Some(s) = sink.as_deref_mut() {
                        s.on_data(ctx.now(), &payload);
                    }
                }
            }
            StackOutput::EchoReply { .. } => {}
        }
    }
}

/// Schedule the pre-window ARP warm-ups (resolve the gateway before
/// the first blast, so a thousand queued frames don't each broadcast
/// their own request).
fn schedule_warm(ctx: &mut Ctx<'_>, start_at: Duration) {
    for lead in [Duration::from_millis(1500), Duration::from_millis(300)] {
        ctx.schedule_at(Time::ZERO + start_at.saturating_sub(lead), T_WARM);
    }
}

/// Chunk a bounded flow onto the wire toward `(dst, DATA_PORT)`.
fn blast(
    stack: &mut HostStack,
    ctx: &mut Ctx<'_>,
    sink: Option<&mut SinkCore>,
    dst: Ipv4Addr,
    flow_id: u64,
    bytes: u64,
) -> u64 {
    let frames = frames_for(bytes);
    let now_ns = ctx.now().as_nanos();
    let mut outs = Vec::new();
    for i in 0..frames {
        let chunk = if i + 1 == frames {
            bytes - i * CHUNK_BYTES
        } else {
            CHUNK_BYTES
        };
        outs.extend(stack.send_udp(
            dst,
            DATA_PORT,
            DATA_PORT,
            data_frame(flow_id, bytes, now_ns, now_ns, chunk),
        ));
    }
    pump(ctx, sink, outs);
    frames
}

/// Request/response client: draws arrivals from its seeded stream,
/// asks the server for each response flow, and sinks the data.
#[derive(Clone)]
pub struct TrafficClient {
    stack: HostStack,
    server: Ipv4Addr,
    stream: ArrivalStream,
    pending: Option<(Duration, u64)>,
    flow_tag: u64,
    flow_seq: u64,
    start_at: Duration,
    pub offered_bytes: u64,
    pub flows_started: u64,
    sink: SinkCore,
}

impl TrafficClient {
    pub fn new(
        cfg: HostConfig,
        server: Ipv4Addr,
        stream: ArrivalStream,
        endpoint_idx: usize,
        start_at: Duration,
    ) -> TrafficClient {
        TrafficClient {
            stack: HostStack::new(cfg),
            server,
            stream,
            pending: None,
            flow_tag: (endpoint_idx as u64 + 1) << 32,
            flow_seq: 0,
            start_at,
            offered_bytes: 0,
            flows_started: 0,
            sink: SinkCore::default(),
        }
    }

    pub fn report(&self) -> TrafficReport {
        let mut r = TrafficReport {
            offered_bytes: self.offered_bytes,
            flows_started: self.flows_started,
            ..TrafficReport::default()
        };
        self.sink.fold_into(&mut r);
        r
    }

    fn arm_next(&mut self, ctx: &mut Ctx<'_>) {
        if let Some((at, bytes)) = self.stream.next() {
            self.pending = Some((at, bytes));
            ctx.schedule_at(Time::ZERO + at, T_ARRIVAL);
        }
    }
}

impl Agent for TrafficClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let outs = self.stack.boot();
        pump(ctx, Some(&mut self.sink), outs);
        schedule_warm(ctx, self.start_at);
        self.arm_next(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        match token {
            T_WARM => {
                let outs = self.stack.resolve(self.server);
                pump(ctx, Some(&mut self.sink), outs);
            }
            T_ARRIVAL => {
                let Some((_, bytes)) = self.pending.take() else {
                    return;
                };
                self.flows_started += 1;
                self.offered_bytes += bytes;
                let flow_id = self.flow_tag | self.flow_seq;
                self.flow_seq += 1;
                let mut req = BytesMut::with_capacity(16);
                req.put_u64(flow_id);
                req.put_u64(bytes);
                let outs = self
                    .stack
                    .send_udp(self.server, REQ_PORT, REQ_PORT, req.freeze());
                pump(ctx, Some(&mut self.sink), outs);
                self.arm_next(ctx);
            }
            _ => {}
        }
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_>, _port: u32, frame: Bytes) {
        let outs = self.stack.on_frame(&frame);
        pump(ctx, Some(&mut self.sink), outs);
    }
}

/// Request/response server: answers each request by blasting the
/// requested number of bytes back at the asking client.
#[derive(Clone)]
pub struct TrafficServer {
    stack: HostStack,
    start_at: Duration,
    pub frames_sent: u64,
}

impl TrafficServer {
    pub fn new(cfg: HostConfig, start_at: Duration) -> TrafficServer {
        TrafficServer {
            stack: HostStack::new(cfg),
            start_at,
            frames_sent: 0,
        }
    }

    pub fn report(&self) -> TrafficReport {
        TrafficReport {
            frames_sent: self.frames_sent,
            ..TrafficReport::default()
        }
    }
}

impl Agent for TrafficServer {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let outs = self.stack.boot();
        pump(ctx, None, outs);
        schedule_warm(ctx, self.start_at);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == T_WARM {
            // Any off-subnet destination resolves the gateway.
            let outs = self.stack.resolve(Ipv4Addr::new(10, 255, 255, 254));
            pump(ctx, None, outs);
        }
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_>, _port: u32, frame: Bytes) {
        let outs = self.stack.on_frame(&frame);
        let mut requests = Vec::new();
        for o in outs {
            match o {
                StackOutput::Tx(f) => ctx.send_frame(1, f),
                StackOutput::Udp {
                    src,
                    dst_port,
                    payload,
                    ..
                } if dst_port == REQ_PORT && payload.len() >= 16 => {
                    requests.push((src, read_u64(&payload, 0), read_u64(&payload, 8)));
                }
                _ => {}
            }
        }
        for (client, flow_id, bytes) in requests {
            self.frames_sent += blast(&mut self.stack, ctx, None, client, flow_id, bytes);
        }
    }
}

/// Incast sender: blasts one drawn flow at the receiver per wave.
#[derive(Clone)]
pub struct IncastSender {
    stack: HostStack,
    receiver: Ipv4Addr,
    waves: WaveStream,
    pending: Option<(Duration, u64)>,
    flow_tag: u64,
    flow_seq: u64,
    start_at: Duration,
    pub offered_bytes: u64,
    pub flows_started: u64,
    pub frames_sent: u64,
}

impl IncastSender {
    pub fn new(
        cfg: HostConfig,
        receiver: Ipv4Addr,
        waves: WaveStream,
        endpoint_idx: usize,
        start_at: Duration,
    ) -> IncastSender {
        IncastSender {
            stack: HostStack::new(cfg),
            receiver,
            waves,
            pending: None,
            flow_tag: (endpoint_idx as u64 + 1) << 32,
            flow_seq: 0,
            start_at,
            offered_bytes: 0,
            flows_started: 0,
            frames_sent: 0,
        }
    }

    pub fn report(&self) -> TrafficReport {
        TrafficReport {
            offered_bytes: self.offered_bytes,
            flows_started: self.flows_started,
            frames_sent: self.frames_sent,
            ..TrafficReport::default()
        }
    }

    fn arm_next(&mut self, ctx: &mut Ctx<'_>) {
        if let Some((at, bytes)) = self.waves.next() {
            self.pending = Some((at, bytes));
            ctx.schedule_at(Time::ZERO + at, T_WAVE);
        }
    }
}

impl Agent for IncastSender {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let outs = self.stack.boot();
        pump(ctx, None, outs);
        schedule_warm(ctx, self.start_at);
        self.arm_next(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        match token {
            T_WARM => {
                let outs = self.stack.resolve(self.receiver);
                pump(ctx, None, outs);
            }
            T_WAVE => {
                let Some((_, bytes)) = self.pending.take() else {
                    return;
                };
                self.flows_started += 1;
                self.offered_bytes += bytes;
                let flow_id = self.flow_tag | self.flow_seq;
                self.flow_seq += 1;
                self.frames_sent +=
                    blast(&mut self.stack, ctx, None, self.receiver, flow_id, bytes);
                self.arm_next(ctx);
            }
            _ => {}
        }
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_>, _port: u32, frame: Bytes) {
        let outs = self.stack.on_frame(&frame);
        pump(ctx, None, outs);
    }
}

/// Paced source: one full-chunk frame per destination per tick — CBR
/// unicast with a single destination, multicast fan-out with many
/// (replication happens at this source's access link, SRMCA-style).
#[derive(Clone)]
pub struct PacedSource {
    stack: HostStack,
    dsts: Vec<Ipv4Addr>,
    interval: Duration,
    start_at: Duration,
    stop_at: Duration,
    flow_tag: u64,
    pub offered_bytes: u64,
    pub frames_sent: u64,
}

impl PacedSource {
    pub fn new(
        cfg: HostConfig,
        dsts: Vec<Ipv4Addr>,
        interval: Duration,
        endpoint_idx: usize,
        start_at: Duration,
        stop_at: Duration,
    ) -> PacedSource {
        PacedSource {
            stack: HostStack::new(cfg),
            dsts,
            interval,
            start_at,
            stop_at,
            flow_tag: (endpoint_idx as u64 + 1) << 32,
            offered_bytes: 0,
            frames_sent: 0,
        }
    }

    pub fn report(&self) -> TrafficReport {
        TrafficReport {
            offered_bytes: self.offered_bytes,
            frames_sent: self.frames_sent,
            ..TrafficReport::default()
        }
    }
}

impl Agent for PacedSource {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let outs = self.stack.boot();
        pump(ctx, None, outs);
        schedule_warm(ctx, self.start_at);
        ctx.schedule_at(Time::ZERO + self.start_at, T_TICK);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        match token {
            T_WARM => {
                for dst in self.dsts.clone() {
                    let outs = self.stack.resolve(dst);
                    pump(ctx, None, outs);
                }
            }
            T_TICK => {
                let now = ctx.now();
                if now >= Time::ZERO + self.stop_at {
                    return;
                }
                let now_ns = now.as_nanos();
                let start_ns = self.start_at.as_nanos() as u64;
                for (d, dst) in self.dsts.clone().into_iter().enumerate() {
                    let flow_id = self.flow_tag | d as u64;
                    let outs = self.stack.send_udp(
                        dst,
                        DATA_PORT,
                        DATA_PORT,
                        data_frame(flow_id, 0, start_ns, now_ns, CHUNK_BYTES),
                    );
                    pump(ctx, None, outs);
                    self.offered_bytes += CHUNK_BYTES;
                    self.frames_sent += 1;
                }
                ctx.schedule(self.interval, T_TICK);
            }
            _ => {}
        }
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_>, _port: u32, frame: Bytes) {
        let outs = self.stack.on_frame(&frame);
        pump(ctx, None, outs);
    }
}

/// Pure sink: receives data frames and accounts for them.
#[derive(Clone)]
pub struct TrafficSink {
    stack: HostStack,
    sink: SinkCore,
    start_at: Duration,
}

impl TrafficSink {
    pub fn new(cfg: HostConfig, start_at: Duration) -> TrafficSink {
        TrafficSink {
            stack: HostStack::new(cfg),
            sink: SinkCore::default(),
            start_at,
        }
    }

    pub fn report(&self) -> TrafficReport {
        let mut r = TrafficReport::default();
        self.sink.fold_into(&mut r);
        r
    }
}

impl Agent for TrafficSink {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let outs = self.stack.boot();
        pump(ctx, Some(&mut self.sink), outs);
        schedule_warm(ctx, self.start_at);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == T_WARM {
            // A sink never transmits, so nothing would ever teach the
            // controller where it lives: the resulting gateway ARP is
            // what gets its /32 delivery flow installed before the
            // first data frame arrives (a cold edge drops the frames
            // that race the on-demand probe).
            let outs = self.stack.resolve(Ipv4Addr::new(10, 255, 255, 254));
            pump(ctx, Some(&mut self.sink), outs);
        }
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_>, _port: u32, frame: Bytes) {
        let outs = self.stack.on_frame(&frame);
        pump(ctx, Some(&mut self.sink), outs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_frame_round_trips_header() {
        let f = data_frame(0x0000_0001_0000_0007, 5000, 111, 222, 512);
        assert_eq!(f.len(), 32 + 512);
        assert_eq!(read_u64(&f, 0), 0x0000_0001_0000_0007);
        assert_eq!(read_u64(&f, 8), 5000);
        assert_eq!(read_u64(&f, 16), 111);
        assert_eq!(read_u64(&f, 24), 222);
    }

    #[test]
    fn sink_completes_bounded_flows_and_times_paced_frames() {
        let mut s = SinkCore::default();
        let t1 = Time::ZERO + Duration::from_millis(5);
        s.on_data(t1, &data_frame(1, 2048, 1_000_000, 1_000_000, 1024));
        assert_eq!(s.flows_completed, 0);
        s.on_data(t1, &data_frame(1, 2048, 1_000_000, 1_000_000, 1024));
        assert_eq!(s.flows_completed, 1);
        assert_eq!(s.fct_ns, vec![4_000_000]);
        assert_eq!(s.delivered_bytes, 2048);
        // A paced frame (total = 0) records latency, not completion.
        s.on_data(t1, &data_frame(9, 0, 0, 4_000_000, 1024));
        assert_eq!(s.flows_completed, 1);
        assert_eq!(s.frame_latency_ns, vec![1_000_000]);
        assert_eq!(s.frames_delivered, 3);
    }
}
