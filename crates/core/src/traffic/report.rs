//! What a traffic workload measured.

use std::time::Duration;

/// Aggregated traffic accounting, merged across every agent of one
/// workload (or produced whole by the flow-level engine). All byte
/// counts are *payload* bytes — framing overhead is the same in both
/// granularities, so excluding it keeps offered/delivered comparable
/// to the configured rates.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TrafficReport {
    /// Payload bytes sources injected (or would have, had the fabric
    /// accepted them).
    pub offered_bytes: u64,
    /// Payload bytes sinks accepted.
    pub delivered_bytes: u64,
    /// Bounded flows started (request arrivals, incast blasts).
    pub flows_started: u64,
    /// Bounded flows fully delivered.
    pub flows_completed: u64,
    /// Data frames sources put on the wire.
    pub frames_sent: u64,
    /// Data frames sinks accepted.
    pub frames_delivered: u64,
    /// Per-flow completion times in nanoseconds (unsorted; sort before
    /// taking percentiles). Measured from the instant the source
    /// starts transmitting the flow to the last byte's arrival.
    pub fct_ns: Vec<u64>,
    /// One-way frame latencies of paced (unbounded) streams, in
    /// nanoseconds. Packet level records every frame; the flow model
    /// contributes its single modeled per-stream latency.
    pub frame_latency_ns: Vec<u64>,
}

impl TrafficReport {
    /// Fold another agent's accounting into this one.
    pub fn merge(&mut self, other: &TrafficReport) {
        self.offered_bytes += other.offered_bytes;
        self.delivered_bytes += other.delivered_bytes;
        self.flows_started += other.flows_started;
        self.flows_completed += other.flows_completed;
        self.frames_sent += other.frames_sent;
        self.frames_delivered += other.frames_delivered;
        self.fct_ns.extend_from_slice(&other.fct_ns);
        self.frame_latency_ns
            .extend_from_slice(&other.frame_latency_ns);
    }

    /// Frames that left a source but never reached a sink (in-flight
    /// tail at harvest included — a cell that stops mid-window counts
    /// its unfinished frames as lost).
    pub fn frames_lost(&self) -> u64 {
        self.frames_sent.saturating_sub(self.frames_delivered)
    }

    /// Flow-completion-time percentile, if any flow completed.
    pub fn fct_percentile(&self, p: u64) -> Option<Duration> {
        let mut v = self.fct_ns.clone();
        v.sort_unstable();
        percentile(&v, p).map(Duration::from_nanos)
    }

    /// Frame-latency percentile across paced streams, if any frame
    /// was delivered.
    pub fn latency_percentile(&self, p: u64) -> Option<Duration> {
        let mut v = self.frame_latency_ns.clone();
        v.sort_unstable();
        percentile(&v, p).map(Duration::from_nanos)
    }
}

/// Nearest-rank percentile over a *sorted* slice: the smallest element
/// with at least `p` percent of the mass at or below it. Integer-only,
/// always an observed value — safe for byte-stable reports.
pub fn percentile(sorted: &[u64], p: u64) -> Option<u64> {
    if sorted.is_empty() {
        return None;
    }
    let p = p.min(100);
    let rank = (p * sorted.len() as u64).div_ceil(100).max(1);
    Some(sorted[(rank - 1) as usize])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles() {
        let v = [10, 20, 30, 40];
        assert_eq!(percentile(&v, 50), Some(20));
        assert_eq!(percentile(&v, 95), Some(40));
        assert_eq!(percentile(&v, 100), Some(40));
        assert_eq!(percentile(&v, 0), Some(10));
        assert_eq!(percentile(&[], 50), None);
        assert_eq!(percentile(&[7], 95), Some(7));
    }

    #[test]
    fn merge_sums_and_concatenates() {
        let mut a = TrafficReport {
            offered_bytes: 100,
            delivered_bytes: 80,
            flows_started: 2,
            flows_completed: 1,
            frames_sent: 5,
            frames_delivered: 4,
            fct_ns: vec![7],
            frame_latency_ns: vec![1, 2],
        };
        let b = TrafficReport {
            offered_bytes: 50,
            delivered_bytes: 50,
            flows_started: 1,
            flows_completed: 1,
            frames_sent: 2,
            frames_delivered: 2,
            fct_ns: vec![3],
            frame_latency_ns: vec![],
        };
        a.merge(&b);
        assert_eq!(a.offered_bytes, 150);
        assert_eq!(a.frames_lost(), 1);
        assert_eq!(a.fct_ns, vec![7, 3]);
    }
}
