//! Topology-independent traffic axes for the scenario matrix.
//!
//! A [`TrafficSpec`] names a load *shape* without naming nodes — the
//! matrix multiplies knobs across topologies of wildly different sizes,
//! so a knob cannot hard-code "senders 0..5". [`TrafficSpec::
//! instantiate`] places the endpoints on a concrete topology at cell
//! build time: servers and multicast roots go to one end of the
//! diameter (maximum path stress, mirroring how the demo places its
//! video server), and endpoint *counts are caps* — a 6-sender incast on
//! a 4-node ring becomes a 3-sender incast rather than a permanently
//! failed cell. Genuinely impossible placements (fewer than two nodes)
//! still fail, as a typed [`WorkloadError`] that marks the cell, not
//! the sweep.

use super::demand::{ArrivalProcess, FlowSize};
use super::{CbrStream, TrafficConfig, TrafficMode, TrafficPattern, WorkloadError, MAX_ENDPOINTS};
use rf_topo::Topology;
use std::time::Duration;

/// The shape of a traffic knob, sized in endpoint *caps*.
#[derive(Clone, Debug, PartialEq)]
pub enum TrafficShape {
    /// Open-loop request/response: up to `clients` clients draw
    /// arrivals from `arrivals` and fetch `response`-sized flows from
    /// one far-away server.
    RequestResponse {
        clients: usize,
        arrivals: ArrivalProcess,
        response: FlowSize,
    },
    /// Up to `senders` synchronized senders blast `flow`-sized
    /// transfers at one far-away receiver, every `period`, `waves`
    /// times.
    Incast {
        senders: usize,
        flow: FlowSize,
        period: Duration,
        waves: u32,
    },
    /// One far-away source paces a `rate_bps` stream to up to
    /// `receivers` receivers.
    Multicast { receivers: usize, rate_bps: u64 },
    /// One CBR stream per rate, each on its own source/sink pair
    /// (pairs wrap around small topologies).
    CbrMix { rates_bps: Vec<u64> },
}

/// A topology-independent traffic workload: shape + granularity +
/// offered-load window. This is what [`MatrixKnob::with_traffic`]
/// carries.
///
/// [`MatrixKnob::with_traffic`]: crate::scenario::MatrixKnob::with_traffic
#[derive(Clone, Debug, PartialEq)]
pub struct TrafficSpec {
    pub shape: TrafficShape,
    pub mode: TrafficMode,
    pub start_at: Duration,
    pub duration: Duration,
}

impl TrafficSpec {
    fn new(shape: TrafficShape) -> TrafficSpec {
        TrafficSpec {
            shape,
            mode: TrafficMode::Packet,
            start_at: Duration::from_secs(25),
            duration: Duration::from_secs(15),
        }
    }

    /// Poisson request/response at `rate_per_sec` per client.
    pub fn poisson(clients: usize, rate_per_sec: f64, response: FlowSize) -> TrafficSpec {
        TrafficSpec::new(TrafficShape::RequestResponse {
            clients,
            arrivals: ArrivalProcess::Poisson { rate_per_sec },
            response,
        })
    }

    /// Heavy-tailed request/response: bounded-Pareto gaps between
    /// `min_gap` and `max_gap` per client.
    pub fn pareto_requests(
        clients: usize,
        min_gap: Duration,
        max_gap: Duration,
        response: FlowSize,
    ) -> TrafficSpec {
        TrafficSpec::new(TrafficShape::RequestResponse {
            clients,
            arrivals: ArrivalProcess::ParetoGaps {
                min_gap,
                max_gap,
                alpha_milli: 1200,
            },
            response,
        })
    }

    /// SCDP-style incast.
    pub fn incast(senders: usize, flow: FlowSize, period: Duration, waves: u32) -> TrafficSpec {
        TrafficSpec::new(TrafficShape::Incast {
            senders,
            flow,
            period,
            waves,
        })
    }

    /// SRMCA-style multicast fan-out.
    pub fn multicast(receivers: usize, rate_bps: u64) -> TrafficSpec {
        TrafficSpec::new(TrafficShape::Multicast {
            receivers,
            rate_bps,
        })
    }

    /// A CBR mix with one stream per listed rate.
    pub fn cbr_mix(rates_bps: Vec<u64>) -> TrafficSpec {
        TrafficSpec::new(TrafficShape::CbrMix { rates_bps })
    }

    /// Simulate at flow granularity instead of per-frame.
    pub fn flow_level(mut self) -> Self {
        self.mode = TrafficMode::Flow;
        self
    }

    /// Offer load over `[start, start + duration)`.
    pub fn window(mut self, start: Duration, duration: Duration) -> Self {
        self.start_at = start;
        self.duration = duration;
        self
    }

    /// When the last source stops offering load.
    pub fn stop_at(&self) -> Duration {
        self.start_at + self.duration
    }

    /// A short stable tag for matrix cell keys (`rr`/`incast`/...).
    pub fn shape_tag(&self) -> &'static str {
        match self.shape {
            TrafficShape::RequestResponse { .. } => "rr",
            TrafficShape::Incast { .. } => "incast",
            TrafficShape::Multicast { .. } => "mcast",
            TrafficShape::CbrMix { .. } => "cbr",
        }
    }

    /// Place the shape's endpoints on `topo` and produce a validated
    /// [`TrafficConfig`].
    pub fn instantiate(&self, topo: &Topology) -> Result<TrafficConfig, WorkloadError> {
        let n = topo.node_count();
        if n < 2 {
            return Err(WorkloadError::TopologyTooSmall { need: 2, have: n });
        }
        // Far end of the diameter hosts the hot endpoint.
        let (near, far) = topo.farthest_pair().expect("non-empty topology");
        // Everyone else, nearest slots first.
        let others = |exclude: usize, cap: usize| -> Vec<usize> {
            (0..n)
                .filter(|&v| v != exclude)
                .take(cap.min(MAX_ENDPOINTS))
                .collect()
        };
        let pattern = match &self.shape {
            TrafficShape::RequestResponse {
                clients,
                arrivals,
                response,
            } => TrafficPattern::RequestResponse {
                clients: others(far, *clients),
                server: far,
                arrivals: *arrivals,
                response: *response,
            },
            TrafficShape::Incast {
                senders,
                flow,
                period,
                waves,
            } => TrafficPattern::Incast {
                senders: others(far, *senders),
                receiver: far,
                flow: *flow,
                period: *period,
                waves: *waves,
            },
            TrafficShape::Multicast {
                receivers,
                rate_bps,
            } => TrafficPattern::Multicast {
                source: near,
                receivers: others(near, *receivers),
                rate_bps: *rate_bps,
            },
            TrafficShape::CbrMix { rates_bps } => {
                // Pair stream i as (2i, 2i+1) mod n, skipping self-loops
                // by offsetting the sink when the pair collapses.
                let streams = rates_bps
                    .iter()
                    .enumerate()
                    .map(|(i, &rate_bps)| {
                        let source = (2 * i) % n;
                        let mut sink = (2 * i + 1) % n;
                        if sink == source {
                            sink = (sink + 1) % n;
                        }
                        CbrStream {
                            source,
                            sink,
                            rate_bps,
                        }
                    })
                    .collect();
                TrafficPattern::CbrMix { streams }
            }
        };
        let cfg = TrafficConfig {
            pattern,
            mode: self.mode,
            start_at: self.start_at,
            stop_at: self.stop_at(),
        };
        cfg.validate()?;
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rf_topo::{ring, star};

    #[test]
    fn endpoint_counts_clamp_to_the_topology() {
        let spec = TrafficSpec::incast(6, FlowSize::fixed(10_000), Duration::from_secs(2), 3);
        let small = spec.instantiate(&ring(4)).unwrap();
        match &small.pattern {
            TrafficPattern::Incast {
                senders, receiver, ..
            } => {
                assert_eq!(
                    senders.len(),
                    3,
                    "6 senders clamp to ring-4's 3 non-receivers"
                );
                assert!(!senders.contains(receiver));
            }
            p => panic!("wrong pattern: {p:?}"),
        }
        let big = spec.instantiate(&ring(16)).unwrap();
        match &big.pattern {
            TrafficPattern::Incast { senders, .. } => assert_eq!(senders.len(), 6),
            p => panic!("wrong pattern: {p:?}"),
        }
    }

    #[test]
    fn server_lands_on_the_far_end_of_the_diameter() {
        let topo = star(8);
        let (_, far) = topo.farthest_pair().unwrap();
        let cfg = TrafficSpec::poisson(3, 5.0, FlowSize::fixed(20_000))
            .instantiate(&topo)
            .unwrap();
        match &cfg.pattern {
            TrafficPattern::RequestResponse {
                clients, server, ..
            } => {
                assert_eq!(*server, far);
                assert_eq!(clients.len(), 3);
            }
            p => panic!("wrong pattern: {p:?}"),
        }
    }

    #[test]
    fn cbr_pairs_avoid_self_loops_on_tiny_topologies() {
        let cfg = TrafficSpec::cbr_mix(vec![1_000_000, 2_000_000, 3_000_000])
            .instantiate(&ring(3))
            .unwrap();
        match &cfg.pattern {
            TrafficPattern::CbrMix { streams } => {
                assert_eq!(streams.len(), 3);
                for s in streams {
                    assert_ne!(s.source, s.sink);
                }
            }
            p => panic!("wrong pattern: {p:?}"),
        }
    }

    #[test]
    fn impossible_placements_fail_typed() {
        let mut lonely = Topology::new();
        lonely.add_node("s0", (0.0, 0.0));
        let spec = TrafficSpec::multicast(4, 1_000_000);
        let err = spec.instantiate(&lonely).unwrap_err();
        assert_eq!(err, WorkloadError::TopologyTooSmall { need: 2, have: 1 });
        // Bad distribution parameters also surface as errors, not
        // panics.
        let bad = TrafficSpec::poisson(2, 0.0, FlowSize::fixed(1_000));
        assert!(matches!(
            bad.instantiate(&ring(4)),
            Err(WorkloadError::BadDistribution(_))
        ));
    }

    #[test]
    fn window_and_mode_carry_through() {
        let cfg = TrafficSpec::multicast(2, 5_000_000)
            .flow_level()
            .window(Duration::from_secs(30), Duration::from_secs(20))
            .instantiate(&ring(6))
            .unwrap();
        assert_eq!(cfg.mode, TrafficMode::Flow);
        assert_eq!(cfg.start_at, Duration::from_secs(30));
        assert_eq!(cfg.stop_at, Duration::from_secs(50));
    }
}
