//! End-to-end automatic-configuration tests: the full Fig. 2 stack on
//! real topologies — discovery → RPC → VM creation → config files →
//! OSPF convergence → flow installation.

use rf_core::rfcontroller::RfController;
use rf_core::scenario::Scenario;
use rf_sim::Time;
use rf_switch::OpenFlowSwitch;
use rf_topo::{line, ring};
use std::time::Duration;

#[test]
fn ring4_all_switches_turn_green() {
    let mut sc = Scenario::on(ring(4)).fast_timers().start();
    let done = sc.run_until_configured(Time::from_secs(120));
    let done = done.expect("all switches must configure");
    assert_eq!(sc.configured_switches(), 4);
    // Automatic configuration is sub-minute, vs 1 hour manual (4 × 15').
    assert!(
        done < Time::from_secs(60),
        "configuration took {done} — too slow"
    );
}

#[test]
fn vms_mirror_switch_port_counts() {
    let mut sc = Scenario::on(ring(4)).fast_timers().start();
    sc.run_until_configured(Time::from_secs(120)).unwrap();
    let rf = sc.sim.agent_as::<RfController>(sc.rf_ctrl).unwrap();
    let mut counts = rf.switch_port_counts();
    counts.sort();
    // Every ring node has exactly 2 ports, and VM ids equal dpids.
    assert_eq!(counts, vec![(1, 2), (2, 2), (3, 2), (4, 2)]);
}

#[test]
fn ospf_converges_and_flows_are_installed() {
    let mut sc = Scenario::on(ring(4)).fast_timers().start();
    sc.run_until(Time::from_secs(90));
    assert_eq!(sc.configured_switches(), 4);
    // Each of the 4 VMs sees 4 remote /30s (ring of 4 = 4 link subnets,
    // 2 connected + 2 remote each) → 2 routed flows per switch at
    // steady state (remote subnets), possibly more transiently.
    let flows = sc.total_flows();
    assert!(
        flows >= 8,
        "expected at least 8 routed flows across the ring, got {flows}"
    );
    // Every switch also has at least its routed entries.
    for &sw in &sc.switches {
        let s = sc.sim.agent_as::<OpenFlowSwitch>(sw).unwrap();
        assert!(
            s.flow_count() >= 2,
            "switch {:#x} has {} flows",
            s.dpid(),
            s.flow_count()
        );
    }
}

#[test]
fn line_topology_converges_too() {
    let mut sc = Scenario::on(line(5)).fast_timers().start();
    let done = sc.run_until_configured(Time::from_secs(120));
    assert!(done.is_some());
    sc.run_until(Time::from_secs(90));
    // End switches must route to the far end: 4 subnets, 3 remote from
    // each end → at least 3 flows on each end switch.
    let ends = [sc.switches[0], sc.switches[4]];
    for sw in ends {
        let s = sc.sim.agent_as::<OpenFlowSwitch>(sw).unwrap();
        assert!(s.flow_count() >= 3, "end switch has {}", s.flow_count());
    }
}

#[test]
fn no_flowvisor_ablation_also_configures() {
    let mut sc = Scenario::on(ring(4))
        .fast_timers()
        .without_flowvisor()
        .start();
    let done = sc.run_until_configured(Time::from_secs(120));
    assert!(done.is_some(), "direct multi-controller mode must work");
}

#[test]
fn deterministic_across_runs() {
    let run = |seed: u64| {
        let mut sc = Scenario::on(ring(6)).fast_timers().seed(seed).start();
        let t = sc.run_until_configured(Time::from_secs(120)).unwrap();
        (t, sc.total_flows())
    };
    assert_eq!(run(7), run(7), "same seed ⇒ identical outcome");
}

#[test]
fn vm_boot_delay_shifts_config_time() {
    let time_with_boot = |boot: Duration| {
        let mut sc = Scenario::on(ring(4))
            .fast_timers()
            .vm_boot_delay(boot)
            .start();
        sc.run_until_configured(Time::from_secs(300)).unwrap()
    };
    let fast_boot = time_with_boot(Duration::from_millis(500));
    let slow_boot = time_with_boot(Duration::from_secs(10));
    assert!(
        slow_boot > fast_boot + Duration::from_secs(5),
        "boot delay must dominate: fast {fast_boot} slow {slow_boot}"
    );
}
