//! The converged-state checkpoint/fork contract at scenario level:
//! quiesce-point preconditions are typed errors (never force-drains,
//! never panics), past faults are refused at injection, and a fork
//! continues byte-identically to the captured run — with or without
//! divergent faults. The matrix-level byte-identity contract rides on
//! these in `tests/matrix_sweeps.rs`.

use rf_core::scenario::{Fault, ForkError, Scenario, SnapshotError};
use rf_sim::Time;
use rf_topo::ring;
use std::time::Duration;

/// Run to convergence, then step in 100 ms slices until the snapshot
/// is accepted (a FIB batch waiting out its tick refuses the capture;
/// the matrix's fork path probes the same way).
fn converge_and_snapshot(sc: &mut Scenario) -> rf_core::scenario::Snapshot {
    sc.run_until_configured(Time::from_secs(120))
        .expect("ring-4 converges");
    loop {
        match sc.snapshot() {
            Ok(s) => return s,
            Err(SnapshotError::UndrainedChannels { .. }) => {
                let t = sc.sim.now() + Duration::from_millis(100);
                sc.run_until(t);
            }
            Err(e) => panic!("unexpected snapshot refusal: {e}"),
        }
    }
}

#[test]
fn snapshot_before_convergence_is_a_typed_refusal() {
    let mut sc = Scenario::on(ring(4)).fast_timers().seed(3).start();
    sc.run_until(Time::from_millis(500));
    match sc.snapshot() {
        Err(SnapshotError::NotConverged {
            configured,
            expected,
        }) => {
            assert_eq!(expected, 4);
            assert!(configured < 4, "nothing converges in 500 ms");
        }
        Err(e) => panic!("expected NotConverged, got {e:?}"),
        Ok(_) => panic!("expected NotConverged, got a capture"),
    }
}

#[test]
fn snapshot_never_force_drains_queued_channel_output() {
    // A credit-capped (capacity 1), batch-8 channel on ring-6 holds
    // queued FLOW_MODs for a stretch shortly after the configured
    // instant, while the routed burst squeezes through one credit at a
    // time. Captures attempted inside that stretch must be refused
    // with the queue depth — and the refusal must be a pure
    // observation: asking twice yields the same answer, and the
    // backlog drains on its own schedule, after which the same call
    // succeeds.
    let mut sc = Scenario::on(ring(6))
        .fast_timers()
        .seed(3)
        .channel_capacity(1)
        .fib_batch(8)
        .start();
    sc.run_until_configured(Time::from_secs(120))
        .expect("a capacity-1 Defer channel still converges");
    let mut saw_refusal = false;
    for _ in 0..100 {
        match sc.snapshot() {
            Ok(_) => {}
            Err(SnapshotError::UndrainedChannels { queued }) => {
                assert!(queued > 0);
                // Pure observation: an immediate retry sees the exact
                // same state, nothing was drained to answer.
                assert_eq!(
                    sc.snapshot().err(),
                    Some(SnapshotError::UndrainedChannels { queued })
                );
                saw_refusal = true;
            }
            Err(e) => panic!("unexpected snapshot refusal: {e}"),
        }
        let t = sc.sim.now() + Duration::from_millis(50);
        sc.run_until(t);
    }
    assert!(
        saw_refusal,
        "the credit-capped burst must refuse at least one capture"
    );
    assert!(
        sc.snapshot().is_ok(),
        "once the backlog drains the capture succeeds"
    );
}

#[test]
fn inject_faults_refuses_past_faults_atomically() {
    let mut sc = Scenario::on(ring(4)).fast_timers().seed(3).start();
    let snap = converge_and_snapshot(&mut sc);
    let now = snap.taken_at();
    let mut fork = Scenario::fork(&snap);

    // One future fault, one already-elapsed fault: the batch is
    // refused naming the elapsed one, and *nothing* is scheduled.
    let past = Duration::from_secs(1);
    let err = fork
        .inject_faults(&[
            Fault::KillSwitch {
                node: 1,
                at: Duration::from_secs(600),
            },
            Fault::KillSwitch { node: 2, at: past },
        ])
        .unwrap_err();
    assert_eq!(err, ForkError::FaultNotAfterFork { at: past, now });

    // The refused batch left no trace: the fork still matches the
    // captured run continuing undisturbed.
    let mut undisturbed = Scenario::fork(&snap);
    let horizon = now + Duration::from_secs(30);
    fork.run_until(horizon);
    undisturbed.run_until(horizon);
    assert_eq!(
        format!("{:?}", fork.peek_metrics()),
        format!("{:?}", undisturbed.peek_metrics()),
        "a refused injection must not perturb the fork"
    );
}

#[test]
fn unforked_continuation_matches_the_original_run() {
    // Fork with no intervention ≡ the captured scenario continuing:
    // same pending timers, same RNG stream position, same metrics at
    // every later instant.
    let mut sc = Scenario::on(ring(4)).fast_timers().seed(3).start();
    let snap = converge_and_snapshot(&mut sc);
    let mut fork = Scenario::fork(&snap);
    let horizon = snap.taken_at() + Duration::from_secs(40);
    sc.run_until(horizon);
    fork.run_until(horizon);
    assert_eq!(
        format!("{:?}", sc.peek_metrics()),
        format!("{:?}", fork.peek_metrics())
    );
    assert_eq!(sc.total_flows(), fork.total_flows());
}

#[test]
fn forked_fault_run_matches_the_cold_run_with_the_same_schedule() {
    // The tentpole equivalence in miniature: declaring a kill at build
    // time and injecting the same kill into a fork of the fault-free
    // prefix must be observationally identical — same recovery, same
    // flow tables, same metrics.
    let kill_at = Duration::from_secs(25);
    let horizon = Time::from_secs(50);

    let mut cold = Scenario::on(ring(4))
        .fast_timers()
        .seed(3)
        .with_faults([Fault::KillSwitch {
            node: 1,
            at: kill_at,
        }])
        .start();
    cold.run_until(horizon);

    let mut prefix = Scenario::on(ring(4)).fast_timers().seed(3).start();
    let snap = converge_and_snapshot(&mut prefix);
    assert!(
        snap.taken_at() < Time::ZERO + kill_at,
        "the capture must precede the divergence point"
    );
    let mut fork = Scenario::fork(&snap);
    fork.inject_faults(&[Fault::KillSwitch {
        node: 1,
        at: kill_at,
    }])
    .expect("a strictly-future fault injects");
    fork.run_until(horizon);

    assert_eq!(
        format!("{:?}", cold.peek_metrics()),
        format!("{:?}", fork.peek_metrics()),
        "fork-injected kill must be indistinguishable from a cold-declared one"
    );
    assert_eq!(cold.total_flows(), fork.total_flows());
}

#[test]
fn many_forks_from_one_snapshot_are_independent() {
    // The snapshot is immutable: fork twice, disturb one, and the
    // other still matches the undisturbed continuation.
    let mut sc = Scenario::on(ring(4)).fast_timers().seed(3).start();
    let snap = converge_and_snapshot(&mut sc);
    let horizon = snap.taken_at() + Duration::from_secs(35);

    let mut disturbed = Scenario::fork(&snap);
    disturbed
        .inject_faults(&[Fault::KillSwitch {
            node: 1,
            at: Duration::from_secs(25),
        }])
        .unwrap();
    disturbed.run_until(horizon);

    let mut calm = Scenario::fork(&snap);
    calm.run_until(horizon);
    sc.run_until(horizon);

    assert_eq!(
        format!("{:?}", sc.peek_metrics()),
        format!("{:?}", calm.peek_metrics()),
        "the calm fork must not see the disturbed fork's kill"
    );
    assert_ne!(
        format!("{:?}", calm.peek_metrics()),
        format!("{:?}", disturbed.peek_metrics()),
        "the kill must actually change the disturbed fork"
    );
}
