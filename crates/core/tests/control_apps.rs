//! Dispatch-core tests: event-bus ordering and determinism, app
//! registration, and the third-party extension point — a custom
//! [`ControlApp`] installed from outside the crate.

use rf_core::apps::{AppCtx, ControlApp, ControlEvent, ControlPlane, FibChange, LinkChange};
use rf_core::rfcontroller::RfControllerConfig;
use rf_core::scenario::Scenario;
use rf_sim::Time;
use rf_topo::ring;
use std::sync::{Arc, Mutex};

/// Records a compact tag for every event it sees, into a log shared
/// with the test.
#[derive(Clone)]
struct Recorder {
    log: Arc<Mutex<Vec<String>>>,
    tag: &'static str,
}

impl ControlApp for Recorder {
    fn name(&self) -> &'static str {
        "recorder"
    }

    fn on_event(&mut self, _cx: &mut AppCtx<'_, '_>, ev: &ControlEvent) {
        let line = match ev {
            ControlEvent::Rpc(_) => "rpc".to_string(),
            ControlEvent::SwitchUp { dpid, .. } => format!("switch_up({dpid})"),
            ControlEvent::SwitchDown { dpid } => format!("switch_down({dpid})"),
            ControlEvent::Link(LinkChange::Up { a, b, .. }) => {
                format!("link_up({}:{},{}:{})", a.0, a.1, b.0, b.1)
            }
            ControlEvent::Link(LinkChange::Down { a, b, .. }) => {
                format!("link_down({}:{},{}:{})", a.0, a.1, b.0, b.1)
            }
            ControlEvent::Link(LinkChange::PortStatus { .. }) => "port_status".to_string(),
            ControlEvent::VmSpawned { dpid } => format!("vm_spawned({dpid})"),
            ControlEvent::VmUp { dpid } => format!("vm_up({dpid})"),
            ControlEvent::ChannelUp { dpid } => format!("channel_up({dpid})"),
            ControlEvent::PacketIn { dpid, .. } => format!("packet_in({dpid})"),
            ControlEvent::Fib(FibChange::Add { dpid, prefix, .. }) => {
                format!("fib_add({dpid},{prefix})")
            }
            ControlEvent::Fib(FibChange::Del { dpid, prefix }) => {
                format!("fib_del({dpid},{prefix})")
            }
            ControlEvent::Timer { token } => format!("timer({token})"),
        };
        self.log
            .lock()
            .unwrap()
            .push(format!("{}:{line}", self.tag));
    }
}

/// A custom app exercising the full extension surface: it watches for
/// switches coming up, raises a follow-up event, and counts FIB
/// traffic — without touching any rf-core internals.
#[derive(Clone)]
struct Auditor {
    log: Arc<Mutex<Vec<String>>>,
    fib_adds: Arc<Mutex<u64>>,
}

impl ControlApp for Auditor {
    fn name(&self) -> &'static str {
        "auditor"
    }

    fn on_switch_up(&mut self, cx: &mut AppCtx<'_, '_>, dpid: u64, _num_ports: u16) {
        self.log
            .lock()
            .unwrap()
            .push(format!("audit:switch({dpid})"));
        // Raised events are dispatched after the current one, to every
        // app in registration order.
        cx.raise(ControlEvent::Timer { token: 9000 + dpid });
    }

    fn on_fib_update(&mut self, _cx: &mut AppCtx<'_, '_>, change: &FibChange) {
        // Count transit routes (connected routes carry no next hop and
        // are not mirrored to the data plane).
        if matches!(
            change,
            FibChange::Add {
                next_hop: Some(_),
                ..
            }
        ) {
            *self.fib_adds.lock().unwrap() += 1;
        }
    }
}

fn event_log_for_run(seed: u64) -> Vec<String> {
    let log = Arc::new(Mutex::new(Vec::new()));
    let mut sc = Scenario::on(ring(4))
        .seed(seed)
        .fast_timers()
        .trace_level(rf_sim::TraceLevel::Off)
        .with_app(Box::new(Recorder {
            log: Arc::clone(&log),
            tag: "r",
        }))
        .start();
    sc.run_until_configured(Time::from_secs(120)).unwrap();
    sc.run_until(Time::from_secs(40));
    let out = log.lock().unwrap().clone();
    out
}

#[test]
fn standard_apps_register_in_dispatch_order() {
    let cp = ControlPlane::new(RfControllerConfig::default());
    assert_eq!(
        cp.app_names(),
        vec![
            "discovery-bridge",
            "vm-lifecycle",
            "fib-mirror",
            "arp-proxy"
        ]
    );
    let bare = ControlPlane::bare(RfControllerConfig::default());
    assert!(bare.app_names().is_empty());
    let extended = ControlPlane::new(RfControllerConfig::default()).with_app(Box::new(Recorder {
        log: Arc::new(Mutex::new(Vec::new())),
        tag: "x",
    }));
    assert_eq!(extended.app_names().len(), 5);
    assert_eq!(extended.app_names()[4], "recorder");
}

#[test]
fn bus_events_follow_the_lifecycle_order() {
    let log = event_log_for_run(7);
    let pos = |needle: &str| {
        log.iter()
            .position(|l| l == needle)
            .unwrap_or_else(|| panic!("event {needle} missing from {log:?}"))
    };
    for dpid in 1..=4u64 {
        // Refinement chain per switch: raw RPC → SwitchUp → VmSpawned →
        // (boot) → VmUp.
        assert!(pos(&format!("r:switch_up({dpid})")) < pos(&format!("r:vm_spawned({dpid})")));
        assert!(pos(&format!("r:vm_spawned({dpid})")) < pos(&format!("r:vm_up({dpid})")));
    }
    // Links only come up once both end VMs are provisioned, and every
    // link produces FIB traffic afterwards.
    let first_link = log
        .iter()
        .position(|l| l.starts_with("r:link_up"))
        .expect("links discovered");
    let first_fib = log
        .iter()
        .position(|l| l.starts_with("r:fib_add"))
        .expect("routes mirrored");
    assert!(first_link < first_fib);
    // The serial VM pipeline provisions in dpid order on a cold start.
    let spawn_order: Vec<&String> = log
        .iter()
        .filter(|l| l.starts_with("r:vm_spawned"))
        .collect();
    assert_eq!(spawn_order.len(), 4);
    assert!(spawn_order.windows(2).all(|w| w[0] < w[1]));
}

#[test]
fn bus_dispatch_is_deterministic() {
    let first = event_log_for_run(42);
    // The log is substantial — the bus carried the whole bootstrap.
    assert!(first.len() > 50);
    assert_eq!(first, event_log_for_run(42));
}

#[test]
fn custom_app_installs_and_cascades() {
    let log = Arc::new(Mutex::new(Vec::new()));
    let fib_adds = Arc::new(Mutex::new(0u64));
    let mut sc = Scenario::on(ring(4))
        .fast_timers()
        .trace_level(rf_sim::TraceLevel::Off)
        .with_app(Box::new(Auditor {
            log: Arc::clone(&log),
            fib_adds: Arc::clone(&fib_adds),
        }))
        .with_app(Box::new(Recorder {
            log: Arc::clone(&log),
            tag: "r",
        }))
        .start();
    sc.run_until_configured(Time::from_secs(120)).unwrap();
    sc.run_until(Time::from_secs(40));

    let log = log.lock().unwrap().clone();
    for dpid in 1..=4u64 {
        // The auditor saw every switch and its raised follow-up event
        // reached the bus (and thus the recorder registered after it).
        let audit = log
            .iter()
            .position(|l| l == &format!("audit:switch({dpid})"))
            .expect("auditor saw the switch");
        let echo = log
            .iter()
            .position(|l| l == &format!("r:timer({})", 9000 + dpid))
            .expect("raised event dispatched to all apps");
        assert!(audit < echo, "raised events dispatch after the current one");
    }
    // The custom app observed the same FIB stream the standard mirror
    // translated into FLOW_MODs.
    let adds = *fib_adds.lock().unwrap();
    assert!(
        adds >= 8,
        "ring-4 produces at least 8 routed adds, saw {adds}"
    );
    assert!(sc.controller().state().flows_installed >= 8);
}

/// Regression: `ScenarioBuilder::ospf_timers` must actually reach the
/// VMs' routing daemons (the knob used to be written into the
/// deployment config and read by no one — every VM silently ran
/// Quagga's 10/40 defaults).
#[test]
fn ospf_timers_reach_the_vm_daemons() {
    let mut sc = Scenario::on(ring(4))
        .ospf_timers(2, 8)
        .trace_level(rf_sim::TraceLevel::Off)
        .start();
    sc.run_until_configured(Time::from_secs(120)).unwrap();
    let mut vms = 0;
    for id in 0..100 {
        if let Some(vm) = sc.sim.agent_as::<rf_vnet::vm::VmAgent>(rf_sim::AgentId(id)) {
            assert_eq!(
                vm.ospf_timers(),
                Some((
                    std::time::Duration::from_secs(2),
                    std::time::Duration::from_secs(8)
                )),
                "vm {:#x} runs the configured timers",
                vm.dpid()
            );
            vms += 1;
        }
    }
    assert_eq!(vms, 4, "one daemon checked per switch");
}
