//! Subnet allocation from the administrator-provided range.
//!
//! This is the *only* administrator input in the whole framework — the
//! paper's point is that everything else is derived automatically.

use rf_wire::Ipv4Cidr;
use std::net::Ipv4Addr;

/// Carves fixed-size blocks (default /30, point-to-point) out of a
/// range, recycling freed blocks.
#[derive(Clone, Debug)]
pub struct Ipv4Allocator {
    range: Ipv4Cidr,
    block_prefix: u8,
    next_block: u32,
    free: Vec<u32>,
}

impl Ipv4Allocator {
    /// `range` must be at least as wide as one block.
    pub fn new(range: Ipv4Cidr, block_prefix: u8) -> Ipv4Allocator {
        assert!(block_prefix <= 32);
        assert!(
            range.prefix_len <= block_prefix,
            "range /{} narrower than block /{block_prefix}",
            range.prefix_len
        );
        Ipv4Allocator {
            range,
            block_prefix,
            next_block: 0,
            free: Vec::new(),
        }
    }

    /// Default for the virtual environment: /30 per link.
    pub fn slash30(range: Ipv4Cidr) -> Ipv4Allocator {
        Ipv4Allocator::new(range, 30)
    }

    fn block_size(&self) -> u32 {
        1u32 << (32 - self.block_prefix)
    }

    fn total_blocks(&self) -> u32 {
        let range_size = self.range.size();
        (range_size / u64::from(self.block_size())) as u32
    }

    /// Allocate the next block, preferring recycled ones.
    pub fn alloc(&mut self) -> Option<Ipv4Cidr> {
        let idx = if let Some(i) = self.free.pop() {
            i
        } else if self.next_block < self.total_blocks() {
            let i = self.next_block;
            self.next_block += 1;
            i
        } else {
            return None;
        };
        let base = u32::from(self.range.network()) + idx * self.block_size();
        Some(Ipv4Cidr::new(Ipv4Addr::from(base), self.block_prefix))
    }

    /// Return a block to the pool. Blocks from foreign ranges are
    /// ignored (defensive; indicates a caller bug, surfaced by tests).
    pub fn release(&mut self, block: Ipv4Cidr) {
        if block.prefix_len != self.block_prefix || !self.range.contains(block.network()) {
            return;
        }
        let off = u32::from(block.network()) - u32::from(self.range.network());
        let idx = off / self.block_size();
        if idx < self.next_block && !self.free.contains(&idx) {
            self.free.push(idx);
        }
    }

    /// Blocks currently handed out.
    pub fn in_use(&self) -> u32 {
        self.next_block - self.free.len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn range() -> Ipv4Cidr {
        "172.31.0.0/24".parse().unwrap()
    }

    #[test]
    fn allocates_disjoint_slash30s() {
        let mut a = Ipv4Allocator::slash30(range());
        let b1 = a.alloc().unwrap();
        let b2 = a.alloc().unwrap();
        assert_eq!(b1.to_string(), "172.31.0.0/30");
        assert_eq!(b2.to_string(), "172.31.0.4/30");
        assert!(!b1.contains(b2.network()));
        assert_eq!(a.in_use(), 2);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut a = Ipv4Allocator::slash30("10.0.0.0/28".parse().unwrap());
        // /28 holds four /30s.
        for _ in 0..4 {
            assert!(a.alloc().is_some());
        }
        assert!(a.alloc().is_none());
    }

    #[test]
    fn release_recycles() {
        let mut a = Ipv4Allocator::slash30("10.0.0.0/28".parse().unwrap());
        let blocks: Vec<Ipv4Cidr> = (0..4).map(|_| a.alloc().unwrap()).collect();
        assert!(a.alloc().is_none());
        a.release(blocks[1]);
        assert_eq!(a.alloc().unwrap(), blocks[1]);
        assert!(a.alloc().is_none());
    }

    #[test]
    fn double_release_is_idempotent() {
        let mut a = Ipv4Allocator::slash30("10.0.0.0/28".parse().unwrap());
        let b = a.alloc().unwrap();
        a.release(b);
        a.release(b);
        assert!(a.alloc().is_some());
        assert!(a.alloc().is_some()); // only one extra slot, not two… but
                                      // /28 has 4 blocks: one released twice must not double-count.
        assert!(a.alloc().is_some());
        assert!(a.alloc().is_some());
        assert!(a.alloc().is_none());
    }

    #[test]
    fn foreign_block_ignored() {
        let mut a = Ipv4Allocator::slash30("10.0.0.0/28".parse().unwrap());
        a.release("192.168.0.0/30".parse().unwrap());
        for _ in 0..4 {
            assert!(a.alloc().is_some());
        }
        assert!(a.alloc().is_none());
    }

    #[test]
    fn pan_european_fits_in_default_range() {
        // 41 links need 41 /30s = 164 addresses; a /16 is plenty.
        let mut a = Ipv4Allocator::slash30("172.31.0.0/16".parse().unwrap());
        for _ in 0..41 {
            assert!(a.alloc().is_some());
        }
    }

    #[test]
    #[should_panic(expected = "narrower than block")]
    fn range_smaller_than_block_panics() {
        Ipv4Allocator::slash30("10.0.0.0/31".parse().unwrap());
    }
}
