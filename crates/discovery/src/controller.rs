//! The topology-controller agent.

use crate::alloc::Ipv4Allocator;
use crate::linkdb::{LinkDb, UndirectedLink};
use bytes::Bytes;
use rf_openflow::{
    Action, FlowModCommand, MessageReader, OfMatch, OfMessage, OFPP_CONTROLLER, OFPP_NONE,
    OFP_NO_BUFFER,
};
use rf_rpc::{encode_envelope, Envelope, RpcFrameReader, RpcRequest, RPC_CLIENT_SERVICE};
use rf_sim::{Agent, AgentId, ConnId, ConnProfile, Ctx, StreamEvent};
use rf_wire::{EtherType, EthernetFrame, Ipv4Cidr, LldpPacket, MacAddr};
use std::collections::HashMap;
use std::time::Duration;

const T_PROBE: u64 = 1;
const T_AGE: u64 = 2;
const T_RPC_RECONNECT: u64 = 3;

/// Configuration of the topology controller. The `ip_range` is the one
/// administrator-provided input of the whole framework.
#[derive(Clone, Debug)]
pub struct TopologyControllerConfig {
    /// OpenFlow service this controller listens on.
    pub service: u16,
    /// The RPC client to forward configuration messages to (None: run
    /// standalone, e.g. for discovery-only tests and benches).
    pub rpc_client: Option<AgentId>,
    /// Administrator-provided address range for the virtual environment.
    pub ip_range: Ipv4Cidr,
    /// Per-link subnet size (default /30).
    pub link_prefix: u8,
    /// LLDP probe period per switch (every port each round).
    pub probe_interval: Duration,
    /// A link is declared down after this long without probes.
    pub link_ttl: Duration,
    /// Stream profile for the RPC-client connection.
    pub conn: ConnProfile,
}

impl TopologyControllerConfig {
    pub fn new(ip_range: Ipv4Cidr) -> TopologyControllerConfig {
        TopologyControllerConfig {
            service: 6641,
            rpc_client: None,
            ip_range,
            link_prefix: 30,
            probe_interval: Duration::from_secs(1),
            link_ttl: Duration::from_secs(3),
            conn: ConnProfile::default(),
        }
    }

    pub fn with_rpc_client(mut self, client: AgentId) -> Self {
        self.rpc_client = Some(client);
        self
    }
}

/// Externally observable discovery events (consumed by tests, the GUI
/// and the experiment harness).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DiscoveryEvent {
    SwitchJoin {
        dpid: u64,
        num_ports: u16,
    },
    SwitchLeave {
        dpid: u64,
    },
    LinkUp {
        link: UndirectedLink,
        subnet: Ipv4Cidr,
    },
    LinkDown {
        link: UndirectedLink,
    },
}

#[derive(Clone)]
struct Session {
    reader: MessageReader,
    dpid: Option<u64>,
    num_ports: u16,
    /// Pre-encoded LLDP PACKET_OUT per port (index `port - 1`), xid 0.
    /// The probe bytes per (dpid, port) never change, so each round
    /// re-frames the template with a fresh xid instead of rebuilding
    /// LLDP TLVs, an Ethernet frame and a PACKET_OUT from scratch.
    probe_cache: Vec<Bytes>,
}

/// The topology controller: LLDP discovery plus configuration-message
/// generation.
#[derive(Clone)]
pub struct TopologyController {
    cfg: TopologyControllerConfig,
    sessions: HashMap<ConnId, Session>,
    linkdb: LinkDb,
    alloc: Ipv4Allocator,
    /// Subnet assigned to each up link.
    subnets: HashMap<UndirectedLink, Ipv4Cidr>,
    rpc_conn: Option<ConnId>,
    rpc_ready: bool,
    rpc_reader: RpcFrameReader,
    /// Requests not yet handed to the relay (sent on (re)connect).
    rpc_backlog: Vec<(u64, RpcRequest)>,
    next_req_id: u64,
    xid: u32,
    /// Full event history, in order.
    pub events: Vec<DiscoveryEvent>,
    /// Probe rounds completed (diagnostics).
    pub probe_rounds: u64,
    /// Reused per-event decode buffer (capacity persists across events).
    msg_scratch: Vec<(OfMessage, u32)>,
}

impl TopologyController {
    pub fn new(cfg: TopologyControllerConfig) -> TopologyController {
        let alloc = Ipv4Allocator::new(cfg.ip_range, cfg.link_prefix);
        TopologyController {
            cfg,
            sessions: HashMap::new(),
            linkdb: LinkDb::new(),
            alloc,
            subnets: HashMap::new(),
            rpc_conn: None,
            rpc_ready: false,
            rpc_reader: RpcFrameReader::new(),
            rpc_backlog: Vec::new(),
            next_req_id: 1,
            xid: 1,
            events: Vec::new(),
            probe_rounds: 0,
            msg_scratch: Vec::new(),
        }
    }

    /// Known switches (dpid → port count).
    pub fn switches(&self) -> Vec<(u64, u16)> {
        let mut v: Vec<(u64, u16)> = self
            .sessions
            .values()
            .filter_map(|s| s.dpid.map(|d| (d, s.num_ports)))
            .collect();
        v.sort();
        v
    }

    /// Currently-up links.
    pub fn links(&self) -> Vec<UndirectedLink> {
        self.linkdb.links()
    }

    fn next_xid(&mut self) -> u32 {
        self.xid = self.xid.wrapping_add(1);
        self.xid
    }

    fn emit_rpc(&mut self, ctx: &mut Ctx<'_>, request: RpcRequest) {
        let req_id = self.next_req_id;
        self.next_req_id += 1;
        self.rpc_backlog.push((req_id, request));
        self.flush_rpc(ctx);
    }

    fn flush_rpc(&mut self, ctx: &mut Ctx<'_>) {
        if !self.rpc_ready {
            return;
        }
        let Some(conn) = self.rpc_conn else { return };
        for (req_id, request) in &self.rpc_backlog {
            let env = Envelope::Request {
                req_id: *req_id,
                request: request.clone(),
            };
            ctx.conn_send(conn, encode_envelope(&env));
        }
        // The relay acks on receipt and owns delivery from here.
        // Entries are dropped when their ack arrives (see on_stream).
    }

    fn handle_link_up(&mut self, ctx: &mut Ctx<'_>, link: UndirectedLink) {
        let Some(subnet) = self.alloc.alloc() else {
            ctx.trace(
                "topo.alloc_exhausted",
                format!("no subnet left for {link:?}"),
            );
            return;
        };
        // Deterministic assignment: canonical endpoint `a` (lower
        // dpid/port) takes the first host address.
        let ip_a = subnet.nth(1).expect("/30 has host addrs");
        let ip_b = subnet.nth(2).expect("/30 has host addrs");
        self.subnets.insert(link, subnet);
        self.events.push(DiscoveryEvent::LinkUp { link, subnet });
        ctx.trace(
            "topo.link_up",
            format!(
                "{:?}:{} <-> {:?}:{} subnet {subnet}",
                link.a.0, link.a.1, link.b.0, link.b.1
            ),
        );
        self.emit_rpc(
            ctx,
            RpcRequest::LinkDetected {
                a_dpid: link.a.0,
                a_port: link.a.1,
                b_dpid: link.b.0,
                b_port: link.b.1,
                subnet,
                ip_a,
                ip_b,
            },
        );
    }

    fn handle_link_down(&mut self, ctx: &mut Ctx<'_>, link: UndirectedLink) {
        if let Some(subnet) = self.subnets.remove(&link) {
            self.alloc.release(subnet);
        }
        self.events.push(DiscoveryEvent::LinkDown { link });
        ctx.trace("topo.link_down", format!("{link:?}"));
        self.emit_rpc(
            ctx,
            RpcRequest::LinkRemoved {
                a_dpid: link.a.0,
                a_port: link.a.1,
                b_dpid: link.b.0,
                b_port: link.b.1,
            },
        );
    }

    fn handle_of(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, msg: OfMessage, _xid: u32) {
        match msg {
            OfMessage::Hello => {}
            OfMessage::EchoRequest(d) => {
                let xid = self.next_xid();
                ctx.conn_send(conn, OfMessage::EchoReply(d).encode(xid));
            }
            OfMessage::FeaturesReply(f) => {
                let num_ports = f.ports.len() as u16;
                if let Some(s) = self.sessions.get_mut(&conn) {
                    s.dpid = Some(f.datapath_id);
                    s.num_ports = num_ports;
                }
                // Punt every LLDP frame to this controller.
                let xid = self.next_xid();
                let punt = OfMessage::FlowMod {
                    of_match: OfMatch::lldp(),
                    cookie: 0x4C4C4450, // "LLDP"
                    command: FlowModCommand::Add,
                    idle_timeout: 0,
                    hard_timeout: 0,
                    priority: 0xFFFF,
                    buffer_id: OFP_NO_BUFFER,
                    out_port: OFPP_NONE,
                    flags: 0,
                    actions: vec![Action::Output {
                        port: OFPP_CONTROLLER,
                        max_len: 0xFFFF,
                    }],
                };
                ctx.conn_send(conn, punt.encode(xid));
                ctx.trace(
                    "topo.switch_join",
                    format!("dpid {:#x} with {num_ports} ports", f.datapath_id),
                );
                self.events.push(DiscoveryEvent::SwitchJoin {
                    dpid: f.datapath_id,
                    num_ports,
                });
                self.emit_rpc(
                    ctx,
                    RpcRequest::SwitchDetected {
                        dpid: f.datapath_id,
                        num_ports,
                    },
                );
                // Probe immediately rather than waiting a full period.
                self.probe_switch(ctx, conn);
            }
            OfMessage::PacketIn { in_port, data, .. } => {
                let Some(dpid) = self.sessions.get(&conn).and_then(|s| s.dpid) else {
                    return;
                };
                let Ok(eth) = EthernetFrame::parse_bytes(&data) else {
                    return;
                };
                if eth.ethertype != EtherType::LLDP {
                    return;
                }
                let Some((origin_dpid, origin_port)) = LldpPacket::parse_discovery(&eth.payload)
                else {
                    return;
                };
                if origin_dpid == dpid {
                    return; // self-loop probe; ignore
                }
                ctx.count("topo.lldp_in", 1);
                if let Some(link) =
                    self.linkdb
                        .observe((origin_dpid, origin_port), (dpid, in_port), ctx.now())
                {
                    self.handle_link_up(ctx, link);
                }
            }
            OfMessage::PortStatus { desc, .. } => {
                let Some(dpid) = self.sessions.get(&conn).and_then(|s| s.dpid) else {
                    return;
                };
                self.emit_rpc(
                    ctx,
                    RpcRequest::PortStatus {
                        dpid,
                        port: desc.port_no,
                        up: desc.is_link_up(),
                    },
                );
            }
            _ => {}
        }
    }

    fn probe_switch(&mut self, ctx: &mut Ctx<'_>, conn: ConnId) {
        // Split borrows: the xid counter advances inside the loop while
        // the session's template cache stays borrowed.
        let Self { sessions, xid, .. } = self;
        let Some(s) = sessions.get_mut(&conn) else {
            return;
        };
        let Some(dpid) = s.dpid else { return };
        let num_ports = s.num_ports;
        if s.probe_cache.len() != num_ports as usize {
            s.probe_cache = (1..=num_ports)
                .map(|port| {
                    let probe = EthernetFrame::new(
                        MacAddr::LLDP_MULTICAST,
                        MacAddr::from_dpid_port(dpid, port),
                        EtherType::LLDP,
                        LldpPacket::discovery_probe(dpid, port).emit(),
                    );
                    OfMessage::PacketOut {
                        buffer_id: OFP_NO_BUFFER,
                        in_port: OFPP_NONE,
                        actions: vec![Action::output(port)],
                        data: probe.emit(),
                    }
                    .encode(0)
                })
                .collect();
        }
        for template in &s.probe_cache {
            *xid = xid.wrapping_add(1);
            ctx.conn_send(conn, rf_openflow::reframe_with_xid(template, *xid));
            ctx.count("topo.lldp_out", 1);
        }
    }

    fn connect_rpc(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(client) = self.cfg.rpc_client {
            self.rpc_ready = false;
            self.rpc_reader = RpcFrameReader::new();
            self.rpc_conn = Some(ctx.connect(client, RPC_CLIENT_SERVICE, self.cfg.conn));
        }
    }
}

impl Agent for TopologyController {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.listen(self.cfg.service);
        self.connect_rpc(ctx);
        ctx.schedule(self.cfg.probe_interval, T_PROBE);
        ctx.schedule(self.cfg.link_ttl, T_AGE);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        match token {
            T_PROBE => {
                // Probe in ConnId order: `sessions` is a HashMap, and
                // hash order varies per process. Same-instant probe
                // emission order decides event sequence numbers, so it
                // must not leak into the simulation.
                let mut conns: Vec<ConnId> = self.sessions.keys().copied().collect();
                conns.sort_unstable();
                for c in conns {
                    self.probe_switch(ctx, c);
                }
                self.probe_rounds += 1;
                ctx.schedule(self.cfg.probe_interval, T_PROBE);
            }
            T_AGE => {
                let down = self.linkdb.expire(ctx.now(), self.cfg.link_ttl);
                for link in down {
                    self.handle_link_down(ctx, link);
                }
                ctx.schedule(self.cfg.link_ttl, T_AGE);
            }
            T_RPC_RECONNECT if self.rpc_conn.is_none() => {
                self.connect_rpc(ctx);
            }
            _ => {}
        }
    }

    fn on_stream(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, event: StreamEvent) {
        if Some(conn) == self.rpc_conn {
            match event {
                StreamEvent::Opened { .. } => {
                    self.rpc_ready = true;
                    self.flush_rpc(ctx);
                }
                StreamEvent::Data(data) => {
                    self.rpc_reader.push_bytes(data);
                    while let Some(Ok(Envelope::Ack(ack))) = self.rpc_reader.next() {
                        self.rpc_backlog.retain(|(id, _)| *id != ack.req_id);
                    }
                }
                StreamEvent::Closed => {
                    self.rpc_conn = None;
                    self.rpc_ready = false;
                    ctx.schedule(Duration::from_millis(500), T_RPC_RECONNECT);
                }
            }
            return;
        }
        match event {
            StreamEvent::Opened {
                initiated_by_us, ..
            } => {
                if initiated_by_us {
                    return; // handled above (rpc) — nothing else dials out
                }
                self.sessions.insert(
                    conn,
                    Session {
                        reader: MessageReader::new(),
                        dpid: None,
                        num_ports: 0,
                        probe_cache: Vec::new(),
                    },
                );
                ctx.conn_send(conn, OfMessage::Hello.encode(0));
                let xid = self.next_xid();
                ctx.conn_send(conn, OfMessage::FeaturesRequest.encode(xid));
                // Ask for whole frames on PACKET_IN: LLDP TLVs must not
                // be truncated.
                let xid = self.next_xid();
                ctx.conn_send(
                    conn,
                    OfMessage::SetConfig {
                        flags: 0,
                        miss_send_len: 0xFFFF,
                    }
                    .encode(xid),
                );
            }
            StreamEvent::Data(data) => {
                let mut msgs = std::mem::take(&mut self.msg_scratch);
                msgs.clear();
                {
                    let Some(s) = self.sessions.get_mut(&conn) else {
                        self.msg_scratch = msgs;
                        return;
                    };
                    s.reader.push_bytes(data);
                    while let Some(r) = s.reader.next() {
                        if let Ok(m) = r {
                            msgs.push(m);
                        }
                    }
                }
                for (msg, xid) in msgs.drain(..) {
                    self.handle_of(ctx, conn, msg, xid);
                }
                self.msg_scratch = msgs;
            }
            StreamEvent::Closed => {
                if let Some(s) = self.sessions.remove(&conn) {
                    if let Some(dpid) = s.dpid {
                        for link in self.linkdb.remove_switch(dpid) {
                            self.handle_link_down(ctx, link);
                        }
                        self.events.push(DiscoveryEvent::SwitchLeave { dpid });
                        self.emit_rpc(ctx, RpcRequest::SwitchRemoved { dpid });
                        ctx.trace("topo.switch_leave", format!("dpid {dpid:#x}"));
                    }
                }
            }
        }
    }
}

/// Placeholder to silence unused-import warnings in minimal builds.
#[allow(dead_code)]
fn _use(_b: Bytes) {}
