//! # rf-discovery — the topology controller
//!
//! The second controller in the paper's framework (Fig. 2): it
//! "contains a very small part of configurations from the administrator
//! (e.g. a range of IP addresses for the virtual environment) and runs
//! a topology discovery module to know the network configuration
//! (switches and links information)".
//!
//! The discovery algorithm is the NOX module the paper cites: for every
//! switch port, periodically emit an LLDP probe via `PACKET_OUT`; when
//! the probe re-enters the network at a neighbouring switch it is
//! punted back via `PACKET_IN` (a punt rule is installed at handshake
//! time), and the pair *(probe's origin dpid/port, receiving
//! dpid/port)* identifies a unidirectional link. Links age out when
//! probes stop arriving.
//!
//! On **switch join** the controller emits `SwitchDetected {dpid,
//! num_ports}` toward the RPC client; on **link detection** it carves a
//! /30 out of the administrator's range ([`alloc::Ipv4Allocator`]),
//! assigns the two interface addresses deterministically (lower
//! endpoint gets `.1`-equivalent) and emits `LinkDetected`; leaves and
//! link losses emit the corresponding teardown messages and return the
//! subnet to the pool.

pub mod alloc;
pub mod controller;
pub mod linkdb;

pub use alloc::Ipv4Allocator;
pub use controller::{DiscoveryEvent, TopologyController, TopologyControllerConfig};
pub use linkdb::{DirectedLink, LinkDb, UndirectedLink};
