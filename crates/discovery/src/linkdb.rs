//! The link database: observations, canonicalization and aging.

use rf_sim::Time;
use std::collections::HashMap;
use std::time::Duration;

/// One endpoint of a link.
pub type EndPoint = (u64, u16); // (dpid, port)

/// A unidirectional observation: a probe from `from` arrived at `to`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DirectedLink {
    pub from: EndPoint,
    pub to: EndPoint,
}

/// A canonical undirected link: `a < b` by (dpid, port).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UndirectedLink {
    pub a: EndPoint,
    pub b: EndPoint,
}

impl UndirectedLink {
    pub fn canonical(x: EndPoint, y: EndPoint) -> UndirectedLink {
        if x <= y {
            UndirectedLink { a: x, b: y }
        } else {
            UndirectedLink { a: y, b: x }
        }
    }
}

/// Tracks directed observations, derives undirected link up/down
/// events, and ages out silent links.
#[derive(Clone, Default)]
pub struct LinkDb {
    /// Directed observation → last time a probe confirmed it.
    observations: HashMap<DirectedLink, Time>,
    /// Currently-up undirected links.
    up: HashMap<UndirectedLink, ()>,
}

impl LinkDb {
    pub fn new() -> LinkDb {
        LinkDb::default()
    }

    /// Record a probe arrival. Returns `Some(link)` if this brought a
    /// new undirected link up.
    pub fn observe(&mut self, from: EndPoint, to: EndPoint, now: Time) -> Option<UndirectedLink> {
        self.observations.insert(DirectedLink { from, to }, now);
        let link = UndirectedLink::canonical(from, to);
        if let std::collections::hash_map::Entry::Vacant(e) = self.up.entry(link) {
            // NOX-style: a single direction is enough to declare the
            // link (the reverse probe typically confirms within one
            // period).
            e.insert(());
            Some(link)
        } else {
            None
        }
    }

    /// Expire directed observations older than `ttl`; returns
    /// undirected links that went down as a result.
    pub fn expire(&mut self, now: Time, ttl: Duration) -> Vec<UndirectedLink> {
        self.observations.retain(|_, last| now.since(*last) < ttl);
        let mut down = Vec::new();
        self.up.retain(|link, _| {
            let fwd = DirectedLink {
                from: link.a,
                to: link.b,
            };
            let rev = DirectedLink {
                from: link.b,
                to: link.a,
            };
            let alive =
                self.observations.contains_key(&fwd) || self.observations.contains_key(&rev);
            if !alive {
                down.push(*link);
            }
            alive
        });
        down.sort();
        down
    }

    /// Drop everything touching `dpid` (switch departure). Returns the
    /// undirected links removed.
    pub fn remove_switch(&mut self, dpid: u64) -> Vec<UndirectedLink> {
        self.observations
            .retain(|l, _| l.from.0 != dpid && l.to.0 != dpid);
        let mut removed = Vec::new();
        self.up.retain(|link, _| {
            let hit = link.a.0 == dpid || link.b.0 == dpid;
            if hit {
                removed.push(*link);
            }
            !hit
        });
        removed.sort();
        removed
    }

    pub fn links(&self) -> Vec<UndirectedLink> {
        let mut v: Vec<UndirectedLink> = self.up.keys().copied().collect();
        v.sort();
        v
    }

    pub fn link_count(&self) -> usize {
        self.up.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_observation_brings_link_up() {
        let mut db = LinkDb::new();
        let l = db.observe((1, 2), (2, 1), Time::from_secs(1));
        assert_eq!(
            l,
            Some(UndirectedLink {
                a: (1, 2),
                b: (2, 1)
            })
        );
        // Reverse direction: same undirected link, no new event.
        assert_eq!(db.observe((2, 1), (1, 2), Time::from_secs(1)), None);
        assert_eq!(db.link_count(), 1);
    }

    #[test]
    fn canonicalization_orders_endpoints() {
        let a = UndirectedLink::canonical((5, 1), (2, 9));
        assert_eq!(a.a, (2, 9));
        assert_eq!(a.b, (5, 1));
        assert_eq!(a, UndirectedLink::canonical((2, 9), (5, 1)));
    }

    #[test]
    fn links_expire_without_probes() {
        let mut db = LinkDb::new();
        db.observe((1, 1), (2, 1), Time::from_secs(0));
        db.observe((3, 1), (4, 1), Time::from_secs(9));
        let down = db.expire(Time::from_secs(10), Duration::from_secs(5));
        assert_eq!(down.len(), 1);
        assert_eq!(down[0].a.0, 1);
        assert_eq!(db.link_count(), 1);
    }

    #[test]
    fn one_live_direction_keeps_link_up() {
        let mut db = LinkDb::new();
        db.observe((1, 1), (2, 1), Time::from_secs(0));
        db.observe((2, 1), (1, 1), Time::from_secs(9));
        // Forward observation is stale, reverse is fresh.
        let down = db.expire(Time::from_secs(10), Duration::from_secs(5));
        assert!(down.is_empty());
    }

    #[test]
    fn remove_switch_tears_down_its_links() {
        let mut db = LinkDb::new();
        db.observe((1, 1), (2, 1), Time::ZERO);
        db.observe((2, 2), (3, 1), Time::ZERO);
        db.observe((3, 2), (4, 1), Time::ZERO);
        let removed = db.remove_switch(2);
        assert_eq!(removed.len(), 2);
        assert_eq!(db.link_count(), 1);
        assert_eq!(db.links()[0], UndirectedLink::canonical((3, 2), (4, 1)));
    }
}
