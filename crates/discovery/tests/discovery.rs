//! Discovery integration: real switches (optionally behind FlowVisor)
//! discovered by the topology controller via LLDP.

use rf_discovery::{DiscoveryEvent, TopologyController, TopologyControllerConfig};
use rf_sim::{LinkProfile, Sim, SimConfig, Time};
use rf_switch::{OpenFlowSwitch, SwitchConfig};
use rf_topo::{ring, Topology};
use std::time::Duration;

fn cfg() -> TopologyControllerConfig {
    TopologyControllerConfig::new("172.31.0.0/16".parse().unwrap())
}

/// Build `topo` as switches directly attached to a topology controller.
/// Port numbering: node i's k-th incident edge (in edge order) uses
/// port k+1 on that node.
fn build(topo: &Topology, cfg: TopologyControllerConfig) -> (Sim, rf_sim::AgentId) {
    let mut sim = Sim::new(SimConfig::default());
    let tc = sim.add_agent("topo-ctrl", Box::new(TopologyController::new(cfg)));
    let mut port_next: Vec<u16> = vec![1; topo.node_count()];
    let mut swcfg: Vec<SwitchConfig> = (0..topo.node_count())
        .map(|i| SwitchConfig::new((i + 1) as u64, 0, tc).with_service(6641))
        .collect();
    let mut links: Vec<(usize, u16, usize, u16)> = Vec::new();
    for e in topo.edges() {
        let pa = port_next[e.a];
        port_next[e.a] += 1;
        let pb = port_next[e.b];
        port_next[e.b] += 1;
        links.push((e.a, pa, e.b, pb));
    }
    for (i, c) in swcfg.iter_mut().enumerate() {
        c.num_ports = port_next[i] - 1;
    }
    let ids: Vec<rf_sim::AgentId> = swcfg
        .into_iter()
        .enumerate()
        .map(|(i, c)| sim.add_agent(&format!("s{}", i + 1), Box::new(OpenFlowSwitch::new(c))))
        .collect();
    for (a, pa, b, pb) in links {
        sim.add_link(
            (ids[a], pa as u32),
            (ids[b], pb as u32),
            LinkProfile::default(),
        );
    }
    (sim, tc)
}

#[test]
fn ring4_fully_discovered() {
    let topo = ring(4);
    let (mut sim, tc) = build(&topo, cfg());
    sim.run_until(Time::from_secs(5));
    let t = sim.agent_as::<TopologyController>(tc).unwrap();
    assert_eq!(t.switches().len(), 4);
    assert_eq!(t.links().len(), 4, "ring-4 has 4 links");
    // Every switch join preceded the link ups involving it.
    let joins = t
        .events
        .iter()
        .filter(|e| matches!(e, DiscoveryEvent::SwitchJoin { .. }))
        .count();
    assert_eq!(joins, 4);
}

#[test]
fn subnets_are_unique_per_link() {
    let topo = ring(6);
    let (mut sim, tc) = build(&topo, cfg());
    sim.run_until(Time::from_secs(5));
    let t = sim.agent_as::<TopologyController>(tc).unwrap();
    let mut subnets: Vec<String> = t
        .events
        .iter()
        .filter_map(|e| match e {
            DiscoveryEvent::LinkUp { subnet, .. } => Some(subnet.to_string()),
            _ => None,
        })
        .collect();
    assert_eq!(subnets.len(), 6);
    subnets.sort();
    subnets.dedup();
    assert_eq!(subnets.len(), 6, "each link needs a unique subnet");
}

#[test]
fn discovery_time_scales_with_probe_interval() {
    // With a fast probe interval, a ring should be fully discovered
    // shortly after the switches connect.
    let topo = ring(8);
    let mut fast = cfg();
    fast.probe_interval = Duration::from_millis(200);
    fast.link_ttl = Duration::from_millis(600);
    let (mut sim, tc) = build(&topo, fast);
    sim.run_until(Time::from_secs(2));
    let t = sim.agent_as::<TopologyController>(tc).unwrap();
    assert_eq!(t.links().len(), 8);
}

#[test]
fn dead_switch_is_removed_with_its_links() {
    let topo = ring(4);
    let (mut sim, tc) = build(&topo, cfg());
    sim.run_until(Time::from_secs(3));
    // Kill switch agent 1 (dpid 1, the first switch added after tc).
    let victim = rf_sim::AgentId(1);
    assert!(sim.agent_as::<OpenFlowSwitch>(victim).is_some());
    // Find the controller's view before the kill.
    assert_eq!(
        sim.agent_as::<TopologyController>(tc)
            .unwrap()
            .links()
            .len(),
        4
    );
    // Kill via a spawned one-shot agent.
    #[derive(Clone)]
    struct Killer(rf_sim::AgentId);
    impl rf_sim::Agent for Killer {
        fn on_start(&mut self, ctx: &mut rf_sim::Ctx<'_>) {
            ctx.kill(self.0);
        }
    }
    sim.add_agent("killer", Box::new(Killer(victim)));
    sim.run_until(Time::from_secs(10));
    let t = sim.agent_as::<TopologyController>(tc).unwrap();
    assert_eq!(t.switches().len(), 3, "victim gone from switch list");
    assert_eq!(t.links().len(), 2, "its two ring links are down");
    assert!(t
        .events
        .iter()
        .any(|e| matches!(e, DiscoveryEvent::SwitchLeave { dpid: 1 })));
    // Its subnets were recycled into the allocator (2 links down).
    let downs = t
        .events
        .iter()
        .filter(|e| matches!(e, DiscoveryEvent::LinkDown { .. }))
        .count();
    assert_eq!(downs, 2);
}

#[test]
fn pan_european_topology_discovered() {
    let topo = rf_topo::pan_european();
    let (mut sim, tc) = build(&topo, cfg());
    sim.run_until(Time::from_secs(10));
    let t = sim.agent_as::<TopologyController>(tc).unwrap();
    assert_eq!(t.switches().len(), 28);
    assert_eq!(t.links().len(), 41);
}
