//! # rf-flowvisor — an OpenFlow 1.0 network slicer
//!
//! In the paper's framework, "FlowVisor acts as a proxy server between
//! a switch and controllers (the topology controller and the
//! RF-controller)". Both controllers must share the same data plane:
//! the topology controller owns the LLDP flowspace (it injects and
//! harvests discovery probes), while the RF-controller owns everything
//! else (IPv4, ARP — the traffic RouteFlow routes).
//!
//! [`FlowVisor`] implements the proxy:
//!
//! * **Switch side** — accepts switch connections, performs its own
//!   OF 1.0 handshake, caches `FEATURES_REPLY`;
//! * **Controller side** — dials every slice controller once per
//!   datapath (exactly like the real FlowVisor, so each controller
//!   sees one OpenFlow connection per switch) and answers their
//!   `FEATURES_REQUEST`s from the cache;
//! * **Transaction-id virtualization** — controller-chosen xids are
//!   rewritten to globally unique ones on the way down and restored on
//!   the way up, so replies reach the requesting slice;
//! * **Flowspace enforcement** — `PACKET_IN`s are routed to the slice
//!   whose flowspace matches the packet; `FLOW_MOD`s outside a slice's
//!   flowspace are rewritten to the intersection when possible and
//!   rejected with an `EPERM` error otherwise; `PACKET_OUT` payloads
//!   are policy-checked the same way;
//! * `PORT_STATUS` fans out to all slices; `FLOW_REMOVED` is routed by
//!   installer slice (tracked by cookie).
//!
//! Simplifications vs. the real FlowVisor (DESIGN.md): no rate
//! limiting, no virtual port remapping, no slice admin API — the demo
//! framework uses none of these.

pub mod proxy;
pub mod slice;

pub use proxy::{FlowVisor, FlowVisorConfig};
pub use slice::SlicePolicy;
