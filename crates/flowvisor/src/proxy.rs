//! The FlowVisor proxy agent.

use crate::slice::{FlowSpaceDecision, SlicePolicy};
use bytes::Bytes;
use rf_openflow::{
    reframe_with_xid, ErrorType, MessageReader, OfMessage, PacketKey, OFP_NO_BUFFER,
};
use rf_sim::{Agent, ConnId, ConnProfile, Ctx, StreamEvent};
use std::collections::HashMap;
use std::time::Duration;

/// Marker for FlowVisor-originated requests in the xid map.
const FV_SELF: usize = usize::MAX;
/// Timer token base for upstream redials: `BASE + sw * 64 + slice`.
const T_REDIAL_BASE: u64 = 1 << 32;

/// FlowVisor configuration.
#[derive(Clone, Debug)]
pub struct FlowVisorConfig {
    /// Service switches dial (conventionally 6633).
    pub listen_service: u16,
    /// The slices, in priority order for PACKET_IN classification.
    pub slices: Vec<SlicePolicy>,
    /// Stream profile toward slice controllers.
    pub conn: ConnProfile,
    /// Backoff before redialing a dead controller.
    pub redial_backoff: Duration,
}

impl FlowVisorConfig {
    pub fn new(slices: Vec<SlicePolicy>) -> FlowVisorConfig {
        FlowVisorConfig {
            listen_service: 6633,
            slices,
            conn: ConnProfile::default(),
            redial_backoff: Duration::from_secs(1),
        }
    }
}

#[derive(Clone)]
struct Upstream {
    conn: Option<ConnId>,
    ready: bool,
    reader: MessageReader,
    /// FEATURES_REQUEST xids awaiting the switch's cached features.
    pending_features: Vec<u32>,
}

#[derive(Clone)]
struct SwitchSession {
    conn: ConnId,
    reader: MessageReader,
    features: Option<rf_openflow::SwitchFeatures>,
    upstreams: Vec<Upstream>,
    alive: bool,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Role {
    Switch(usize),
    Upstream { sw: usize, slice: usize },
}

/// The FlowVisor agent: one per deployment, proxying any number of
/// switches to a fixed set of slice controllers.
#[derive(Clone)]
pub struct FlowVisor {
    cfg: FlowVisorConfig,
    switches: Vec<SwitchSession>,
    roles: HashMap<ConnId, Role>,
    next_xid: u32,
    /// rewritten xid → (switch, slice, original xid).
    xid_map: HashMap<u32, (usize, usize, u32)>,
    /// (switch, cookie) → slice, for FLOW_REMOVED routing.
    cookie_owner: HashMap<(usize, u64), usize>,
    /// FLOW_MODs rejected by flowspace policy.
    pub denied_flow_mods: u64,
    /// FLOW_MODs narrowed to the slice's flowspace.
    pub rewritten_flow_mods: u64,
    /// Reused per-event decode buffer (capacity persists across events).
    scratch: Vec<(OfMessage, u32, bytes::Bytes)>,
}

impl FlowVisor {
    pub fn new(cfg: FlowVisorConfig) -> FlowVisor {
        FlowVisor {
            cfg,
            switches: Vec::new(),
            roles: HashMap::new(),
            next_xid: 1,
            xid_map: HashMap::new(),
            cookie_owner: HashMap::new(),
            denied_flow_mods: 0,
            rewritten_flow_mods: 0,
            scratch: Vec::new(),
        }
    }

    /// Number of connected switch sessions (diagnostics).
    pub fn switch_count(&self) -> usize {
        self.switches.iter().filter(|s| s.alive).count()
    }

    fn alloc_xid(&mut self, sw: usize, slice: usize, orig: u32) -> u32 {
        loop {
            let x = self.next_xid;
            self.next_xid = self.next_xid.wrapping_add(1).max(1);
            if let std::collections::hash_map::Entry::Vacant(e) = self.xid_map.entry(x) {
                e.insert((sw, slice, orig));
                return x;
            }
        }
    }

    fn dial_upstreams(&mut self, ctx: &mut Ctx<'_>, sw: usize) {
        for slice_idx in 0..self.cfg.slices.len() {
            if self.switches[sw].upstreams[slice_idx].conn.is_some() {
                continue;
            }
            let policy = self.cfg.slices[slice_idx].clone();
            let conn = ctx.connect(policy.controller, policy.service, self.cfg.conn);
            self.roles.insert(
                conn,
                Role::Upstream {
                    sw,
                    slice: slice_idx,
                },
            );
            let up = &mut self.switches[sw].upstreams[slice_idx];
            up.conn = Some(conn);
            up.ready = false;
            up.reader = MessageReader::new();
        }
    }

    fn send_to_switch(&self, ctx: &mut Ctx<'_>, sw: usize, msg: &OfMessage, xid: u32) {
        let s = &self.switches[sw];
        if s.alive {
            ctx.conn_send(s.conn, msg.encode(xid));
        }
    }

    fn send_to_slice(&self, ctx: &mut Ctx<'_>, sw: usize, slice: usize, msg: &OfMessage, xid: u32) {
        if let Some(conn) = self.switches[sw].upstreams[slice].conn {
            if self.switches[sw].upstreams[slice].ready {
                ctx.conn_send(conn, msg.encode(xid));
            }
        }
    }

    /// Forward an already-encoded message to the switch unchanged
    /// except for its xid. The encoder is canonical, so this is
    /// byte-identical to re-encoding the decoded message — without the
    /// re-encode.
    fn forward_raw_to_switch(&self, ctx: &mut Ctx<'_>, sw: usize, raw: &Bytes, xid: u32) {
        let s = &self.switches[sw];
        if s.alive {
            ctx.conn_send(s.conn, reframe_with_xid(raw, xid));
        }
    }

    /// Forward an already-encoded message to a slice controller,
    /// verbatim (the xid is unchanged on the switch→controller path).
    fn forward_raw_to_slice(&self, ctx: &mut Ctx<'_>, sw: usize, slice: usize, raw: Bytes) {
        if let Some(conn) = self.switches[sw].upstreams[slice].conn {
            if self.switches[sw].upstreams[slice].ready {
                ctx.conn_send(conn, raw);
            }
        }
    }

    fn handle_switch_msg(
        &mut self,
        ctx: &mut Ctx<'_>,
        sw: usize,
        msg: OfMessage,
        xid: u32,
        raw: Bytes,
    ) {
        match msg {
            OfMessage::Hello => {}
            OfMessage::EchoRequest(data) => {
                self.send_to_switch(ctx, sw, &OfMessage::EchoReply(data), xid);
            }
            OfMessage::EchoReply(_) => {}
            OfMessage::FeaturesReply(f) => {
                if let Some(&(s, slice, orig)) = self.xid_map.get(&xid) {
                    self.xid_map.remove(&xid);
                    if slice == FV_SELF {
                        // Our own handshake: cache and bring up slices.
                        ctx.trace_debug(
                            "fv.features",
                            format!("cached features of dpid {:#x}", f.datapath_id),
                        );
                        self.switches[s].features = Some(f);
                        self.dial_upstreams(ctx, s);
                        self.flush_pending_features(ctx, s);
                    } else {
                        self.send_to_slice(ctx, s, slice, &OfMessage::FeaturesReply(f), orig);
                    }
                }
            }
            OfMessage::PacketIn {
                buffer_id,
                total_len,
                in_port,
                reason,
                ref data,
            } => {
                ctx.count("fv.packet_in", 1);
                let Some(key) = PacketKey::from_frame_bytes(in_port, data) else {
                    return;
                };
                let _ = (buffer_id, total_len, reason);
                for slice_idx in 0..self.cfg.slices.len() {
                    if self.cfg.slices[slice_idx].owns_packet(&key) {
                        // Same bytes, same xid: hand the wire frame on.
                        self.forward_raw_to_slice(ctx, sw, slice_idx, raw);
                        // Exactly one slice owns a packet in this
                        // framework (flowspaces are disjoint).
                        break;
                    }
                }
            }
            OfMessage::PortStatus { reason, desc } => {
                let _ = (reason, desc, xid);
                for slice_idx in 0..self.cfg.slices.len() {
                    self.forward_raw_to_slice(ctx, sw, slice_idx, raw.clone());
                }
            }
            OfMessage::FlowRemoved { cookie, .. } => {
                if let Some(&slice) = self.cookie_owner.get(&(sw, cookie)) {
                    self.forward_raw_to_slice(ctx, sw, slice, raw);
                } else {
                    for slice_idx in 0..self.cfg.slices.len() {
                        self.forward_raw_to_slice(ctx, sw, slice_idx, raw.clone());
                    }
                }
            }
            // Request replies: route by rewritten xid.
            OfMessage::BarrierReply
            | OfMessage::GetConfigReply { .. }
            | OfMessage::StatsReply { .. }
            | OfMessage::Error { .. } => {
                if let Some(&(s, slice, orig)) = self.xid_map.get(&xid) {
                    self.xid_map.remove(&xid);
                    if slice != FV_SELF {
                        let _ = msg;
                        self.forward_raw_to_slice(ctx, s, slice, reframe_with_xid(&raw, orig));
                    }
                }
            }
            _ => {
                ctx.count("fv.unexpected_from_switch", 1);
            }
        }
    }

    fn flush_pending_features(&mut self, ctx: &mut Ctx<'_>, sw: usize) {
        let Some(features) = self.switches[sw].features.clone() else {
            return;
        };
        for slice_idx in 0..self.cfg.slices.len() {
            let pend = std::mem::take(&mut self.switches[sw].upstreams[slice_idx].pending_features);
            for xid in pend {
                self.send_to_slice(
                    ctx,
                    sw,
                    slice_idx,
                    &OfMessage::FeaturesReply(features.clone()),
                    xid,
                );
            }
        }
    }

    fn handle_controller_msg(
        &mut self,
        ctx: &mut Ctx<'_>,
        sw: usize,
        slice: usize,
        msg: OfMessage,
        xid: u32,
        raw: Bytes,
    ) {
        let up_conn = self.switches[sw].upstreams[slice].conn;
        match msg {
            OfMessage::Hello => {
                self.switches[sw].upstreams[slice].ready = true;
            }
            OfMessage::EchoRequest(data) => {
                if let Some(c) = up_conn {
                    ctx.conn_send(c, OfMessage::EchoReply(data).encode(xid));
                }
            }
            OfMessage::EchoReply(_) => {}
            OfMessage::FeaturesRequest => {
                if let Some(f) = self.switches[sw].features.clone() {
                    self.send_to_slice(ctx, sw, slice, &OfMessage::FeaturesReply(f), xid);
                } else {
                    self.switches[sw].upstreams[slice]
                        .pending_features
                        .push(xid);
                }
            }
            OfMessage::FlowMod {
                of_match,
                cookie,
                command,
                idle_timeout,
                hard_timeout,
                priority,
                buffer_id,
                out_port,
                flags,
                actions,
            } => {
                let decision = self.cfg.slices[slice].check_flow_mod(&of_match);
                let effective_match = match decision {
                    FlowSpaceDecision::Allow => of_match,
                    FlowSpaceDecision::Rewrite(m) => {
                        self.rewritten_flow_mods += 1;
                        m
                    }
                    FlowSpaceDecision::Deny => {
                        self.denied_flow_mods += 1;
                        ctx.count("fv.flow_mod_denied", 1);
                        if let Some(c) = up_conn {
                            let err = OfMessage::Error {
                                err_type: ErrorType::FlowModFailed,
                                code: 2, // OFPFMFC_EPERM
                                data: Bytes::new(),
                            };
                            ctx.conn_send(c, err.encode(xid));
                        }
                        return;
                    }
                };
                self.cookie_owner.insert((sw, cookie), slice);
                let new_xid = self.alloc_xid(sw, slice, xid);
                if matches!(decision, FlowSpaceDecision::Allow) {
                    // Untouched flowspace: only the xid changes.
                    self.forward_raw_to_switch(ctx, sw, &raw, new_xid);
                } else {
                    let fm = OfMessage::FlowMod {
                        of_match: effective_match,
                        cookie,
                        command,
                        idle_timeout,
                        hard_timeout,
                        priority,
                        buffer_id,
                        out_port,
                        flags,
                        actions,
                    };
                    self.send_to_switch(ctx, sw, &fm, new_xid);
                }
            }
            OfMessage::PacketOut {
                buffer_id,
                in_port,
                actions,
                data,
            } => {
                // Policy-check the payload when we can see it.
                if buffer_id == OFP_NO_BUFFER && !data.is_empty() {
                    if let Some(key) = PacketKey::from_frame_bytes(in_port, &data) {
                        if !self.cfg.slices[slice].owns_packet(&key) {
                            ctx.count("fv.packet_out_denied", 1);
                            if let Some(c) = up_conn {
                                let err = OfMessage::Error {
                                    err_type: ErrorType::BadRequest,
                                    code: 4, // OFPBRC_EPERM
                                    data: Bytes::new(),
                                };
                                ctx.conn_send(c, err.encode(xid));
                            }
                            return;
                        }
                    }
                }
                let _ = (actions, data);
                let new_xid = self.alloc_xid(sw, slice, xid);
                self.forward_raw_to_switch(ctx, sw, &raw, new_xid);
            }
            // Forwarded requests that expect a reply: remap the xid.
            OfMessage::BarrierRequest
            | OfMessage::GetConfigRequest
            | OfMessage::StatsRequest { .. } => {
                let new_xid = self.alloc_xid(sw, slice, xid);
                self.forward_raw_to_switch(ctx, sw, &raw, new_xid);
            }
            // SET_CONFIG is fire-and-forget; last writer wins (doc'd).
            OfMessage::SetConfig { .. } => {
                let new_xid = self.alloc_xid(sw, slice, xid);
                self.forward_raw_to_switch(ctx, sw, &raw, new_xid);
            }
            _ => {
                ctx.count("fv.unexpected_from_controller", 1);
            }
        }
    }
}

impl Agent for FlowVisor {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.listen(self.cfg.listen_service);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token >= T_REDIAL_BASE {
            let v = token - T_REDIAL_BASE;
            let sw = (v / 64) as usize;
            let slice = (v % 64) as usize;
            if sw < self.switches.len()
                && self.switches[sw].alive
                && self.switches[sw].upstreams[slice].conn.is_none()
            {
                let policy = self.cfg.slices[slice].clone();
                let conn = ctx.connect(policy.controller, policy.service, self.cfg.conn);
                self.roles.insert(conn, Role::Upstream { sw, slice });
                let up = &mut self.switches[sw].upstreams[slice];
                up.conn = Some(conn);
                up.reader = MessageReader::new();
            }
        }
    }

    fn on_stream(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, event: StreamEvent) {
        match event {
            StreamEvent::Opened {
                initiated_by_us, ..
            } => {
                if !initiated_by_us {
                    // A switch dialed us: new session.
                    let sw = self.switches.len();
                    self.switches.push(SwitchSession {
                        conn,
                        reader: MessageReader::new(),
                        features: None,
                        upstreams: (0..self.cfg.slices.len())
                            .map(|_| Upstream {
                                conn: None,
                                ready: false,
                                reader: MessageReader::new(),
                                pending_features: Vec::new(),
                            })
                            .collect(),
                        alive: true,
                    });
                    self.roles.insert(conn, Role::Switch(sw));
                    ctx.conn_send(conn, OfMessage::Hello.encode(0));
                    let xid = self.alloc_xid(sw, FV_SELF, 0);
                    ctx.conn_send(conn, OfMessage::FeaturesRequest.encode(xid));
                } else if let Some(Role::Upstream { sw, slice }) = self.roles.get(&conn).copied() {
                    // We reached a slice controller: open with HELLO.
                    ctx.conn_send(conn, OfMessage::Hello.encode(0));
                    // Some controllers never send HELLO first; mark the
                    // path usable once our HELLO is out.
                    self.switches[sw].upstreams[slice].ready = true;
                }
            }
            StreamEvent::Data(data) => {
                let Some(role) = self.roles.get(&conn).copied() else {
                    return;
                };
                let mut msgs = std::mem::take(&mut self.scratch);
                msgs.clear();
                match role {
                    Role::Switch(sw) => {
                        {
                            let reader = &mut self.switches[sw].reader;
                            reader.push_bytes(data);
                            while let Some(r) = reader.next_raw() {
                                if let Ok(m) = r {
                                    msgs.push(m);
                                }
                            }
                        }
                        for (msg, xid, raw) in msgs.drain(..) {
                            self.handle_switch_msg(ctx, sw, msg, xid, raw);
                        }
                    }
                    Role::Upstream { sw, slice } => {
                        {
                            let reader = &mut self.switches[sw].upstreams[slice].reader;
                            reader.push_bytes(data);
                            while let Some(r) = reader.next_raw() {
                                if let Ok(m) = r {
                                    msgs.push(m);
                                }
                            }
                        }
                        for (msg, xid, raw) in msgs.drain(..) {
                            self.handle_controller_msg(ctx, sw, slice, msg, xid, raw);
                        }
                    }
                }
                self.scratch = msgs;
            }
            StreamEvent::Closed => {
                let Some(role) = self.roles.remove(&conn) else {
                    return;
                };
                match role {
                    Role::Switch(sw) => {
                        self.switches[sw].alive = false;
                        // Tear down that session's controller legs.
                        for slice in 0..self.cfg.slices.len() {
                            if let Some(c) = self.switches[sw].upstreams[slice].conn.take() {
                                self.roles.remove(&c);
                                ctx.conn_close(c);
                            }
                        }
                    }
                    Role::Upstream { sw, slice } => {
                        self.switches[sw].upstreams[slice].conn = None;
                        self.switches[sw].upstreams[slice].ready = false;
                        if self.switches[sw].alive {
                            ctx.schedule(
                                self.cfg.redial_backoff,
                                T_REDIAL_BASE + (sw as u64) * 64 + slice as u64,
                            );
                        }
                    }
                }
            }
        }
    }
}
