//! Slice policies: who owns which flowspace.

use rf_openflow::{OfMatch, PacketKey};
use rf_sim::AgentId;

/// One slice: a controller plus the flowspace it controls.
#[derive(Clone, Debug)]
pub struct SlicePolicy {
    /// Human-readable name ("topology", "routeflow").
    pub name: String,
    /// The controller agent to dial.
    pub controller: AgentId,
    /// Service the controller listens on.
    pub service: u16,
    /// The flowspace: a packet belongs to this slice when it matches
    /// any of these. A FLOW_MOD is permitted when its match falls
    /// within (or can be narrowed to) one of these.
    pub flowspace: Vec<OfMatch>,
}

impl SlicePolicy {
    /// Slice owning exactly the LLDP ethertype (the topology
    /// controller's slice in the paper's framework).
    pub fn lldp_slice(name: &str, controller: AgentId, service: u16) -> SlicePolicy {
        SlicePolicy {
            name: name.into(),
            controller,
            service,
            flowspace: vec![OfMatch::lldp()],
        }
    }

    /// Slice owning IPv4 + ARP (the RF-controller's slice).
    pub fn ip_slice(name: &str, controller: AgentId, service: u16) -> SlicePolicy {
        SlicePolicy {
            name: name.into(),
            controller,
            service,
            flowspace: vec![
                OfMatch::ipv4_dst_prefix(std::net::Ipv4Addr::UNSPECIFIED, 0),
                OfMatch::arp(),
            ],
        }
    }

    /// Slice owning everything (used by the FlowVisor-bypass ablation).
    pub fn full_slice(name: &str, controller: AgentId, service: u16) -> SlicePolicy {
        SlicePolicy {
            name: name.into(),
            controller,
            service,
            flowspace: vec![OfMatch::any()],
        }
    }

    /// Does a packet belong to this slice?
    pub fn owns_packet(&self, key: &PacketKey) -> bool {
        self.flowspace.iter().any(|m| m.matches(key))
    }

    /// Check a FLOW_MOD match against the flowspace.
    ///
    /// Returns `Allow` when the match is already inside the flowspace,
    /// `Rewrite(m)` when a flowspace entry is strictly narrower and the
    /// flow mod can be restricted to it, and `Deny` otherwise.
    pub fn check_flow_mod(&self, m: &OfMatch) -> FlowSpaceDecision {
        for fs in &self.flowspace {
            if m.is_subset_of(fs) {
                return FlowSpaceDecision::Allow;
            }
        }
        for fs in &self.flowspace {
            if fs.is_subset_of(m) {
                return FlowSpaceDecision::Rewrite(*fs);
            }
        }
        FlowSpaceDecision::Deny
    }
}

/// Outcome of flowspace-checking a FLOW_MOD.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FlowSpaceDecision {
    Allow,
    Rewrite(OfMatch),
    Deny,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rf_wire::MacAddr;
    use std::net::Ipv4Addr;

    fn key(dl_type: u16) -> PacketKey {
        PacketKey {
            in_port: 1,
            dl_src: MacAddr::ZERO,
            dl_dst: MacAddr::ZERO,
            dl_type,
            nw_tos: 0,
            nw_proto: 0,
            nw_src: Ipv4Addr::UNSPECIFIED,
            nw_dst: Ipv4Addr::UNSPECIFIED,
            tp_src: 0,
            tp_dst: 0,
        }
    }

    #[test]
    fn lldp_slice_owns_only_lldp() {
        let s = SlicePolicy::lldp_slice("topo", AgentId(0), 6633);
        assert!(s.owns_packet(&key(0x88CC)));
        assert!(!s.owns_packet(&key(0x0800)));
        assert!(!s.owns_packet(&key(0x0806)));
    }

    #[test]
    fn ip_slice_owns_ip_and_arp() {
        let s = SlicePolicy::ip_slice("rf", AgentId(0), 6633);
        assert!(s.owns_packet(&key(0x0800)));
        assert!(s.owns_packet(&key(0x0806)));
        assert!(!s.owns_packet(&key(0x88CC)));
    }

    #[test]
    fn flow_mod_inside_flowspace_allowed() {
        let s = SlicePolicy::ip_slice("rf", AgentId(0), 6633);
        let m = OfMatch::ipv4_dst_prefix(Ipv4Addr::new(10, 1, 0, 0), 16);
        assert_eq!(s.check_flow_mod(&m), FlowSpaceDecision::Allow);
    }

    #[test]
    fn too_wide_flow_mod_gets_rewritten() {
        let s = SlicePolicy::lldp_slice("topo", AgentId(0), 6633);
        // The topology controller asks for match-any: narrowed to LLDP.
        match s.check_flow_mod(&OfMatch::any()) {
            FlowSpaceDecision::Rewrite(m) => assert_eq!(m, OfMatch::lldp()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn disjoint_flow_mod_denied() {
        let s = SlicePolicy::lldp_slice("topo", AgentId(0), 6633);
        let m = OfMatch::ipv4_dst_prefix(Ipv4Addr::new(10, 0, 0, 0), 8);
        assert_eq!(s.check_flow_mod(&m), FlowSpaceDecision::Deny);
    }
}
