//! End-to-end slicing tests: a real switch behind FlowVisor with two
//! scripted slice controllers (the Fig. 2 layout).

use bytes::Bytes;
use rf_flowvisor::{FlowVisor, FlowVisorConfig, SlicePolicy};
use rf_openflow::{
    Action, FlowModCommand, MessageReader, OfMatch, OfMessage, StatsBody, OFPP_NONE, OFP_NO_BUFFER,
};
use rf_sim::{Agent, AgentId, ConnId, Ctx, LinkProfile, Sim, SimConfig, StreamEvent, Time};
use rf_switch::{OpenFlowSwitch, SwitchConfig};
use rf_wire::{EtherType, EthernetFrame, IpProtocol, Ipv4Packet, LldpPacket, MacAddr, UdpPacket};
use std::net::Ipv4Addr;
use std::time::Duration;

/// A slice controller that performs the handshake and records traffic.
#[derive(Default, Clone)]
struct SliceController {
    service: u16,
    conns: Vec<(ConnId, MessageReader)>,
    pub received: Vec<OfMessage>,
    pub received_xids: Vec<u32>,
    /// (delay, message, xid) scripted sends on the first connection.
    script: Vec<(Duration, OfMessage, u32)>,
    pub features_dpids: Vec<u64>,
}

impl SliceController {
    fn new(service: u16) -> SliceController {
        SliceController {
            service,
            ..Default::default()
        }
    }
}

impl Agent for SliceController {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.listen(self.service);
        for (i, (d, _, _)) in self.script.iter().enumerate() {
            ctx.schedule(*d, i as u64);
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if let Some((_, msg, xid)) = self.script.get(token as usize).cloned() {
            if let Some((c, _)) = self.conns.first() {
                let c = *c;
                ctx.conn_send(c, msg.encode(xid));
            }
        }
    }
    fn on_stream(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, ev: StreamEvent) {
        match ev {
            StreamEvent::Opened { .. } => {
                ctx.conn_send(conn, OfMessage::Hello.encode(0));
                ctx.conn_send(conn, OfMessage::FeaturesRequest.encode(0xF00));
                self.conns.push((conn, MessageReader::new()));
            }
            StreamEvent::Data(data) => {
                if let Some((_, r)) = self.conns.iter_mut().find(|(c, _)| *c == conn) {
                    r.push(&data);
                    while let Some(Ok((m, xid))) = r.next() {
                        if let OfMessage::FeaturesReply(f) = &m {
                            self.features_dpids.push(f.datapath_id);
                        }
                        self.received_xids.push(xid);
                        self.received.push(m);
                    }
                }
            }
            StreamEvent::Closed => {}
        }
    }
}

/// Injects a frame into the switch's data port at a given time.
#[derive(Clone)]
struct Injector {
    frame: Bytes,
    at: Duration,
}
impl Agent for Injector {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.schedule(self.at, 0);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: u64) {
        ctx.send_frame(1, self.frame.clone());
    }
}

fn lldp_frame() -> Bytes {
    EthernetFrame::new(
        MacAddr::LLDP_MULTICAST,
        MacAddr([2, 0, 0, 0, 0, 1]),
        EtherType::LLDP,
        LldpPacket::discovery_probe(5, 2).emit(),
    )
    .emit()
}

fn ipv4_frame() -> Bytes {
    let src = Ipv4Addr::new(10, 0, 0, 1);
    let dst = Ipv4Addr::new(10, 0, 0, 2);
    let udp = UdpPacket::new(1, 2, Bytes::from_static(b"x"));
    EthernetFrame::new(
        MacAddr([2; 6]),
        MacAddr([4; 6]),
        EtherType::IPV4,
        Ipv4Packet::new(src, dst, IpProtocol::UDP, udp.emit(src, dst)).emit(),
    )
    .emit()
}

struct World {
    sim: Sim,
    topo_ctrl: AgentId,
    rf_ctrl: AgentId,
    fv: AgentId,
    sw: AgentId,
}

fn world(topo: SliceController, rf: SliceController) -> World {
    let mut sim = Sim::new(SimConfig::default());
    let topo_ctrl = sim.add_agent("topo-ctrl", Box::new(topo));
    let rf_ctrl = sim.add_agent("rf-ctrl", Box::new(rf));
    let fv = sim.add_agent(
        "flowvisor",
        Box::new(FlowVisor::new(FlowVisorConfig::new(vec![
            SlicePolicy::lldp_slice("topology", topo_ctrl, 6641),
            SlicePolicy::ip_slice("routeflow", rf_ctrl, 6642),
        ]))),
    );
    let sw = sim.add_agent(
        "sw5",
        Box::new(OpenFlowSwitch::new(SwitchConfig::new(5, 2, fv))),
    );
    let injector = sim.add_agent(
        "injector",
        Box::new(Injector {
            frame: Bytes::new(),
            at: Duration::from_secs(3600), // overridden per test
        }),
    );
    sim.add_link((sw, 1), (injector, 1), LinkProfile::default());
    World {
        sim,
        topo_ctrl,
        rf_ctrl,
        fv,
        sw,
    }
}

#[test]
fn both_slices_complete_handshake_with_cached_features() {
    let mut w = world(SliceController::new(6641), SliceController::new(6642));
    w.sim.run_until(Time::from_secs(2));
    for ctrl in [w.topo_ctrl, w.rf_ctrl] {
        let c = w.sim.agent_as::<SliceController>(ctrl).unwrap();
        assert_eq!(c.features_dpids, vec![5], "controller must see dpid 5");
    }
    let fv = w.sim.agent_as::<FlowVisor>(w.fv).unwrap();
    assert_eq!(fv.switch_count(), 1);
}

#[test]
fn packet_in_routed_by_flowspace() {
    let mut w = world(SliceController::new(6641), SliceController::new(6642));
    // Inject LLDP at t=2 and IPv4 at t=2 (same injector: re-point frame).
    w.sim
        .agent_as_mut::<Injector>(rf_sim::AgentId(4))
        .unwrap()
        .frame = lldp_frame();
    w.sim
        .agent_as_mut::<Injector>(rf_sim::AgentId(4))
        .unwrap()
        .at = Duration::from_secs(2);
    w.sim.run_until(Time::from_secs(3));
    let topo = w.sim.agent_as::<SliceController>(w.topo_ctrl).unwrap();
    assert_eq!(
        topo.received
            .iter()
            .filter(|m| matches!(m, OfMessage::PacketIn { .. }))
            .count(),
        1,
        "LLDP PACKET_IN must reach the topology slice"
    );
    let rf = w.sim.agent_as::<SliceController>(w.rf_ctrl).unwrap();
    assert_eq!(
        rf.received
            .iter()
            .filter(|m| matches!(m, OfMessage::PacketIn { .. }))
            .count(),
        0,
        "LLDP must not leak into the RouteFlow slice"
    );
}

#[test]
fn ipv4_packet_in_goes_to_rf_slice() {
    let mut w = world(SliceController::new(6641), SliceController::new(6642));
    w.sim
        .agent_as_mut::<Injector>(rf_sim::AgentId(4))
        .unwrap()
        .frame = ipv4_frame();
    w.sim
        .agent_as_mut::<Injector>(rf_sim::AgentId(4))
        .unwrap()
        .at = Duration::from_secs(2);
    w.sim.run_until(Time::from_secs(3));
    let rf = w.sim.agent_as::<SliceController>(w.rf_ctrl).unwrap();
    assert_eq!(
        rf.received
            .iter()
            .filter(|m| matches!(m, OfMessage::PacketIn { .. }))
            .count(),
        1
    );
    let topo = w.sim.agent_as::<SliceController>(w.topo_ctrl).unwrap();
    assert!(!topo
        .received
        .iter()
        .any(|m| matches!(m, OfMessage::PacketIn { .. })));
}

#[test]
fn overbroad_flow_mod_is_narrowed_to_flowspace() {
    let mut topo = SliceController::new(6641);
    topo.script = vec![(
        Duration::from_secs(1),
        OfMessage::FlowMod {
            of_match: OfMatch::any(), // asks for everything
            cookie: 7,
            command: FlowModCommand::Add,
            idle_timeout: 0,
            hard_timeout: 0,
            priority: 50,
            buffer_id: OFP_NO_BUFFER,
            out_port: OFPP_NONE,
            flags: 0,
            actions: vec![Action::Output {
                port: rf_openflow::OFPP_CONTROLLER,
                max_len: 0xFFFF,
            }],
        },
        11,
    )];
    let mut w = world(topo, SliceController::new(6642));
    w.sim.run_until(Time::from_secs(2));
    let sw = w.sim.agent_as::<OpenFlowSwitch>(w.sw).unwrap();
    assert_eq!(sw.flow_count(), 1);
    let entry = &sw.flow_table().entries()[0];
    assert_eq!(entry.of_match, OfMatch::lldp(), "match must be narrowed");
    let fv = w.sim.agent_as::<FlowVisor>(w.fv).unwrap();
    assert_eq!(fv.rewritten_flow_mods, 1);
}

#[test]
fn disjoint_flow_mod_rejected_with_eperm() {
    let mut topo = SliceController::new(6641);
    topo.script = vec![(
        Duration::from_secs(1),
        OfMessage::FlowMod {
            of_match: OfMatch::ipv4_dst_prefix(Ipv4Addr::new(10, 0, 0, 0), 8),
            cookie: 0,
            command: FlowModCommand::Add,
            idle_timeout: 0,
            hard_timeout: 0,
            priority: 1,
            buffer_id: OFP_NO_BUFFER,
            out_port: OFPP_NONE,
            flags: 0,
            actions: vec![Action::output(1)],
        },
        77,
    )];
    let mut w = world(topo, SliceController::new(6642));
    w.sim.run_until(Time::from_secs(2));
    let sw = w.sim.agent_as::<OpenFlowSwitch>(w.sw).unwrap();
    assert_eq!(
        sw.flow_count(),
        0,
        "denied FLOW_MOD must not reach the switch"
    );
    let topo = w.sim.agent_as::<SliceController>(w.topo_ctrl).unwrap();
    let got_err = topo.received.iter().zip(&topo.received_xids).any(|(m, x)| {
        matches!(
            m,
            OfMessage::Error {
                err_type: rf_openflow::ErrorType::FlowModFailed,
                code: 2,
                ..
            }
        ) && *x == 77
    });
    assert!(got_err, "controller must get EPERM with its own xid");
}

#[test]
fn barrier_xid_restored_per_slice() {
    let mut rf = SliceController::new(6642);
    rf.script = vec![(Duration::from_secs(1), OfMessage::BarrierRequest, 0xAAAA)];
    let mut topo = SliceController::new(6641);
    topo.script = vec![(Duration::from_secs(1), OfMessage::BarrierRequest, 0xBBBB)];
    let mut w = world(topo, rf);
    w.sim.run_until(Time::from_secs(2));
    let rfc = w.sim.agent_as::<SliceController>(w.rf_ctrl).unwrap();
    assert!(rfc
        .received
        .iter()
        .zip(&rfc.received_xids)
        .any(|(m, x)| matches!(m, OfMessage::BarrierReply) && *x == 0xAAAA));
    let tc = w.sim.agent_as::<SliceController>(w.topo_ctrl).unwrap();
    assert!(tc
        .received
        .iter()
        .zip(&tc.received_xids)
        .any(|(m, x)| matches!(m, OfMessage::BarrierReply) && *x == 0xBBBB));
}

#[test]
fn packet_out_outside_flowspace_denied() {
    let mut topo = SliceController::new(6641);
    topo.script = vec![(
        Duration::from_secs(1),
        OfMessage::PacketOut {
            buffer_id: OFP_NO_BUFFER,
            in_port: OFPP_NONE,
            actions: vec![Action::output(1)],
            data: ipv4_frame(), // topology slice does not own IPv4
        },
        5,
    )];
    let mut w = world(topo, SliceController::new(6642));
    w.sim.run_until(Time::from_secs(2));
    let tc = w.sim.agent_as::<SliceController>(w.topo_ctrl).unwrap();
    assert!(tc.received.iter().any(|m| matches!(
        m,
        OfMessage::Error {
            err_type: rf_openflow::ErrorType::BadRequest,
            code: 4,
            ..
        }
    )));
}

#[test]
fn stats_request_forwarded_and_reply_routed() {
    let mut rf = SliceController::new(6642);
    rf.script = vec![(
        Duration::from_secs(1),
        OfMessage::StatsRequest {
            body: StatsBody::DescRequest,
        },
        0xD5,
    )];
    let mut w = world(SliceController::new(6641), rf);
    w.sim.run_until(Time::from_secs(2));
    let rfc = w.sim.agent_as::<SliceController>(w.rf_ctrl).unwrap();
    let got = rfc.received.iter().zip(&rfc.received_xids).any(|(m, x)| {
        matches!(
            m,
            OfMessage::StatsReply {
                body: StatsBody::DescReply(_)
            }
        ) && *x == 0xD5
    });
    assert!(got);
}
