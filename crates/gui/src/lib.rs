//! # rf-gui — the red/green configuration view
//!
//! The paper demonstrates automatic configuration "by showing switches
//! with red and green colors in a GUI. The color of a switch remains
//! red until it is configured by the RPC server. Otherwise, it changes
//! to green. Note that a switch is considered as configured when it has
//! a corresponding VM." (§3)
//!
//! This crate renders that view in the terminal: an ANSI canvas with
//! the topology laid out by node coordinates (the pan-European map uses
//! real longitude/latitude), switches drawn red (`●` unconfigured) or
//! green (`●` configured), plus an event timeline. A monochrome mode
//! keeps CI logs readable.

use rf_topo::Topology;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Per-switch GUI state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SwitchColor {
    /// Not yet configured by the RPC server.
    Red,
    /// Has a corresponding VM.
    Green,
}

/// The GUI state model, fed by the harness from RF-controller state.
pub struct NetworkView {
    topo: Topology,
    /// dpid = node + 1 by bootstrap convention.
    colors: BTreeMap<u64, SwitchColor>,
    timeline: Vec<(String, String)>, // (time, event)
    pub use_ansi: bool,
}

impl NetworkView {
    pub fn new(topo: Topology) -> NetworkView {
        let colors = (0..topo.node_count())
            .map(|i| ((i + 1) as u64, SwitchColor::Red))
            .collect();
        NetworkView {
            topo,
            colors,
            timeline: Vec::new(),
            use_ansi: true,
        }
    }

    /// Update one switch's state (true = configured/green).
    pub fn set_configured(&mut self, dpid: u64, configured: bool) {
        let color = if configured {
            SwitchColor::Green
        } else {
            SwitchColor::Red
        };
        if let Some(c) = self.colors.get_mut(&dpid) {
            if *c != color {
                *c = color;
            }
        }
    }

    /// Bulk update from `RfController::switch_states()`-shaped input.
    pub fn update(&mut self, states: &[(u64, bool)]) {
        for &(dpid, ok) in states {
            self.set_configured(dpid, ok);
        }
    }

    /// Append a timeline entry.
    pub fn log(&mut self, time: impl Into<String>, event: impl Into<String>) {
        self.timeline.push((time.into(), event.into()));
    }

    pub fn green_count(&self) -> usize {
        self.colors
            .values()
            .filter(|c| **c == SwitchColor::Green)
            .count()
    }

    pub fn red_count(&self) -> usize {
        self.colors.len() - self.green_count()
    }

    fn dot(&self, color: SwitchColor) -> &'static str {
        match (self.use_ansi, color) {
            (true, SwitchColor::Green) => "\x1b[32m\u{25CF}\x1b[0m",
            (true, SwitchColor::Red) => "\x1b[31m\u{25CF}\x1b[0m",
            (false, SwitchColor::Green) => "G",
            (false, SwitchColor::Red) => "r",
        }
    }

    /// Render the map onto a `width × height` character canvas with
    /// node names, followed by a legend and the last timeline entries.
    pub fn render(&self, width: usize, height: usize) -> String {
        assert!(width >= 16 && height >= 8, "canvas too small");
        // Scale node positions into the canvas.
        let (mut min_x, mut max_x) = (f64::MAX, f64::MIN);
        let (mut min_y, mut max_y) = (f64::MAX, f64::MIN);
        for (_, info) in self.topo.nodes() {
            min_x = min_x.min(info.pos.0);
            max_x = max_x.max(info.pos.0);
            min_y = min_y.min(info.pos.1);
            max_y = max_y.max(info.pos.1);
        }
        let spread_x = (max_x - min_x).max(1e-9);
        let spread_y = (max_y - min_y).max(1e-9);
        let mut grid: Vec<Vec<Option<usize>>> = vec![vec![None; width]; height];
        let mut coords = Vec::new();
        for (id, info) in self.topo.nodes() {
            let x = ((info.pos.0 - min_x) / spread_x * (width - 12) as f64) as usize + 1;
            // Screen y grows downward; latitude grows upward.
            let y = ((max_y - info.pos.1) / spread_y * (height - 3) as f64) as usize + 1;
            grid[y.min(height - 1)][x.min(width - 1)] = Some(id);
            coords.push((id, x, y));
        }
        let mut out = String::new();
        for row in &grid {
            let mut line = String::new();
            let mut col = 0;
            while col < width {
                match row[col] {
                    Some(id) => {
                        let dpid = (id + 1) as u64;
                        let color = self.colors[&dpid];
                        line.push_str(self.dot(color));
                        // Short label next to the dot.
                        let name = &self.topo.node(id).name;
                        let label: String = name.chars().take(3).collect();
                        line.push_str(&label);
                        col += 1 + label.len();
                    }
                    None => {
                        line.push(' ');
                        col += 1;
                    }
                }
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        let _ = writeln!(
            out,
            "configured: {}/{} (green)",
            self.green_count(),
            self.colors.len()
        );
        for (t, e) in self.timeline.iter().rev().take(5).rev() {
            let _ = writeln!(out, "  [{t}] {e}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rf_topo::{pan_european, ring};

    #[test]
    fn starts_all_red() {
        let v = NetworkView::new(ring(6));
        assert_eq!(v.red_count(), 6);
        assert_eq!(v.green_count(), 0);
    }

    #[test]
    fn transitions_to_green() {
        let mut v = NetworkView::new(ring(4));
        v.update(&[(1, true), (3, true)]);
        assert_eq!(v.green_count(), 2);
        v.set_configured(1, false);
        assert_eq!(v.green_count(), 1);
    }

    #[test]
    fn render_monochrome_shows_counts() {
        let mut v = NetworkView::new(ring(4));
        v.use_ansi = false;
        v.update(&[(1, true)]);
        let s = v.render(40, 12);
        assert!(s.contains("configured: 1/4"));
        assert!(s.contains('G'));
        assert!(s.contains('r'));
    }

    #[test]
    fn render_ansi_uses_colors() {
        let mut v = NetworkView::new(ring(3));
        v.update(&[(1, true)]);
        let s = v.render(40, 10);
        assert!(s.contains("\x1b[32m"), "green escape present");
        assert!(s.contains("\x1b[31m"), "red escape present");
    }

    #[test]
    fn pan_european_fits_canvas() {
        let mut v = NetworkView::new(pan_european());
        v.use_ansi = false;
        for d in 1..=28 {
            v.set_configured(d, d % 2 == 0);
        }
        let s = v.render(100, 30);
        assert_eq!(v.green_count(), 14);
        // Some city labels appear.
        assert!(s.contains("Lon") || s.contains("Par") || s.contains("Ber"));
    }

    #[test]
    fn timeline_shows_last_entries() {
        let mut v = NetworkView::new(ring(3));
        v.use_ansi = false;
        for i in 0..10 {
            v.log(format!("{i}.0s"), format!("event {i}"));
        }
        let s = v.render(30, 8);
        assert!(s.contains("event 9"));
        assert!(!s.contains("event 2"), "only the tail is shown");
    }

    #[test]
    #[should_panic(expected = "canvas too small")]
    fn tiny_canvas_rejected() {
        NetworkView::new(ring(3)).render(4, 2);
    }
}
