//! OpenFlow 1.0 actions (`ofp_action_*`).
//!
//! RouteFlow's route-to-flow translation uses exactly three of these
//! per flow entry — rewrite `dl_src` to the output interface's MAC,
//! rewrite `dl_dst` to the next hop's MAC, and `OUTPUT` — but we
//! implement the full OF 1.0 action list so the switch is a faithful
//! OVS 1.4 substitute.

use crate::ports::PortNumber;
use crate::OfError;
use bytes::{BufMut, BytesMut};
use rf_wire::MacAddr;
use std::net::Ipv4Addr;

/// An OF 1.0 action.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// Forward out a port; `max_len` caps bytes sent when the port is
    /// `OFPP_CONTROLLER`.
    Output {
        port: PortNumber,
        max_len: u16,
    },
    SetVlanVid(u16),
    SetVlanPcp(u8),
    StripVlan,
    SetDlSrc(MacAddr),
    SetDlDst(MacAddr),
    SetNwSrc(Ipv4Addr),
    SetNwDst(Ipv4Addr),
    SetNwTos(u8),
    SetTpSrc(u16),
    SetTpDst(u16),
    /// Queue-based output; our datapath treats it as plain output
    /// (queues are out of scope, see DESIGN.md).
    Enqueue {
        port: PortNumber,
        queue_id: u32,
    },
}

impl Action {
    /// Convenience: output with no controller truncation.
    pub fn output(port: PortNumber) -> Action {
        Action::Output { port, max_len: 0 }
    }

    /// Wire length of this action.
    pub fn wire_len(&self) -> usize {
        match self {
            Action::SetDlSrc(_) | Action::SetDlDst(_) | Action::Enqueue { .. } => 16,
            _ => 8,
        }
    }

    pub fn emit_into(&self, buf: &mut BytesMut) {
        match self {
            Action::Output { port, max_len } => {
                buf.put_u16(0);
                buf.put_u16(8);
                buf.put_u16(*port);
                buf.put_u16(*max_len);
            }
            Action::SetVlanVid(vid) => {
                buf.put_u16(1);
                buf.put_u16(8);
                buf.put_u16(*vid);
                buf.put_u16(0);
            }
            Action::SetVlanPcp(pcp) => {
                buf.put_u16(2);
                buf.put_u16(8);
                buf.put_u8(*pcp);
                buf.put_slice(&[0; 3]);
            }
            Action::StripVlan => {
                buf.put_u16(3);
                buf.put_u16(8);
                buf.put_u32(0);
            }
            Action::SetDlSrc(mac) => {
                buf.put_u16(4);
                buf.put_u16(16);
                buf.put_slice(mac.as_bytes());
                buf.put_slice(&[0; 6]);
            }
            Action::SetDlDst(mac) => {
                buf.put_u16(5);
                buf.put_u16(16);
                buf.put_slice(mac.as_bytes());
                buf.put_slice(&[0; 6]);
            }
            Action::SetNwSrc(ip) => {
                buf.put_u16(6);
                buf.put_u16(8);
                buf.put_slice(&ip.octets());
            }
            Action::SetNwDst(ip) => {
                buf.put_u16(7);
                buf.put_u16(8);
                buf.put_slice(&ip.octets());
            }
            Action::SetNwTos(tos) => {
                buf.put_u16(8);
                buf.put_u16(8);
                buf.put_u8(*tos);
                buf.put_slice(&[0; 3]);
            }
            Action::SetTpSrc(p) => {
                buf.put_u16(9);
                buf.put_u16(8);
                buf.put_u16(*p);
                buf.put_u16(0);
            }
            Action::SetTpDst(p) => {
                buf.put_u16(10);
                buf.put_u16(8);
                buf.put_u16(*p);
                buf.put_u16(0);
            }
            Action::Enqueue { port, queue_id } => {
                buf.put_u16(11);
                buf.put_u16(16);
                buf.put_u16(*port);
                buf.put_slice(&[0; 6]);
                buf.put_u32(*queue_id);
            }
        }
    }

    /// Parse one action; returns the action and bytes consumed.
    pub fn parse(data: &[u8]) -> Result<(Action, usize), OfError> {
        if data.len() < 4 {
            return Err(OfError::Truncated);
        }
        let ty = u16::from_be_bytes([data[0], data[1]]);
        let len = u16::from_be_bytes([data[2], data[3]]) as usize;
        if len < 8 || !len.is_multiple_of(8) {
            return Err(OfError::Malformed("action length"));
        }
        if data.len() < len {
            return Err(OfError::Truncated);
        }
        let body = &data[4..len];
        let need = |n: usize| -> Result<(), OfError> {
            if body.len() < n {
                Err(OfError::Malformed("action body too short"))
            } else {
                Ok(())
            }
        };
        let act = match ty {
            0 => {
                need(4)?;
                Action::Output {
                    port: u16::from_be_bytes([body[0], body[1]]),
                    max_len: u16::from_be_bytes([body[2], body[3]]),
                }
            }
            1 => {
                need(2)?;
                Action::SetVlanVid(u16::from_be_bytes([body[0], body[1]]))
            }
            2 => {
                need(1)?;
                Action::SetVlanPcp(body[0])
            }
            3 => Action::StripVlan,
            4 => {
                need(6)?;
                Action::SetDlSrc(MacAddr::from_bytes(body).map_err(|_| OfError::Truncated)?)
            }
            5 => {
                need(6)?;
                Action::SetDlDst(MacAddr::from_bytes(body).map_err(|_| OfError::Truncated)?)
            }
            6 => {
                need(4)?;
                Action::SetNwSrc(Ipv4Addr::new(body[0], body[1], body[2], body[3]))
            }
            7 => {
                need(4)?;
                Action::SetNwDst(Ipv4Addr::new(body[0], body[1], body[2], body[3]))
            }
            8 => {
                need(1)?;
                Action::SetNwTos(body[0])
            }
            9 => {
                need(2)?;
                Action::SetTpSrc(u16::from_be_bytes([body[0], body[1]]))
            }
            10 => {
                need(2)?;
                Action::SetTpDst(u16::from_be_bytes([body[0], body[1]]))
            }
            11 => {
                need(12)?;
                Action::Enqueue {
                    port: u16::from_be_bytes([body[0], body[1]]),
                    queue_id: u32::from_be_bytes([body[8], body[9], body[10], body[11]]),
                }
            }
            _ => return Err(OfError::Malformed("unknown action type")),
        };
        Ok((act, len))
    }

    /// Parse a contiguous action list of exactly `data.len()` bytes.
    pub fn parse_list(data: &[u8]) -> Result<Vec<Action>, OfError> {
        let mut out = Vec::new();
        let mut off = 0;
        while off < data.len() {
            let (a, used) = Action::parse(&data[off..])?;
            out.push(a);
            off += used;
        }
        Ok(out)
    }

    /// Emit a list of actions.
    pub fn emit_list(actions: &[Action], buf: &mut BytesMut) {
        for a in actions {
            a.emit_into(buf);
        }
    }

    /// Total wire length of a list.
    pub fn list_len(actions: &[Action]) -> usize {
        actions.iter().map(|a| a.wire_len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_actions() -> Vec<Action> {
        vec![
            Action::Output {
                port: 3,
                max_len: 128,
            },
            Action::SetVlanVid(100),
            Action::SetVlanPcp(5),
            Action::StripVlan,
            Action::SetDlSrc(MacAddr([1, 2, 3, 4, 5, 6])),
            Action::SetDlDst(MacAddr([6, 5, 4, 3, 2, 1])),
            Action::SetNwSrc(Ipv4Addr::new(10, 0, 0, 1)),
            Action::SetNwDst(Ipv4Addr::new(10, 0, 0, 2)),
            Action::SetNwTos(0x20),
            Action::SetTpSrc(8080),
            Action::SetTpDst(443),
            Action::Enqueue {
                port: 2,
                queue_id: 9,
            },
        ]
    }

    #[test]
    fn every_action_roundtrips() {
        for a in all_actions() {
            let mut b = BytesMut::new();
            a.emit_into(&mut b);
            assert_eq!(b.len(), a.wire_len(), "{a:?} wire length");
            let (parsed, used) = Action::parse(&b).unwrap();
            assert_eq!(used, b.len());
            assert_eq!(parsed, a);
        }
    }

    #[test]
    fn list_roundtrip() {
        let actions = all_actions();
        let mut b = BytesMut::new();
        Action::emit_list(&actions, &mut b);
        assert_eq!(b.len(), Action::list_len(&actions));
        assert_eq!(Action::parse_list(&b).unwrap(), actions);
    }

    #[test]
    fn bad_length_rejected() {
        // Action claiming 7 bytes (not multiple of 8).
        let data = [0u8, 0, 0, 7, 0, 0, 0];
        assert!(matches!(Action::parse(&data), Err(OfError::Malformed(_))));
        // Truncated.
        assert_eq!(Action::parse(&[0, 0]), Err(OfError::Truncated));
    }

    #[test]
    fn unknown_type_rejected() {
        let data = [0u8, 99, 0, 8, 0, 0, 0, 0];
        assert!(matches!(Action::parse(&data), Err(OfError::Malformed(_))));
    }

    #[test]
    fn routeflow_triple_encodes_to_40_bytes() {
        // The canonical RouteFlow flow entry action list.
        let acts = vec![
            Action::SetDlSrc(MacAddr([2, 0, 0, 0, 0, 1])),
            Action::SetDlDst(MacAddr([2, 0, 0, 0, 0, 2])),
            Action::output(4),
        ];
        assert_eq!(Action::list_len(&acts), 16 + 16 + 8);
    }
}
