//! Stream framing: reassemble OpenFlow messages from a TCP byte stream.
//!
//! The control channel delivers arbitrary byte chunks; `ofp_header.length`
//! delimits messages. [`MessageReader`] buffers partial input and yields
//! complete messages, the same job `ofpbuf` does inside Open vSwitch.

use crate::header::{OfHeader, OFP_HEADER_LEN};
use crate::messages::OfMessage;
use crate::OfError;
use bytes::{Buf, BytesMut};

/// Incremental OpenFlow message reassembler.
#[derive(Default)]
pub struct MessageReader {
    buf: BytesMut,
}

impl MessageReader {
    pub fn new() -> MessageReader {
        MessageReader::default()
    }

    /// Feed raw bytes from the stream.
    pub fn push(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Pop the next complete message, if any. Decoding errors consume
    /// the offending message's bytes (resynchronizing on the length
    /// field) and surface the error.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<Result<(OfMessage, u32), OfError>> {
        if self.buf.len() < OFP_HEADER_LEN {
            return None;
        }
        let header = match OfHeader::parse(&self.buf) {
            Ok(h) => h,
            Err(e) => {
                // Unrecoverable framing: drop the connection's buffer.
                self.buf.clear();
                return Some(Err(e));
            }
        };
        let need = header.length as usize;
        if self.buf.len() < need {
            return None;
        }
        let msg_bytes = self.buf.split_to(need);
        Some(OfMessage::decode(&msg_bytes))
    }

    /// Bytes currently buffered (diagnostics).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Drain all complete messages, stopping at the first error.
    pub fn drain(&mut self) -> Result<Vec<(OfMessage, u32)>, OfError> {
        let mut out = Vec::new();
        while let Some(r) = self.next() {
            out.push(r?);
        }
        Ok(out)
    }
}

/// Consume `n` bytes (test helper for Buf-style use).
#[allow(dead_code)]
fn advance(buf: &mut BytesMut, n: usize) {
    buf.advance(n);
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn single_message() {
        let mut r = MessageReader::new();
        r.push(&OfMessage::Hello.encode(7));
        let (msg, xid) = r.next().unwrap().unwrap();
        assert_eq!(msg, OfMessage::Hello);
        assert_eq!(xid, 7);
        assert!(r.next().is_none());
        assert_eq!(r.buffered(), 0);
    }

    #[test]
    fn coalesced_messages() {
        let mut r = MessageReader::new();
        let mut stream = Vec::new();
        stream.extend_from_slice(&OfMessage::Hello.encode(1));
        stream.extend_from_slice(&OfMessage::FeaturesRequest.encode(2));
        stream.extend_from_slice(&OfMessage::BarrierRequest.encode(3));
        r.push(&stream);
        let msgs = r.drain().unwrap();
        assert_eq!(msgs.len(), 3);
        assert_eq!(msgs[1], (OfMessage::FeaturesRequest, 2));
    }

    #[test]
    fn fragmented_message() {
        let mut r = MessageReader::new();
        let wire = OfMessage::EchoRequest(Bytes::from_static(b"fragmented-payload")).encode(9);
        // Deliver one byte at a time.
        for (i, b) in wire.iter().enumerate() {
            r.push(&[*b]);
            if i + 1 < wire.len() {
                assert!(r.next().is_none(), "yielded early at byte {i}");
            }
        }
        let (msg, xid) = r.next().unwrap().unwrap();
        assert_eq!(xid, 9);
        assert!(matches!(msg, OfMessage::EchoRequest(_)));
    }

    #[test]
    fn error_resynchronizes() {
        let mut r = MessageReader::new();
        // A well-formed header with an unknown reason byte inside
        // PACKET_IN: decode error, but length-delimited, so the next
        // message survives.
        let mut bad = OfMessage::PacketIn {
            buffer_id: 1,
            total_len: 4,
            in_port: 1,
            reason: crate::messages::PacketInReason::NoMatch,
            data: Bytes::from_static(b"abcd"),
        }
        .encode(1)
        .to_vec();
        bad[16] = 99; // reason byte → invalid
        r.push(&bad);
        r.push(&OfMessage::Hello.encode(2));
        assert!(r.next().unwrap().is_err());
        assert_eq!(r.next().unwrap().unwrap(), (OfMessage::Hello, 2));
    }

    #[test]
    fn garbage_clears_buffer() {
        let mut r = MessageReader::new();
        r.push(&[0xFF; 32]); // bad version
        assert!(r.next().unwrap().is_err());
        assert_eq!(r.buffered(), 0);
    }
}
