//! Stream framing: reassemble OpenFlow messages from a TCP byte stream.
//!
//! The control channel delivers arbitrary byte chunks; `ofp_header.length`
//! delimits messages. [`MessageReader`] buffers partial input and yields
//! complete messages, the same job `ofpbuf` does inside Open vSwitch.

use crate::header::{OfHeader, OFP_HEADER_LEN};
use crate::messages::OfMessage;
use crate::OfError;
use bytes::{Bytes, BytesMut};

/// Re-frame `raw` — a complete encoded message — under a different
/// transaction id: one copy, one patched field. Because the encoder is
/// canonical (every message in the simulation was produced by
/// [`OfMessage::encode`]), this equals `decode(raw)` re-encoded with
/// `xid`, which is exactly what a proxy rewriting xids needs.
pub fn reframe_with_xid(raw: &Bytes, xid: u32) -> Bytes {
    debug_assert!(raw.len() >= OFP_HEADER_LEN);
    let mut out = BytesMut::with_capacity(raw.len());
    out.extend_from_slice(raw);
    out[4..8].copy_from_slice(&xid.to_be_bytes());
    out.freeze()
}

/// Incremental OpenFlow message reassembler.
///
/// Two representations, one at a time: the common case — each stream
/// chunk carrying whole messages — keeps the chunk as [`Bytes`] and
/// yields zero-copy slices of it; only a chunk ending mid-message
/// falls back to the accumulation buffer (`buf`), which pays the
/// copies exactly as the old single-buffer reader did. The observable
/// message sequence is identical either way.
#[derive(Clone, Default)]
pub struct MessageReader {
    /// Unconsumed tail of the most recent chunk (fast path). Invariant:
    /// non-empty only while `buf` is empty.
    chunk: Bytes,
    /// Reassembly buffer for fragmented input (slow path).
    buf: BytesMut,
}

impl MessageReader {
    pub fn new() -> MessageReader {
        MessageReader::default()
    }

    /// Feed raw bytes from the stream.
    pub fn push(&mut self, data: &[u8]) {
        self.spill();
        self.buf.extend_from_slice(data);
    }

    /// Feed a whole stream chunk, keeping it zero-copy when the reader
    /// is drained (the overwhelmingly common case: one `conn_send` per
    /// message, delivered as one chunk).
    pub fn push_bytes(&mut self, data: Bytes) {
        if self.buf.is_empty() && self.chunk.is_empty() {
            self.chunk = data;
        } else {
            self.spill();
            self.buf.extend_from_slice(&data);
        }
    }

    /// Move any fast-path remainder into the accumulation buffer.
    fn spill(&mut self) {
        if !self.chunk.is_empty() {
            self.buf.extend_from_slice(&self.chunk);
            self.chunk = Bytes::new();
        }
    }

    /// Pop the next complete message, if any. Decoding errors consume
    /// the offending message's bytes (resynchronizing on the length
    /// field) and surface the error.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<Result<(OfMessage, u32), OfError>> {
        self.next_raw().map(|r| r.map(|(msg, xid, _)| (msg, xid)))
    }

    /// Like [`MessageReader::next`], but also returns the message's
    /// exact wire bytes. A proxy that forwards a message unmodified
    /// (or with only a patched xid) can reuse them instead of paying a
    /// re-encode; our encoder is canonical, so `raw` always equals
    /// `msg.encode(xid)`.
    pub fn next_raw(&mut self) -> Option<Result<(OfMessage, u32, Bytes), OfError>> {
        let raw = match self.take_frame() {
            Ok(Some(raw)) => raw,
            Ok(None) => return None,
            Err(e) => return Some(Err(e)),
        };
        Some(OfMessage::decode_bytes(&raw).map(|(msg, xid)| (msg, xid, raw)))
    }

    /// Split the next length-delimited frame off the stream.
    fn take_frame(&mut self) -> Result<Option<Bytes>, OfError> {
        let avail = if self.chunk.is_empty() {
            &self.buf[..]
        } else {
            &self.chunk[..]
        };
        if avail.len() < OFP_HEADER_LEN {
            return Ok(None);
        }
        let header = match OfHeader::parse(avail) {
            Ok(h) => h,
            Err(e) => {
                // Unrecoverable framing: drop the connection's buffer.
                self.chunk = Bytes::new();
                self.buf.clear();
                return Err(e);
            }
        };
        let need = header.length as usize;
        if avail.len() < need {
            return Ok(None);
        }
        if self.chunk.is_empty() {
            Ok(Some(self.buf.split_to(need).freeze()))
        } else {
            Ok(Some(self.chunk.split_to(need)))
        }
    }

    /// Bytes currently buffered (diagnostics).
    pub fn buffered(&self) -> usize {
        self.chunk.len() + self.buf.len()
    }

    /// Drain all complete messages, stopping at the first error.
    pub fn drain(&mut self) -> Result<Vec<(OfMessage, u32)>, OfError> {
        let mut out = Vec::new();
        while let Some(r) = self.next() {
            out.push(r?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn single_message() {
        let mut r = MessageReader::new();
        r.push(&OfMessage::Hello.encode(7));
        let (msg, xid) = r.next().unwrap().unwrap();
        assert_eq!(msg, OfMessage::Hello);
        assert_eq!(xid, 7);
        assert!(r.next().is_none());
        assert_eq!(r.buffered(), 0);
    }

    #[test]
    fn coalesced_messages() {
        let mut r = MessageReader::new();
        let mut stream = Vec::new();
        stream.extend_from_slice(&OfMessage::Hello.encode(1));
        stream.extend_from_slice(&OfMessage::FeaturesRequest.encode(2));
        stream.extend_from_slice(&OfMessage::BarrierRequest.encode(3));
        r.push(&stream);
        let msgs = r.drain().unwrap();
        assert_eq!(msgs.len(), 3);
        assert_eq!(msgs[1], (OfMessage::FeaturesRequest, 2));
    }

    #[test]
    fn fragmented_message() {
        let mut r = MessageReader::new();
        let wire = OfMessage::EchoRequest(Bytes::from_static(b"fragmented-payload")).encode(9);
        // Deliver one byte at a time.
        for (i, b) in wire.iter().enumerate() {
            r.push(&[*b]);
            if i + 1 < wire.len() {
                assert!(r.next().is_none(), "yielded early at byte {i}");
            }
        }
        let (msg, xid) = r.next().unwrap().unwrap();
        assert_eq!(xid, 9);
        assert!(matches!(msg, OfMessage::EchoRequest(_)));
    }

    #[test]
    fn error_resynchronizes() {
        let mut r = MessageReader::new();
        // A well-formed header with an unknown reason byte inside
        // PACKET_IN: decode error, but length-delimited, so the next
        // message survives.
        let mut bad = OfMessage::PacketIn {
            buffer_id: 1,
            total_len: 4,
            in_port: 1,
            reason: crate::messages::PacketInReason::NoMatch,
            data: Bytes::from_static(b"abcd"),
        }
        .encode(1)
        .to_vec();
        bad[16] = 99; // reason byte → invalid
        r.push(&bad);
        r.push(&OfMessage::Hello.encode(2));
        assert!(r.next().unwrap().is_err());
        assert_eq!(r.next().unwrap().unwrap(), (OfMessage::Hello, 2));
    }

    #[test]
    fn garbage_clears_buffer() {
        let mut r = MessageReader::new();
        r.push(&[0xFF; 32]); // bad version
        assert!(r.next().unwrap().is_err());
        assert_eq!(r.buffered(), 0);
    }
}
