//! The OpenFlow 1.0 `ofp_match` (40 bytes) and packet classification.
//!
//! OF 1.0 matching is a fixed 12-tuple with a wildcard bitfield;
//! `nw_src`/`nw_dst` carry 6-bit "number of wildcarded low bits"
//! subfields enabling CIDR-prefix matching — which is exactly what
//! RouteFlow relies on to translate a VM's RIB entry (`10.2.0.0/16 via
//! ...`) into a flow entry.

use crate::ports::PortNumber;
use crate::OfError;
use bytes::{BufMut, Bytes, BytesMut};
use rf_wire::{
    ArpPacket, EtherType, EthernetFrame, IcmpPacket, IpProtocol, Ipv4Packet, MacAddr, UdpPacket,
};
use std::fmt;
use std::net::Ipv4Addr;

/// Size of `ofp_match` on the wire.
pub const OFP_MATCH_LEN: usize = 40;

/// The OF 1.0 wildcard bitfield (`OFPFW_*`).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Wildcards(pub u32);

impl Wildcards {
    pub const IN_PORT: u32 = 1 << 0;
    pub const DL_VLAN: u32 = 1 << 1;
    pub const DL_SRC: u32 = 1 << 2;
    pub const DL_DST: u32 = 1 << 3;
    pub const DL_TYPE: u32 = 1 << 4;
    pub const NW_PROTO: u32 = 1 << 5;
    pub const TP_SRC: u32 = 1 << 6;
    pub const TP_DST: u32 = 1 << 7;
    pub const NW_SRC_SHIFT: u32 = 8;
    pub const NW_DST_SHIFT: u32 = 14;
    pub const DL_VLAN_PCP: u32 = 1 << 20;
    pub const NW_TOS: u32 = 1 << 21;
    /// Everything wildcarded (the table-miss match).
    pub const ALL: u32 = (1 << 22) - 1;

    pub fn all() -> Wildcards {
        Wildcards(Self::ALL)
    }

    pub fn none() -> Wildcards {
        Wildcards(0)
    }

    pub fn contains(&self, bit: u32) -> bool {
        self.0 & bit != 0
    }

    /// Number of wildcarded low bits in nw_src (0..=32; values ≥ 32
    /// mean "fully wildcarded" per spec).
    pub fn nw_src_bits(&self) -> u32 {
        ((self.0 >> Self::NW_SRC_SHIFT) & 0x3F).min(32)
    }

    pub fn nw_dst_bits(&self) -> u32 {
        ((self.0 >> Self::NW_DST_SHIFT) & 0x3F).min(32)
    }

    pub fn with_nw_src_bits(mut self, bits: u32) -> Wildcards {
        self.0 &= !(0x3F << Self::NW_SRC_SHIFT);
        self.0 |= (bits.min(63)) << Self::NW_SRC_SHIFT;
        self
    }

    pub fn with_nw_dst_bits(mut self, bits: u32) -> Wildcards {
        self.0 &= !(0x3F << Self::NW_DST_SHIFT);
        self.0 |= (bits.min(63)) << Self::NW_DST_SHIFT;
        self
    }

    fn mask_from_bits(bits: u32) -> u32 {
        if bits >= 32 {
            0
        } else {
            u32::MAX << bits
        }
    }

    pub fn nw_src_mask(&self) -> u32 {
        Self::mask_from_bits(self.nw_src_bits())
    }

    pub fn nw_dst_mask(&self) -> u32 {
        Self::mask_from_bits(self.nw_dst_bits())
    }
}

impl fmt::Debug for Wildcards {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Wildcards({:#08x})", self.0)
    }
}

/// The OF 1.0 12-tuple match.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct OfMatch {
    pub wildcards: Wildcards,
    pub in_port: PortNumber,
    pub dl_src: MacAddr,
    pub dl_dst: MacAddr,
    pub dl_vlan: u16,
    pub dl_vlan_pcp: u8,
    pub dl_type: u16,
    pub nw_tos: u8,
    pub nw_proto: u8,
    pub nw_src: Ipv4Addr,
    pub nw_dst: Ipv4Addr,
    pub tp_src: u16,
    pub tp_dst: u16,
}

impl Default for OfMatch {
    fn default() -> Self {
        OfMatch::any()
    }
}

impl OfMatch {
    /// Match-everything (all fields wildcarded).
    pub fn any() -> OfMatch {
        OfMatch {
            wildcards: Wildcards::all(),
            in_port: 0,
            dl_src: MacAddr::ZERO,
            dl_dst: MacAddr::ZERO,
            dl_vlan: 0xFFFF, // OFP_VLAN_NONE
            dl_vlan_pcp: 0,
            dl_type: 0,
            nw_tos: 0,
            nw_proto: 0,
            nw_src: Ipv4Addr::UNSPECIFIED,
            nw_dst: Ipv4Addr::UNSPECIFIED,
            tp_src: 0,
            tp_dst: 0,
        }
    }

    /// Match IPv4 traffic to a destination prefix — the shape RouteFlow
    /// installs for every RIB entry.
    pub fn ipv4_dst_prefix(prefix: Ipv4Addr, prefix_len: u8) -> OfMatch {
        let mut m = OfMatch::any();
        m.dl_type = 0x0800;
        m.nw_dst = prefix;
        m.wildcards = Wildcards(Wildcards::ALL & !Wildcards::DL_TYPE)
            .with_nw_dst_bits(32 - prefix_len as u32);
        m
    }

    /// Match all LLDP frames (the slice FlowVisor grants the topology
    /// controller).
    pub fn lldp() -> OfMatch {
        let mut m = OfMatch::any();
        m.dl_type = 0x88CC;
        m.wildcards = Wildcards(Wildcards::ALL & !Wildcards::DL_TYPE);
        m
    }

    /// Match all ARP frames.
    pub fn arp() -> OfMatch {
        let mut m = OfMatch::any();
        m.dl_type = 0x0806;
        m.wildcards = Wildcards(Wildcards::ALL & !Wildcards::DL_TYPE);
        m
    }

    /// Does this match cover `key`?
    pub fn matches(&self, key: &PacketKey) -> bool {
        let w = &self.wildcards;
        if !w.contains(Wildcards::IN_PORT) && self.in_port != key.in_port {
            return false;
        }
        if !w.contains(Wildcards::DL_SRC) && self.dl_src != key.dl_src {
            return false;
        }
        if !w.contains(Wildcards::DL_DST) && self.dl_dst != key.dl_dst {
            return false;
        }
        if !w.contains(Wildcards::DL_TYPE) && self.dl_type != key.dl_type {
            return false;
        }
        if !w.contains(Wildcards::NW_PROTO) && self.nw_proto != key.nw_proto {
            return false;
        }
        if !w.contains(Wildcards::NW_TOS) && self.nw_tos != key.nw_tos {
            return false;
        }
        let src_mask = w.nw_src_mask();
        if u32::from(self.nw_src) & src_mask != u32::from(key.nw_src) & src_mask {
            return false;
        }
        let dst_mask = w.nw_dst_mask();
        if u32::from(self.nw_dst) & dst_mask != u32::from(key.nw_dst) & dst_mask {
            return false;
        }
        if !w.contains(Wildcards::TP_SRC) && self.tp_src != key.tp_src {
            return false;
        }
        if !w.contains(Wildcards::TP_DST) && self.tp_dst != key.tp_dst {
            return false;
        }
        true
    }

    /// Is `self` at least as specific as `other` on every field `other`
    /// constrains (used for OFPFC_DELETE's loose matching)?
    pub fn is_subset_of(&self, other: &OfMatch) -> bool {
        let (sw, ow) = (&self.wildcards, &other.wildcards);
        let field = |bit: u32, eq: bool| -> bool {
            if ow.contains(bit) {
                true // other doesn't constrain this field
            } else {
                !sw.contains(bit) && eq
            }
        };
        field(Wildcards::IN_PORT, self.in_port == other.in_port)
            && field(Wildcards::DL_SRC, self.dl_src == other.dl_src)
            && field(Wildcards::DL_DST, self.dl_dst == other.dl_dst)
            && field(Wildcards::DL_TYPE, self.dl_type == other.dl_type)
            && field(Wildcards::NW_PROTO, self.nw_proto == other.nw_proto)
            && field(Wildcards::NW_TOS, self.nw_tos == other.nw_tos)
            && field(Wildcards::TP_SRC, self.tp_src == other.tp_src)
            && field(Wildcards::TP_DST, self.tp_dst == other.tp_dst)
            && {
                // self's prefix must be at least as long and agree.
                let ob = ow.nw_src_bits();
                let sb = sw.nw_src_bits();
                sb <= ob && {
                    let m = Wildcards::mask_from_bits(ob);
                    u32::from(self.nw_src) & m == u32::from(other.nw_src) & m
                }
            }
            && {
                let ob = ow.nw_dst_bits();
                let sb = sw.nw_dst_bits();
                sb <= ob && {
                    let m = Wildcards::mask_from_bits(ob);
                    u32::from(self.nw_dst) & m == u32::from(other.nw_dst) & m
                }
            }
    }

    pub fn parse(data: &[u8]) -> Result<OfMatch, OfError> {
        if data.len() < OFP_MATCH_LEN {
            return Err(OfError::Truncated);
        }
        Ok(OfMatch {
            wildcards: Wildcards(u32::from_be_bytes([data[0], data[1], data[2], data[3]])),
            in_port: u16::from_be_bytes([data[4], data[5]]),
            dl_src: MacAddr::from_bytes(&data[6..12]).map_err(|_| OfError::Truncated)?,
            dl_dst: MacAddr::from_bytes(&data[12..18]).map_err(|_| OfError::Truncated)?,
            dl_vlan: u16::from_be_bytes([data[18], data[19]]),
            dl_vlan_pcp: data[20],
            // data[21] pad
            dl_type: u16::from_be_bytes([data[22], data[23]]),
            nw_tos: data[24],
            nw_proto: data[25],
            // data[26..28] pad
            nw_src: Ipv4Addr::new(data[28], data[29], data[30], data[31]),
            nw_dst: Ipv4Addr::new(data[32], data[33], data[34], data[35]),
            tp_src: u16::from_be_bytes([data[36], data[37]]),
            tp_dst: u16::from_be_bytes([data[38], data[39]]),
        })
    }

    pub fn emit_into(&self, buf: &mut BytesMut) {
        buf.put_u32(self.wildcards.0);
        buf.put_u16(self.in_port);
        buf.put_slice(self.dl_src.as_bytes());
        buf.put_slice(self.dl_dst.as_bytes());
        buf.put_u16(self.dl_vlan);
        buf.put_u8(self.dl_vlan_pcp);
        buf.put_u8(0); // pad
        buf.put_u16(self.dl_type);
        buf.put_u8(self.nw_tos);
        buf.put_u8(self.nw_proto);
        buf.put_u16(0); // pad
        buf.put_slice(&self.nw_src.octets());
        buf.put_slice(&self.nw_dst.octets());
        buf.put_u16(self.tp_src);
        buf.put_u16(self.tp_dst);
    }
}

/// The classification key extracted from a packet, against which
/// matches are evaluated. Mirrors the OF 1.0 parse rules, including the
/// ARP quirk (nw_proto = ARP opcode, nw_src/dst = ARP IPs) and the ICMP
/// quirk (tp_src/dst = ICMP type/code).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PacketKey {
    pub in_port: PortNumber,
    pub dl_src: MacAddr,
    pub dl_dst: MacAddr,
    pub dl_type: u16,
    pub nw_tos: u8,
    pub nw_proto: u8,
    pub nw_src: Ipv4Addr,
    pub nw_dst: Ipv4Addr,
    pub tp_src: u16,
    pub tp_dst: u16,
}

impl PacketKey {
    /// Classify a raw Ethernet frame received on `in_port`.
    /// Unparseable inner layers simply leave the deeper fields zero,
    /// matching how a hardware parser degrades.
    pub fn from_frame(in_port: PortNumber, frame: &[u8]) -> Option<PacketKey> {
        Self::from_parsed(in_port, EthernetFrame::parse(frame).ok()?)
    }

    /// [`PacketKey::from_frame`] over [`Bytes`]: the layer parses are
    /// zero-copy slices, so classifying a frame allocates nothing.
    /// This runs per frame per switch hop — the data plane's hottest
    /// classification path.
    pub fn from_frame_bytes(in_port: PortNumber, frame: &Bytes) -> Option<PacketKey> {
        Self::from_parsed(in_port, EthernetFrame::parse_bytes(frame).ok()?)
    }

    fn from_parsed(in_port: PortNumber, eth: EthernetFrame) -> Option<PacketKey> {
        let mut key = PacketKey {
            in_port,
            dl_src: eth.src,
            dl_dst: eth.dst,
            dl_type: eth.ethertype.0,
            nw_tos: 0,
            nw_proto: 0,
            nw_src: Ipv4Addr::UNSPECIFIED,
            nw_dst: Ipv4Addr::UNSPECIFIED,
            tp_src: 0,
            tp_dst: 0,
        };
        match eth.ethertype {
            EtherType::IPV4 => {
                if let Ok(ip) = Ipv4Packet::parse_bytes(&eth.payload) {
                    key.nw_tos = ip.dscp << 2;
                    key.nw_proto = ip.protocol.0;
                    key.nw_src = ip.src;
                    key.nw_dst = ip.dst;
                    match ip.protocol {
                        IpProtocol::UDP => {
                            if let Ok(udp) = UdpPacket::parse_bytes(&ip.payload, ip.src, ip.dst) {
                                key.tp_src = udp.src_port;
                                key.tp_dst = udp.dst_port;
                            }
                        }
                        IpProtocol::ICMP => {
                            if let Ok(icmp) = IcmpPacket::parse_bytes(&ip.payload) {
                                let (ty, code) = match icmp {
                                    IcmpPacket::EchoRequest { .. } => (8u16, 0u16),
                                    IcmpPacket::EchoReply { .. } => (0, 0),
                                    IcmpPacket::Other { ty, code, .. } => (ty as u16, code as u16),
                                };
                                key.tp_src = ty;
                                key.tp_dst = code;
                            }
                        }
                        _ => {}
                    }
                }
            }
            EtherType::ARP => {
                if let Ok(arp) = ArpPacket::parse(&eth.payload) {
                    key.nw_proto = match arp.op {
                        rf_wire::ArpOp::Request => 1,
                        rf_wire::ArpOp::Reply => 2,
                    };
                    key.nw_src = arp.sender_ip;
                    key.nw_dst = arp.target_ip;
                }
            }
            _ => {}
        }
        Some(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn wire(m: &OfMatch) -> Vec<u8> {
        let mut b = BytesMut::new();
        m.emit_into(&mut b);
        b.to_vec()
    }

    #[test]
    fn match_roundtrip() {
        let m = OfMatch::ipv4_dst_prefix(Ipv4Addr::new(10, 2, 0, 0), 16);
        let w = wire(&m);
        assert_eq!(w.len(), OFP_MATCH_LEN);
        assert_eq!(OfMatch::parse(&w).unwrap(), m);
    }

    #[test]
    fn any_matches_everything() {
        let m = OfMatch::any();
        let key = PacketKey {
            in_port: 3,
            dl_src: MacAddr([1; 6]),
            dl_dst: MacAddr([2; 6]),
            dl_type: 0x0800,
            nw_tos: 0,
            nw_proto: 17,
            nw_src: Ipv4Addr::new(1, 2, 3, 4),
            nw_dst: Ipv4Addr::new(5, 6, 7, 8),
            tp_src: 1000,
            tp_dst: 2000,
        };
        assert!(m.matches(&key));
    }

    #[test]
    fn prefix_match_semantics() {
        let m = OfMatch::ipv4_dst_prefix(Ipv4Addr::new(10, 2, 0, 0), 16);
        let mut key = PacketKey {
            in_port: 1,
            dl_src: MacAddr::ZERO,
            dl_dst: MacAddr::ZERO,
            dl_type: 0x0800,
            nw_tos: 0,
            nw_proto: 6,
            nw_src: Ipv4Addr::new(9, 9, 9, 9),
            nw_dst: Ipv4Addr::new(10, 2, 200, 1),
            tp_src: 0,
            tp_dst: 0,
        };
        assert!(m.matches(&key));
        key.nw_dst = Ipv4Addr::new(10, 3, 0, 1);
        assert!(!m.matches(&key));
        key.dl_type = 0x0806;
        key.nw_dst = Ipv4Addr::new(10, 2, 0, 1);
        assert!(!m.matches(&key), "dl_type must be checked");
    }

    #[test]
    fn lldp_match_only_matches_lldp() {
        let m = OfMatch::lldp();
        let mk = |dl_type| PacketKey {
            in_port: 1,
            dl_src: MacAddr::ZERO,
            dl_dst: MacAddr::ZERO,
            dl_type,
            nw_tos: 0,
            nw_proto: 0,
            nw_src: Ipv4Addr::UNSPECIFIED,
            nw_dst: Ipv4Addr::UNSPECIFIED,
            tp_src: 0,
            tp_dst: 0,
        };
        assert!(m.matches(&mk(0x88CC)));
        assert!(!m.matches(&mk(0x0800)));
    }

    #[test]
    fn wildcard_bits_encoding() {
        let w = Wildcards::all();
        assert_eq!(w.nw_src_bits(), 32);
        assert_eq!(w.nw_src_mask(), 0);
        let w = Wildcards::none().with_nw_dst_bits(8);
        assert_eq!(w.nw_dst_bits(), 8);
        assert_eq!(w.nw_dst_mask(), 0xFFFF_FF00);
    }

    #[test]
    fn subset_relation() {
        let wide = OfMatch::ipv4_dst_prefix(Ipv4Addr::new(10, 0, 0, 0), 8);
        let narrow = OfMatch::ipv4_dst_prefix(Ipv4Addr::new(10, 2, 0, 0), 16);
        assert!(narrow.is_subset_of(&wide));
        assert!(!wide.is_subset_of(&narrow));
        assert!(narrow.is_subset_of(&OfMatch::any()));
        let other = OfMatch::ipv4_dst_prefix(Ipv4Addr::new(11, 0, 0, 0), 8);
        assert!(!narrow.is_subset_of(&other));
    }

    #[test]
    fn key_from_udp_frame() {
        let udp = UdpPacket::new(5004, 9000, Bytes::from_static(b"v"));
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(10, 0, 9, 9);
        let ip = Ipv4Packet::new(src, dst, IpProtocol::UDP, udp.emit(src, dst));
        let eth = EthernetFrame::new(
            MacAddr([2, 0, 0, 0, 0, 2]),
            MacAddr([2, 0, 0, 0, 0, 1]),
            EtherType::IPV4,
            ip.emit(),
        );
        let key = PacketKey::from_frame(7, &eth.emit()).unwrap();
        assert_eq!(key.in_port, 7);
        assert_eq!(key.dl_type, 0x0800);
        assert_eq!(key.nw_proto, 17);
        assert_eq!(key.nw_src, src);
        assert_eq!(key.nw_dst, dst);
        assert_eq!(key.tp_src, 5004);
        assert_eq!(key.tp_dst, 9000);
    }

    #[test]
    fn key_from_arp_frame_uses_of10_quirk() {
        let arp = ArpPacket::request(
            MacAddr([2, 0, 0, 0, 0, 1]),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 254),
        );
        let eth = EthernetFrame::new(
            MacAddr::BROADCAST,
            MacAddr([2, 0, 0, 0, 0, 1]),
            EtherType::ARP,
            arp.emit(),
        );
        let key = PacketKey::from_frame(1, &eth.emit()).unwrap();
        assert_eq!(key.dl_type, 0x0806);
        assert_eq!(key.nw_proto, 1, "ARP opcode in nw_proto");
        assert_eq!(key.nw_src, Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(key.nw_dst, Ipv4Addr::new(10, 0, 0, 254));
    }

    #[test]
    fn key_from_icmp_frame_maps_type_code() {
        let icmp = IcmpPacket::echo_request(1, 2, Bytes::new());
        let src = Ipv4Addr::new(1, 1, 1, 1);
        let dst = Ipv4Addr::new(2, 2, 2, 2);
        let ip = Ipv4Packet::new(src, dst, IpProtocol::ICMP, icmp.emit());
        let eth = EthernetFrame::new(MacAddr::ZERO, MacAddr::ZERO, EtherType::IPV4, ip.emit());
        let key = PacketKey::from_frame(1, &eth.emit()).unwrap();
        assert_eq!(key.nw_proto, 1);
        assert_eq!(key.tp_src, 8, "ICMP type in tp_src");
        assert_eq!(key.tp_dst, 0, "ICMP code in tp_dst");
    }

    #[test]
    fn truncated_match_rejected() {
        assert_eq!(OfMatch::parse(&[0u8; 39]), Err(OfError::Truncated));
    }
}
