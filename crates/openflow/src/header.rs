//! The 8-byte `ofp_header` shared by every OpenFlow message.

use crate::OfError;

/// OpenFlow protocol version implemented by this crate (1.0).
pub const OFP_VERSION: u8 = 0x01;
/// Size of `ofp_header` on the wire.
pub const OFP_HEADER_LEN: usize = 8;

/// OpenFlow 1.0 message types (`ofp_type`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum MsgType {
    Hello = 0,
    Error = 1,
    EchoRequest = 2,
    EchoReply = 3,
    Vendor = 4,
    FeaturesRequest = 5,
    FeaturesReply = 6,
    GetConfigRequest = 7,
    GetConfigReply = 8,
    SetConfig = 9,
    PacketIn = 10,
    FlowRemoved = 11,
    PortStatus = 12,
    PacketOut = 13,
    FlowMod = 14,
    PortMod = 15,
    StatsRequest = 16,
    StatsReply = 17,
    BarrierRequest = 18,
    BarrierReply = 19,
}

impl MsgType {
    pub fn from_u8(v: u8) -> Result<MsgType, OfError> {
        use MsgType::*;
        Ok(match v {
            0 => Hello,
            1 => Error,
            2 => EchoRequest,
            3 => EchoReply,
            4 => Vendor,
            5 => FeaturesRequest,
            6 => FeaturesReply,
            7 => GetConfigRequest,
            8 => GetConfigReply,
            9 => SetConfig,
            10 => PacketIn,
            11 => FlowRemoved,
            12 => PortStatus,
            13 => PacketOut,
            14 => FlowMod,
            15 => PortMod,
            16 => StatsRequest,
            17 => StatsReply,
            18 => BarrierRequest,
            19 => BarrierReply,
            other => return Err(OfError::UnknownType(other)),
        })
    }
}

/// Decoded `ofp_header`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OfHeader {
    pub version: u8,
    pub msg_type: MsgType,
    /// Total message length including this header.
    pub length: u16,
    /// Transaction id; replies echo the request's xid. FlowVisor
    /// rewrites this field to demultiplex slices.
    pub xid: u32,
}

impl OfHeader {
    /// Parse the fixed header (does not require the body to be present).
    pub fn parse(data: &[u8]) -> Result<OfHeader, OfError> {
        if data.len() < OFP_HEADER_LEN {
            return Err(OfError::Truncated);
        }
        let version = data[0];
        if version != OFP_VERSION {
            return Err(OfError::BadVersion(version));
        }
        let msg_type = MsgType::from_u8(data[1])?;
        let length = u16::from_be_bytes([data[2], data[3]]);
        if (length as usize) < OFP_HEADER_LEN {
            return Err(OfError::Malformed("length shorter than header"));
        }
        let xid = u32::from_be_bytes([data[4], data[5], data[6], data[7]]);
        Ok(OfHeader {
            version,
            msg_type,
            length,
            xid,
        })
    }

    pub fn emit(&self) -> [u8; OFP_HEADER_LEN] {
        let mut b = [0u8; OFP_HEADER_LEN];
        b[0] = self.version;
        b[1] = self.msg_type as u8;
        b[2..4].copy_from_slice(&self.length.to_be_bytes());
        b[4..8].copy_from_slice(&self.xid.to_be_bytes());
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let h = OfHeader {
            version: OFP_VERSION,
            msg_type: MsgType::PacketIn,
            length: 42,
            xid: 0xDEAD_BEEF,
        };
        assert_eq!(OfHeader::parse(&h.emit()).unwrap(), h);
    }

    #[test]
    fn all_types_roundtrip() {
        for v in 0..=19u8 {
            let t = MsgType::from_u8(v).unwrap();
            assert_eq!(t as u8, v);
        }
        assert_eq!(MsgType::from_u8(20), Err(OfError::UnknownType(20)));
        assert_eq!(MsgType::from_u8(255), Err(OfError::UnknownType(255)));
    }

    #[test]
    fn rejects_wrong_version() {
        let mut b = OfHeader {
            version: OFP_VERSION,
            msg_type: MsgType::Hello,
            length: 8,
            xid: 0,
        }
        .emit();
        b[0] = 0x04; // OF 1.3
        assert_eq!(OfHeader::parse(&b), Err(OfError::BadVersion(0x04)));
    }

    #[test]
    fn rejects_short_buffer_and_tiny_length() {
        assert_eq!(OfHeader::parse(&[1, 0, 0]), Err(OfError::Truncated));
        let mut b = OfHeader {
            version: OFP_VERSION,
            msg_type: MsgType::Hello,
            length: 8,
            xid: 0,
        }
        .emit();
        b[2] = 0;
        b[3] = 4; // length 4 < 8
        assert!(matches!(OfHeader::parse(&b), Err(OfError::Malformed(_))));
    }
}
