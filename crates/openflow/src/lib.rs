//! # rf-openflow — OpenFlow 1.0 wire protocol
//!
//! The paper's framework is built entirely on OpenFlow 1.0 (Open
//! vSwitch 1.4.1, NOX-era controllers, FlowVisor). This crate
//! implements the OF 1.0 message set the system exercises, with exact
//! big-endian wire encodings per the OpenFlow 1.0.0 specification:
//!
//! * connection setup: `HELLO`, `ECHO_REQUEST/REPLY`, `FEATURES_REQUEST/
//!   REPLY`, `SET_CONFIG`/`GET_CONFIG`, `ERROR`
//! * the reactive path: `PACKET_IN`, `PACKET_OUT`
//! * the proactive path: `FLOW_MOD`, `FLOW_REMOVED`, `BARRIER`
//! * monitoring: `PORT_STATUS`, `STATS_REQUEST/REPLY` (desc, flow,
//!   aggregate, table, port)
//! * the 40-byte `ofp_match` with the OF 1.0 wildcard bitfield and
//!   CIDR-style nw_src/nw_dst masking, and the full OF 1.0 action list
//!
//! Byte-exactness matters here: FlowVisor sits *between* switches and
//! controllers and rewrites these messages on the wire, so both sides
//! of every encoding are hit in normal operation. Every message kind
//! has encode/decode round-trip tests, and proptest fuzzes the decoder
//! with arbitrary byte soup (it must never panic).
//!
//! Out of scope (documented, per DESIGN.md): OF 1.1+, VLAN handling in
//! the datapath, queues/QoS (`ENQUEUE` is encoded but our switch treats
//! it as plain output), `QUEUE_GET_CONFIG`, vendor extensions beyond an
//! opaque passthrough, and the emergency flow cache.

pub mod actions;
pub mod codec;
pub mod flow_match;
pub mod header;
pub mod messages;
pub mod ports;
pub mod stats;

pub use actions::Action;
pub use codec::{reframe_with_xid, MessageReader};
pub use flow_match::{OfMatch, PacketKey, Wildcards};
pub use header::{MsgType, OfHeader, OFP_HEADER_LEN, OFP_VERSION};
pub use messages::{
    ErrorCode, ErrorType, FlowModCommand, FlowRemovedReason, OfMessage, PacketInReason,
    PortStatusReason, SwitchFeatures,
};
pub use ports::{
    PhyPort, PortNumber, OFPP_ALL, OFPP_CONTROLLER, OFPP_FLOOD, OFPP_IN_PORT, OFPP_LOCAL, OFPP_MAX,
    OFPP_NONE, OFPP_NORMAL, OFPP_TABLE,
};
pub use stats::{
    AggregateStats, FlowStatsEntry, FlowStatsRequest, PortStats, StatsBody, SwitchDesc, TableStats,
};

/// `buffer_id` value meaning "packet not buffered".
pub const OFP_NO_BUFFER: u32 = 0xFFFF_FFFF;

use std::fmt;

/// Errors from decoding OpenFlow bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OfError {
    /// Fewer bytes than the header's `length` field (or the fixed part)
    /// requires.
    Truncated,
    /// Wire version is not 0x01.
    BadVersion(u8),
    /// Unknown `ofp_type`.
    UnknownType(u8),
    /// Structurally invalid content.
    Malformed(&'static str),
}

impl fmt::Display for OfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OfError::Truncated => write!(f, "truncated OpenFlow message"),
            OfError::BadVersion(v) => write!(f, "unsupported OpenFlow version 0x{v:02x}"),
            OfError::UnknownType(t) => write!(f, "unknown OpenFlow message type {t}"),
            OfError::Malformed(what) => write!(f, "malformed OpenFlow message: {what}"),
        }
    }
}

impl std::error::Error for OfError {}
