//! Top-level OpenFlow 1.0 messages: decoding, encoding and the typed
//! bodies.

use crate::actions::Action;
use crate::flow_match::{OfMatch, OFP_MATCH_LEN};
use crate::header::{MsgType, OfHeader, OFP_HEADER_LEN, OFP_VERSION};
use crate::ports::{PhyPort, PortNumber, OFP_PHY_PORT_LEN};
use crate::stats::StatsBody;
use crate::OfError;
use bytes::{BufMut, Bytes, BytesMut};

/// `ofp_flow_mod` commands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowModCommand {
    Add,
    Modify,
    ModifyStrict,
    Delete,
    DeleteStrict,
}

impl FlowModCommand {
    fn to_u16(self) -> u16 {
        match self {
            FlowModCommand::Add => 0,
            FlowModCommand::Modify => 1,
            FlowModCommand::ModifyStrict => 2,
            FlowModCommand::Delete => 3,
            FlowModCommand::DeleteStrict => 4,
        }
    }
    fn from_u16(v: u16) -> Result<Self, OfError> {
        Ok(match v {
            0 => FlowModCommand::Add,
            1 => FlowModCommand::Modify,
            2 => FlowModCommand::ModifyStrict,
            3 => FlowModCommand::Delete,
            4 => FlowModCommand::DeleteStrict,
            _ => return Err(OfError::Malformed("flow_mod command")),
        })
    }
}

/// Why a PACKET_IN was sent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PacketInReason {
    /// No matching flow entry (table miss).
    NoMatch,
    /// An explicit output-to-controller action.
    Action,
}

/// Why a FLOW_REMOVED was sent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowRemovedReason {
    IdleTimeout,
    HardTimeout,
    Delete,
}

/// Why a PORT_STATUS was sent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PortStatusReason {
    Add,
    Delete,
    Modify,
}

/// `ofp_error_msg` types (subset: the ones our switch emits).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorType {
    HelloFailed,
    BadRequest,
    BadAction,
    FlowModFailed,
    PortModFailed,
}

impl ErrorType {
    fn to_u16(self) -> u16 {
        match self {
            ErrorType::HelloFailed => 0,
            ErrorType::BadRequest => 1,
            ErrorType::BadAction => 2,
            ErrorType::FlowModFailed => 3,
            ErrorType::PortModFailed => 4,
        }
    }
    fn from_u16(v: u16) -> Result<Self, OfError> {
        Ok(match v {
            0 => ErrorType::HelloFailed,
            1 => ErrorType::BadRequest,
            2 => ErrorType::BadAction,
            3 => ErrorType::FlowModFailed,
            4 => ErrorType::PortModFailed,
            _ => return Err(OfError::Malformed("error type")),
        })
    }
}

/// Error code within an [`ErrorType`] (kept numeric: the spec defines
/// per-type enums, and we only ever compare them).
pub type ErrorCode = u16;

/// `OFPT_FEATURES_REPLY` body.
#[derive(Clone, Debug, PartialEq)]
pub struct SwitchFeatures {
    pub datapath_id: u64,
    pub n_buffers: u32,
    pub n_tables: u8,
    pub capabilities: u32,
    pub actions: u32,
    pub ports: Vec<PhyPort>,
}

/// A decoded OpenFlow 1.0 message (header `xid` carried alongside).
#[derive(Clone, Debug, PartialEq)]
pub enum OfMessage {
    Hello,
    Error {
        err_type: ErrorType,
        code: ErrorCode,
        /// At least 64 bytes of the offending request, per spec.
        data: Bytes,
    },
    EchoRequest(Bytes),
    EchoReply(Bytes),
    FeaturesRequest,
    FeaturesReply(SwitchFeatures),
    GetConfigRequest,
    GetConfigReply {
        flags: u16,
        miss_send_len: u16,
    },
    SetConfig {
        flags: u16,
        miss_send_len: u16,
    },
    PacketIn {
        buffer_id: u32,
        total_len: u16,
        in_port: PortNumber,
        reason: PacketInReason,
        data: Bytes,
    },
    FlowRemoved {
        of_match: OfMatch,
        cookie: u64,
        priority: u16,
        reason: FlowRemovedReason,
        duration_sec: u32,
        duration_nsec: u32,
        idle_timeout: u16,
        packet_count: u64,
        byte_count: u64,
    },
    PortStatus {
        reason: PortStatusReason,
        desc: PhyPort,
    },
    PacketOut {
        buffer_id: u32,
        in_port: PortNumber,
        actions: Vec<Action>,
        data: Bytes,
    },
    FlowMod {
        of_match: OfMatch,
        cookie: u64,
        command: FlowModCommand,
        idle_timeout: u16,
        hard_timeout: u16,
        priority: u16,
        buffer_id: u32,
        out_port: PortNumber,
        flags: u16,
        actions: Vec<Action>,
    },
    StatsRequest {
        body: StatsBody,
    },
    StatsReply {
        /// OFPSF_REPLY_MORE not modelled: replies are single-part.
        body: StatsBody,
    },
    BarrierRequest,
    BarrierReply,
    /// Vendor/experimenter passthrough.
    Vendor {
        vendor: u32,
        data: Bytes,
    },
}

/// `OFPFF_SEND_FLOW_REM` flag for FLOW_MOD.
pub const OFPFF_SEND_FLOW_REM: u16 = 1;

impl OfMessage {
    pub fn msg_type(&self) -> MsgType {
        match self {
            OfMessage::Hello => MsgType::Hello,
            OfMessage::Error { .. } => MsgType::Error,
            OfMessage::EchoRequest(_) => MsgType::EchoRequest,
            OfMessage::EchoReply(_) => MsgType::EchoReply,
            OfMessage::FeaturesRequest => MsgType::FeaturesRequest,
            OfMessage::FeaturesReply(_) => MsgType::FeaturesReply,
            OfMessage::GetConfigRequest => MsgType::GetConfigRequest,
            OfMessage::GetConfigReply { .. } => MsgType::GetConfigReply,
            OfMessage::SetConfig { .. } => MsgType::SetConfig,
            OfMessage::PacketIn { .. } => MsgType::PacketIn,
            OfMessage::FlowRemoved { .. } => MsgType::FlowRemoved,
            OfMessage::PortStatus { .. } => MsgType::PortStatus,
            OfMessage::PacketOut { .. } => MsgType::PacketOut,
            OfMessage::FlowMod { .. } => MsgType::FlowMod,
            OfMessage::StatsRequest { .. } => MsgType::StatsRequest,
            OfMessage::StatsReply { .. } => MsgType::StatsReply,
            OfMessage::BarrierRequest => MsgType::BarrierRequest,
            OfMessage::BarrierReply => MsgType::BarrierReply,
            OfMessage::Vendor { .. } => MsgType::Vendor,
        }
    }

    /// Encode with the given transaction id.
    pub fn encode(&self, xid: u32) -> Bytes {
        let mut out = BytesMut::new();
        self.encode_into(&mut out, xid);
        out.freeze()
    }

    /// Encode one framed message into `out` (shared by [`encode`] and
    /// [`encode_batch`]).
    ///
    /// [`encode`]: OfMessage::encode
    /// [`encode_batch`]: OfMessage::encode_batch
    fn encode_into(&self, out: &mut BytesMut, xid: u32) {
        // One buffer, one pass: emit a header with a zero length, the
        // body straight after it, then backpatch the length — the
        // bytes are identical to building the body separately, minus
        // that buffer's allocation.
        let start = out.len();
        out.reserve(OFP_HEADER_LEN + self.body_size_hint());
        out.put_u8(OFP_VERSION);
        out.put_u8(self.msg_type() as u8);
        out.put_u16(0); // length, patched below
        out.put_u32(xid);
        self.emit_body(out);
        let length = (out.len() - start) as u16;
        out[start + 2..start + 4].copy_from_slice(&length.to_be_bytes());
    }

    /// Encode several messages into one wire buffer — a multi-message
    /// push. Each message keeps its own header (OF 1.0 has no batch
    /// container), with consecutive xids starting at `first_xid`; any
    /// [`MessageReader`](crate::MessageReader) decodes the result into
    /// the individual messages, so receivers need no batch awareness.
    /// One buffer means one transport write: this is how the controller
    /// coalesces per-switch FLOW_MOD bursts.
    pub fn encode_batch(msgs: &[OfMessage], first_xid: u32) -> Bytes {
        let mut out = BytesMut::new();
        for (i, m) in msgs.iter().enumerate() {
            m.encode_into(&mut out, first_xid.wrapping_add(i as u32));
        }
        out.freeze()
    }

    /// Upper-bound body size for pre-reserving the encode buffer (only
    /// a capacity hint — never affects the emitted bytes).
    fn body_size_hint(&self) -> usize {
        match self {
            OfMessage::Hello
            | OfMessage::FeaturesRequest
            | OfMessage::GetConfigRequest
            | OfMessage::BarrierRequest
            | OfMessage::BarrierReply => 0,
            OfMessage::Error { data, .. } => 4 + data.len(),
            OfMessage::EchoRequest(d) | OfMessage::EchoReply(d) => d.len(),
            OfMessage::FeaturesReply(f) => 24 + f.ports.len() * 48,
            OfMessage::GetConfigReply { .. } | OfMessage::SetConfig { .. } => 4,
            OfMessage::PacketIn { data, .. } => 10 + data.len(),
            OfMessage::FlowRemoved { .. } => 80,
            OfMessage::PortStatus { .. } => 56,
            OfMessage::PacketOut { actions, data, .. } => 8 + actions.len() * 16 + data.len(),
            OfMessage::FlowMod { actions, .. } => 64 + actions.len() * 16,
            OfMessage::StatsRequest { .. } | OfMessage::StatsReply { .. } => 96,
            OfMessage::Vendor { data, .. } => 4 + data.len(),
        }
    }

    fn emit_body(&self, buf: &mut BytesMut) {
        match self {
            OfMessage::Hello
            | OfMessage::FeaturesRequest
            | OfMessage::GetConfigRequest
            | OfMessage::BarrierRequest
            | OfMessage::BarrierReply => {}
            OfMessage::Error {
                err_type,
                code,
                data,
            } => {
                buf.put_u16(err_type.to_u16());
                buf.put_u16(*code);
                buf.put_slice(data);
            }
            OfMessage::EchoRequest(d) | OfMessage::EchoReply(d) => buf.put_slice(d),
            OfMessage::FeaturesReply(f) => {
                buf.put_u64(f.datapath_id);
                buf.put_u32(f.n_buffers);
                buf.put_u8(f.n_tables);
                buf.put_bytes(0, 3);
                buf.put_u32(f.capabilities);
                buf.put_u32(f.actions);
                for p in &f.ports {
                    p.emit_into(buf);
                }
            }
            OfMessage::GetConfigReply {
                flags,
                miss_send_len,
            }
            | OfMessage::SetConfig {
                flags,
                miss_send_len,
            } => {
                buf.put_u16(*flags);
                buf.put_u16(*miss_send_len);
            }
            OfMessage::PacketIn {
                buffer_id,
                total_len,
                in_port,
                reason,
                data,
            } => {
                buf.put_u32(*buffer_id);
                buf.put_u16(*total_len);
                buf.put_u16(*in_port);
                buf.put_u8(match reason {
                    PacketInReason::NoMatch => 0,
                    PacketInReason::Action => 1,
                });
                buf.put_u8(0);
                buf.put_slice(data);
            }
            OfMessage::FlowRemoved {
                of_match,
                cookie,
                priority,
                reason,
                duration_sec,
                duration_nsec,
                idle_timeout,
                packet_count,
                byte_count,
            } => {
                of_match.emit_into(buf);
                buf.put_u64(*cookie);
                buf.put_u16(*priority);
                buf.put_u8(match reason {
                    FlowRemovedReason::IdleTimeout => 0,
                    FlowRemovedReason::HardTimeout => 1,
                    FlowRemovedReason::Delete => 2,
                });
                buf.put_u8(0);
                buf.put_u32(*duration_sec);
                buf.put_u32(*duration_nsec);
                buf.put_u16(*idle_timeout);
                buf.put_u16(0);
                buf.put_u64(*packet_count);
                buf.put_u64(*byte_count);
            }
            OfMessage::PortStatus { reason, desc } => {
                buf.put_u8(match reason {
                    PortStatusReason::Add => 0,
                    PortStatusReason::Delete => 1,
                    PortStatusReason::Modify => 2,
                });
                buf.put_bytes(0, 7);
                desc.emit_into(buf);
            }
            OfMessage::PacketOut {
                buffer_id,
                in_port,
                actions,
                data,
            } => {
                buf.put_u32(*buffer_id);
                buf.put_u16(*in_port);
                buf.put_u16(Action::list_len(actions) as u16);
                Action::emit_list(actions, buf);
                buf.put_slice(data);
            }
            OfMessage::FlowMod {
                of_match,
                cookie,
                command,
                idle_timeout,
                hard_timeout,
                priority,
                buffer_id,
                out_port,
                flags,
                actions,
            } => {
                of_match.emit_into(buf);
                buf.put_u64(*cookie);
                buf.put_u16(command.to_u16());
                buf.put_u16(*idle_timeout);
                buf.put_u16(*hard_timeout);
                buf.put_u16(*priority);
                buf.put_u32(*buffer_id);
                buf.put_u16(*out_port);
                buf.put_u16(*flags);
                Action::emit_list(actions, buf);
            }
            OfMessage::StatsRequest { body } | OfMessage::StatsReply { body } => {
                buf.put_u16(body.stats_type());
                buf.put_u16(0); // flags
                body.emit_into(buf);
            }
            OfMessage::Vendor { vendor, data } => {
                buf.put_u32(*vendor);
                buf.put_slice(data);
            }
        }
    }

    /// Decode a complete message (exactly `header.length` bytes).
    /// Returns the message and its xid.
    pub fn decode(data: &[u8]) -> Result<(OfMessage, u32), OfError> {
        Self::decode_impl(data, |body: &[u8], start: usize| {
            Bytes::copy_from_slice(&body[start..])
        })
    }

    /// [`OfMessage::decode`] with zero-copy payloads: variable-length
    /// tails (PACKET_IN/PACKET_OUT data, echo payloads, error context)
    /// become slices of the caller's [`Bytes`] instead of fresh
    /// allocations. Identical decoding semantics.
    pub fn decode_bytes(data: &Bytes) -> Result<(OfMessage, u32), OfError> {
        Self::decode_impl(data, |body: &[u8], start: usize| {
            // `body` is a reborrow of `data`; translate the suffix
            // back to absolute offsets for a zero-copy slice.
            let end = OFP_HEADER_LEN + body.len();
            data.slice(OFP_HEADER_LEN + start..end)
        })
    }

    fn decode_impl(
        data: &[u8],
        grab: impl Fn(&[u8], usize) -> Bytes,
    ) -> Result<(OfMessage, u32), OfError> {
        let header = OfHeader::parse(data)?;
        if data.len() < header.length as usize {
            return Err(OfError::Truncated);
        }
        let body = &data[OFP_HEADER_LEN..header.length as usize];
        let need = |n: usize| -> Result<(), OfError> {
            if body.len() < n {
                Err(OfError::Truncated)
            } else {
                Ok(())
            }
        };
        let be16 = |i: usize| u16::from_be_bytes([body[i], body[i + 1]]);
        let be32 = |i: usize| u32::from_be_bytes([body[i], body[i + 1], body[i + 2], body[i + 3]]);
        let be64 = |i: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&body[i..i + 8]);
            u64::from_be_bytes(b)
        };
        let msg = match header.msg_type {
            MsgType::Hello => OfMessage::Hello,
            MsgType::Error => {
                need(4)?;
                OfMessage::Error {
                    err_type: ErrorType::from_u16(be16(0))?,
                    code: be16(2),
                    data: grab(body, 4),
                }
            }
            MsgType::EchoRequest => OfMessage::EchoRequest(grab(body, 0)),
            MsgType::EchoReply => OfMessage::EchoReply(grab(body, 0)),
            MsgType::Vendor => {
                need(4)?;
                OfMessage::Vendor {
                    vendor: be32(0),
                    data: grab(body, 4),
                }
            }
            MsgType::FeaturesRequest => OfMessage::FeaturesRequest,
            MsgType::FeaturesReply => {
                need(24)?;
                let ports_bytes = &body[24..];
                if !ports_bytes.len().is_multiple_of(OFP_PHY_PORT_LEN) {
                    return Err(OfError::Malformed("features ports length"));
                }
                let mut ports = Vec::with_capacity(ports_bytes.len() / OFP_PHY_PORT_LEN);
                for chunk in ports_bytes.chunks_exact(OFP_PHY_PORT_LEN) {
                    ports.push(PhyPort::parse(chunk)?);
                }
                OfMessage::FeaturesReply(SwitchFeatures {
                    datapath_id: be64(0),
                    n_buffers: be32(8),
                    n_tables: body[12],
                    capabilities: be32(16),
                    actions: be32(20),
                    ports,
                })
            }
            MsgType::GetConfigRequest => OfMessage::GetConfigRequest,
            MsgType::GetConfigReply => {
                need(4)?;
                OfMessage::GetConfigReply {
                    flags: be16(0),
                    miss_send_len: be16(2),
                }
            }
            MsgType::SetConfig => {
                need(4)?;
                OfMessage::SetConfig {
                    flags: be16(0),
                    miss_send_len: be16(2),
                }
            }
            MsgType::PacketIn => {
                need(10)?;
                OfMessage::PacketIn {
                    buffer_id: be32(0),
                    total_len: be16(4),
                    in_port: be16(6),
                    reason: match body[8] {
                        0 => PacketInReason::NoMatch,
                        1 => PacketInReason::Action,
                        _ => return Err(OfError::Malformed("packet_in reason")),
                    },
                    data: grab(body, 10),
                }
            }
            MsgType::FlowRemoved => {
                need(OFP_MATCH_LEN + 40)?;
                let of_match = OfMatch::parse(&body[..OFP_MATCH_LEN])?;
                let o = OFP_MATCH_LEN;
                OfMessage::FlowRemoved {
                    of_match,
                    cookie: be64(o),
                    priority: be16(o + 8),
                    reason: match body[o + 10] {
                        0 => FlowRemovedReason::IdleTimeout,
                        1 => FlowRemovedReason::HardTimeout,
                        2 => FlowRemovedReason::Delete,
                        _ => return Err(OfError::Malformed("flow_removed reason")),
                    },
                    duration_sec: be32(o + 12),
                    duration_nsec: be32(o + 16),
                    idle_timeout: be16(o + 20),
                    packet_count: be64(o + 24),
                    byte_count: be64(o + 32),
                }
            }
            MsgType::PortStatus => {
                need(8 + OFP_PHY_PORT_LEN)?;
                OfMessage::PortStatus {
                    reason: match body[0] {
                        0 => PortStatusReason::Add,
                        1 => PortStatusReason::Delete,
                        2 => PortStatusReason::Modify,
                        _ => return Err(OfError::Malformed("port_status reason")),
                    },
                    desc: PhyPort::parse(&body[8..])?,
                }
            }
            MsgType::PacketOut => {
                need(8)?;
                let actions_len = be16(6) as usize;
                if body.len() < 8 + actions_len {
                    return Err(OfError::Truncated);
                }
                OfMessage::PacketOut {
                    buffer_id: be32(0),
                    in_port: be16(4),
                    actions: Action::parse_list(&body[8..8 + actions_len])?,
                    data: grab(body, 8 + actions_len),
                }
            }
            MsgType::FlowMod => {
                need(OFP_MATCH_LEN + 24)?;
                let of_match = OfMatch::parse(&body[..OFP_MATCH_LEN])?;
                let o = OFP_MATCH_LEN;
                OfMessage::FlowMod {
                    of_match,
                    cookie: be64(o),
                    command: FlowModCommand::from_u16(be16(o + 8))?,
                    idle_timeout: be16(o + 10),
                    hard_timeout: be16(o + 12),
                    priority: be16(o + 14),
                    buffer_id: be32(o + 16),
                    out_port: be16(o + 20),
                    flags: be16(o + 22),
                    actions: Action::parse_list(&body[o + 24..])?,
                }
            }
            MsgType::StatsRequest => {
                need(4)?;
                OfMessage::StatsRequest {
                    body: StatsBody::parse_request(be16(0), &body[4..])?,
                }
            }
            MsgType::StatsReply => {
                need(4)?;
                OfMessage::StatsReply {
                    body: StatsBody::parse_reply(be16(0), &body[4..])?,
                }
            }
            MsgType::BarrierRequest => OfMessage::BarrierRequest,
            MsgType::BarrierReply => OfMessage::BarrierReply,
            MsgType::PortMod => return Err(OfError::Malformed("PORT_MOD not supported")),
        };
        Ok((msg, header.xid))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{FlowStatsRequest, SwitchDesc};
    use rf_wire::MacAddr;
    use std::net::Ipv4Addr;

    fn roundtrip(msg: OfMessage) {
        let wire = msg.encode(0x1234_5678);
        let (decoded, xid) = OfMessage::decode(&wire).unwrap();
        assert_eq!(xid, 0x1234_5678);
        assert_eq!(decoded, msg, "roundtrip failed");
        // Header length must equal wire length.
        let h = OfHeader::parse(&wire).unwrap();
        assert_eq!(h.length as usize, wire.len());
    }

    #[test]
    fn hello_and_echo() {
        roundtrip(OfMessage::Hello);
        roundtrip(OfMessage::EchoRequest(Bytes::from_static(b"ping")));
        roundtrip(OfMessage::EchoReply(Bytes::from_static(b"ping")));
    }

    #[test]
    fn error_roundtrip() {
        roundtrip(OfMessage::Error {
            err_type: ErrorType::FlowModFailed,
            code: 3,
            data: Bytes::from(vec![0u8; 64]),
        });
    }

    #[test]
    fn features_roundtrip() {
        roundtrip(OfMessage::FeaturesRequest);
        roundtrip(OfMessage::FeaturesReply(SwitchFeatures {
            datapath_id: 0x0000_0000_0000_001C,
            n_buffers: 256,
            n_tables: 1,
            capabilities: 0xC7,
            actions: 0xFFF,
            ports: vec![
                PhyPort::new(1, MacAddr::from_dpid_port(0x1C, 1), "eth1"),
                PhyPort::new(2, MacAddr::from_dpid_port(0x1C, 2), "eth2"),
            ],
        }));
    }

    #[test]
    fn config_roundtrip() {
        roundtrip(OfMessage::GetConfigRequest);
        roundtrip(OfMessage::GetConfigReply {
            flags: 0,
            miss_send_len: 128,
        });
        roundtrip(OfMessage::SetConfig {
            flags: 0,
            miss_send_len: 0xFFFF,
        });
    }

    #[test]
    fn packet_in_roundtrip() {
        roundtrip(OfMessage::PacketIn {
            buffer_id: 77,
            total_len: 60,
            in_port: 2,
            reason: PacketInReason::NoMatch,
            data: Bytes::from(vec![0xABu8; 60]),
        });
    }

    #[test]
    fn packet_out_roundtrip() {
        roundtrip(OfMessage::PacketOut {
            buffer_id: crate::OFP_NO_BUFFER,
            in_port: crate::ports::OFPP_NONE,
            actions: vec![Action::output(3), Action::output(4)],
            data: Bytes::from_static(b"lldp-probe-bytes"),
        });
        // Buffered variant: no data.
        roundtrip(OfMessage::PacketOut {
            buffer_id: 42,
            in_port: 1,
            actions: vec![Action::output(crate::ports::OFPP_FLOOD)],
            data: Bytes::new(),
        });
    }

    #[test]
    fn flow_mod_roundtrip() {
        roundtrip(OfMessage::FlowMod {
            of_match: OfMatch::ipv4_dst_prefix(Ipv4Addr::new(172, 31, 1, 0), 24),
            cookie: 0xFEED_F00D,
            command: FlowModCommand::Add,
            idle_timeout: 0,
            hard_timeout: 0,
            priority: 0x8000,
            buffer_id: crate::OFP_NO_BUFFER,
            out_port: crate::ports::OFPP_NONE,
            flags: OFPFF_SEND_FLOW_REM,
            actions: vec![
                Action::SetDlSrc(MacAddr([2, 0, 0, 0, 0, 1])),
                Action::SetDlDst(MacAddr([2, 0, 0, 0, 0, 2])),
                Action::output(2),
            ],
        });
    }

    #[test]
    fn flow_removed_roundtrip() {
        roundtrip(OfMessage::FlowRemoved {
            of_match: OfMatch::any(),
            cookie: 1,
            priority: 100,
            reason: FlowRemovedReason::IdleTimeout,
            duration_sec: 30,
            duration_nsec: 12345,
            idle_timeout: 10,
            packet_count: 99,
            byte_count: 9900,
        });
    }

    #[test]
    fn port_status_roundtrip() {
        roundtrip(OfMessage::PortStatus {
            reason: PortStatusReason::Modify,
            desc: PhyPort::new(3, MacAddr([2, 0, 0, 0, 0, 3]), "eth3"),
        });
    }

    #[test]
    fn stats_roundtrip() {
        roundtrip(OfMessage::StatsRequest {
            body: StatsBody::FlowRequest(FlowStatsRequest::all()),
        });
        roundtrip(OfMessage::StatsReply {
            body: StatsBody::DescReply(SwitchDesc {
                mfr_desc: "iMinds".into(),
                hw_desc: "sim".into(),
                sw_desc: "rf".into(),
                serial_num: "1".into(),
                dp_desc: "dp".into(),
            }),
        });
    }

    #[test]
    fn barrier_and_vendor() {
        roundtrip(OfMessage::BarrierRequest);
        roundtrip(OfMessage::BarrierReply);
        roundtrip(OfMessage::Vendor {
            vendor: 0x0026E1,
            data: Bytes::from_static(b"opaque"),
        });
    }

    #[test]
    fn encode_batch_concatenates_framed_messages() {
        let msgs = vec![
            OfMessage::FlowMod {
                of_match: OfMatch::ipv4_dst_prefix(Ipv4Addr::new(172, 31, 1, 0), 24),
                cookie: 1,
                command: FlowModCommand::Add,
                idle_timeout: 0,
                hard_timeout: 0,
                priority: 0x1010,
                buffer_id: crate::OFP_NO_BUFFER,
                out_port: crate::ports::OFPP_NONE,
                flags: 0,
                actions: vec![Action::output(1)],
            },
            OfMessage::FlowMod {
                of_match: OfMatch::ipv4_dst_prefix(Ipv4Addr::new(172, 31, 2, 0), 24),
                cookie: 2,
                command: FlowModCommand::DeleteStrict,
                idle_timeout: 0,
                hard_timeout: 0,
                priority: 0x1010,
                buffer_id: crate::OFP_NO_BUFFER,
                out_port: crate::ports::OFPP_NONE,
                flags: 0,
                actions: vec![],
            },
            OfMessage::BarrierRequest,
        ];
        let wire = OfMessage::encode_batch(&msgs, 100);
        // Byte-for-byte the concatenation of the individual encodings.
        let separate: Vec<u8> = msgs
            .iter()
            .enumerate()
            .flat_map(|(i, m)| m.encode(100 + i as u32).to_vec())
            .collect();
        assert_eq!(&wire[..], &separate[..]);
        // A standard reader walks the batch back into the messages.
        let mut offset = 0;
        let mut decoded = Vec::new();
        let mut xids = Vec::new();
        while offset < wire.len() {
            let (m, xid) = OfMessage::decode(&wire[offset..]).unwrap();
            let h = OfHeader::parse(&wire[offset..]).unwrap();
            offset += h.length as usize;
            decoded.push(m);
            xids.push(xid);
        }
        assert_eq!(decoded, msgs);
        assert_eq!(xids, vec![100, 101, 102]);
    }

    #[test]
    fn encode_batch_of_nothing_is_empty() {
        assert!(OfMessage::encode_batch(&[], 7).is_empty());
    }

    #[test]
    fn decode_rejects_truncated_body() {
        let wire = OfMessage::PacketIn {
            buffer_id: 1,
            total_len: 10,
            in_port: 1,
            reason: PacketInReason::NoMatch,
            data: Bytes::from_static(b"0123456789"),
        }
        .encode(1);
        // Claim full length but supply fewer bytes.
        assert_eq!(
            OfMessage::decode(&wire[..wire.len() - 4]),
            Err(OfError::Truncated)
        );
    }

    #[test]
    fn decoder_never_panics_on_byte_soup() {
        // Lightweight deterministic fuzz (proptest covers more in
        // tests/; this is the fast in-module smoke).
        let mut state = 0x12345678u64;
        for _ in 0..2000 {
            let len = (state % 128) as usize;
            let mut buf = Vec::with_capacity(len);
            for _ in 0..len {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                buf.push((state >> 33) as u8);
            }
            let _ = OfMessage::decode(&buf);
        }
    }
}
