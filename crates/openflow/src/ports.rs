//! Port numbers and the 48-byte `ofp_phy_port` description.

use crate::OfError;
use bytes::{BufMut, BytesMut};
use rf_wire::MacAddr;

/// OF 1.0 port numbers are 16-bit.
pub type PortNumber = u16;

/// Maximum number of physical ports.
pub const OFPP_MAX: PortNumber = 0xFF00;
/// Send back out the input port.
pub const OFPP_IN_PORT: PortNumber = 0xFFF8;
/// Submit to the flow table (PACKET_OUT only).
pub const OFPP_TABLE: PortNumber = 0xFFF9;
/// Legacy L2 processing (not implemented by our datapath).
pub const OFPP_NORMAL: PortNumber = 0xFFFA;
/// Flood: all physical ports except input and those configured out.
pub const OFPP_FLOOD: PortNumber = 0xFFFB;
/// All physical ports except input.
pub const OFPP_ALL: PortNumber = 0xFFFC;
/// Punt to the controller as PACKET_IN.
pub const OFPP_CONTROLLER: PortNumber = 0xFFFD;
/// The switch's local networking stack (unused here).
pub const OFPP_LOCAL: PortNumber = 0xFFFE;
/// Wildcard/none.
pub const OFPP_NONE: PortNumber = 0xFFFF;

/// Size of `ofp_phy_port` on the wire.
pub const OFP_PHY_PORT_LEN: usize = 48;

/// Port state bit: link is down.
pub const OFPPS_LINK_DOWN: u32 = 1 << 0;
/// Port config bit: port administratively down.
pub const OFPPC_PORT_DOWN: u32 = 1 << 0;

/// Description of one switch port (`ofp_phy_port`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhyPort {
    pub port_no: PortNumber,
    pub hw_addr: MacAddr,
    /// Up to 15 bytes + NUL on the wire.
    pub name: String,
    pub config: u32,
    pub state: u32,
    pub curr: u32,
    pub advertised: u32,
    pub supported: u32,
    pub peer: u32,
}

impl PhyPort {
    /// A standard 1 Gbps copper port, link up.
    pub fn new(port_no: PortNumber, hw_addr: MacAddr, name: impl Into<String>) -> PhyPort {
        PhyPort {
            port_no,
            hw_addr,
            name: name.into(),
            config: 0,
            state: 0,
            curr: 1 << 5, // OFPPF_1GB_FD
            advertised: 1 << 5,
            supported: 1 << 5,
            peer: 0,
        }
    }

    pub fn is_link_up(&self) -> bool {
        self.state & OFPPS_LINK_DOWN == 0
    }

    pub fn parse(data: &[u8]) -> Result<PhyPort, OfError> {
        if data.len() < OFP_PHY_PORT_LEN {
            return Err(OfError::Truncated);
        }
        let name_bytes = &data[8..24];
        let name_end = name_bytes.iter().position(|&b| b == 0).unwrap_or(16);
        let name = String::from_utf8_lossy(&name_bytes[..name_end]).into_owned();
        Ok(PhyPort {
            port_no: u16::from_be_bytes([data[0], data[1]]),
            hw_addr: MacAddr::from_bytes(&data[2..8]).map_err(|_| OfError::Truncated)?,
            name,
            config: u32::from_be_bytes([data[24], data[25], data[26], data[27]]),
            state: u32::from_be_bytes([data[28], data[29], data[30], data[31]]),
            curr: u32::from_be_bytes([data[32], data[33], data[34], data[35]]),
            advertised: u32::from_be_bytes([data[36], data[37], data[38], data[39]]),
            supported: u32::from_be_bytes([data[40], data[41], data[42], data[43]]),
            peer: u32::from_be_bytes([data[44], data[45], data[46], data[47]]),
        })
    }

    pub fn emit_into(&self, buf: &mut BytesMut) {
        buf.put_u16(self.port_no);
        buf.put_slice(self.hw_addr.as_bytes());
        let mut name = [0u8; 16];
        let n = self.name.len().min(15);
        name[..n].copy_from_slice(&self.name.as_bytes()[..n]);
        buf.put_slice(&name);
        buf.put_u32(self.config);
        buf.put_u32(self.state);
        buf.put_u32(self.curr);
        buf.put_u32(self.advertised);
        buf.put_u32(self.supported);
        buf.put_u32(self.peer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let p = PhyPort::new(7, MacAddr([2, 0, 0, 0, 0, 7]), "eth7");
        let mut b = BytesMut::new();
        p.emit_into(&mut b);
        assert_eq!(b.len(), OFP_PHY_PORT_LEN);
        assert_eq!(PhyPort::parse(&b).unwrap(), p);
    }

    #[test]
    fn long_name_truncated_to_15() {
        let p = PhyPort::new(1, MacAddr::ZERO, "a-very-long-interface-name");
        let mut b = BytesMut::new();
        p.emit_into(&mut b);
        let parsed = PhyPort::parse(&b).unwrap();
        assert_eq!(parsed.name.len(), 15);
        assert!(p.name.starts_with(&parsed.name));
    }

    #[test]
    fn link_state_bit() {
        let mut p = PhyPort::new(1, MacAddr::ZERO, "e1");
        assert!(p.is_link_up());
        p.state |= OFPPS_LINK_DOWN;
        assert!(!p.is_link_up());
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(PhyPort::parse(&[0u8; 47]), Err(OfError::Truncated));
    }

    #[test]
    fn reserved_port_numbers_distinct() {
        let all = [
            OFPP_IN_PORT,
            OFPP_TABLE,
            OFPP_NORMAL,
            OFPP_FLOOD,
            OFPP_ALL,
            OFPP_CONTROLLER,
            OFPP_LOCAL,
            OFPP_NONE,
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
            assert!(*a > OFPP_MAX);
        }
    }
}
