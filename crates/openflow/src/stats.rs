//! `STATS_REQUEST`/`STATS_REPLY` bodies (desc, flow, aggregate, table,
//! port).
//!
//! The experiment harness polls flow and port stats to verify that the
//! RouteFlow-installed entries actually carry the demo's video traffic.

use crate::actions::Action;
use crate::flow_match::{OfMatch, OFP_MATCH_LEN};
use crate::ports::PortNumber;
use crate::OfError;
use bytes::{BufMut, BytesMut};

fn put_fixed_str(buf: &mut BytesMut, s: &str, len: usize) {
    let bytes = s.as_bytes();
    let n = bytes.len().min(len - 1);
    buf.put_slice(&bytes[..n]);
    buf.put_bytes(0, len - n);
}

fn get_fixed_str(data: &[u8]) -> String {
    let end = data.iter().position(|&b| b == 0).unwrap_or(data.len());
    String::from_utf8_lossy(&data[..end]).into_owned()
}

/// `OFPST_DESC` reply body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SwitchDesc {
    pub mfr_desc: String,
    pub hw_desc: String,
    pub sw_desc: String,
    pub serial_num: String,
    pub dp_desc: String,
}

impl SwitchDesc {
    pub const WIRE_LEN: usize = 256 * 3 + 32 + 256;

    pub fn emit_into(&self, buf: &mut BytesMut) {
        put_fixed_str(buf, &self.mfr_desc, 256);
        put_fixed_str(buf, &self.hw_desc, 256);
        put_fixed_str(buf, &self.sw_desc, 256);
        put_fixed_str(buf, &self.serial_num, 32);
        put_fixed_str(buf, &self.dp_desc, 256);
    }

    pub fn parse(data: &[u8]) -> Result<SwitchDesc, OfError> {
        if data.len() < Self::WIRE_LEN {
            return Err(OfError::Truncated);
        }
        Ok(SwitchDesc {
            mfr_desc: get_fixed_str(&data[0..256]),
            hw_desc: get_fixed_str(&data[256..512]),
            sw_desc: get_fixed_str(&data[512..768]),
            serial_num: get_fixed_str(&data[768..800]),
            dp_desc: get_fixed_str(&data[800..1056]),
        })
    }
}

/// `OFPST_FLOW` / `OFPST_AGGREGATE` request body.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlowStatsRequest {
    pub of_match: OfMatch,
    /// 0xFF = all tables.
    pub table_id: u8,
    pub out_port: PortNumber,
}

impl FlowStatsRequest {
    pub const WIRE_LEN: usize = OFP_MATCH_LEN + 4;

    pub fn all() -> FlowStatsRequest {
        FlowStatsRequest {
            of_match: OfMatch::any(),
            table_id: 0xFF,
            out_port: crate::ports::OFPP_NONE,
        }
    }

    pub fn emit_into(&self, buf: &mut BytesMut) {
        self.of_match.emit_into(buf);
        buf.put_u8(self.table_id);
        buf.put_u8(0);
        buf.put_u16(self.out_port);
    }

    pub fn parse(data: &[u8]) -> Result<FlowStatsRequest, OfError> {
        if data.len() < Self::WIRE_LEN {
            return Err(OfError::Truncated);
        }
        Ok(FlowStatsRequest {
            of_match: OfMatch::parse(&data[..OFP_MATCH_LEN])?,
            table_id: data[OFP_MATCH_LEN],
            out_port: u16::from_be_bytes([data[OFP_MATCH_LEN + 2], data[OFP_MATCH_LEN + 3]]),
        })
    }
}

/// One entry in an `OFPST_FLOW` reply.
#[derive(Clone, Debug, PartialEq)]
pub struct FlowStatsEntry {
    pub table_id: u8,
    pub of_match: OfMatch,
    pub duration_sec: u32,
    pub duration_nsec: u32,
    pub priority: u16,
    pub idle_timeout: u16,
    pub hard_timeout: u16,
    pub cookie: u64,
    pub packet_count: u64,
    pub byte_count: u64,
    pub actions: Vec<Action>,
}

impl FlowStatsEntry {
    const FIXED: usize = 2 + 1 + 1 + OFP_MATCH_LEN + 4 + 4 + 2 + 2 + 2 + 6 + 8 + 8 + 8;

    pub fn emit_into(&self, buf: &mut BytesMut) {
        let len = Self::FIXED + Action::list_len(&self.actions);
        buf.put_u16(len as u16);
        buf.put_u8(self.table_id);
        buf.put_u8(0);
        self.of_match.emit_into(buf);
        buf.put_u32(self.duration_sec);
        buf.put_u32(self.duration_nsec);
        buf.put_u16(self.priority);
        buf.put_u16(self.idle_timeout);
        buf.put_u16(self.hard_timeout);
        buf.put_bytes(0, 6);
        buf.put_u64(self.cookie);
        buf.put_u64(self.packet_count);
        buf.put_u64(self.byte_count);
        Action::emit_list(&self.actions, buf);
    }

    /// Parse one entry; returns `(entry, bytes_consumed)`.
    pub fn parse(data: &[u8]) -> Result<(FlowStatsEntry, usize), OfError> {
        if data.len() < Self::FIXED {
            return Err(OfError::Truncated);
        }
        let len = u16::from_be_bytes([data[0], data[1]]) as usize;
        if len < Self::FIXED || len > data.len() {
            return Err(OfError::Malformed("flow stats entry length"));
        }
        let of_match = OfMatch::parse(&data[4..4 + OFP_MATCH_LEN])?;
        let o = 4 + OFP_MATCH_LEN;
        let be32 = |i: usize| u32::from_be_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
        let be16 = |i: usize| u16::from_be_bytes([data[i], data[i + 1]]);
        let be64 = |i: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&data[i..i + 8]);
            u64::from_be_bytes(b)
        };
        let entry = FlowStatsEntry {
            table_id: data[2],
            of_match,
            duration_sec: be32(o),
            duration_nsec: be32(o + 4),
            priority: be16(o + 8),
            idle_timeout: be16(o + 10),
            hard_timeout: be16(o + 12),
            cookie: be64(o + 20),
            packet_count: be64(o + 28),
            byte_count: be64(o + 36),
            actions: Action::parse_list(&data[Self::FIXED..len])?,
        };
        Ok((entry, len))
    }
}

/// `OFPST_AGGREGATE` reply body.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct AggregateStats {
    pub packet_count: u64,
    pub byte_count: u64,
    pub flow_count: u32,
}

impl AggregateStats {
    pub const WIRE_LEN: usize = 24;

    pub fn emit_into(&self, buf: &mut BytesMut) {
        buf.put_u64(self.packet_count);
        buf.put_u64(self.byte_count);
        buf.put_u32(self.flow_count);
        buf.put_u32(0);
    }

    pub fn parse(data: &[u8]) -> Result<AggregateStats, OfError> {
        if data.len() < Self::WIRE_LEN {
            return Err(OfError::Truncated);
        }
        let mut b8 = [0u8; 8];
        b8.copy_from_slice(&data[0..8]);
        let packet_count = u64::from_be_bytes(b8);
        b8.copy_from_slice(&data[8..16]);
        let byte_count = u64::from_be_bytes(b8);
        Ok(AggregateStats {
            packet_count,
            byte_count,
            flow_count: u32::from_be_bytes([data[16], data[17], data[18], data[19]]),
        })
    }
}

/// One entry in an `OFPST_TABLE` reply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableStats {
    pub table_id: u8,
    pub name: String,
    pub wildcards: u32,
    pub max_entries: u32,
    pub active_count: u32,
    pub lookup_count: u64,
    pub matched_count: u64,
}

impl TableStats {
    pub const WIRE_LEN: usize = 64;

    pub fn emit_into(&self, buf: &mut BytesMut) {
        buf.put_u8(self.table_id);
        buf.put_bytes(0, 3);
        put_fixed_str(buf, &self.name, 32);
        buf.put_u32(self.wildcards);
        buf.put_u32(self.max_entries);
        buf.put_u32(self.active_count);
        buf.put_u64(self.lookup_count);
        buf.put_u64(self.matched_count);
    }

    pub fn parse(data: &[u8]) -> Result<TableStats, OfError> {
        if data.len() < Self::WIRE_LEN {
            return Err(OfError::Truncated);
        }
        let mut b8 = [0u8; 8];
        b8.copy_from_slice(&data[48..56]);
        let lookup_count = u64::from_be_bytes(b8);
        b8.copy_from_slice(&data[56..64]);
        let matched_count = u64::from_be_bytes(b8);
        Ok(TableStats {
            table_id: data[0],
            name: get_fixed_str(&data[4..36]),
            wildcards: u32::from_be_bytes([data[36], data[37], data[38], data[39]]),
            max_entries: u32::from_be_bytes([data[40], data[41], data[42], data[43]]),
            active_count: u32::from_be_bytes([data[44], data[45], data[46], data[47]]),
            lookup_count,
            matched_count,
        })
    }
}

/// One entry in an `OFPST_PORT` reply.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct PortStats {
    pub port_no: PortNumber,
    pub rx_packets: u64,
    pub tx_packets: u64,
    pub rx_bytes: u64,
    pub tx_bytes: u64,
    pub rx_dropped: u64,
    pub tx_dropped: u64,
    pub rx_errors: u64,
    pub tx_errors: u64,
}

impl PortStats {
    pub const WIRE_LEN: usize = 104;

    pub fn emit_into(&self, buf: &mut BytesMut) {
        buf.put_u16(self.port_no);
        buf.put_bytes(0, 6);
        buf.put_u64(self.rx_packets);
        buf.put_u64(self.tx_packets);
        buf.put_u64(self.rx_bytes);
        buf.put_u64(self.tx_bytes);
        buf.put_u64(self.rx_dropped);
        buf.put_u64(self.tx_dropped);
        buf.put_u64(self.rx_errors);
        buf.put_u64(self.tx_errors);
        // rx_frame_err, rx_over_err, rx_crc_err, collisions: not modelled.
        buf.put_bytes(0, 32);
    }

    pub fn parse(data: &[u8]) -> Result<PortStats, OfError> {
        if data.len() < Self::WIRE_LEN {
            return Err(OfError::Truncated);
        }
        let be64 = |i: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&data[i..i + 8]);
            u64::from_be_bytes(b)
        };
        Ok(PortStats {
            port_no: u16::from_be_bytes([data[0], data[1]]),
            rx_packets: be64(8),
            tx_packets: be64(16),
            rx_bytes: be64(24),
            tx_bytes: be64(32),
            rx_dropped: be64(40),
            tx_dropped: be64(48),
            rx_errors: be64(56),
            tx_errors: be64(64),
        })
    }
}

/// A decoded stats request or reply body.
#[derive(Clone, Debug, PartialEq)]
pub enum StatsBody {
    DescRequest,
    DescReply(SwitchDesc),
    FlowRequest(FlowStatsRequest),
    FlowReply(Vec<FlowStatsEntry>),
    AggregateRequest(FlowStatsRequest),
    AggregateReply(AggregateStats),
    TableRequest,
    TableReply(Vec<TableStats>),
    /// `OFPP_NONE` = all ports.
    PortRequest(PortNumber),
    PortReply(Vec<PortStats>),
}

impl StatsBody {
    /// The `ofp_stats_types` value for this body.
    pub fn stats_type(&self) -> u16 {
        match self {
            StatsBody::DescRequest | StatsBody::DescReply(_) => 0,
            StatsBody::FlowRequest(_) | StatsBody::FlowReply(_) => 1,
            StatsBody::AggregateRequest(_) | StatsBody::AggregateReply(_) => 2,
            StatsBody::TableRequest | StatsBody::TableReply(_) => 3,
            StatsBody::PortRequest(_) | StatsBody::PortReply(_) => 4,
        }
    }

    pub fn emit_into(&self, buf: &mut BytesMut) {
        match self {
            StatsBody::DescRequest | StatsBody::TableRequest => {}
            StatsBody::DescReply(d) => d.emit_into(buf),
            StatsBody::FlowRequest(r) | StatsBody::AggregateRequest(r) => r.emit_into(buf),
            StatsBody::FlowReply(entries) => {
                for e in entries {
                    e.emit_into(buf);
                }
            }
            StatsBody::AggregateReply(a) => a.emit_into(buf),
            StatsBody::TableReply(tables) => {
                for t in tables {
                    t.emit_into(buf);
                }
            }
            StatsBody::PortRequest(p) => {
                buf.put_u16(*p);
                buf.put_bytes(0, 6);
            }
            StatsBody::PortReply(ports) => {
                for p in ports {
                    p.emit_into(buf);
                }
            }
        }
    }

    /// Decode a request body of `stats_type`.
    pub fn parse_request(stats_type: u16, data: &[u8]) -> Result<StatsBody, OfError> {
        Ok(match stats_type {
            0 => StatsBody::DescRequest,
            1 => StatsBody::FlowRequest(FlowStatsRequest::parse(data)?),
            2 => StatsBody::AggregateRequest(FlowStatsRequest::parse(data)?),
            3 => StatsBody::TableRequest,
            4 => {
                if data.len() < 8 {
                    return Err(OfError::Truncated);
                }
                StatsBody::PortRequest(u16::from_be_bytes([data[0], data[1]]))
            }
            _ => return Err(OfError::Malformed("unsupported stats type")),
        })
    }

    /// Decode a reply body of `stats_type`.
    pub fn parse_reply(stats_type: u16, data: &[u8]) -> Result<StatsBody, OfError> {
        Ok(match stats_type {
            0 => StatsBody::DescReply(SwitchDesc::parse(data)?),
            1 => {
                let mut entries = Vec::new();
                let mut off = 0;
                while off < data.len() {
                    let (e, used) = FlowStatsEntry::parse(&data[off..])?;
                    entries.push(e);
                    off += used;
                }
                StatsBody::FlowReply(entries)
            }
            2 => StatsBody::AggregateReply(AggregateStats::parse(data)?),
            3 => {
                let mut tables = Vec::new();
                let mut off = 0;
                while off + TableStats::WIRE_LEN <= data.len() {
                    tables.push(TableStats::parse(&data[off..])?);
                    off += TableStats::WIRE_LEN;
                }
                StatsBody::TableReply(tables)
            }
            4 => {
                let mut ports = Vec::new();
                let mut off = 0;
                while off + PortStats::WIRE_LEN <= data.len() {
                    ports.push(PortStats::parse(&data[off..])?);
                    off += PortStats::WIRE_LEN;
                }
                StatsBody::PortReply(ports)
            }
            _ => return Err(OfError::Malformed("unsupported stats type")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rf_wire::MacAddr;

    #[test]
    fn desc_roundtrip() {
        let d = SwitchDesc {
            mfr_desc: "rf-switch".into(),
            hw_desc: "simulated".into(),
            sw_desc: "0.1.0".into(),
            serial_num: "42".into(),
            dp_desc: "emulated OVS 1.4.1".into(),
        };
        let mut b = BytesMut::new();
        d.emit_into(&mut b);
        assert_eq!(b.len(), SwitchDesc::WIRE_LEN);
        assert_eq!(SwitchDesc::parse(&b).unwrap(), d);
    }

    #[test]
    fn flow_stats_entry_roundtrip() {
        let e = FlowStatsEntry {
            table_id: 0,
            of_match: OfMatch::ipv4_dst_prefix("10.1.0.0".parse().unwrap(), 16),
            duration_sec: 12,
            duration_nsec: 500,
            priority: 0x8000,
            idle_timeout: 0,
            hard_timeout: 0,
            cookie: 0xCAFE,
            packet_count: 1000,
            byte_count: 64_000,
            actions: vec![
                Action::SetDlSrc(MacAddr([2, 0, 0, 0, 0, 1])),
                Action::SetDlDst(MacAddr([2, 0, 0, 0, 0, 2])),
                Action::output(3),
            ],
        };
        let mut b = BytesMut::new();
        e.emit_into(&mut b);
        let (parsed, used) = FlowStatsEntry::parse(&b).unwrap();
        assert_eq!(used, b.len());
        assert_eq!(parsed, e);
    }

    #[test]
    fn flow_reply_with_multiple_entries() {
        let mk = |prio| FlowStatsEntry {
            table_id: 0,
            of_match: OfMatch::any(),
            duration_sec: 0,
            duration_nsec: 0,
            priority: prio,
            idle_timeout: 0,
            hard_timeout: 0,
            cookie: 0,
            packet_count: 0,
            byte_count: 0,
            actions: vec![Action::output(1)],
        };
        let body = StatsBody::FlowReply(vec![mk(1), mk(2), mk(3)]);
        let mut b = BytesMut::new();
        body.emit_into(&mut b);
        match StatsBody::parse_reply(1, &b).unwrap() {
            StatsBody::FlowReply(es) => {
                assert_eq!(es.len(), 3);
                assert_eq!(es[2].priority, 3);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn aggregate_and_table_and_port_roundtrip() {
        let a = AggregateStats {
            packet_count: 7,
            byte_count: 7000,
            flow_count: 3,
        };
        let mut b = BytesMut::new();
        a.emit_into(&mut b);
        assert_eq!(AggregateStats::parse(&b).unwrap(), a);

        let t = TableStats {
            table_id: 0,
            name: "classifier".into(),
            wildcards: 0x3FFFFF,
            max_entries: 1 << 20,
            active_count: 17,
            lookup_count: 100,
            matched_count: 90,
        };
        let mut b = BytesMut::new();
        t.emit_into(&mut b);
        assert_eq!(b.len(), TableStats::WIRE_LEN);
        assert_eq!(TableStats::parse(&b).unwrap(), t);

        let p = PortStats {
            port_no: 2,
            rx_packets: 10,
            tx_packets: 20,
            rx_bytes: 1000,
            tx_bytes: 2000,
            ..Default::default()
        };
        let mut b = BytesMut::new();
        p.emit_into(&mut b);
        assert_eq!(b.len(), PortStats::WIRE_LEN);
        assert_eq!(PortStats::parse(&b).unwrap(), p);
    }

    #[test]
    fn request_bodies_roundtrip() {
        let r = FlowStatsRequest::all();
        let mut b = BytesMut::new();
        r.emit_into(&mut b);
        assert_eq!(b.len(), FlowStatsRequest::WIRE_LEN);
        assert_eq!(FlowStatsRequest::parse(&b).unwrap(), r);

        let body = StatsBody::PortRequest(crate::ports::OFPP_NONE);
        let mut b = BytesMut::new();
        body.emit_into(&mut b);
        assert_eq!(StatsBody::parse_request(4, &b).unwrap(), body);
    }

    #[test]
    fn unknown_stats_type_rejected() {
        assert!(StatsBody::parse_request(0xFFFF, &[]).is_err());
        assert!(StatsBody::parse_reply(9, &[]).is_err());
    }
}
