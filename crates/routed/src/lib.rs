//! # rf-routed — the routing control platform (Quagga substitute)
//!
//! RouteFlow's whole premise is running an *unmodified* routing suite —
//! Quagga: `zebra` + `ospfd` (+ `bgpd`) — inside each VM and harvesting
//! its FIB. This crate reimplements the pieces the paper exercises:
//!
//! * [`rib`] — the `zebra` role: a routing information base with
//!   administrative distances, longest-prefix-match lookup and change
//!   notifications (the feed RouteFlow translates into flow entries);
//! * [`ospf`] — a full OSPFv2 (RFC 2328) point-to-point implementation:
//!   hello protocol, the neighbor state machine through
//!   ExStart/Exchange/Loading/Full with master/slave DBD negotiation,
//!   LSDB with sequence-number comparison and MaxAge aging, reliable
//!   flooding with retransmission, and Dijkstra SPF with configurable
//!   delay/hold timers — everything **sans-IO** (smoltcp style): the
//!   daemon consumes packets and clock ticks, and returns packets to
//!   send plus route updates;
//! * [`rip`] — RIPv2 with split horizon + poisoned reverse and
//!   triggered updates, as the alternative protocol for ablations;
//! * [`config`] — Quagga-style configuration files: the RPC server
//!   *writes* `zebra.conf` / `ospfd.conf` / `bgpd.conf` text and the
//!   daemons *parse it back* to configure themselves, because those
//!   files are precisely the artifact the paper automates (§1 item 4).
//!
//! Out of scope (documented in DESIGN.md): OSPF areas other than 0,
//! broadcast-network DR election (the virtual interconnect is all
//! point-to-point /30s), NBMA, authentication, virtual links; BGP
//! route exchange (only `bgpd.conf` generation and a session FSM stub).

pub mod config;
pub mod ospf;
pub mod rib;
pub mod rip;

pub use config::{BgpConfig, OspfConfig, VmRouterConfig, ZebraConfig};
pub use ospf::daemon::{OspfDaemon, OspfEvent};
pub use rib::{Rib, RibChange, Route, RouteProto};
