//! The sans-IO OSPF daemon.
//!
//! The daemon never touches sockets or clocks: callers feed it received
//! packets ([`OspfDaemon::handle_packet`]) and time
//! ([`OspfDaemon::tick`]), and it returns [`OspfEvent`]s — packets to
//! transmit and route-table updates. [`OspfDaemon::poll_at`] reports
//! the next instant `tick` needs to run (smoltcp's `poll_at` idiom), so
//! the embedding VM schedules exactly one timer.

use super::lsa::{Lsa, LsaBody, LsaHeader, LsaKey, RouterLink, RouterLinkType, INITIAL_SEQ};
use super::neighbor::{Neighbor, NeighborState};
use super::packet::{OspfPacket, OspfPacketBody, DBD_INIT, DBD_MASTER, DBD_MORE};
use super::spf;
use super::{ALL_SPF_ROUTERS, LS_REFRESH_TIME, MAX_AGE};
use crate::config::OspfConfig;
use crate::rib::Route;
use bytes::Bytes;
use rf_sim::Time;
use rf_wire::Ipv4Cidr;
use std::collections::{BTreeMap, HashMap};
use std::net::Ipv4Addr;
use std::time::Duration;

/// Output of the daemon.
#[derive(Clone, Debug)]
pub enum OspfEvent {
    /// Send an OSPF packet (raw OSPF bytes; the caller wraps them in
    /// IPv4 proto-89 from the interface address).
    Transmit {
        iface: u16,
        dst: Ipv4Addr,
        packet: Bytes,
    },
    /// The OSPF route set changed; replace all OSPF routes with this.
    RoutesChanged(Vec<Route>),
}

/// Interface table: a sorted-by-ifindex vector behind a BTreeMap-like
/// surface. Routers here have a handful of interfaces and
/// `handle_packet` consults the table several times per received
/// packet, so flat scans beat tree walks; iteration order (ascending
/// ifindex) is identical to the `BTreeMap` this replaces.
#[derive(Clone)]
struct IfaceTable {
    entries: Vec<(u16, Iface)>,
}

impl IfaceTable {
    fn new() -> IfaceTable {
        IfaceTable {
            entries: Vec::new(),
        }
    }

    fn insert(&mut self, idx: u16, iface: Iface) {
        match self.entries.binary_search_by_key(&idx, |e| e.0) {
            Ok(i) => self.entries[i].1 = iface,
            Err(i) => self.entries.insert(i, (idx, iface)),
        }
    }

    fn remove(&mut self, idx: &u16) -> Option<Iface> {
        match self.entries.binary_search_by_key(idx, |e| e.0) {
            Ok(i) => Some(self.entries.remove(i).1),
            Err(_) => None,
        }
    }

    fn get(&self, idx: &u16) -> Option<&Iface> {
        self.entries
            .binary_search_by_key(idx, |e| e.0)
            .ok()
            .map(|i| &self.entries[i].1)
    }

    fn get_mut(&mut self, idx: &u16) -> Option<&mut Iface> {
        self.entries
            .binary_search_by_key(idx, |e| e.0)
            .ok()
            .map(|i| &mut self.entries[i].1)
    }

    fn contains_key(&self, idx: &u16) -> bool {
        self.get(idx).is_some()
    }

    fn iter(&self) -> impl Iterator<Item = (&u16, &Iface)> {
        self.entries.iter().map(|(i, f)| (i, f))
    }

    fn iter_mut(&mut self) -> impl Iterator<Item = (&u16, &mut Iface)> {
        self.entries.iter_mut().map(|(i, f)| (&*i, f))
    }

    fn values(&self) -> impl Iterator<Item = &Iface> {
        self.entries.iter().map(|e| &e.1)
    }

    fn values_mut(&mut self) -> impl Iterator<Item = &mut Iface> {
        self.entries.iter_mut().map(|e| &mut e.1)
    }
}

impl std::ops::Index<&u16> for IfaceTable {
    type Output = Iface;
    fn index(&self, idx: &u16) -> &Iface {
        self.get(idx).expect("interface exists")
    }
}

impl<'a> IntoIterator for &'a IfaceTable {
    type Item = (&'a u16, &'a Iface);
    type IntoIter = std::iter::Map<
        std::slice::Iter<'a, (u16, Iface)>,
        fn(&'a (u16, Iface)) -> (&'a u16, &'a Iface),
    >;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter().map(|(i, f)| (i, f))
    }
}

#[derive(Clone)]
struct Iface {
    addr: Ipv4Cidr,
    cost: u16,
    next_hello: Time,
    neighbor: Option<Neighbor>,
    /// Cached emitted hello payload, keyed by the neighbor id it
    /// lists. Steady-state hellos are identical every interval; the
    /// payload is a pure function of fixed daemon parameters plus that
    /// key, so the cache can only ever reproduce what a fresh emit
    /// would.
    hello_cache: Option<(Option<u32>, Bytes)>,
}

/// The OSPF daemon for one router.
#[derive(Clone)]
pub struct OspfDaemon {
    router_id: u32,
    hello_interval: Duration,
    dead_interval: Duration,
    rxmt_interval: Duration,
    spf_delay: Duration,
    spf_hold: Duration,
    ifaces: IfaceTable,
    /// LSDB: key → (LSA as received/originated, install time).
    lsdb: BTreeMap<LsaKey, (Lsa, Time)>,
    /// Exact earliest MaxAge expiry across the LSDB (`Time::MAX` when
    /// empty). `poll_at` runs after every received packet, and scanning
    /// the whole LSDB there dominated the VM agents' event cost; all
    /// LSDB mutations go through [`Self::lsdb_set`]/[`Self::lsdb_unset`]
    /// to keep this cache exact (never early, never late).
    lsdb_min_expiry: Time,
    my_seq: i32,
    my_lsa_originated: Time,
    spf_due: Option<Time>,
    last_spf: Time,
    last_routes: Vec<Route>,
    /// Content hash of the previous SPF's inputs (live router LSAs +
    /// Full adjacencies). When a scheduled SPF sees the same
    /// fingerprint, the Dijkstra pass is skipped: identical inputs
    /// give identical routes, which are already in `last_routes`.
    /// LSA *refreshes* (same links, new seq) hit this cache, so on
    /// corpus-scale topologies most periodic SPF triggers are free.
    spf_fingerprint: Option<u64>,
    dd_counter: u32,
    /// Diagnostics.
    pub spf_runs: u64,
    /// SPF triggers answered from the fingerprint cache.
    pub spf_skipped: u64,
    pub lsas_flooded: u64,
}

/// One splitmix64 step — the fingerprint accumulator. Deterministic
/// across platforms and processes (unlike `DefaultHasher`, whose
/// algorithm is unspecified).
fn fp_mix(h: u64, v: u64) -> u64 {
    let mut z = (h ^ v).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl OspfDaemon {
    /// Build from a parsed `ospfd.conf` plus the interface table from
    /// `zebra.conf` (`(ifindex, address)`); only interfaces covered by
    /// a `network` statement run OSPF, per Quagga semantics.
    pub fn from_config(cfg: &OspfConfig, interfaces: &[(u16, Ipv4Cidr)]) -> OspfDaemon {
        let mut d = OspfDaemon {
            router_id: u32::from(cfg.router_id),
            hello_interval: Duration::from_secs(u64::from(cfg.hello_interval)),
            dead_interval: Duration::from_secs(u64::from(cfg.dead_interval)),
            rxmt_interval: Duration::from_secs(u64::from(cfg.retransmit_interval)),
            spf_delay: Duration::from_millis(u64::from(cfg.spf_timers.0)),
            spf_hold: Duration::from_millis(u64::from(cfg.spf_timers.1)),
            ifaces: IfaceTable::new(),
            lsdb: BTreeMap::new(),
            lsdb_min_expiry: Time::MAX,
            my_seq: INITIAL_SEQ,
            my_lsa_originated: Time::ZERO,
            spf_due: None,
            last_spf: Time::ZERO,
            last_routes: Vec::new(),
            spf_fingerprint: None,
            dd_counter: 0x1000,
            spf_runs: 0,
            spf_skipped: 0,
            lsas_flooded: 0,
        };
        for (idx, addr) in interfaces {
            let enabled = cfg
                .networks
                .iter()
                .any(|(net, _)| net.contains(addr.addr) || addr.contains(net.network()));
            if enabled {
                d.ifaces.insert(
                    *idx,
                    Iface {
                        addr: *addr,
                        cost: 10,
                        next_hello: Time::ZERO,
                        neighbor: None,
                        hello_cache: None,
                    },
                );
            }
        }
        d
    }

    pub fn router_id(&self) -> u32 {
        self.router_id
    }

    /// Effective (hello, dead) intervals — diagnostics for checking
    /// that deployment-level timer settings actually reached the VM.
    pub fn timers(&self) -> (Duration, Duration) {
        (self.hello_interval, self.dead_interval)
    }

    /// `(neighbor router id, state)` per interface.
    pub fn neighbors(&self) -> Vec<(u16, u32, NeighborState)> {
        self.ifaces
            .iter()
            .filter_map(|(i, f)| f.neighbor.as_ref().map(|n| (*i, n.id, n.state)))
            .collect()
    }

    /// True once every interface with a neighbor reached Full.
    pub fn all_adjacencies_full(&self) -> bool {
        self.ifaces
            .values()
            .filter_map(|f| f.neighbor.as_ref())
            .all(|n| n.state == NeighborState::Full)
    }

    pub fn lsdb_len(&self) -> usize {
        self.lsdb.len()
    }

    /// Outstanding link-state requests per interface (diagnostics: a
    /// neighbor stuck in `Loading` has a non-empty list here).
    pub fn pending_requests(&self) -> Vec<(u16, Vec<LsaKey>)> {
        self.ifaces
            .iter()
            .filter_map(|(i, f)| {
                f.neighbor
                    .as_ref()
                    .map(|n| (*i, n.ls_requests.iter().copied().collect()))
            })
            .collect()
    }

    /// Add an interface at runtime (a new virtual link was configured).
    pub fn add_interface(&mut self, idx: u16, addr: Ipv4Cidr, now: Time) -> Vec<OspfEvent> {
        self.ifaces.insert(
            idx,
            Iface {
                addr,
                cost: 10,
                next_hello: now,
                neighbor: None,
                hello_cache: None,
            },
        );
        let mut ev = Vec::new();
        self.originate_router_lsa(now, &mut ev);
        ev.extend(self.tick(now));
        ev
    }

    /// Remove an interface (link torn down).
    pub fn remove_interface(&mut self, idx: u16, now: Time) -> Vec<OspfEvent> {
        self.ifaces.remove(&idx);
        let mut ev = Vec::new();
        self.originate_router_lsa(now, &mut ev);
        self.schedule_spf(now);
        ev.extend(self.tick(now));
        ev
    }

    /// Start the daemon: originate the initial router LSA and send the
    /// first hellos.
    pub fn start(&mut self, now: Time) -> Vec<OspfEvent> {
        let mut ev = Vec::new();
        self.originate_router_lsa(now, &mut ev);
        for f in self.ifaces.values_mut() {
            f.next_hello = now;
        }
        ev.extend(self.tick(now));
        ev
    }

    /// Earliest time `tick` must run again.
    pub fn poll_at(&self) -> Option<Time> {
        let mut t = Time::MAX;
        for f in self.ifaces.values() {
            t = t.min(f.next_hello);
            if let Some(n) = &f.neighbor {
                t = t.min(n.last_heard + self.dead_interval);
                t = t.min(n.next_rxmt);
            }
        }
        if let Some(s) = self.spf_due {
            t = t.min(s);
        }
        // Own-LSA refresh.
        t = t.min(self.my_lsa_originated + Duration::from_secs(LS_REFRESH_TIME));
        // Earliest LSA MaxAge expiry (cached; kept exact by lsdb_set/unset).
        t = t.min(self.lsdb_min_expiry);
        if t == Time::MAX {
            None
        } else {
            Some(t)
        }
    }

    /// When this entry's effective age reaches MaxAge.
    fn entry_expiry(lsa: &Lsa, installed: Time) -> Time {
        installed + Duration::from_secs(u64::from(MAX_AGE.saturating_sub(lsa.header.age)))
    }

    /// Insert/replace an LSDB entry, keeping the min-expiry cache exact.
    fn lsdb_set(&mut self, key: LsaKey, lsa: Lsa, now: Time) {
        let new_exp = Self::entry_expiry(&lsa, now);
        let old = self.lsdb.insert(key, (lsa, now));
        if let Some((old_lsa, old_t)) = old {
            if Self::entry_expiry(&old_lsa, old_t) <= self.lsdb_min_expiry {
                // The replaced entry may have defined the minimum.
                self.recompute_min_expiry();
                return;
            }
        }
        self.lsdb_min_expiry = self.lsdb_min_expiry.min(new_exp);
    }

    /// Remove an LSDB entry, keeping the min-expiry cache exact.
    fn lsdb_unset(&mut self, key: &LsaKey) {
        if let Some((lsa, t)) = self.lsdb.remove(key) {
            if Self::entry_expiry(&lsa, t) <= self.lsdb_min_expiry {
                self.recompute_min_expiry();
            }
        }
    }

    fn recompute_min_expiry(&mut self) {
        self.lsdb_min_expiry = self
            .lsdb
            .values()
            .map(|(l, t)| Self::entry_expiry(l, *t))
            .fold(Time::MAX, Time::min);
    }

    fn effective_age(&self, key: &LsaKey, now: Time) -> u16 {
        match self.lsdb.get(key) {
            Some((lsa, installed)) => {
                let aged = u64::from(lsa.header.age) + now.since(*installed).as_secs();
                aged.min(u64::from(MAX_AGE)) as u16
            }
            None => MAX_AGE,
        }
    }

    fn my_key(&self) -> LsaKey {
        LsaKey {
            ls_type: 1,
            ls_id: self.router_id,
            adv_router: self.router_id,
        }
    }

    fn originate_router_lsa(&mut self, now: Time, ev: &mut Vec<OspfEvent>) {
        let mut links = Vec::new();
        for f in self.ifaces.values() {
            if let Some(n) = &f.neighbor {
                if n.state == NeighborState::Full {
                    links.push(RouterLink {
                        link_type: RouterLinkType::PointToPoint,
                        link_id: n.id,
                        link_data: u32::from(f.addr.addr),
                        metric: f.cost,
                    });
                }
            }
            links.push(RouterLink {
                link_type: RouterLinkType::Stub,
                link_id: u32::from(f.addr.network()),
                link_data: f.addr.mask(),
                metric: f.cost,
            });
        }
        let lsa = Lsa::router(self.router_id, self.my_seq, 0, links);
        self.my_seq += 1;
        self.my_lsa_originated = now;
        self.lsdb_set(self.my_key(), lsa.clone(), now);
        self.flood(&lsa, None, now, ev);
        self.schedule_spf(now);
    }

    fn schedule_spf(&mut self, now: Time) {
        if self.spf_due.is_none() {
            let due = (now + self.spf_delay).max(self.last_spf + self.spf_hold);
            self.spf_due = Some(due);
        }
    }

    /// True when `key`'s LSA participates in SPF right `now`.
    fn spf_live(&self, key: &LsaKey, lsa: &Lsa, now: Time) -> bool {
        key.ls_type == 1 && self.effective_age(key, now) < MAX_AGE && lsa.header.seq >= INITIAL_SEQ
    }

    fn run_spf(&mut self, now: Time, ev: &mut Vec<OspfEvent>) {
        self.spf_due = None;
        self.last_spf = now;
        self.spf_runs += 1;
        // Fingerprint everything `spf::compute` consumes — the content
        // of the live router LSAs (in LSDB order) and the Full
        // adjacencies (in ifindex order). Sequence numbers and ages are
        // deliberately excluded: they change on every refresh without
        // moving a single route.
        let mut fp: u64 = 0x243F_6A88_85A3_08D3;
        for (k, (lsa, _)) in &self.lsdb {
            if !self.spf_live(k, lsa, now) {
                continue;
            }
            fp = fp_mix(fp, u64::from(k.adv_router));
            let LsaBody::Router(body) = &lsa.body;
            for l in &body.links {
                let lt = match l.link_type {
                    RouterLinkType::PointToPoint => 1u64,
                    RouterLinkType::Stub => 2,
                };
                fp = fp_mix(fp, (u64::from(l.link_id) << 32) | u64::from(l.link_data));
                fp = fp_mix(fp, (lt << 16) | u64::from(l.metric));
            }
        }
        let mut adjacent: HashMap<u32, (u16, Ipv4Addr)> = HashMap::new();
        for (idx, f) in &self.ifaces {
            if let Some(n) = &f.neighbor {
                if n.state == NeighborState::Full {
                    fp = fp_mix(fp, (u64::from(n.id) << 16) | u64::from(*idx));
                    fp = fp_mix(fp, u64::from(u32::from(n.addr)));
                    adjacent.insert(n.id, (*idx, n.addr));
                }
            }
        }
        if self.spf_fingerprint == Some(fp) {
            // Same inputs ⇒ same routes ⇒ `routes != last_routes` is
            // false and no event would fire. Skip the Dijkstra pass.
            self.spf_skipped += 1;
            return;
        }
        self.spf_fingerprint = Some(fp);
        let router_lsas: BTreeMap<u32, Lsa> = self
            .lsdb
            .iter()
            .filter(|(k, (lsa, _))| self.spf_live(k, lsa, now))
            .map(|(k, (lsa, _))| (k.adv_router, lsa.clone()))
            .collect();
        let routes = spf::compute(&router_lsas, self.router_id, &adjacent);
        if routes != self.last_routes {
            self.last_routes = routes.clone();
            ev.push(OspfEvent::RoutesChanged(routes));
        }
    }

    fn transmit(&self, iface: u16, pkt: &OspfPacket, ev: &mut Vec<OspfEvent>) {
        ev.push(OspfEvent::Transmit {
            iface,
            dst: ALL_SPF_ROUTERS,
            packet: pkt.emit(),
        });
    }

    fn send_hello(&mut self, idx: u16, ev: &mut Vec<OspfEvent>) {
        let f = self.ifaces.get_mut(&idx).unwrap();
        let key = f.neighbor.as_ref().map(|n| n.id);
        if let Some((cached_key, payload)) = &f.hello_cache {
            if *cached_key == key {
                ev.push(OspfEvent::Transmit {
                    iface: idx,
                    dst: ALL_SPF_ROUTERS,
                    packet: payload.clone(),
                });
                return;
            }
        }
        let pkt = OspfPacket::new(
            self.router_id,
            OspfPacketBody::Hello {
                network_mask: f.addr.mask(),
                hello_interval: self.hello_interval.as_secs() as u16,
                dead_interval: self.dead_interval.as_secs() as u32,
                neighbors: key.map(|id| vec![id]).unwrap_or_default(),
            },
        );
        let payload = pkt.emit();
        self.ifaces.get_mut(&idx).unwrap().hello_cache = Some((key, payload.clone()));
        ev.push(OspfEvent::Transmit {
            iface: idx,
            dst: ALL_SPF_ROUTERS,
            packet: payload,
        });
    }

    /// Flood `lsa` on every adjacency except `except_iface`, adding it
    /// to retransmission lists.
    fn flood(&mut self, lsa: &Lsa, except_iface: Option<u16>, now: Time, ev: &mut Vec<OspfEvent>) {
        let key = lsa.header.key();
        let rxmt = self.rxmt_interval;
        let mut out = Vec::new();
        for (idx, f) in self.ifaces.iter_mut() {
            if Some(*idx) == except_iface {
                continue;
            }
            let Some(n) = f.neighbor.as_mut() else {
                continue;
            };
            if !n.floods() {
                continue;
            }
            n.retransmit.insert(key);
            if n.next_rxmt == Time::MAX {
                n.next_rxmt = now + rxmt;
            }
            out.push(*idx);
        }
        for idx in out {
            let pkt = OspfPacket::new(
                self.router_id,
                OspfPacketBody::LinkStateUpdate {
                    lsas: vec![lsa.clone()],
                },
            );
            self.transmit(idx, &pkt, ev);
            self.lsas_flooded += 1;
        }
    }

    fn start_exstart(&mut self, idx: u16, ev: &mut Vec<OspfEvent>, now: Time) {
        self.dd_counter += 1;
        let dd_seq = self.dd_counter;
        let (their_id, pkt) = {
            let f = self.ifaces.get_mut(&idx).unwrap();
            let n = f.neighbor.as_mut().unwrap();
            n.state = NeighborState::ExStart;
            n.we_are_master = self.router_id > n.id;
            n.dd_seq = dd_seq;
            n.next_rxmt = now + self.rxmt_interval;
            (
                n.id,
                OspfPacket::new(
                    self.router_id,
                    OspfPacketBody::DatabaseDescription {
                        mtu: 1500,
                        flags: DBD_INIT | DBD_MORE | DBD_MASTER,
                        dd_seq,
                        headers: vec![],
                    },
                ),
            )
        };
        let _ = their_id;
        self.transmit(idx, &pkt, ev);
    }

    /// Accept the peer as master of the DBD exchange: respond to its
    /// INIT DBD with our full summary echoing its sequence number, and
    /// enter Exchange as slave.
    fn become_slave_of(&mut self, idx: u16, dd_seq: u32, now: Time, ev: &mut Vec<OspfEvent>) {
        let summary = self.db_summary(now);
        {
            let f = self.ifaces.get_mut(&idx).unwrap();
            let n = f.neighbor.as_mut().unwrap();
            n.we_are_master = false;
            n.dd_seq = dd_seq;
            n.state = NeighborState::Exchange;
            n.next_rxmt = now + self.rxmt_interval;
        }
        let pkt = OspfPacket::new(
            self.router_id,
            OspfPacketBody::DatabaseDescription {
                mtu: 1500,
                flags: 0, // not master, no more
                dd_seq,
                headers: summary,
            },
        );
        self.transmit(idx, &pkt, ev);
    }

    /// Current LSDB summary (all headers, with effective ages).
    fn db_summary(&self, now: Time) -> Vec<LsaHeader> {
        self.lsdb
            .keys()
            .map(|k| {
                let mut h = self.lsdb[k].0.header;
                h.age = self.effective_age(k, now);
                h
            })
            .collect()
    }

    /// Build LS requests for headers newer than what we hold.
    fn note_summary(&self, headers: &[LsaHeader]) -> Vec<LsaKey> {
        headers
            .iter()
            .filter(|h| match self.lsdb.get(&h.key()) {
                None => true,
                Some((mine, _)) => h.is_newer_than(&mine.header),
            })
            .map(|h| h.key())
            .collect()
    }

    fn send_lsr(&mut self, idx: u16, ev: &mut Vec<OspfEvent>) {
        let keys: Vec<LsaKey> = {
            let f = &self.ifaces[&idx];
            let Some(n) = &f.neighbor else { return };
            n.ls_requests.iter().copied().collect()
        };
        if keys.is_empty() {
            return;
        }
        let pkt = OspfPacket::new(self.router_id, OspfPacketBody::LinkStateRequest { keys });
        self.transmit(idx, &pkt, ev);
    }

    fn maybe_finish_loading(&mut self, idx: u16, now: Time, ev: &mut Vec<OspfEvent>) {
        let done = {
            let f = self.ifaces.get_mut(&idx).unwrap();
            let Some(n) = f.neighbor.as_mut() else {
                return;
            };
            if n.state == NeighborState::Loading && n.ls_requests.is_empty() {
                n.state = NeighborState::Full;
                n.next_rxmt = if n.retransmit.is_empty() {
                    Time::MAX
                } else {
                    now + self.rxmt_interval
                };
                true
            } else {
                false
            }
        };
        if done {
            // The adjacency appears in our router LSA only now.
            self.originate_router_lsa(now, ev);
        }
    }

    fn enter_exchange_or_beyond(
        &mut self,
        idx: u16,
        requests: Vec<LsaKey>,
        now: Time,
        ev: &mut Vec<OspfEvent>,
    ) {
        {
            let f = self.ifaces.get_mut(&idx).unwrap();
            let Some(n) = f.neighbor.as_mut() else { return };
            n.ls_requests.extend(requests);
            n.state = NeighborState::Loading;
            n.next_rxmt = now + self.rxmt_interval;
        }
        self.send_lsr(idx, ev);
        self.maybe_finish_loading(idx, now, ev);
    }

    /// RFC 2328 §13 step 7: a received LSA instance satisfies pending
    /// link-state requests for that LSA on *every* adjacency, not just
    /// the one it arrived on (the instance may be flooded in from the
    /// other side of a ring while an LSR to the original neighbor is
    /// still outstanding). Equal instances count: the request asked for
    /// "at least this", and that is what arrived.
    fn satisfy_requests(&mut self, key: &LsaKey, now: Time, ev: &mut Vec<OspfEvent>) {
        let affected: Vec<u16> = self
            .ifaces
            .iter_mut()
            .filter_map(|(i, f)| {
                f.neighbor
                    .as_mut()
                    .and_then(|n| n.ls_requests.remove(key).then_some(*i))
            })
            .collect();
        for idx in affected {
            self.maybe_finish_loading(idx, now, ev);
        }
    }

    fn kill_neighbor(&mut self, idx: u16, now: Time, ev: &mut Vec<OspfEvent>) {
        if let Some(f) = self.ifaces.get_mut(&idx) {
            f.neighbor = None;
        }
        self.originate_router_lsa(now, ev);
        self.schedule_spf(now);
    }

    /// Process a received OSPF packet (raw OSPF bytes) from `src` on
    /// interface `idx`.
    pub fn handle_packet(
        &mut self,
        idx: u16,
        src: Ipv4Addr,
        data: &[u8],
        now: Time,
    ) -> Vec<OspfEvent> {
        let mut ev = Vec::new();
        let Ok(pkt) = OspfPacket::parse(data) else {
            return ev;
        };
        if pkt.router_id == self.router_id || pkt.area_id != 0 {
            return ev;
        }
        if !self.ifaces.contains_key(&idx) {
            return ev;
        }
        // Any packet from the neighbor refreshes the inactivity timer.
        if let Some(n) = self.ifaces.get_mut(&idx).unwrap().neighbor.as_mut() {
            if n.id == pkt.router_id {
                n.last_heard = now;
            }
        }
        match pkt.body {
            OspfPacketBody::Hello {
                hello_interval,
                dead_interval,
                neighbors,
                ..
            } => {
                if hello_interval != self.hello_interval.as_secs() as u16
                    || dead_interval != self.dead_interval.as_secs() as u32
                {
                    return ev; // timer mismatch: not a neighbor
                }
                let is_new = {
                    let f = self.ifaces.get_mut(&idx).unwrap();
                    match &mut f.neighbor {
                        Some(n) if n.id == pkt.router_id => false,
                        slot => {
                            *slot = Some(Neighbor::new(pkt.router_id, src, now));
                            true
                        }
                    }
                };
                if is_new {
                    // Reply promptly so the peer learns about us.
                    self.send_hello(idx, &mut ev);
                }
                let sees_us = neighbors.contains(&self.router_id);
                let state = self.ifaces[&idx].neighbor.as_ref().unwrap().state;
                if sees_us && state == NeighborState::Init {
                    self.start_exstart(idx, &mut ev, now);
                } else if !sees_us && state > NeighborState::Init {
                    // RFC 2328 §10.5 1-WayReceived: the neighbor no
                    // longer lists us in its hellos — it restarted or
                    // lost our adjacency. Fall back to Init, discarding
                    // all exchange state; the next 2-way hello restarts
                    // the DBD sequence from scratch.
                    {
                        let f = self.ifaces.get_mut(&idx).unwrap();
                        let n = f.neighbor.as_mut().unwrap();
                        n.state = NeighborState::Init;
                        n.db_summary.clear();
                        n.peer_has_more = true;
                        n.ls_requests.clear();
                        n.retransmit.clear();
                        n.next_rxmt = Time::MAX;
                    }
                    // The adjacency leaves our router LSA (only Full
                    // adjacencies are advertised) and SPF reroutes.
                    self.originate_router_lsa(now, &mut ev);
                }
            }
            OspfPacketBody::DatabaseDescription {
                flags,
                dd_seq,
                headers,
                ..
            } => {
                let Some(state) = self.ifaces[&idx].neighbor.as_ref().map(|n| n.state) else {
                    return ev;
                };
                let their_id = pkt.router_id;
                match state {
                    NeighborState::ExStart => {
                        if flags & (DBD_INIT | DBD_MASTER) == (DBD_INIT | DBD_MASTER)
                            && their_id > self.router_id
                        {
                            self.become_slave_of(idx, dd_seq, now, &mut ev);
                        } else if flags & DBD_MASTER == 0 {
                            // A slave response: only meaningful if we
                            // are master and the seq matches ours.
                            let (we_master, our_seq) = {
                                let n = self.ifaces[&idx].neighbor.as_ref().unwrap();
                                (n.we_are_master, n.dd_seq)
                            };
                            if we_master && dd_seq == our_seq {
                                // Their summary received; send ours.
                                let requests = self.note_summary(&headers);
                                let summary = self.db_summary(now);
                                let next_seq = our_seq + 1;
                                {
                                    let f = self.ifaces.get_mut(&idx).unwrap();
                                    let n = f.neighbor.as_mut().unwrap();
                                    n.dd_seq = next_seq;
                                    n.state = NeighborState::Exchange;
                                    n.next_rxmt = now + self.rxmt_interval;
                                }
                                let pkt = OspfPacket::new(
                                    self.router_id,
                                    OspfPacketBody::DatabaseDescription {
                                        mtu: 1500,
                                        flags: DBD_MASTER, // M=0: last
                                        dd_seq: next_seq,
                                        headers: summary,
                                    },
                                );
                                self.transmit(idx, &pkt, &mut ev);
                                self.enter_exchange_or_beyond(idx, requests, now, &mut ev);
                            }
                        }
                    }
                    NeighborState::Exchange | NeighborState::Loading | NeighborState::Full => {
                        if flags & DBD_INIT != 0 {
                            // RFC 2328 §10.6 SeqNumberMismatch: an INIT
                            // DBD in state >= Exchange means the peer
                            // restarted the exchange (a rebooted VM
                            // whose hellos never lapsed). Discard all
                            // exchange state and renegotiate from
                            // ExStart; if the sender is the higher
                            // router id we can answer it as slave right
                            // away, otherwise our own INIT DBD (sent by
                            // `start_exstart`) triggers the peer's
                            // mismatch handling symmetrically.
                            {
                                let f = self.ifaces.get_mut(&idx).unwrap();
                                let n = f.neighbor.as_mut().unwrap();
                                // Demote before re-originating: only
                                // Full adjacencies are advertised, so
                                // the state change must precede the
                                // LSA build or the fresh LSA would
                                // still carry the dead adjacency.
                                n.state = NeighborState::ExStart;
                                n.db_summary.clear();
                                n.peer_has_more = true;
                                n.ls_requests.clear();
                                n.retransmit.clear();
                            }
                            // The adjacency leaves Full: stop
                            // advertising it and reroute.
                            self.originate_router_lsa(now, &mut ev);
                            if flags & DBD_MASTER != 0 && their_id > self.router_id {
                                self.become_slave_of(idx, dd_seq, now, &mut ev);
                            } else {
                                self.start_exstart(idx, &mut ev, now);
                            }
                            return ev;
                        }
                        let we_master = self.ifaces[&idx]
                            .neighbor
                            .as_ref()
                            .map(|n| n.we_are_master)
                            .unwrap_or(false);
                        if !we_master && flags & DBD_MASTER != 0 {
                            // Master's summary DBD (seq n+1, M=0): note
                            // requests, send empty response, proceed.
                            let cur_seq = self.ifaces[&idx].neighbor.as_ref().unwrap().dd_seq;
                            if dd_seq == cur_seq + 1 || dd_seq == cur_seq {
                                let requests = if dd_seq == cur_seq + 1 {
                                    self.note_summary(&headers)
                                } else {
                                    Vec::new() // duplicate: just re-ack
                                };
                                {
                                    let f = self.ifaces.get_mut(&idx).unwrap();
                                    let n = f.neighbor.as_mut().unwrap();
                                    n.dd_seq = dd_seq;
                                }
                                let pkt = OspfPacket::new(
                                    self.router_id,
                                    OspfPacketBody::DatabaseDescription {
                                        mtu: 1500,
                                        flags: 0,
                                        dd_seq,
                                        headers: vec![],
                                    },
                                );
                                self.transmit(idx, &pkt, &mut ev);
                                if !requests.is_empty()
                                    || self.ifaces[&idx].neighbor.as_ref().unwrap().state
                                        == NeighborState::Exchange
                                {
                                    self.enter_exchange_or_beyond(idx, requests, now, &mut ev);
                                }
                            }
                        } else if we_master && flags & DBD_MASTER == 0 {
                            // Slave's final ack of our summary DBD.
                            let cur_seq = self.ifaces[&idx].neighbor.as_ref().unwrap().dd_seq;
                            if dd_seq == cur_seq {
                                let state = self.ifaces[&idx].neighbor.as_ref().unwrap().state;
                                if state == NeighborState::Exchange {
                                    self.enter_exchange_or_beyond(idx, Vec::new(), now, &mut ev);
                                }
                            }
                        }
                    }
                    _ => {}
                }
            }
            OspfPacketBody::LinkStateRequest { keys } => {
                let lsas: Vec<Lsa> = keys
                    .iter()
                    .filter_map(|k| {
                        self.lsdb
                            .get(k)
                            .map(|(l, _)| l.with_age(self.effective_age(k, now)))
                    })
                    .collect();
                if !lsas.is_empty() {
                    let pkt =
                        OspfPacket::new(self.router_id, OspfPacketBody::LinkStateUpdate { lsas });
                    self.transmit(idx, &pkt, &mut ev);
                }
            }
            OspfPacketBody::LinkStateUpdate { lsas } => {
                let mut acks = Vec::new();
                for lsa in lsas {
                    if !lsa.checksum_ok() {
                        continue;
                    }
                    let key = lsa.header.key();
                    let have = self.lsdb.get(&key).map(|(l, _)| l.header);
                    let newer = match have {
                        None => true,
                        Some(h) => {
                            let mut cur = h;
                            cur.age = self.effective_age(&key, now);
                            lsa.header.is_newer_than(&cur)
                        }
                    };
                    if newer {
                        if key.adv_router == self.router_id {
                            // Someone has a newer copy of *our* LSA:
                            // out-originate it (RFC 2328 §13.4). This
                            // also answers any pending request for that
                            // LSA — after a restart our own pre-reboot
                            // instance shows up in the peer's summary,
                            // and without clearing the request here the
                            // adjacency would sit in Loading forever.
                            self.my_seq = lsa.header.seq + 1;
                            acks.push(lsa.header);
                            self.originate_router_lsa(now, &mut ev);
                            self.satisfy_requests(&key, now, &mut ev);
                            self.maybe_finish_loading(idx, now, &mut ev);
                            continue;
                        }
                        if lsa.header.age >= MAX_AGE {
                            // Premature aging: remove if present.
                            self.lsdb_unset(&key);
                            acks.push(lsa.header);
                            self.schedule_spf(now);
                            continue;
                        }
                        self.lsdb_set(key, lsa.clone(), now);
                        acks.push(lsa.header);
                        self.flood(&lsa, Some(idx), now, &mut ev);
                        self.schedule_spf(now);
                        self.satisfy_requests(&key, now, &mut ev);
                        self.maybe_finish_loading(idx, now, &mut ev);
                    } else if have.map(|h| {
                        let mut cur = h;
                        cur.age = self.effective_age(&key, now);
                        !lsa.header.is_newer_than(&cur) && !cur.is_newer_than(&lsa.header)
                    }) == Some(true)
                    {
                        // Same instance: ack (implied ack handling).
                        acks.push(lsa.header);
                        if let Some(n) = self.ifaces.get_mut(&idx).unwrap().neighbor.as_mut() {
                            n.retransmit.remove(&key);
                        }
                        self.satisfy_requests(&key, now, &mut ev);
                    } else {
                        // We hold a newer instance: send it back.
                        if let Some((mine, _)) = self.lsdb.get(&key) {
                            let fresh = mine.with_age(self.effective_age(&key, now));
                            let pkt = OspfPacket::new(
                                self.router_id,
                                OspfPacketBody::LinkStateUpdate { lsas: vec![fresh] },
                            );
                            self.transmit(idx, &pkt, &mut ev);
                        }
                    }
                }
                if !acks.is_empty() {
                    let pkt = OspfPacket::new(
                        self.router_id,
                        OspfPacketBody::LinkStateAck { headers: acks },
                    );
                    self.transmit(idx, &pkt, &mut ev);
                }
            }
            OspfPacketBody::LinkStateAck { headers } => {
                let f = self.ifaces.get_mut(&idx).unwrap();
                if let Some(n) = f.neighbor.as_mut() {
                    for h in headers {
                        n.retransmit.remove(&h.key());
                    }
                    if n.retransmit.is_empty() && n.state == NeighborState::Full {
                        n.next_rxmt = Time::MAX;
                    }
                }
            }
        }
        ev
    }

    /// Run all timers due at `now`.
    pub fn tick(&mut self, now: Time) -> Vec<OspfEvent> {
        let mut ev = Vec::new();
        // Hellos.
        let due_hello: Vec<u16> = self
            .ifaces
            .iter()
            .filter(|(_, f)| f.next_hello <= now)
            .map(|(i, _)| *i)
            .collect();
        for idx in due_hello {
            self.send_hello(idx, &mut ev);
            let hi = self.hello_interval;
            self.ifaces.get_mut(&idx).unwrap().next_hello = now + hi;
        }
        // Dead neighbors.
        let dead: Vec<u16> = self
            .ifaces
            .iter()
            .filter(|(_, f)| {
                f.neighbor
                    .as_ref()
                    .is_some_and(|n| now.since(n.last_heard) >= self.dead_interval)
            })
            .map(|(i, _)| *i)
            .collect();
        for idx in dead {
            self.kill_neighbor(idx, now, &mut ev);
        }
        // Retransmissions.
        let rxmt_due: Vec<u16> = self
            .ifaces
            .iter()
            .filter(|(_, f)| f.neighbor.as_ref().is_some_and(|n| n.next_rxmt <= now))
            .map(|(i, _)| *i)
            .collect();
        for idx in rxmt_due {
            let (state, we_master, dd_seq, retrans_keys) = {
                let n = self.ifaces[&idx].neighbor.as_ref().unwrap();
                (
                    n.state,
                    n.we_are_master,
                    n.dd_seq,
                    n.retransmit.iter().copied().collect::<Vec<_>>(),
                )
            };
            match state {
                NeighborState::ExStart => {
                    let pkt = OspfPacket::new(
                        self.router_id,
                        OspfPacketBody::DatabaseDescription {
                            mtu: 1500,
                            flags: DBD_INIT | DBD_MORE | DBD_MASTER,
                            dd_seq,
                            headers: vec![],
                        },
                    );
                    self.transmit(idx, &pkt, &mut ev);
                }
                NeighborState::Exchange if we_master => {
                    let summary = self.db_summary(now);
                    let pkt = OspfPacket::new(
                        self.router_id,
                        OspfPacketBody::DatabaseDescription {
                            mtu: 1500,
                            flags: DBD_MASTER,
                            dd_seq,
                            headers: summary,
                        },
                    );
                    self.transmit(idx, &pkt, &mut ev);
                }
                NeighborState::Loading => {
                    self.send_lsr(idx, &mut ev);
                }
                _ => {}
            }
            // Unacked LSAs (any state ≥ Exchange).
            if !retrans_keys.is_empty() {
                let lsas: Vec<Lsa> = retrans_keys
                    .iter()
                    .filter_map(|k| {
                        self.lsdb
                            .get(k)
                            .map(|(l, _)| l.with_age(self.effective_age(k, now)))
                    })
                    .collect();
                if !lsas.is_empty() {
                    let pkt =
                        OspfPacket::new(self.router_id, OspfPacketBody::LinkStateUpdate { lsas });
                    self.transmit(idx, &pkt, &mut ev);
                }
            }
            let rxmt = self.rxmt_interval;
            if let Some(n) = self.ifaces.get_mut(&idx).unwrap().neighbor.as_mut() {
                let idle = n.state == NeighborState::Full && n.retransmit.is_empty();
                n.next_rxmt = if idle { Time::MAX } else { now + rxmt };
            }
        }
        // Own-LSA refresh.
        if now.since(self.my_lsa_originated).as_secs() >= LS_REFRESH_TIME {
            self.originate_router_lsa(now, &mut ev);
        }
        // Age out foreign LSAs. An entry can only have expired once
        // `now` reaches the cached earliest expiry, so the common tick
        // skips the scan entirely.
        if now >= self.lsdb_min_expiry {
            let expired: Vec<LsaKey> = self
                .lsdb
                .keys()
                .filter(|k| k.adv_router != self.router_id)
                .filter(|k| self.effective_age(k, now) >= MAX_AGE)
                .copied()
                .collect();
            if !expired.is_empty() {
                for k in expired {
                    self.lsdb_unset(&k);
                }
                self.schedule_spf(now);
            }
        }
        // SPF.
        if self.spf_due.is_some_and(|t| t <= now) {
            self.run_spf(now, &mut ev);
        }
        ev
    }
}
