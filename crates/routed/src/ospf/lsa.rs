//! Link-state advertisements: the router LSA, header encoding and the
//! Fletcher checksum.

use bytes::{Buf, BufMut, BytesMut};
use rf_wire::WireError;

/// Identifies an LSA instance class (type, link-state id, advertising
/// router) — the LSDB key.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LsaKey {
    pub ls_type: u8,
    pub ls_id: u32,
    pub adv_router: u32,
}

/// The 20-byte LSA header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LsaHeader {
    pub age: u16,
    pub options: u8,
    pub ls_type: u8,
    pub ls_id: u32,
    pub adv_router: u32,
    pub seq: i32,
    pub checksum: u16,
    pub length: u16,
}

pub const LSA_HEADER_LEN: usize = 20;
/// Initial sequence number (RFC 2328 §12.1.6).
pub const INITIAL_SEQ: i32 = -0x7FFF_FFFF; // 0x80000001

impl LsaHeader {
    pub fn key(&self) -> LsaKey {
        LsaKey {
            ls_type: self.ls_type,
            ls_id: self.ls_id,
            adv_router: self.adv_router,
        }
    }

    /// Is `self` a newer instance than `other` (same key assumed)?
    /// RFC 2328 §13.1, simplified: sequence, then checksum, then
    /// max-age preference, then younger age.
    pub fn is_newer_than(&self, other: &LsaHeader) -> bool {
        if self.seq != other.seq {
            return self.seq > other.seq;
        }
        if self.checksum != other.checksum {
            return self.checksum > other.checksum;
        }
        let self_max = self.age >= super::MAX_AGE;
        let other_max = other.age >= super::MAX_AGE;
        if self_max != other_max {
            return self_max;
        }
        self.age < other.age
    }

    pub fn parse(data: &[u8]) -> Result<LsaHeader, WireError> {
        if data.len() < LSA_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let mut b = data;
        Ok(LsaHeader {
            age: b.get_u16(),
            options: b.get_u8(),
            ls_type: b.get_u8(),
            ls_id: b.get_u32(),
            adv_router: b.get_u32(),
            seq: b.get_i32(),
            checksum: b.get_u16(),
            length: b.get_u16(),
        })
    }

    pub fn emit_into(&self, buf: &mut BytesMut) {
        buf.put_u16(self.age);
        buf.put_u8(self.options);
        buf.put_u8(self.ls_type);
        buf.put_u32(self.ls_id);
        buf.put_u32(self.adv_router);
        buf.put_i32(self.seq);
        buf.put_u16(self.checksum);
        buf.put_u16(self.length);
    }
}

/// Router-LSA link types (we use PointToPoint and Stub).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouterLinkType {
    /// link_id = neighbor router id, link_data = local interface addr.
    PointToPoint,
    /// link_id = network, link_data = mask.
    Stub,
}

impl RouterLinkType {
    fn to_u8(self) -> u8 {
        match self {
            RouterLinkType::PointToPoint => 1,
            RouterLinkType::Stub => 3,
        }
    }
    fn from_u8(v: u8) -> Result<Self, WireError> {
        match v {
            1 => Ok(RouterLinkType::PointToPoint),
            3 => Ok(RouterLinkType::Stub),
            // Transit (2) and virtual (4) never occur on a pure-p2p
            // area; reject loudly rather than mis-route.
            _ => Err(WireError::Unsupported),
        }
    }
}

/// One link inside a router LSA.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RouterLink {
    pub link_type: RouterLinkType,
    pub link_id: u32,
    pub link_data: u32,
    pub metric: u16,
}

/// Router-LSA body.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct RouterLsa {
    pub links: Vec<RouterLink>,
}

/// LSA bodies we implement (router LSAs only: a pure point-to-point
/// area 0 needs nothing else).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LsaBody {
    Router(RouterLsa),
}

/// A complete LSA.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Lsa {
    pub header: LsaHeader,
    pub body: LsaBody,
}

impl Lsa {
    /// Build a router LSA with a correct length and checksum.
    pub fn router(adv_router: u32, seq: i32, age: u16, links: Vec<RouterLink>) -> Lsa {
        let mut lsa = Lsa {
            header: LsaHeader {
                age,
                options: 0x02, // E-bit
                ls_type: 1,
                ls_id: adv_router,
                adv_router,
                seq,
                checksum: 0,
                length: 0,
            },
            body: LsaBody::Router(RouterLsa { links }),
        };
        lsa.finalize();
        lsa
    }

    /// Recompute `length` and `checksum`.
    pub fn finalize(&mut self) {
        let mut buf = BytesMut::new();
        self.emit_raw(&mut buf);
        self.header.length = buf.len() as u16;
        // Patch the length field (offset 18..20) and zero the checksum
        // field (offset 16..18) before computing.
        buf[18..20].copy_from_slice(&self.header.length.to_be_bytes());
        buf[16] = 0;
        buf[17] = 0;
        // The checksum covers the LSA minus the age field (first two
        // bytes); within that region the checksum sits at offset 14.
        self.header.checksum = fletcher_checksum(&buf[2..], 14);
    }

    fn emit_raw(&self, buf: &mut BytesMut) {
        self.header.emit_into(buf);
        match &self.body {
            LsaBody::Router(r) => {
                buf.put_u8(0); // flags
                buf.put_u8(0);
                buf.put_u16(r.links.len() as u16);
                for l in &r.links {
                    buf.put_u32(l.link_id);
                    buf.put_u32(l.link_data);
                    buf.put_u8(l.link_type.to_u8());
                    buf.put_u8(0); // #TOS
                    buf.put_u16(l.metric);
                }
            }
        }
    }

    /// Serialize (header fields must already be finalized).
    pub fn emit_into(&self, buf: &mut BytesMut) {
        self.emit_raw(buf);
    }

    pub fn wire_len(&self) -> usize {
        match &self.body {
            LsaBody::Router(r) => LSA_HEADER_LEN + 4 + 12 * r.links.len(),
        }
    }

    /// Parse one LSA; returns `(lsa, bytes_consumed)`.
    pub fn parse(data: &[u8]) -> Result<(Lsa, usize), WireError> {
        let header = LsaHeader::parse(data)?;
        let length = header.length as usize;
        if length < LSA_HEADER_LEN || data.len() < length {
            return Err(WireError::Truncated);
        }
        if header.ls_type != 1 {
            return Err(WireError::Unsupported);
        }
        let mut b = &data[LSA_HEADER_LEN..length];
        if b.len() < 4 {
            return Err(WireError::Truncated);
        }
        b.get_u16(); // flags + pad
        let n = b.get_u16() as usize;
        if b.len() < n * 12 {
            return Err(WireError::Truncated);
        }
        let mut links = Vec::with_capacity(n);
        for _ in 0..n {
            let link_id = b.get_u32();
            let link_data = b.get_u32();
            let lt = RouterLinkType::from_u8(b.get_u8())?;
            b.get_u8(); // #TOS
            let metric = b.get_u16();
            links.push(RouterLink {
                link_type: lt,
                link_id,
                link_data,
                metric,
            });
        }
        Ok((
            Lsa {
                header,
                body: LsaBody::Router(RouterLsa { links }),
            },
            length,
        ))
    }

    /// Verify the embedded Fletcher checksum.
    pub fn checksum_ok(&self) -> bool {
        let mut buf = BytesMut::new();
        self.emit_raw(&mut buf);
        fletcher_verify(&buf[2..])
    }

    /// Copy with an updated age.
    pub fn with_age(&self, age: u16) -> Lsa {
        let mut l = self.clone();
        l.header.age = age.min(super::MAX_AGE);
        l
    }
}

/// Fletcher checksum per RFC 905 Annex B as used by OSPF LSAs: computed
/// over the LSA *excluding* the age field, with the checksum field
/// zeroed. `ck_off` is the checksum field offset within `data`.
pub fn fletcher_checksum(data: &[u8], ck_off: usize) -> u16 {
    let mut c0: i64 = 0;
    let mut c1: i64 = 0;
    for &b in data {
        c0 = (c0 + i64::from(b)) % 255;
        c1 = (c1 + c0) % 255;
    }
    let len = data.len() as i64;
    let mut x = ((len - ck_off as i64 - 1) * c0 - c1) % 255;
    if x <= 0 {
        x += 255;
    }
    let mut y = 510 - c0 - x;
    if y > 255 {
        y -= 255;
    }
    ((x as u16) << 8) | y as u16
}

/// Verify data (checksum embedded) sums to zero.
pub fn fletcher_verify(data: &[u8]) -> bool {
    let mut c0: i64 = 0;
    let mut c1: i64 = 0;
    for &b in data {
        c0 = (c0 + i64::from(b)) % 255;
        c1 = (c1 + c0) % 255;
    }
    c0 == 0 && c1 == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Lsa {
        Lsa::router(
            0x0A00_0001,
            INITIAL_SEQ,
            0,
            vec![
                RouterLink {
                    link_type: RouterLinkType::PointToPoint,
                    link_id: 0x0A00_0002,
                    link_data: u32::from(std::net::Ipv4Addr::new(172, 31, 0, 1)),
                    metric: 10,
                },
                RouterLink {
                    link_type: RouterLinkType::Stub,
                    link_id: u32::from(std::net::Ipv4Addr::new(172, 31, 0, 0)),
                    link_data: 0xFFFF_FFFC,
                    metric: 10,
                },
            ],
        )
    }

    #[test]
    fn roundtrip_with_valid_checksum() {
        let lsa = sample();
        assert!(lsa.checksum_ok(), "fresh LSA must checksum");
        let mut buf = BytesMut::new();
        lsa.emit_into(&mut buf);
        assert_eq!(buf.len(), lsa.wire_len());
        assert_eq!(lsa.header.length as usize, buf.len());
        let (parsed, used) = Lsa::parse(&buf).unwrap();
        assert_eq!(used, buf.len());
        assert_eq!(parsed, lsa);
        assert!(parsed.checksum_ok());
    }

    #[test]
    fn corruption_breaks_checksum() {
        let lsa = sample();
        let mut buf = BytesMut::new();
        lsa.emit_into(&mut buf);
        buf[25] ^= 0x01; // a body byte
        let (parsed, _) = Lsa::parse(&buf).unwrap();
        assert!(!parsed.checksum_ok());
    }

    #[test]
    fn age_excluded_from_checksum() {
        let lsa = sample();
        let aged = lsa.with_age(300);
        assert_eq!(aged.header.checksum, lsa.header.checksum);
        assert!(aged.checksum_ok());
    }

    #[test]
    fn newer_comparison() {
        let a = sample();
        let mut b = a.clone();
        b.header.seq += 1;
        assert!(b.header.is_newer_than(&a.header));
        assert!(!a.header.is_newer_than(&b.header));
        // Equal seq: younger age wins.
        let young = a.with_age(5);
        let old = a.with_age(500);
        assert!(young.header.is_newer_than(&old.header));
        // MaxAge outranks.
        let dying = a.with_age(super::super::MAX_AGE);
        assert!(dying.header.is_newer_than(&young.header));
    }

    #[test]
    fn header_roundtrip() {
        let h = sample().header;
        let mut b = BytesMut::new();
        h.emit_into(&mut b);
        assert_eq!(LsaHeader::parse(&b).unwrap(), h);
    }

    #[test]
    fn rejects_unknown_body_type() {
        let mut buf = BytesMut::new();
        sample().emit_into(&mut buf);
        buf[3] = 5; // AS-external LSA
        assert_eq!(Lsa::parse(&buf).unwrap_err(), WireError::Unsupported);
    }
}
