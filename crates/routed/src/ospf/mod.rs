//! OSPFv2 (RFC 2328) for point-to-point networks, sans-IO.
//!
//! The virtual environment interconnects VMs with point-to-point /30
//! links, which is the easy-but-real corner of OSPF: no DR/BDR
//! election, no network LSAs. Everything else is implemented for real —
//! hello protocol with inactivity timers, the full neighbor FSM with
//! master/slave database description exchange, link-state request/
//! update/ack, reliable flooding with retransmission, LSA aging and
//! refresh, and Dijkstra SPF with throttling.

pub mod daemon;
pub mod lsa;
pub mod neighbor;
pub mod packet;
pub mod spf;

pub use daemon::{OspfDaemon, OspfEvent};
pub use lsa::{Lsa, LsaBody, LsaHeader, LsaKey, RouterLink, RouterLinkType, RouterLsa};
pub use neighbor::NeighborState;
pub use packet::{OspfPacket, OspfPacketBody};

/// The AllSPFRouters multicast address (224.0.0.5), destination of all
/// OSPF packets on point-to-point links.
pub const ALL_SPF_ROUTERS: std::net::Ipv4Addr = std::net::Ipv4Addr::new(224, 0, 0, 5);

/// LSA MaxAge (seconds).
pub const MAX_AGE: u16 = 3600;
/// LSA refresh interval (seconds).
pub const LS_REFRESH_TIME: u64 = 1800;
