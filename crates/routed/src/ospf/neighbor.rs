//! Neighbor state (RFC 2328 §10) for point-to-point interfaces.

use super::lsa::{LsaHeader, LsaKey};
use rf_sim::Time;
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

/// Neighbor FSM states. `TwoWay` is skipped on point-to-point links —
/// bidirectional communication goes straight to `ExStart` (RFC 2328
/// §10.4: p2p interfaces always form adjacencies).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum NeighborState {
    Down,
    Init,
    ExStart,
    Exchange,
    Loading,
    Full,
}

/// Per-neighbor adjacency state.
#[derive(Clone, Debug)]
pub struct Neighbor {
    /// The neighbor's router id.
    pub id: u32,
    /// Its interface address on this link (source of its packets).
    pub addr: Ipv4Addr,
    pub state: NeighborState,
    /// Last time any OSPF packet arrived from it (inactivity timer).
    pub last_heard: Time,
    /// Master/slave for the DBD exchange: higher router id is master.
    pub we_are_master: bool,
    /// DD sequence number in use.
    pub dd_seq: u32,
    /// Database summary still to be described to this neighbor.
    pub db_summary: Vec<LsaHeader>,
    /// Whether the peer has more DBDs to send (its last M bit).
    pub peer_has_more: bool,
    /// LSAs to request (Loading).
    pub ls_requests: BTreeSet<LsaKey>,
    /// LSAs flooded but not yet acked (retransmission list).
    pub retransmit: BTreeSet<LsaKey>,
    /// Next retransmission deadline (DBD in ExStart/Exchange, LSR in
    /// Loading, LSU retransmissions in Exchange+).
    pub next_rxmt: Time,
}

impl Neighbor {
    pub fn new(id: u32, addr: Ipv4Addr, now: Time) -> Neighbor {
        Neighbor {
            id,
            addr,
            state: NeighborState::Init,
            last_heard: now,
            we_are_master: false,
            dd_seq: 0,
            db_summary: Vec::new(),
            peer_has_more: true,
            ls_requests: BTreeSet::new(),
            retransmit: BTreeSet::new(),
            next_rxmt: Time::MAX,
        }
    }

    /// Adjacency is usable for flooding from Exchange onward.
    pub fn floods(&self) -> bool {
        self.state >= NeighborState::Exchange
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_ordering_matches_fsm_progression() {
        assert!(NeighborState::Down < NeighborState::Init);
        assert!(NeighborState::Init < NeighborState::ExStart);
        assert!(NeighborState::ExStart < NeighborState::Exchange);
        assert!(NeighborState::Exchange < NeighborState::Loading);
        assert!(NeighborState::Loading < NeighborState::Full);
    }

    #[test]
    fn flooding_eligibility() {
        let mut n = Neighbor::new(1, Ipv4Addr::new(10, 0, 0, 2), Time::ZERO);
        assert!(!n.floods());
        n.state = NeighborState::Exchange;
        assert!(n.floods());
        n.state = NeighborState::Full;
        assert!(n.floods());
    }
}
