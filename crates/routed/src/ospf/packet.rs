//! OSPFv2 packet encodings: the 24-byte common header plus Hello,
//! Database Description, Link State Request, Update and Ack bodies.

use super::lsa::{Lsa, LsaHeader, LsaKey, LSA_HEADER_LEN};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use rf_wire::{internet_checksum, WireError};
use std::net::Ipv4Addr;

pub const OSPF_HEADER_LEN: usize = 24;

/// DBD flag bits.
pub const DBD_INIT: u8 = 0x04;
pub const DBD_MORE: u8 = 0x02;
pub const DBD_MASTER: u8 = 0x01;

/// A parsed OSPF packet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OspfPacket {
    pub router_id: u32,
    pub area_id: u32,
    pub body: OspfPacketBody,
}

/// The five OSPFv2 packet types.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OspfPacketBody {
    Hello {
        network_mask: u32,
        hello_interval: u16,
        dead_interval: u32,
        neighbors: Vec<u32>,
    },
    DatabaseDescription {
        mtu: u16,
        flags: u8,
        dd_seq: u32,
        headers: Vec<LsaHeader>,
    },
    LinkStateRequest {
        keys: Vec<LsaKey>,
    },
    LinkStateUpdate {
        lsas: Vec<Lsa>,
    },
    LinkStateAck {
        headers: Vec<LsaHeader>,
    },
}

impl OspfPacketBody {
    fn type_code(&self) -> u8 {
        match self {
            OspfPacketBody::Hello { .. } => 1,
            OspfPacketBody::DatabaseDescription { .. } => 2,
            OspfPacketBody::LinkStateRequest { .. } => 3,
            OspfPacketBody::LinkStateUpdate { .. } => 4,
            OspfPacketBody::LinkStateAck { .. } => 5,
        }
    }
}

impl OspfPacket {
    pub fn new(router_id: u32, body: OspfPacketBody) -> OspfPacket {
        OspfPacket {
            router_id,
            area_id: 0, // backbone only
            body,
        }
    }

    pub fn emit(&self) -> Bytes {
        let mut body = BytesMut::new();
        match &self.body {
            OspfPacketBody::Hello {
                network_mask,
                hello_interval,
                dead_interval,
                neighbors,
            } => {
                body.put_u32(*network_mask);
                body.put_u16(*hello_interval);
                body.put_u8(0x02); // options: E
                body.put_u8(1); // router priority
                body.put_u32(*dead_interval);
                body.put_u32(0); // DR (none on p2p)
                body.put_u32(0); // BDR
                for n in neighbors {
                    body.put_u32(*n);
                }
            }
            OspfPacketBody::DatabaseDescription {
                mtu,
                flags,
                dd_seq,
                headers,
            } => {
                body.put_u16(*mtu);
                body.put_u8(0x02); // options
                body.put_u8(*flags);
                body.put_u32(*dd_seq);
                for h in headers {
                    h.emit_into(&mut body);
                }
            }
            OspfPacketBody::LinkStateRequest { keys } => {
                for k in keys {
                    body.put_u32(u32::from(k.ls_type));
                    body.put_u32(k.ls_id);
                    body.put_u32(k.adv_router);
                }
            }
            OspfPacketBody::LinkStateUpdate { lsas } => {
                body.put_u32(lsas.len() as u32);
                for l in lsas {
                    l.emit_into(&mut body);
                }
            }
            OspfPacketBody::LinkStateAck { headers } => {
                for h in headers {
                    h.emit_into(&mut body);
                }
            }
        }
        let total = OSPF_HEADER_LEN + body.len();
        let mut out = BytesMut::with_capacity(total);
        out.put_u8(2); // version
        out.put_u8(self.body.type_code());
        out.put_u16(total as u16);
        out.put_u32(self.router_id);
        out.put_u32(self.area_id);
        out.put_u16(0); // checksum placeholder
        out.put_u16(0); // autype: null
        out.put_u64(0); // authentication (null)
        out.put_slice(&body);
        // The checksum excludes the 64-bit authentication field; with
        // null auth those bytes are zero, so summing the whole packet
        // is equivalent.
        let ck = internet_checksum(&out);
        out[12..14].copy_from_slice(&ck.to_be_bytes());
        out.freeze()
    }

    pub fn parse(data: &[u8]) -> Result<OspfPacket, WireError> {
        if data.len() < OSPF_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        if data[0] != 2 {
            return Err(WireError::Unsupported);
        }
        let ptype = data[1];
        let length = u16::from_be_bytes([data[2], data[3]]) as usize;
        if length < OSPF_HEADER_LEN || length > data.len() {
            return Err(WireError::BadLength);
        }
        if internet_checksum(&data[..length]) != 0 {
            return Err(WireError::BadChecksum);
        }
        let router_id = u32::from_be_bytes([data[4], data[5], data[6], data[7]]);
        let area_id = u32::from_be_bytes([data[8], data[9], data[10], data[11]]);
        let mut b = &data[OSPF_HEADER_LEN..length];
        let body = match ptype {
            1 => {
                if b.len() < 20 {
                    return Err(WireError::Truncated);
                }
                let network_mask = b.get_u32();
                let hello_interval = b.get_u16();
                b.get_u8(); // options
                b.get_u8(); // priority
                let dead_interval = b.get_u32();
                b.get_u32(); // DR
                b.get_u32(); // BDR
                let mut neighbors = Vec::new();
                while b.len() >= 4 {
                    neighbors.push(b.get_u32());
                }
                OspfPacketBody::Hello {
                    network_mask,
                    hello_interval,
                    dead_interval,
                    neighbors,
                }
            }
            2 => {
                if b.len() < 8 {
                    return Err(WireError::Truncated);
                }
                let mtu = b.get_u16();
                b.get_u8(); // options
                let flags = b.get_u8();
                let dd_seq = b.get_u32();
                let mut headers = Vec::new();
                while b.len() >= LSA_HEADER_LEN {
                    headers.push(LsaHeader::parse(&b[..LSA_HEADER_LEN])?);
                    b.advance(LSA_HEADER_LEN);
                }
                OspfPacketBody::DatabaseDescription {
                    mtu,
                    flags,
                    dd_seq,
                    headers,
                }
            }
            3 => {
                let mut keys = Vec::new();
                while b.len() >= 12 {
                    let t = b.get_u32();
                    if t > 255 {
                        return Err(WireError::Malformed);
                    }
                    keys.push(LsaKey {
                        ls_type: t as u8,
                        ls_id: b.get_u32(),
                        adv_router: b.get_u32(),
                    });
                }
                OspfPacketBody::LinkStateRequest { keys }
            }
            4 => {
                if b.len() < 4 {
                    return Err(WireError::Truncated);
                }
                let n = b.get_u32() as usize;
                let mut lsas = Vec::with_capacity(n.min(64));
                for _ in 0..n {
                    let (lsa, used) = Lsa::parse(b)?;
                    lsas.push(lsa);
                    b.advance(used);
                }
                OspfPacketBody::LinkStateUpdate { lsas }
            }
            5 => {
                let mut headers = Vec::new();
                while b.len() >= LSA_HEADER_LEN {
                    headers.push(LsaHeader::parse(&b[..LSA_HEADER_LEN])?);
                    b.advance(LSA_HEADER_LEN);
                }
                OspfPacketBody::LinkStateAck { headers }
            }
            _ => return Err(WireError::Unsupported),
        };
        Ok(OspfPacket {
            router_id,
            area_id,
            body,
        })
    }

    /// Wrap into an IPv4 packet (protocol 89, TTL 1) ready for the wire.
    pub fn to_ipv4(&self, src: Ipv4Addr, dst: Ipv4Addr) -> rf_wire::Ipv4Packet {
        let mut p = rf_wire::Ipv4Packet::new(src, dst, rf_wire::IpProtocol::OSPF, self.emit());
        p.ttl = 1;
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ospf::lsa::{RouterLink, RouterLinkType, INITIAL_SEQ};

    fn roundtrip(p: OspfPacket) {
        let wire = p.emit();
        let parsed = OspfPacket::parse(&wire).unwrap();
        assert_eq!(parsed, p);
    }

    #[test]
    fn hello_roundtrip() {
        roundtrip(OspfPacket::new(
            0x0A00_0001,
            OspfPacketBody::Hello {
                network_mask: 0xFFFF_FFFC,
                hello_interval: 10,
                dead_interval: 40,
                neighbors: vec![0x0A00_0002, 0x0A00_0003],
            },
        ));
    }

    #[test]
    fn empty_hello_roundtrip() {
        roundtrip(OspfPacket::new(
            1,
            OspfPacketBody::Hello {
                network_mask: 0,
                hello_interval: 1,
                dead_interval: 4,
                neighbors: vec![],
            },
        ));
    }

    #[test]
    fn dbd_roundtrip() {
        let lsa = Lsa::router(7, INITIAL_SEQ, 0, vec![]);
        roundtrip(OspfPacket::new(
            7,
            OspfPacketBody::DatabaseDescription {
                mtu: 1500,
                flags: DBD_INIT | DBD_MORE | DBD_MASTER,
                dd_seq: 0x1234,
                headers: vec![lsa.header],
            },
        ));
    }

    #[test]
    fn lsr_lsu_ack_roundtrip() {
        let lsa = Lsa::router(
            9,
            INITIAL_SEQ + 5,
            17,
            vec![RouterLink {
                link_type: RouterLinkType::Stub,
                link_id: 0x0A000000,
                link_data: 0xFFFFFF00,
                metric: 1,
            }],
        );
        roundtrip(OspfPacket::new(
            9,
            OspfPacketBody::LinkStateRequest {
                keys: vec![lsa.header.key()],
            },
        ));
        roundtrip(OspfPacket::new(
            9,
            OspfPacketBody::LinkStateUpdate {
                lsas: vec![lsa.clone()],
            },
        ));
        roundtrip(OspfPacket::new(
            9,
            OspfPacketBody::LinkStateAck {
                headers: vec![lsa.header],
            },
        ));
    }

    #[test]
    fn checksum_enforced() {
        let wire = OspfPacket::new(
            1,
            OspfPacketBody::Hello {
                network_mask: 0,
                hello_interval: 10,
                dead_interval: 40,
                neighbors: vec![],
            },
        )
        .emit();
        let mut bad = wire.to_vec();
        bad[4] ^= 0xFF;
        assert_eq!(OspfPacket::parse(&bad), Err(WireError::BadChecksum));
    }

    #[test]
    fn wrong_version_rejected() {
        let wire = OspfPacket::new(
            1,
            OspfPacketBody::Hello {
                network_mask: 0,
                hello_interval: 10,
                dead_interval: 40,
                neighbors: vec![],
            },
        )
        .emit();
        let mut bad = wire.to_vec();
        bad[0] = 3;
        assert_eq!(OspfPacket::parse(&bad), Err(WireError::Unsupported));
    }

    #[test]
    fn ipv4_wrapping_sets_proto_and_ttl() {
        let p = OspfPacket::new(
            1,
            OspfPacketBody::Hello {
                network_mask: 0,
                hello_interval: 10,
                dead_interval: 40,
                neighbors: vec![],
            },
        );
        let ip = p.to_ipv4(Ipv4Addr::new(172, 31, 0, 1), crate::ospf::ALL_SPF_ROUTERS);
        assert_eq!(ip.protocol, rf_wire::IpProtocol::OSPF);
        assert_eq!(ip.ttl, 1);
        let wire = ip.emit();
        let back = rf_wire::Ipv4Packet::parse(&wire).unwrap();
        assert_eq!(OspfPacket::parse(&back.payload).unwrap(), p);
    }
}
