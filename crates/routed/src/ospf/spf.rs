//! Shortest-path-first calculation (RFC 2328 §16) over router LSAs.
//!
//! The area is pure point-to-point, so the SPF graph has only router
//! vertices. An edge A→B exists when A's router LSA advertises a
//! point-to-point link to B **and** B's advertises one back (the
//! bidirectional check of §16.1 step 2b). Stub links hang prefixes off
//! their router.

use super::lsa::{Lsa, LsaBody, RouterLinkType};
use crate::rib::{Route, RouteProto};
use rf_wire::Ipv4Cidr;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap};
use std::net::Ipv4Addr;

/// Input: the LSDB's router LSAs keyed by router id, the computing
/// router's id, and its directly-connected neighbor map
/// `neighbor router id → (out interface, neighbor interface address)`.
///
/// Output: OSPF candidate routes for every reachable stub prefix, with
/// next hops resolved through the first hop on each shortest path.
pub fn compute(
    router_lsas: &BTreeMap<u32, Lsa>,
    self_id: u32,
    adjacent: &HashMap<u32, (u16, Ipv4Addr)>,
) -> Vec<Route> {
    // Bidirectional adjacency graph.
    let mut edges: HashMap<u32, Vec<(u32, u16)>> = HashMap::new(); // from → (to, cost)
    for (&rid, lsa) in router_lsas {
        let LsaBody::Router(body) = &lsa.body;
        for link in &body.links {
            if link.link_type == RouterLinkType::PointToPoint {
                let to = link.link_id;
                // Check the reverse direction exists.
                let reverse_ok = router_lsas.get(&to).is_some_and(|peer| {
                    let LsaBody::Router(pb) = &peer.body;
                    pb.links
                        .iter()
                        .any(|l| l.link_type == RouterLinkType::PointToPoint && l.link_id == rid)
                });
                if reverse_ok {
                    edges.entry(rid).or_default().push((to, link.metric));
                }
            }
        }
    }

    // Dijkstra from self. `first_hop[rid]` = the adjacent router id the
    // shortest path leaves through.
    let mut dist: HashMap<u32, u32> = HashMap::new();
    let mut first_hop: HashMap<u32, u32> = HashMap::new();
    let mut heap: BinaryHeap<Reverse<(u32, u32, u32)>> = BinaryHeap::new(); // (dist, rid, fh)
    dist.insert(self_id, 0);
    heap.push(Reverse((0, self_id, self_id)));
    while let Some(Reverse((d, rid, fh))) = heap.pop() {
        if dist.get(&rid).copied().unwrap_or(u32::MAX) < d {
            continue;
        }
        if rid != self_id && !first_hop.contains_key(&rid) {
            first_hop.insert(rid, fh);
        }
        for &(to, cost) in edges.get(&rid).into_iter().flatten() {
            let nd = d + u32::from(cost);
            let better = match dist.get(&to) {
                None => true,
                Some(&old) => nd < old,
            };
            if better {
                dist.insert(to, nd);
                let hop = if rid == self_id { to } else { fh };
                heap.push(Reverse((nd, to, hop)));
            }
        }
    }

    // Routes: stub prefixes of every reachable remote router.
    let mut best: BTreeMap<(u32, u8), Route> = BTreeMap::new();
    for (&rid, lsa) in router_lsas {
        if rid == self_id {
            continue; // own stubs are connected routes
        }
        let Some(&d) = dist.get(&rid) else { continue };
        let Some(&fh) = first_hop.get(&rid) else {
            continue;
        };
        let Some(&(iface, nh_addr)) = adjacent.get(&fh) else {
            continue;
        };
        let LsaBody::Router(body) = &lsa.body;
        for link in &body.links {
            if link.link_type != RouterLinkType::Stub {
                continue;
            }
            let prefix_len = 32 - link.link_data.trailing_zeros() as u8;
            // A mask of 0 would be a default route; routers don't emit
            // those as stubs here, but guard anyway.
            let prefix = Ipv4Cidr::new(Ipv4Addr::from(link.link_id), prefix_len.min(32));
            let metric = d + u32::from(link.metric);
            let route = Route {
                prefix,
                next_hop: Some(nh_addr),
                out_iface: iface,
                proto: RouteProto::Ospf,
                metric,
            };
            let key = (u32::from(prefix.network()), prefix.prefix_len);
            match best.get(&key) {
                Some(existing) if existing.metric <= metric => {}
                _ => {
                    best.insert(key, route);
                }
            }
        }
    }
    best.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ospf::lsa::{RouterLink, INITIAL_SEQ};

    /// Build a router LSA for `rid` with p2p links `(to, cost, my_addr)`
    /// and stub links `(net, mask, cost)`.
    fn rlsa(rid: u32, p2p: &[(u32, u16, u32)], stubs: &[(u32, u32, u16)]) -> Lsa {
        let mut links = Vec::new();
        for &(to, cost, addr) in p2p {
            links.push(RouterLink {
                link_type: RouterLinkType::PointToPoint,
                link_id: to,
                link_data: addr,
                metric: cost,
            });
        }
        for &(net, mask, cost) in stubs {
            links.push(RouterLink {
                link_type: RouterLinkType::Stub,
                link_id: net,
                link_data: mask,
                metric: cost,
            });
        }
        Lsa::router(rid, INITIAL_SEQ, 0, links)
    }

    fn ip(s: &str) -> u32 {
        u32::from(s.parse::<Ipv4Addr>().unwrap())
    }

    /// Line: 1 —10— 2 —10— 3, each link a /30 stub on both ends.
    fn line_db() -> BTreeMap<u32, Lsa> {
        let mut db = BTreeMap::new();
        db.insert(
            1,
            rlsa(
                1,
                &[(2, 10, ip("10.0.0.1"))],
                &[(ip("10.0.0.0"), ip("255.255.255.252"), 10)],
            ),
        );
        db.insert(
            2,
            rlsa(
                2,
                &[(1, 10, ip("10.0.0.2")), (3, 10, ip("10.0.0.5"))],
                &[
                    (ip("10.0.0.0"), ip("255.255.255.252"), 10),
                    (ip("10.0.0.4"), ip("255.255.255.252"), 10),
                ],
            ),
        );
        db.insert(
            3,
            rlsa(
                3,
                &[(2, 10, ip("10.0.0.6"))],
                &[(ip("10.0.0.4"), ip("255.255.255.252"), 10)],
            ),
        );
        db
    }

    #[test]
    fn line_routes_from_end() {
        let db = line_db();
        let mut adj = HashMap::new();
        adj.insert(2u32, (1u16, "10.0.0.2".parse::<Ipv4Addr>().unwrap()));
        let routes = compute(&db, 1, &adj);
        // Remote stubs: 10.0.0.0/30 (via 2, metric 20) and 10.0.0.4/30.
        // 10.0.0.0/30 is also 2's stub — reachable at 10+10=20, but it
        // is our connected subnet; SPF still reports it (RIB prefers
        // connected).
        let far = routes
            .iter()
            .find(|r| r.prefix.to_string() == "10.0.0.4/30")
            .expect("far subnet reachable");
        assert_eq!(far.metric, 20, "10 to router 2 + 10 stub");
        assert_eq!(far.out_iface, 1);
        assert_eq!(far.next_hop, Some("10.0.0.2".parse().unwrap()));
    }

    #[test]
    fn unidirectional_links_are_ignored() {
        let mut db = line_db();
        // Router 3 stops advertising the link back to 2.
        db.insert(
            3,
            rlsa(3, &[], &[(ip("10.0.0.4"), ip("255.255.255.252"), 10)]),
        );
        let mut adj = HashMap::new();
        adj.insert(2u32, (1u16, "10.0.0.2".parse::<Ipv4Addr>().unwrap()));
        let routes = compute(&db, 1, &adj);
        // 10.0.0.4/30 is still advertised by router 2's stub, but router
        // 3 itself is unreachable; the /30 via 2 survives, anything only
        // behind 3 would not. Add a uniquely-3 stub to check:
        let mut db2 = line_db();
        db2.insert(
            3,
            rlsa(
                3,
                &[], // no link back
                &[(ip("192.168.99.0"), ip("255.255.255.0"), 1)],
            ),
        );
        let routes2 = compute(&db2, 1, &adj);
        assert!(
            !routes2
                .iter()
                .any(|r| r.prefix.to_string().starts_with("192.168.99")),
            "stub behind a one-way link must be unreachable"
        );
        let _ = routes;
    }

    #[test]
    fn ring_prefers_shorter_arc() {
        // Square 1-2-3-4-1, cost 10 per hop except 1-4 has cost 1.
        let mut db = BTreeMap::new();
        db.insert(
            1,
            rlsa(1, &[(2, 10, ip("10.0.1.1")), (4, 1, ip("10.0.4.2"))], &[]),
        );
        db.insert(
            2,
            rlsa(2, &[(1, 10, ip("10.0.1.2")), (3, 10, ip("10.0.2.1"))], &[]),
        );
        db.insert(
            3,
            rlsa(
                3,
                &[(2, 10, ip("10.0.2.2")), (4, 10, ip("10.0.3.1"))],
                &[(ip("172.16.3.0"), ip("255.255.255.0"), 1)],
            ),
        );
        db.insert(
            4,
            rlsa(4, &[(3, 10, ip("10.0.3.2")), (1, 1, ip("10.0.4.1"))], &[]),
        );
        let mut adj = HashMap::new();
        adj.insert(2u32, (1u16, "10.0.1.2".parse::<Ipv4Addr>().unwrap()));
        adj.insert(4u32, (2u16, "10.0.4.1".parse::<Ipv4Addr>().unwrap()));
        let routes = compute(&db, 1, &adj);
        let r = routes
            .iter()
            .find(|r| r.prefix.to_string() == "172.16.3.0/24")
            .unwrap();
        // Via 4: 1 + 10 + 1 = 12. Via 2: 10 + 10 + 1 = 21.
        assert_eq!(r.metric, 12);
        assert_eq!(r.out_iface, 2);
        assert_eq!(r.next_hop, Some("10.0.4.1".parse().unwrap()));
    }

    #[test]
    fn empty_db_yields_no_routes() {
        let routes = compute(&BTreeMap::new(), 1, &HashMap::new());
        assert!(routes.is_empty());
    }

    #[test]
    fn equal_cost_picks_deterministically() {
        // Two equal paths; result must be stable across runs.
        let mut db = BTreeMap::new();
        db.insert(1, rlsa(1, &[(2, 10, 1), (3, 10, 2)], &[]));
        db.insert(2, rlsa(2, &[(1, 10, 3), (4, 10, 4)], &[]));
        db.insert(3, rlsa(3, &[(1, 10, 5), (4, 10, 6)], &[]));
        db.insert(
            4,
            rlsa(
                4,
                &[(2, 10, 7), (3, 10, 8)],
                &[(ip("172.16.4.0"), ip("255.255.255.0"), 1)],
            ),
        );
        let mut adj = HashMap::new();
        adj.insert(2u32, (1u16, "10.0.0.2".parse::<Ipv4Addr>().unwrap()));
        adj.insert(3u32, (2u16, "10.0.0.3".parse::<Ipv4Addr>().unwrap()));
        let a = compute(&db, 1, &adj);
        let b = compute(&db, 1, &adj);
        assert_eq!(a, b);
        assert_eq!(a.iter().filter(|r| r.prefix.prefix_len == 24).count(), 1);
    }
}
