//! The RIB/FIB manager — the `zebra` role.
//!
//! Protocol daemons install candidate routes; the RIB picks the best
//! one per prefix (administrative distance, then metric) and reports
//! *changes* to the FIB. RouteFlow subscribes to exactly that change
//! stream: every FIB change on a VM becomes a FLOW_MOD on the mirrored
//! physical switch.

use rf_wire::Ipv4Cidr;
use std::collections::BTreeMap;
use std::fmt;
use std::net::Ipv4Addr;

/// Route origin, ordered by administrative distance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RouteProto {
    /// Directly connected interface subnet (distance 0).
    Connected,
    /// Operator-configured static route (distance 1).
    Static,
    /// OSPF-computed (distance 110).
    Ospf,
    /// RIP-computed (distance 120).
    Rip,
}

impl RouteProto {
    pub fn admin_distance(self) -> u8 {
        match self {
            RouteProto::Connected => 0,
            RouteProto::Static => 1,
            RouteProto::Ospf => 110,
            RouteProto::Rip => 120,
        }
    }
}

impl fmt::Display for RouteProto {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RouteProto::Connected => "connected",
            RouteProto::Static => "static",
            RouteProto::Ospf => "ospf",
            RouteProto::Rip => "rip",
        };
        f.write_str(s)
    }
}

/// One route.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Route {
    pub prefix: Ipv4Cidr,
    /// Next-hop IP; `None` for connected routes (deliver directly).
    pub next_hop: Option<Ipv4Addr>,
    /// Outgoing interface index (VM interface = switch port).
    pub out_iface: u16,
    pub proto: RouteProto,
    pub metric: u32,
}

impl Route {
    pub fn connected(prefix: Ipv4Cidr, out_iface: u16) -> Route {
        Route {
            prefix,
            next_hop: None,
            out_iface,
            proto: RouteProto::Connected,
            metric: 0,
        }
    }
}

/// A FIB change notification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RibChange {
    /// This route is now the best for its prefix (add or replace).
    Installed(Route),
    /// The prefix no longer has any route.
    Withdrawn(Ipv4Cidr),
}

/// Key: (network u32, prefix_len) — sortable, hashable.
type PrefixKey = (u32, u8);

fn key(p: Ipv4Cidr) -> PrefixKey {
    (u32::from(p.network()), p.prefix_len)
}

/// The routing information base.
#[derive(Clone, Default)]
pub struct Rib {
    /// All candidate routes per prefix.
    candidates: BTreeMap<PrefixKey, Vec<Route>>,
    /// The currently installed best route per prefix.
    fib: BTreeMap<PrefixKey, Route>,
}

impl Rib {
    pub fn new() -> Rib {
        Rib::default()
    }

    fn best(cands: &[Route]) -> Option<Route> {
        cands
            .iter()
            .min_by_key(|r| (r.proto.admin_distance(), r.metric))
            .copied()
    }

    fn refresh(&mut self, k: PrefixKey, changes: &mut Vec<RibChange>) {
        let best = self.candidates.get(&k).and_then(|c| Self::best(c));
        match (self.fib.get(&k).copied(), best) {
            (Some(old), Some(new)) if old != new => {
                self.fib.insert(k, new);
                changes.push(RibChange::Installed(new));
            }
            (None, Some(new)) => {
                self.fib.insert(k, new);
                changes.push(RibChange::Installed(new));
            }
            (Some(old), None) => {
                self.fib.remove(&k);
                changes.push(RibChange::Withdrawn(old.prefix));
            }
            _ => {}
        }
    }

    /// Add (or update) a candidate route. A protocol has at most one
    /// candidate per prefix; re-adding replaces it.
    pub fn add(&mut self, route: Route) -> Vec<RibChange> {
        let k = key(route.prefix);
        let cands = self.candidates.entry(k).or_default();
        cands.retain(|r| r.proto != route.proto);
        cands.push(route);
        let mut changes = Vec::new();
        self.refresh(k, &mut changes);
        changes
    }

    /// Remove a protocol's candidate for a prefix.
    pub fn remove(&mut self, prefix: Ipv4Cidr, proto: RouteProto) -> Vec<RibChange> {
        let k = key(prefix);
        if let Some(cands) = self.candidates.get_mut(&k) {
            cands.retain(|r| r.proto != proto);
            if cands.is_empty() {
                self.candidates.remove(&k);
            }
        }
        let mut changes = Vec::new();
        self.refresh(k, &mut changes);
        changes
    }

    /// Replace *all* routes of one protocol with a new set (the shape
    /// OSPF delivers after each SPF run). Emits the minimal diff.
    pub fn replace_protocol(&mut self, proto: RouteProto, routes: &[Route]) -> Vec<RibChange> {
        let mut changes = Vec::new();
        let new_keys: std::collections::HashSet<PrefixKey> =
            routes.iter().map(|r| key(r.prefix)).collect();
        // Remove stale candidates of this protocol.
        let stale: Vec<PrefixKey> = self
            .candidates
            .iter()
            .filter(|(k, cands)| cands.iter().any(|r| r.proto == proto) && !new_keys.contains(*k))
            .map(|(k, _)| *k)
            .collect();
        for k in stale {
            if let Some(cands) = self.candidates.get_mut(&k) {
                cands.retain(|r| r.proto != proto);
                if cands.is_empty() {
                    self.candidates.remove(&k);
                }
            }
            self.refresh(k, &mut changes);
        }
        // Install/update the new set.
        for r in routes {
            debug_assert_eq!(r.proto, proto);
            let k = key(r.prefix);
            let cands = self.candidates.entry(k).or_default();
            cands.retain(|c| c.proto != proto);
            cands.push(*r);
            self.refresh(k, &mut changes);
        }
        changes
    }

    /// Longest-prefix-match FIB lookup.
    pub fn lookup(&self, dst: Ipv4Addr) -> Option<Route> {
        self.fib
            .values()
            .filter(|r| r.prefix.contains(dst))
            .max_by_key(|r| r.prefix.prefix_len)
            .copied()
    }

    /// Snapshot of the installed FIB.
    pub fn fib(&self) -> Vec<Route> {
        self.fib.values().copied().collect()
    }

    pub fn fib_len(&self) -> usize {
        self.fib.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cidr(s: &str) -> Ipv4Cidr {
        s.parse().unwrap()
    }

    fn ospf(prefix: &str, hop: &str, iface: u16, metric: u32) -> Route {
        Route {
            prefix: cidr(prefix),
            next_hop: Some(hop.parse().unwrap()),
            out_iface: iface,
            proto: RouteProto::Ospf,
            metric,
        }
    }

    #[test]
    fn install_and_lookup_lpm() {
        let mut rib = Rib::new();
        rib.add(ospf("10.0.0.0/8", "1.1.1.1", 1, 10));
        rib.add(ospf("10.2.0.0/16", "2.2.2.2", 2, 10));
        let r = rib.lookup("10.2.3.4".parse().unwrap()).unwrap();
        assert_eq!(r.out_iface, 2, "longest prefix wins");
        let r = rib.lookup("10.9.9.9".parse().unwrap()).unwrap();
        assert_eq!(r.out_iface, 1);
        assert!(rib.lookup("192.168.0.1".parse().unwrap()).is_none());
    }

    #[test]
    fn admin_distance_prefers_connected() {
        let mut rib = Rib::new();
        let ch = rib.add(ospf("10.0.0.0/30", "9.9.9.9", 3, 5));
        assert_eq!(ch.len(), 1);
        let conn = Route::connected(cidr("10.0.0.0/30"), 1);
        let ch = rib.add(conn);
        assert_eq!(ch, vec![RibChange::Installed(conn)]);
        assert_eq!(
            rib.lookup("10.0.0.1".parse().unwrap()).unwrap().proto,
            RouteProto::Connected
        );
    }

    #[test]
    fn withdrawing_best_falls_back() {
        let mut rib = Rib::new();
        rib.add(ospf("10.0.0.0/24", "1.1.1.1", 1, 5));
        rib.add(Route {
            proto: RouteProto::Rip,
            ..ospf("10.0.0.0/24", "2.2.2.2", 2, 3)
        });
        assert_eq!(
            rib.lookup("10.0.0.1".parse().unwrap()).unwrap().proto,
            RouteProto::Ospf
        );
        let ch = rib.remove(cidr("10.0.0.0/24"), RouteProto::Ospf);
        assert_eq!(ch.len(), 1);
        assert!(matches!(ch[0], RibChange::Installed(r) if r.proto == RouteProto::Rip));
        let ch = rib.remove(cidr("10.0.0.0/24"), RouteProto::Rip);
        assert_eq!(ch, vec![RibChange::Withdrawn(cidr("10.0.0.0/24"))]);
        assert_eq!(rib.fib_len(), 0);
    }

    #[test]
    fn metric_breaks_ties_within_protocol_replace() {
        let mut rib = Rib::new();
        rib.add(ospf("10.1.0.0/16", "1.1.1.1", 1, 20));
        // Same proto re-add replaces candidate.
        let ch = rib.add(ospf("10.1.0.0/16", "2.2.2.2", 2, 10));
        assert_eq!(ch.len(), 1);
        assert_eq!(
            rib.lookup("10.1.0.1".parse().unwrap()).unwrap().out_iface,
            2
        );
    }

    #[test]
    fn replace_protocol_emits_minimal_diff() {
        let mut rib = Rib::new();
        rib.replace_protocol(
            RouteProto::Ospf,
            &[
                ospf("10.1.0.0/30", "1.1.1.1", 1, 10),
                ospf("10.2.0.0/30", "1.1.1.1", 1, 20),
            ],
        );
        assert_eq!(rib.fib_len(), 2);
        // Second SPF run: 10.1 unchanged, 10.2 metric changes, 10.3 new,
        // and (implicitly) nothing withdrawn.
        let ch = rib.replace_protocol(
            RouteProto::Ospf,
            &[
                ospf("10.1.0.0/30", "1.1.1.1", 1, 10),
                ospf("10.2.0.0/30", "2.2.2.2", 2, 15),
                ospf("10.3.0.0/30", "1.1.1.1", 1, 30),
            ],
        );
        assert_eq!(ch.len(), 2, "unchanged route must not re-notify: {ch:?}");
        // Third run drops 10.3.
        let ch = rib.replace_protocol(
            RouteProto::Ospf,
            &[
                ospf("10.1.0.0/30", "1.1.1.1", 1, 10),
                ospf("10.2.0.0/30", "2.2.2.2", 2, 15),
            ],
        );
        assert_eq!(ch, vec![RibChange::Withdrawn(cidr("10.3.0.0/30"))]);
    }

    #[test]
    fn connected_survives_protocol_replace() {
        let mut rib = Rib::new();
        rib.add(Route::connected(cidr("10.1.0.0/30"), 1));
        rib.replace_protocol(RouteProto::Ospf, &[ospf("10.1.0.0/30", "9.9.9.9", 2, 10)]);
        assert_eq!(
            rib.lookup("10.1.0.1".parse().unwrap()).unwrap().proto,
            RouteProto::Connected
        );
        let ch = rib.replace_protocol(RouteProto::Ospf, &[]);
        assert!(ch.is_empty(), "withdrawing a shadowed route is silent");
    }
}
