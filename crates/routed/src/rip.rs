//! RIPv2 (RFC 2453) — the alternative routing protocol for ablations.
//!
//! Sans-IO like the OSPF daemon: feed packets and ticks, get packets
//! and route updates back. RIP rides UDP port 520; the caller does the
//! UDP/IP wrapping. Implemented: periodic full updates, split horizon
//! with poisoned reverse, triggered updates on metric change, route
//! timeout (180 s) and garbage collection (120 s), infinity = 16.

use crate::rib::{Route, RouteProto};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use rf_sim::Time;
use rf_wire::{Ipv4Cidr, WireError};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::time::Duration;

/// RIP metric infinity.
pub const INFINITY: u32 = 16;
/// UDP port RIP rides on.
pub const RIP_PORT: u16 = 520;

/// One route entry on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RipEntry {
    pub prefix: Ipv4Cidr,
    pub next_hop: Ipv4Addr,
    pub metric: u32,
}

/// A RIP response packet (we only implement unsolicited responses —
/// request handling replies with the full table).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RipPacket {
    /// true = request, false = response.
    pub is_request: bool,
    pub entries: Vec<RipEntry>,
}

impl RipPacket {
    pub fn emit(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(4 + 20 * self.entries.len());
        b.put_u8(if self.is_request { 1 } else { 2 });
        b.put_u8(2); // version 2
        b.put_u16(0);
        for e in &self.entries {
            b.put_u16(2); // AF_INET
            b.put_u16(0); // route tag
            b.put_slice(&e.prefix.addr.octets());
            b.put_u32(e.prefix.mask());
            b.put_slice(&e.next_hop.octets());
            b.put_u32(e.metric);
        }
        b.freeze()
    }

    pub fn parse(mut data: &[u8]) -> Result<RipPacket, WireError> {
        if data.len() < 4 {
            return Err(WireError::Truncated);
        }
        let cmd = data.get_u8();
        let version = data.get_u8();
        data.get_u16();
        if version != 2 {
            return Err(WireError::Unsupported);
        }
        let is_request = match cmd {
            1 => true,
            2 => false,
            _ => return Err(WireError::Unsupported),
        };
        let mut entries = Vec::new();
        while data.len() >= 20 {
            let afi = data.get_u16();
            data.get_u16();
            let addr = Ipv4Addr::from(data.get_u32());
            let mask = data.get_u32();
            let next_hop = Ipv4Addr::from(data.get_u32());
            let metric = data.get_u32();
            if afi != 2 || metric > INFINITY {
                return Err(WireError::Malformed);
            }
            let prefix_len = (32 - mask.trailing_zeros().min(32)) as u8;
            entries.push(RipEntry {
                prefix: Ipv4Cidr::new(addr, prefix_len),
                next_hop,
                metric,
            });
        }
        Ok(RipPacket {
            is_request,
            entries,
        })
    }
}

/// Output events.
#[derive(Clone, Debug)]
pub enum RipEvent {
    /// Send `packet` (RIP bytes) out `iface` to 224.0.0.9:520.
    Transmit { iface: u16, packet: Bytes },
    /// Replace all RIP routes.
    RoutesChanged(Vec<Route>),
}

struct RipRoute {
    metric: u32,
    next_hop: Ipv4Addr,
    iface: u16,
    updated: Time,
    garbage: bool,
}

/// The RIP daemon.
pub struct RipDaemon {
    ifaces: BTreeMap<u16, Ipv4Cidr>,
    table: BTreeMap<(u32, u8), RipRoute>,
    next_update: Time,
    update_interval: Duration,
    timeout: Duration,
    garbage_time: Duration,
    triggered: bool,
}

impl RipDaemon {
    pub fn new(interfaces: &[(u16, Ipv4Cidr)]) -> RipDaemon {
        RipDaemon {
            ifaces: interfaces.iter().map(|(i, a)| (*i, *a)).collect(),
            table: BTreeMap::new(),
            next_update: Time::ZERO,
            update_interval: Duration::from_secs(30),
            timeout: Duration::from_secs(180),
            garbage_time: Duration::from_secs(120),
            triggered: false,
        }
    }

    pub fn poll_at(&self) -> Option<Time> {
        Some(self.next_update)
    }

    fn full_update_for(&self, out_iface: u16) -> RipPacket {
        let mut entries = Vec::new();
        // Connected subnets at metric 1.
        for addr in self.ifaces.values() {
            entries.push(RipEntry {
                prefix: Ipv4Cidr::new(addr.network(), addr.prefix_len),
                next_hop: Ipv4Addr::UNSPECIFIED,
                metric: 1,
            });
        }
        // Learned routes: split horizon with poisoned reverse.
        for ((net, plen), r) in &self.table {
            let metric = if r.iface == out_iface {
                INFINITY
            } else {
                r.metric
            };
            entries.push(RipEntry {
                prefix: Ipv4Cidr::new(Ipv4Addr::from(*net), *plen),
                next_hop: Ipv4Addr::UNSPECIFIED,
                metric,
            });
        }
        RipPacket {
            is_request: false,
            entries,
        }
    }

    fn routes(&self) -> Vec<Route> {
        self.table
            .iter()
            .filter(|(_, r)| r.metric < INFINITY && !r.garbage)
            .map(|((net, plen), r)| Route {
                prefix: Ipv4Cidr::new(Ipv4Addr::from(*net), *plen),
                next_hop: Some(r.next_hop),
                out_iface: r.iface,
                proto: RouteProto::Rip,
                metric: r.metric,
            })
            .collect()
    }

    /// Handle a RIP packet received on `iface` from `src`.
    pub fn handle_packet(
        &mut self,
        iface: u16,
        src: Ipv4Addr,
        data: &[u8],
        now: Time,
    ) -> Vec<RipEvent> {
        let mut ev = Vec::new();
        let Ok(pkt) = RipPacket::parse(data) else {
            return ev;
        };
        if pkt.is_request {
            ev.push(RipEvent::Transmit {
                iface,
                packet: self.full_update_for(iface).emit(),
            });
            return ev;
        }
        let mut changed = false;
        for e in pkt.entries {
            // Own subnets are always preferred as connected.
            if self
                .ifaces
                .values()
                .any(|a| a.network() == e.prefix.network() && a.prefix_len == e.prefix.prefix_len)
            {
                continue;
            }
            let metric = (e.metric + 1).min(INFINITY);
            let key = (u32::from(e.prefix.network()), e.prefix.prefix_len);
            match self.table.get_mut(&key) {
                Some(r) => {
                    let same_gw = r.next_hop == src && r.iface == iface;
                    if same_gw {
                        r.updated = now;
                        if metric != r.metric {
                            r.metric = metric;
                            r.garbage = metric >= INFINITY;
                            changed = true;
                        }
                    } else if metric < r.metric {
                        *r = RipRoute {
                            metric,
                            next_hop: src,
                            iface,
                            updated: now,
                            garbage: false,
                        };
                        changed = true;
                    }
                }
                None if metric < INFINITY => {
                    self.table.insert(
                        key,
                        RipRoute {
                            metric,
                            next_hop: src,
                            iface,
                            updated: now,
                            garbage: false,
                        },
                    );
                    changed = true;
                }
                None => {}
            }
        }
        if changed {
            self.triggered = true;
            ev.push(RipEvent::RoutesChanged(self.routes()));
            // Triggered update, rate-limited to the next tick in spirit;
            // here sent immediately for simplicity.
            let ifaces: Vec<u16> = self.ifaces.keys().copied().collect();
            for i in ifaces {
                ev.push(RipEvent::Transmit {
                    iface: i,
                    packet: self.full_update_for(i).emit(),
                });
            }
        }
        ev
    }

    /// Periodic processing.
    pub fn tick(&mut self, now: Time) -> Vec<RipEvent> {
        let mut ev = Vec::new();
        // Timeouts.
        let mut changed = false;
        for r in self.table.values_mut() {
            if !r.garbage && now.since(r.updated) >= self.timeout {
                r.metric = INFINITY;
                r.garbage = true;
                r.updated = now;
                changed = true;
            }
        }
        let garbage_time = self.garbage_time;
        self.table
            .retain(|_, r| !(r.garbage && now.since(r.updated) >= garbage_time));
        if changed {
            ev.push(RipEvent::RoutesChanged(self.routes()));
        }
        if now >= self.next_update {
            let ifaces: Vec<u16> = self.ifaces.keys().copied().collect();
            for i in ifaces {
                ev.push(RipEvent::Transmit {
                    iface: i,
                    packet: self.full_update_for(i).emit(),
                });
            }
            self.next_update = now + self.update_interval;
        }
        ev
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cidr(s: &str) -> Ipv4Cidr {
        s.parse().unwrap()
    }

    #[test]
    fn packet_roundtrip() {
        let p = RipPacket {
            is_request: false,
            entries: vec![
                RipEntry {
                    prefix: cidr("10.0.0.0/30"),
                    next_hop: Ipv4Addr::UNSPECIFIED,
                    metric: 1,
                },
                RipEntry {
                    prefix: cidr("172.16.0.0/16"),
                    next_hop: "10.0.0.1".parse().unwrap(),
                    metric: 16,
                },
            ],
        };
        assert_eq!(RipPacket::parse(&p.emit()).unwrap(), p);
    }

    #[test]
    fn metric_above_infinity_rejected() {
        let p = RipPacket {
            is_request: false,
            entries: vec![RipEntry {
                prefix: cidr("10.0.0.0/24"),
                next_hop: Ipv4Addr::UNSPECIFIED,
                metric: 1,
            }],
        };
        let mut bad = p.emit().to_vec();
        bad[23] = 99; // metric low byte
        assert!(RipPacket::parse(&bad).is_err());
    }

    #[test]
    fn learns_and_propagates_routes() {
        let mut d = RipDaemon::new(&[(1, cidr("10.0.0.1/30"))]);
        let update = RipPacket {
            is_request: false,
            entries: vec![RipEntry {
                prefix: cidr("172.16.0.0/24"),
                next_hop: Ipv4Addr::UNSPECIFIED,
                metric: 1,
            }],
        };
        let ev = d.handle_packet(1, "10.0.0.2".parse().unwrap(), &update.emit(), Time::ZERO);
        let routes = ev
            .iter()
            .find_map(|e| match e {
                RipEvent::RoutesChanged(r) => Some(r.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(routes.len(), 1);
        assert_eq!(routes[0].metric, 2);
        assert_eq!(routes[0].next_hop, Some("10.0.0.2".parse().unwrap()));
    }

    #[test]
    fn split_horizon_poisons_reverse() {
        let mut d = RipDaemon::new(&[(1, cidr("10.0.0.1/30")), (2, cidr("10.0.1.1/30"))]);
        let update = RipPacket {
            is_request: false,
            entries: vec![RipEntry {
                prefix: cidr("172.16.0.0/24"),
                next_hop: Ipv4Addr::UNSPECIFIED,
                metric: 1,
            }],
        };
        d.handle_packet(1, "10.0.0.2".parse().unwrap(), &update.emit(), Time::ZERO);
        let back = d.full_update_for(1);
        let towards = d.full_update_for(2);
        let find = |p: &RipPacket| {
            p.entries
                .iter()
                .find(|e| e.prefix == cidr("172.16.0.0/24"))
                .map(|e| e.metric)
        };
        assert_eq!(find(&back), Some(INFINITY), "poisoned reverse");
        assert_eq!(find(&towards), Some(2));
    }

    #[test]
    fn route_times_out() {
        let mut d = RipDaemon::new(&[(1, cidr("10.0.0.1/30"))]);
        let update = RipPacket {
            is_request: false,
            entries: vec![RipEntry {
                prefix: cidr("172.16.0.0/24"),
                next_hop: Ipv4Addr::UNSPECIFIED,
                metric: 1,
            }],
        };
        d.handle_packet(1, "10.0.0.2".parse().unwrap(), &update.emit(), Time::ZERO);
        let ev = d.tick(Time::from_secs(200));
        let routes = ev
            .iter()
            .find_map(|e| match e {
                RipEvent::RoutesChanged(r) => Some(r.clone()),
                _ => None,
            })
            .unwrap();
        assert!(routes.is_empty(), "timed-out route must vanish");
    }

    #[test]
    fn request_answered_with_full_table() {
        let mut d = RipDaemon::new(&[(1, cidr("10.0.0.1/30"))]);
        let req = RipPacket {
            is_request: true,
            entries: vec![],
        };
        let ev = d.handle_packet(1, "10.0.0.2".parse().unwrap(), &req.emit(), Time::ZERO);
        assert!(matches!(ev[0], RipEvent::Transmit { iface: 1, .. }));
    }

    #[test]
    fn better_metric_replaces_worse_gateway() {
        let mut d = RipDaemon::new(&[(1, cidr("10.0.0.1/30")), (2, cidr("10.0.1.1/30"))]);
        let mk = |metric| RipPacket {
            is_request: false,
            entries: vec![RipEntry {
                prefix: cidr("172.16.0.0/24"),
                next_hop: Ipv4Addr::UNSPECIFIED,
                metric,
            }],
        };
        d.handle_packet(1, "10.0.0.2".parse().unwrap(), &mk(5).emit(), Time::ZERO);
        d.handle_packet(2, "10.0.1.2".parse().unwrap(), &mk(1).emit(), Time::ZERO);
        let routes = d.routes();
        assert_eq!(routes[0].metric, 2);
        assert_eq!(routes[0].out_iface, 2);
    }
}
