//! OSPF convergence tests: multiple daemons wired together through a
//! tiny deterministic packet shuttle (no full simulator needed — the
//! daemons are sans-IO).

use rf_routed::config::OspfConfig;
use rf_routed::ospf::daemon::{OspfDaemon, OspfEvent};
use rf_routed::rib::RouteProto;
use rf_sim::Time;
use rf_wire::Ipv4Cidr;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::net::Ipv4Addr;

/// In-flight packet: (deliver at ns, seq, dst router, dst iface, bytes).
type QueuedPacket = (u64, u64, usize, u16, Vec<u8>);

/// (router index, iface) ↔ (router index, iface) wiring.
struct Net {
    daemons: Vec<OspfDaemon>,
    /// wires[i][iface] = (peer router, peer iface)
    wires: Vec<std::collections::HashMap<u16, (usize, u16)>>,
    /// iface addrs for wrapping (unused beyond bookkeeping).
    addrs: Vec<std::collections::HashMap<u16, Ipv4Cidr>>,
    queue: BinaryHeap<Reverse<QueuedPacket>>,
    seq: u64,
    now: Time,
    latency_ns: u64,
    /// Packet loss: drop every packet whose sequence number satisfies
    /// `seq % drop_modulo == 0` (deterministic loss for rxmt tests).
    drop_modulo: u64,
    dropped: u64,
    /// Latest RoutesChanged payload per router.
    routes: Vec<Vec<rf_routed::rib::Route>>,
}

impl Net {
    /// Build from a list of links `(a, b)` between router indices.
    /// Router ids are `10.0.0.(i+1)`; link k gets subnet
    /// `172.31.k*4/30` with a getting .1 and b getting .2.
    fn build(n: usize, links: &[(usize, usize)], hello: u16, dead: u16) -> Net {
        let mut ifaces: Vec<Vec<(u16, Ipv4Cidr)>> = vec![Vec::new(); n];
        let mut wires: Vec<std::collections::HashMap<u16, (usize, u16)>> =
            vec![Default::default(); n];
        let mut next_port = vec![1u16; n];
        for (k, &(a, b)) in links.iter().enumerate() {
            let base = 0xAC1F_0000u32 + (k as u32) * 4; // 172.31.0.0 + 4k
            let pa = next_port[a];
            next_port[a] += 1;
            let pb = next_port[b];
            next_port[b] += 1;
            ifaces[a].push((pa, Ipv4Cidr::new(Ipv4Addr::from(base + 1), 30)));
            ifaces[b].push((pb, Ipv4Cidr::new(Ipv4Addr::from(base + 2), 30)));
            wires[a].insert(pa, (b, pb));
            wires[b].insert(pb, (a, pa));
        }
        let daemons = (0..n)
            .map(|i| {
                let cfg = OspfConfig {
                    router_id: Ipv4Addr::from(0x0A00_0000u32 + i as u32 + 1),
                    networks: vec![("172.31.0.0/16".parse().unwrap(), 0)],
                    hello_interval: hello,
                    dead_interval: dead,
                    spf_timers: (200, 1000),
                    retransmit_interval: 5,
                };
                OspfDaemon::from_config(&cfg, &ifaces[i])
            })
            .collect();
        let addrs = ifaces.iter().map(|v| v.iter().copied().collect()).collect();
        Net {
            daemons,
            wires,
            addrs,
            queue: BinaryHeap::new(),
            seq: 0,
            now: Time::ZERO,
            latency_ns: 1_000_000, // 1 ms
            drop_modulo: 0,
            dropped: 0,
            routes: vec![Vec::new(); n],
        }
    }

    fn iface_addr(&self, router: usize, iface: u16) -> Ipv4Addr {
        self.addrs[router][&iface].addr
    }

    fn handle_events(&mut self, router: usize, events: Vec<OspfEvent>) {
        for ev in events {
            if let OspfEvent::RoutesChanged(r) = &ev {
                self.routes[router] = r.clone();
            }
            if let OspfEvent::Transmit { iface, packet, .. } = ev {
                self.seq += 1;
                if self.drop_modulo != 0 && self.seq.is_multiple_of(self.drop_modulo) {
                    self.dropped += 1;
                    continue;
                }
                if let Some(&(peer, peer_iface)) = self.wires[router].get(&iface) {
                    let at = self.now.as_nanos() + self.latency_ns;
                    self.queue
                        .push(Reverse((at, self.seq, peer, peer_iface, packet.to_vec())));
                }
            }
        }
    }

    fn start(&mut self) {
        for i in 0..self.daemons.len() {
            let ev = self.daemons[i].start(Time::ZERO);
            self.handle_events(i, ev);
        }
    }

    /// Run until `until`, interleaving packet delivery and ticks.
    fn run_until(&mut self, until: Time) {
        loop {
            // Next packet or next poll deadline, whichever first.
            let next_pkt = self.queue.peek().map(|Reverse((t, ..))| *t);
            let next_poll = self
                .daemons
                .iter()
                .filter_map(|d| d.poll_at())
                .map(|t| t.as_nanos().max(self.now.as_nanos() + 1))
                .min();
            let next = match (next_pkt, next_poll) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => break,
            };
            if next > until.as_nanos() {
                self.now = until;
                break;
            }
            self.now = Time::from_nanos(next);
            // Deliver due packets.
            while let Some(Reverse((t, ..))) = self.queue.peek() {
                if *t > next {
                    break;
                }
                let Reverse((_, _, router, iface, data)) = self.queue.pop().unwrap();
                // The wire may have been unplugged while the packet was
                // in flight; drop it in that case.
                let Some(&src_peer) = self.wires[router].get(&iface) else {
                    continue;
                };
                let src_addr = self.iface_addr(src_peer.0, src_peer.1);
                let ev = self.daemons[router].handle_packet(iface, src_addr, &data, self.now);
                self.handle_events(router, ev);
            }
            // Tick everyone (cheap; only due timers act).
            for i in 0..self.daemons.len() {
                let ev = self.daemons[i].tick(self.now);
                self.handle_events(i, ev);
            }
        }
    }

    fn all_full(&self) -> bool {
        self.daemons
            .iter()
            .all(|d| d.all_adjacencies_full() && !d.neighbors().is_empty())
    }

    /// Replace router `i` with a freshly booted daemon on the same
    /// addresses (a VM restart: all adjacency and LSDB state lost, the
    /// wire untouched). The neighbors' daemons are not told — they must
    /// notice from the protocol itself.
    fn restart_router(&mut self, i: usize) {
        let ifaces: Vec<(u16, Ipv4Cidr)> = self.addrs[i].iter().map(|(k, v)| (*k, *v)).collect();
        let cfg = OspfConfig {
            router_id: Ipv4Addr::from(0x0A00_0000u32 + i as u32 + 1),
            networks: vec![("172.31.0.0/16".parse().unwrap(), 0)],
            hello_interval: 1,
            dead_interval: 4,
            spf_timers: (200, 1000),
            retransmit_interval: 5,
        };
        self.daemons[i] = OspfDaemon::from_config(&cfg, &ifaces);
        let now = self.now;
        let ev = self.daemons[i].start(now);
        self.handle_events(i, ev);
    }

    /// Plug a new link between `a` and `b` at the current time (the
    /// runtime path a VM takes when the controller pushes a rewritten
    /// config with an extra interface).
    fn plug(&mut self, a: usize, b: usize, link_index: u32) {
        let base = 0xAC1F_0000u32 + link_index * 4;
        let pa = self.wires[a].keys().max().copied().unwrap_or(0) + 1;
        let pb = self.wires[b].keys().max().copied().unwrap_or(0) + 1;
        let addr_a = Ipv4Cidr::new(Ipv4Addr::from(base + 1), 30);
        let addr_b = Ipv4Cidr::new(Ipv4Addr::from(base + 2), 30);
        self.wires[a].insert(pa, (b, pb));
        self.wires[b].insert(pb, (a, pa));
        self.addrs[a].insert(pa, addr_a);
        self.addrs[b].insert(pb, addr_b);
        let now = self.now;
        let ev = self.daemons[a].add_interface(pa, addr_a, now);
        self.handle_events(a, ev);
        let ev = self.daemons[b].add_interface(pb, addr_b, now);
        self.handle_events(b, ev);
    }
}

#[test]
fn two_routers_reach_full_and_exchange_routes() {
    let mut net = Net::build(2, &[(0, 1)], 1, 4);
    net.start();
    net.run_until(Time::from_secs(10));
    assert!(
        net.all_full(),
        "adjacency must reach Full: {:?} {:?}",
        net.daemons[0].neighbors(),
        net.daemons[1].neighbors()
    );
    // Both have both router LSAs.
    assert_eq!(net.daemons[0].lsdb_len(), 2);
    assert_eq!(net.daemons[1].lsdb_len(), 2);
}

#[test]
fn line_of_four_converges_end_to_end() {
    let mut net = Net::build(4, &[(0, 1), (1, 2), (2, 3)], 1, 4);
    net.start();
    net.run_until(Time::from_secs(20));
    assert!(net.all_full());
    for d in &net.daemons {
        assert_eq!(d.lsdb_len(), 4, "full LSDB everywhere");
    }
    // Router 0 reaches the far subnet 172.31.0.8/30 (link 2-3) through
    // its single interface, two router hops away.
    let far = net.routes[0]
        .iter()
        .find(|r| r.prefix.to_string() == "172.31.0.8/30")
        .unwrap_or_else(|| panic!("far subnet missing: {:?}", net.routes[0]));
    assert_eq!(far.metric, 30, "10 + 10 + 10 stub");
    assert_eq!(far.out_iface, 1);
}

#[test]
fn routes_changed_events_reach_far_subnets() {
    let mut net = Net::build(3, &[(0, 1), (1, 2)], 1, 4);
    net.start();
    net.run_until(Time::from_secs(20));
    assert!(net.all_full());
    let far = net.routes[0]
        .iter()
        .find(|r| r.prefix.to_string() == "172.31.0.4/30")
        .unwrap_or_else(|| panic!("far subnet missing: {:?}", net.routes[0]));
    assert_eq!(far.proto, RouteProto::Ospf);
    assert_eq!(far.metric, 20);
    assert_eq!(far.out_iface, 1);
    assert_eq!(far.next_hop, Some("172.31.0.2".parse().unwrap()));
}

#[test]
fn ring_converges_and_survives_node_death() {
    let mut net = Net::build(4, &[(0, 1), (1, 2), (2, 3), (3, 0)], 1, 4);
    net.start();
    net.run_until(Time::from_secs(15));
    assert!(net.all_full());
    for d in &net.daemons {
        assert_eq!(d.lsdb_len(), 4);
    }
    // "Kill" router 3 by unplugging its wires: stop delivering to/from.
    net.wires[3].clear();
    net.wires[0].retain(|_, (peer, _)| *peer != 3);
    net.wires[1].retain(|_, (peer, _)| *peer != 3);
    net.wires[2].retain(|_, (peer, _)| *peer != 3);
    // After the dead interval, neighbors drop and LSAs re-originate.
    net.run_until(Time::from_secs(30));
    let n0: Vec<_> = net.daemons[0].neighbors();
    assert_eq!(
        n0.len(),
        1,
        "router 0 keeps only the neighbor toward 1: {n0:?}"
    );
}

#[test]
fn convergence_survives_packet_loss() {
    let mut net = Net::build(3, &[(0, 1), (1, 2)], 1, 4);
    net.drop_modulo = 7; // drop every 7th packet deterministically
    net.start();
    net.run_until(Time::from_secs(40));
    assert!(net.dropped > 0, "loss must actually occur");
    assert!(
        net.all_full(),
        "retransmission must repair loss: {:?} {:?} {:?}",
        net.daemons[0].neighbors(),
        net.daemons[1].neighbors(),
        net.daemons[2].neighbors()
    );
    for d in &net.daemons {
        assert_eq!(d.lsdb_len(), 3);
    }
}

/// Regression (RFC 2328 §13 step 7): an LSA instance arriving from one
/// neighbor must satisfy pending link-state requests for the same LSA
/// on *other* adjacencies too. A fresh router plugged into two already
/// converged peers at once requests the same LSAs over both new
/// adjacencies; whichever LSU processes first used to clear only its
/// own interface's request list, and the other peer's (now
/// equal-instance) answer never cleared anything — that adjacency hung
/// in Loading forever. This is exactly how the last-discovered link of
/// a ring deployment got stuck.
#[test]
fn parallel_adjacencies_requesting_same_lsas_both_reach_full() {
    let mut net = Net::build(3, &[(0, 1)], 1, 4);
    net.start();
    net.run_until(Time::from_secs(8));
    // Routers 0 and 1 are converged; router 2 is isolated.
    assert!(net.daemons[0].all_adjacencies_full());
    assert_eq!(net.daemons[2].neighbors().len(), 0);
    // Plug router 2 into both at the same instant: its LSR for the
    // {router-0, router-1} LSAs goes out on both adjacencies, and the
    // first answer races the second.
    net.plug(0, 2, 1);
    net.plug(1, 2, 2);
    net.run_until(Time::from_secs(40));
    assert!(
        net.all_full(),
        "both new adjacencies must leave Loading: {:?}",
        net.daemons
            .iter()
            .map(|d| d.neighbors())
            .collect::<Vec<_>>()
    );
    for d in &net.daemons {
        assert_eq!(d.lsdb_len(), 3, "complete LSDB after the late plug");
    }
}

/// RFC 2328 §10.5 1-WayReceived: when a neighbor's hello stops listing
/// us, the adjacency must fall back to Init — the peer restarted and
/// remembers nothing, so our Full state is a fiction. Injected
/// directly, because over a live wire the restarted peer usually hears
/// our hello first and its prompt reply already lists us again.
#[test]
fn hello_without_us_knocks_adjacency_back_to_init() {
    use rf_routed::ospf::neighbor::NeighborState;
    use rf_routed::ospf::packet::{OspfPacket, OspfPacketBody};

    let mut net = Net::build(2, &[(0, 1)], 1, 4);
    net.start();
    net.run_until(Time::from_secs(10));
    assert!(net.all_full(), "precondition: adjacency Full");

    let peer_id = u32::from(Ipv4Addr::new(10, 0, 0, 2));
    let hello = |neighbors: Vec<u32>| {
        OspfPacket::new(
            peer_id,
            OspfPacketBody::Hello {
                network_mask: 0xFFFF_FFFC,
                hello_interval: 1,
                dead_interval: 4,
                neighbors,
            },
        )
        .emit()
    };
    let src = net.iface_addr(1, 1);

    // The 1-way hello: the peer no longer knows us.
    let now = Time::from_millis(10_100);
    net.daemons[0].handle_packet(1, src, &hello(vec![]), now);
    let n0 = net.daemons[0].neighbors();
    assert_eq!(
        n0[0].2,
        NeighborState::Init,
        "hello without our router-id must knock the adjacency back to Init: {n0:?}"
    );

    // Bidirectionality restored: straight back into the DBD exchange
    // (point-to-point links skip TwoWay).
    let our_id = u32::from(Ipv4Addr::new(10, 0, 0, 1));
    let now = Time::from_millis(10_200);
    net.daemons[0].handle_packet(1, src, &hello(vec![our_id]), now);
    let n0 = net.daemons[0].neighbors();
    assert_eq!(n0[0].2, NeighborState::ExStart, "{n0:?}");
}

/// The scenario behind §10.5: a VM restarts, losing all OSPF state,
/// while its neighbor still holds a Full adjacency. Hellos keep
/// flowing, so the dead interval never fires — the 1-way fallback is
/// what clears the stale state and lets the pair renegotiate.
#[test]
fn neighbor_restart_reconverges_within_dead_interval() {
    let mut net = Net::build(2, &[(0, 1)], 1, 4);
    net.start();
    net.run_until(Time::from_secs(10));
    assert!(net.all_full(), "precondition: adjacency Full");

    net.restart_router(1);
    net.run_until(Time::from_secs(14));
    assert!(
        net.all_full(),
        "restart must reconverge: {:?} {:?}",
        net.daemons[0].neighbors(),
        net.daemons[1].neighbors()
    );
    assert_eq!(net.daemons[0].lsdb_len(), 2);
    assert_eq!(net.daemons[1].lsdb_len(), 2);
}

/// Periodic LSA refreshes (same links, new sequence number) must not
/// cost a Dijkstra pass: the SPF input fingerprint is unchanged, so
/// the daemon answers from its cache — and the route set must not
/// move while it does.
#[test]
fn lsa_refresh_hits_spf_fingerprint_cache() {
    let mut net = Net::build(3, &[(0, 1), (1, 2)], 1, 4);
    net.start();
    net.run_until(Time::from_secs(20));
    assert!(net.all_full());
    let routes_before = net.routes.clone();
    let runs_before: Vec<u64> = net.daemons.iter().map(|d| d.spf_runs).collect();
    // Past LS_REFRESH_TIME every router re-originates its LSA with
    // identical content; each flood schedules an SPF on the receivers.
    net.run_until(Time::from_secs(2000));
    assert!(net.all_full());
    for (i, d) in net.daemons.iter().enumerate() {
        assert!(
            d.spf_runs > runs_before[i],
            "refresh floods must still trigger SPF on router {i}"
        );
        assert!(
            d.spf_skipped > 0,
            "content-identical refresh must hit the fingerprint cache on router {i}"
        );
    }
    assert_eq!(net.routes, routes_before, "routes must not move");
}

#[test]
fn pan_european_scale_converges() {
    // 28 routers, 41 links (same shape as the paper's demo topology).
    let topo = rf_topo::pan_european();
    let links: Vec<(usize, usize)> = topo.edges().iter().map(|e| (e.a, e.b)).collect();
    let mut net = Net::build(28, &links, 1, 4);
    net.start();
    net.run_until(Time::from_secs(30));
    assert!(net.all_full(), "all 82 adjacencies Full");
    for d in &net.daemons {
        assert_eq!(d.lsdb_len(), 28, "complete LSDB on every router");
    }
}
