//! The RPC client agent: a store-and-forward relay between the
//! topology controller and the RPC server.
//!
//! The paper separates the RPC client from the topology controller "to
//! share the load of automatic configuration of RouteFlow". The relay
//! provides at-least-once delivery toward the RPC server: every request
//! is retransmitted until its ack arrives, including across server
//! reconnects, and requests are forwarded in submission order.

use crate::codec::{encode_envelope, Envelope, RpcFrameReader};
use crate::msg::RpcRequest;
use crate::{RPC_CLIENT_SERVICE, RPC_SERVER_SERVICE};
use rf_sim::{Agent, AgentId, ConnId, ConnProfile, Ctx, StreamEvent};
use std::collections::VecDeque;
use std::time::Duration;

const T_RETX: u64 = 1;
const T_RECONNECT: u64 = 2;

/// Configuration of the relay.
#[derive(Clone, Debug)]
pub struct RpcClientConfig {
    /// The RF-controller hosting the RPC server.
    pub server: AgentId,
    /// Retransmission timeout for unacked requests.
    pub retransmit: Duration,
    /// Reconnect backoff after losing the server connection.
    pub reconnect_backoff: Duration,
    /// Stream profile toward the server.
    pub conn: ConnProfile,
}

impl RpcClientConfig {
    pub fn new(server: AgentId) -> RpcClientConfig {
        RpcClientConfig {
            server,
            retransmit: Duration::from_millis(500),
            reconnect_backoff: Duration::from_millis(500),
            conn: ConnProfile::default(),
        }
    }
}

#[derive(Clone)]
struct Pending {
    req_id: u64,
    request: RpcRequest,
    sent: bool,
}

/// The RPC client agent.
///
/// Upstream: listens on [`RPC_CLIENT_SERVICE`] for request envelopes
/// from the topology controller (req_ids assigned by the client are
/// authoritative; upstream ids are remapped). Downstream: dials the RPC
/// server on [`RPC_SERVER_SERVICE`].
#[derive(Clone)]
pub struct RpcClientAgent {
    cfg: RpcClientConfig,
    upstream_readers: Vec<(ConnId, RpcFrameReader)>,
    server_conn: Option<ConnId>,
    server_ready: bool,
    server_reader: RpcFrameReader,
    queue: VecDeque<Pending>,
    next_req_id: u64,
    /// Total requests forwarded and acked (metrics).
    pub acked: u64,
    pub retransmissions: u64,
}

impl RpcClientAgent {
    pub fn new(cfg: RpcClientConfig) -> RpcClientAgent {
        RpcClientAgent {
            cfg,
            upstream_readers: Vec::new(),
            server_conn: None,
            server_ready: false,
            server_reader: RpcFrameReader::new(),
            queue: VecDeque::new(),
            next_req_id: 1,
            acked: 0,
            retransmissions: 0,
        }
    }

    /// Enqueue a request programmatically (used when the topology
    /// controller embeds the client instead of dialing it).
    pub fn submit(&mut self, ctx: &mut Ctx<'_>, request: RpcRequest) {
        let req_id = self.next_req_id;
        self.next_req_id += 1;
        self.queue.push_back(Pending {
            req_id,
            request,
            sent: false,
        });
        self.flush(ctx);
    }

    fn connect_server(&mut self, ctx: &mut Ctx<'_>) {
        self.server_ready = false;
        self.server_reader = RpcFrameReader::new();
        self.server_conn = Some(ctx.connect(self.cfg.server, RPC_SERVER_SERVICE, self.cfg.conn));
    }

    fn flush(&mut self, ctx: &mut Ctx<'_>) {
        if !self.server_ready {
            return;
        }
        let Some(conn) = self.server_conn else {
            return;
        };
        for p in self.queue.iter_mut().filter(|p| !p.sent) {
            let env = Envelope::Request {
                req_id: p.req_id,
                request: p.request.clone(),
            };
            ctx.conn_send(conn, encode_envelope(&env));
            ctx.count("rpc.sent", 1);
            p.sent = true;
        }
    }

    fn handle_ack(&mut self, req_id: u64) {
        let before = self.queue.len();
        self.queue.retain(|p| p.req_id != req_id);
        if self.queue.len() < before {
            self.acked += 1;
        }
    }
}

impl Agent for RpcClientAgent {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.listen(RPC_CLIENT_SERVICE);
        self.connect_server(ctx);
        ctx.schedule(self.cfg.retransmit, T_RETX);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        match token {
            T_RETX => {
                // Anything still queued and marked sent gets resent.
                let resend = self.queue.iter().any(|p| p.sent);
                if resend && self.server_ready {
                    for p in self.queue.iter_mut() {
                        p.sent = false;
                    }
                    self.retransmissions += 1;
                    self.flush(ctx);
                }
                ctx.schedule(self.cfg.retransmit, T_RETX);
            }
            T_RECONNECT if self.server_conn.is_none() => {
                self.connect_server(ctx);
            }
            _ => {}
        }
    }

    fn on_stream(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, event: StreamEvent) {
        if Some(conn) == self.server_conn {
            match event {
                StreamEvent::Opened { .. } => {
                    self.server_ready = true;
                    // Everything unacked is in-flight again.
                    for p in self.queue.iter_mut() {
                        p.sent = false;
                    }
                    self.flush(ctx);
                }
                StreamEvent::Data(data) => {
                    self.server_reader.push_bytes(data);
                    while let Some(Ok(env)) = self.server_reader.next() {
                        if let Envelope::Ack(ack) = env {
                            self.handle_ack(ack.req_id);
                        }
                    }
                }
                StreamEvent::Closed => {
                    self.server_conn = None;
                    self.server_ready = false;
                    ctx.schedule(self.cfg.reconnect_backoff, T_RECONNECT);
                }
            }
            return;
        }
        // Upstream (topology controller) side.
        match event {
            StreamEvent::Opened { .. } => {
                self.upstream_readers.push((conn, RpcFrameReader::new()));
            }
            StreamEvent::Data(data) => {
                let mut incoming = Vec::new();
                if let Some((_, reader)) =
                    self.upstream_readers.iter_mut().find(|(c, _)| *c == conn)
                {
                    reader.push_bytes(data);
                    while let Some(Ok(env)) = reader.next() {
                        if let Envelope::Request { req_id, request } = env {
                            incoming.push((req_id, request));
                        }
                    }
                }
                for (upstream_id, request) in incoming {
                    // Ack upstream immediately (the relay now owns
                    // delivery), then forward under our own id.
                    ctx.conn_send(
                        conn,
                        encode_envelope(&Envelope::Ack(crate::msg::RpcAck {
                            req_id: upstream_id,
                            ok: true,
                        })),
                    );
                    self.submit(ctx, request);
                }
            }
            StreamEvent::Closed => {
                self.upstream_readers.retain(|(c, _)| *c != conn);
            }
        }
    }
}
