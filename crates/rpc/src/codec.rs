//! RPC stream framing.
//!
//! Envelope layout (big-endian):
//!
//! ```text
//! +--------+--------+---------+--------+--------+----------+
//! | magic  | length | kind    | req_id | tag    | body ... |
//! | u16    | u32    | u8      | u64    | u8     |          |
//! +--------+--------+---------+--------+--------+----------+
//! ```
//!
//! `length` counts everything after itself. `kind` is 0 for requests,
//! 1 for acks (acks carry `ok` in `tag` and no body).

use crate::msg::{RpcAck, RpcRequest};
use crate::RpcError;
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: u16 = 0x5246; // "RF"
const KIND_REQUEST: u8 = 0;
const KIND_ACK: u8 = 1;

/// A decoded RPC frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Envelope {
    Request { req_id: u64, request: RpcRequest },
    Ack(RpcAck),
}

/// Encode an envelope to wire bytes.
pub fn encode_envelope(env: &Envelope) -> Bytes {
    let mut body = BytesMut::new();
    let (kind, req_id, tag) = match env {
        Envelope::Request { req_id, request } => {
            request.emit_body(&mut body);
            (KIND_REQUEST, *req_id, request.tag())
        }
        Envelope::Ack(ack) => (KIND_ACK, ack.req_id, u8::from(ack.ok)),
    };
    let mut out = BytesMut::with_capacity(16 + body.len());
    out.put_u16(MAGIC);
    out.put_u32((1 + 8 + 1 + body.len()) as u32);
    out.put_u8(kind);
    out.put_u64(req_id);
    out.put_u8(tag);
    out.put_slice(&body);
    out.freeze()
}

/// Decode one complete envelope from `data` (exactly one frame).
pub fn decode_envelope(mut data: &[u8]) -> Result<Envelope, RpcError> {
    if data.remaining() < 6 {
        return Err(RpcError::Truncated);
    }
    if data.get_u16() != MAGIC {
        return Err(RpcError::BadMagic);
    }
    let length = data.get_u32() as usize;
    if data.remaining() < length || length < 10 {
        return Err(RpcError::Truncated);
    }
    let kind = data.get_u8();
    let req_id = data.get_u64();
    let tag = data.get_u8();
    let body = &data[..length - 10];
    match kind {
        KIND_REQUEST => Ok(Envelope::Request {
            req_id,
            request: RpcRequest::parse_body(tag, body)?,
        }),
        KIND_ACK => Ok(Envelope::Ack(RpcAck {
            req_id,
            ok: tag != 0,
        })),
        other => Err(RpcError::BadTag(other)),
    }
}

/// Incremental frame reassembler for the RPC stream.
#[derive(Clone, Default)]
pub struct RpcFrameReader {
    /// Unconsumed tail of the last chunk (zero-copy fast path);
    /// non-empty only while `buf` is empty.
    chunk: Bytes,
    /// Reassembly buffer for fragmented input.
    buf: BytesMut,
}

impl RpcFrameReader {
    pub fn new() -> RpcFrameReader {
        RpcFrameReader::default()
    }

    pub fn push(&mut self, data: &[u8]) {
        self.spill();
        self.buf.extend_from_slice(data);
    }

    /// Feed a whole stream chunk without copying when drained.
    pub fn push_bytes(&mut self, data: Bytes) {
        if self.buf.is_empty() && self.chunk.is_empty() {
            self.chunk = data;
        } else {
            self.spill();
            self.buf.extend_from_slice(&data);
        }
    }

    fn spill(&mut self) {
        if !self.chunk.is_empty() {
            self.buf.extend_from_slice(&self.chunk);
            self.chunk = Bytes::new();
        }
    }

    /// Pop the next complete envelope if buffered.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<Result<Envelope, RpcError>> {
        let avail: &[u8] = if self.chunk.is_empty() {
            &self.buf
        } else {
            &self.chunk
        };
        if avail.len() < 6 {
            return None;
        }
        let magic = u16::from_be_bytes([avail[0], avail[1]]);
        if magic != MAGIC {
            self.chunk = Bytes::new();
            self.buf.clear();
            return Some(Err(RpcError::BadMagic));
        }
        let length = u32::from_be_bytes([avail[2], avail[3], avail[4], avail[5]]) as usize;
        if avail.len() < 6 + length {
            return None;
        }
        if self.chunk.is_empty() {
            let frame = self.buf.split_to(6 + length);
            Some(decode_envelope(&frame))
        } else {
            let frame = self.chunk.split_to(6 + length);
            Some(decode_envelope(&frame))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rf_wire::Ipv4Cidr;
    use std::net::Ipv4Addr;

    fn sample() -> Envelope {
        Envelope::Request {
            req_id: 42,
            request: RpcRequest::LinkDetected {
                a_dpid: 1,
                a_port: 2,
                b_dpid: 3,
                b_port: 1,
                subnet: Ipv4Cidr::new(Ipv4Addr::new(172, 31, 0, 0), 30),
                ip_a: Ipv4Addr::new(172, 31, 0, 1),
                ip_b: Ipv4Addr::new(172, 31, 0, 2),
            },
        }
    }

    #[test]
    fn envelope_roundtrip() {
        let env = sample();
        assert_eq!(decode_envelope(&encode_envelope(&env)).unwrap(), env);
        let ack = Envelope::Ack(RpcAck {
            req_id: 42,
            ok: true,
        });
        assert_eq!(decode_envelope(&encode_envelope(&ack)).unwrap(), ack);
    }

    #[test]
    fn reader_handles_fragmentation_and_coalescing() {
        let mut r = RpcFrameReader::new();
        let a = encode_envelope(&sample());
        let b = encode_envelope(&Envelope::Ack(RpcAck {
            req_id: 7,
            ok: false,
        }));
        let mut stream = a.to_vec();
        stream.extend_from_slice(&b);
        // Feed in 3-byte chunks.
        for chunk in stream.chunks(3) {
            r.push(chunk);
        }
        let first = r.next().unwrap().unwrap();
        assert_eq!(first, sample());
        let second = r.next().unwrap().unwrap();
        assert!(matches!(
            second,
            Envelope::Ack(RpcAck {
                req_id: 7,
                ok: false
            })
        ));
        assert!(r.next().is_none());
    }

    #[test]
    fn bad_magic_poisons_buffer() {
        let mut r = RpcFrameReader::new();
        r.push(&[0xAA; 20]);
        assert_eq!(r.next().unwrap(), Err(RpcError::BadMagic));
        assert!(r.next().is_none());
    }

    #[test]
    fn truncated_decode_rejected() {
        let env = encode_envelope(&sample());
        assert_eq!(
            decode_envelope(&env[..env.len() - 1]),
            Err(RpcError::Truncated)
        );
    }
}
