//! # rf-rpc — the configuration RPC path of the framework
//!
//! Figure 2 of the paper splits the automatic-configuration pipeline
//! into an **RPC client** ("collects configuration information from the
//! topology controller and sends this to a server called RPC server")
//! and an **RPC server** ("resides in the RF-controller and configures
//! RouteFlow on reception of configuration messages"). This crate
//! implements both halves plus the wire protocol between them:
//!
//! * [`msg::RpcRequest`] — the configuration messages: switch detected
//!   (switch id + port count → create a VM), switch removed, link
//!   detected (with the per-link subnet and interface addresses the
//!   topology controller allocated), link removed, port status;
//! * [`codec`] — a hand-rolled, length-prefixed binary encoding (no
//!   serde; explicit bytes, like every other protocol in this repo);
//! * [`client::RpcClientAgent`] — a store-and-forward relay with
//!   at-least-once delivery: requests are retransmitted until acked,
//!   and survive RPC-server reconnects. Duplicate suppression happens
//!   server-side via request ids (exactly-once effect);
//! * [`server::RpcServerEndpoint`] — the embeddable server half used by
//!   the RF-controller: decodes requests, deduplicates, produces acks.

pub mod client;
pub mod codec;
pub mod msg;
pub mod server;

pub use client::{RpcClientAgent, RpcClientConfig};
pub use codec::{decode_envelope, encode_envelope, Envelope, RpcFrameReader};
pub use msg::{RpcAck, RpcRequest};
pub use server::RpcServerEndpoint;

/// Service number the RPC client listens on (for the topology
/// controller to connect to).
pub const RPC_CLIENT_SERVICE: u16 = 7890;
/// Service number the RPC server (RF-controller) listens on.
pub const RPC_SERVER_SERVICE: u16 = 7891;

use std::fmt;

/// Errors decoding RPC bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RpcError {
    Truncated,
    BadMagic,
    BadTag(u8),
    Malformed(&'static str),
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::Truncated => write!(f, "truncated RPC frame"),
            RpcError::BadMagic => write!(f, "bad RPC magic"),
            RpcError::BadTag(t) => write!(f, "unknown RPC message tag {t}"),
            RpcError::Malformed(w) => write!(f, "malformed RPC message: {w}"),
        }
    }
}

impl std::error::Error for RpcError {}
