//! RPC message bodies: the configuration vocabulary of the framework.

use bytes::{Buf, BufMut, BytesMut};
use rf_wire::Ipv4Cidr;
use std::net::Ipv4Addr;

use crate::RpcError;

/// A configuration request from the topology controller (via the RPC
/// client) to the RPC server inside the RF-controller.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RpcRequest {
    /// A new switch appeared: create a VM whose ID equals the switch ID
    /// with the same number of interfaces (paper §2).
    SwitchDetected { dpid: u64, num_ports: u16 },
    /// A switch left: tear down its VM.
    SwitchRemoved { dpid: u64 },
    /// A new link appeared: configure the two VM interfaces with the
    /// addresses the topology controller computed from the admin-
    /// provided range, and (re)write the routing configuration files.
    LinkDetected {
        a_dpid: u64,
        a_port: u16,
        b_dpid: u64,
        b_port: u16,
        /// The /30 (by default) carved out of the virtual-environment
        /// range for this link.
        subnet: Ipv4Cidr,
        ip_a: Ipv4Addr,
        ip_b: Ipv4Addr,
    },
    /// A link disappeared: deconfigure the interfaces.
    LinkRemoved {
        a_dpid: u64,
        a_port: u16,
        b_dpid: u64,
        b_port: u16,
    },
    /// A port changed state.
    PortStatus { dpid: u64, port: u16, up: bool },
}

impl RpcRequest {
    pub(crate) fn tag(&self) -> u8 {
        match self {
            RpcRequest::SwitchDetected { .. } => 1,
            RpcRequest::SwitchRemoved { .. } => 2,
            RpcRequest::LinkDetected { .. } => 3,
            RpcRequest::LinkRemoved { .. } => 4,
            RpcRequest::PortStatus { .. } => 5,
        }
    }

    pub(crate) fn emit_body(&self, buf: &mut BytesMut) {
        match self {
            RpcRequest::SwitchDetected { dpid, num_ports } => {
                buf.put_u64(*dpid);
                buf.put_u16(*num_ports);
            }
            RpcRequest::SwitchRemoved { dpid } => buf.put_u64(*dpid),
            RpcRequest::LinkDetected {
                a_dpid,
                a_port,
                b_dpid,
                b_port,
                subnet,
                ip_a,
                ip_b,
            } => {
                buf.put_u64(*a_dpid);
                buf.put_u16(*a_port);
                buf.put_u64(*b_dpid);
                buf.put_u16(*b_port);
                buf.put_slice(&subnet.addr.octets());
                buf.put_u8(subnet.prefix_len);
                buf.put_slice(&ip_a.octets());
                buf.put_slice(&ip_b.octets());
            }
            RpcRequest::LinkRemoved {
                a_dpid,
                a_port,
                b_dpid,
                b_port,
            } => {
                buf.put_u64(*a_dpid);
                buf.put_u16(*a_port);
                buf.put_u64(*b_dpid);
                buf.put_u16(*b_port);
            }
            RpcRequest::PortStatus { dpid, port, up } => {
                buf.put_u64(*dpid);
                buf.put_u16(*port);
                buf.put_u8(u8::from(*up));
            }
        }
    }

    pub(crate) fn parse_body(tag: u8, mut body: &[u8]) -> Result<RpcRequest, RpcError> {
        fn need(body: &[u8], n: usize) -> Result<(), RpcError> {
            if body.remaining() < n {
                Err(RpcError::Truncated)
            } else {
                Ok(())
            }
        }
        let ip = |b: &mut &[u8]| -> Ipv4Addr {
            let mut o = [0u8; 4];
            b.copy_to_slice(&mut o);
            Ipv4Addr::from(o)
        };
        Ok(match tag {
            1 => {
                need(body, 10)?;
                RpcRequest::SwitchDetected {
                    dpid: body.get_u64(),
                    num_ports: body.get_u16(),
                }
            }
            2 => {
                need(body, 8)?;
                RpcRequest::SwitchRemoved {
                    dpid: body.get_u64(),
                }
            }
            3 => {
                need(body, 20 + 5 + 8)?;
                let a_dpid = body.get_u64();
                let a_port = body.get_u16();
                let b_dpid = body.get_u64();
                let b_port = body.get_u16();
                let net = ip(&mut body);
                let prefix_len = body.get_u8();
                if prefix_len > 32 {
                    return Err(RpcError::Malformed("prefix length"));
                }
                let ip_a = ip(&mut body);
                let ip_b = ip(&mut body);
                RpcRequest::LinkDetected {
                    a_dpid,
                    a_port,
                    b_dpid,
                    b_port,
                    subnet: Ipv4Cidr::new(net, prefix_len),
                    ip_a,
                    ip_b,
                }
            }
            4 => {
                need(body, 20)?;
                RpcRequest::LinkRemoved {
                    a_dpid: body.get_u64(),
                    a_port: body.get_u16(),
                    b_dpid: body.get_u64(),
                    b_port: body.get_u16(),
                }
            }
            5 => {
                need(body, 11)?;
                RpcRequest::PortStatus {
                    dpid: body.get_u64(),
                    port: body.get_u16(),
                    up: body.get_u8() != 0,
                }
            }
            other => return Err(RpcError::BadTag(other)),
        })
    }
}

/// Acknowledgement from the RPC server.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RpcAck {
    /// Echoes the request id.
    pub req_id: u64,
    /// Whether the configuration action was applied.
    pub ok: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_requests() -> Vec<RpcRequest> {
        vec![
            RpcRequest::SwitchDetected {
                dpid: 0x1C,
                num_ports: 4,
            },
            RpcRequest::SwitchRemoved { dpid: 9 },
            RpcRequest::LinkDetected {
                a_dpid: 1,
                a_port: 2,
                b_dpid: 3,
                b_port: 4,
                subnet: Ipv4Cidr::new(Ipv4Addr::new(10, 0, 0, 4), 30),
                ip_a: Ipv4Addr::new(10, 0, 0, 5),
                ip_b: Ipv4Addr::new(10, 0, 0, 6),
            },
            RpcRequest::LinkRemoved {
                a_dpid: 1,
                a_port: 2,
                b_dpid: 3,
                b_port: 4,
            },
            RpcRequest::PortStatus {
                dpid: 1,
                port: 3,
                up: false,
            },
        ]
    }

    #[test]
    fn bodies_roundtrip() {
        for req in sample_requests() {
            let mut b = BytesMut::new();
            req.emit_body(&mut b);
            let parsed = RpcRequest::parse_body(req.tag(), &b).unwrap();
            assert_eq!(parsed, req);
        }
    }

    #[test]
    fn bad_tag_rejected() {
        assert_eq!(RpcRequest::parse_body(99, &[]), Err(RpcError::BadTag(99)));
    }

    #[test]
    fn truncated_body_rejected() {
        assert_eq!(
            RpcRequest::parse_body(1, &[0, 0, 0]),
            Err(RpcError::Truncated)
        );
    }

    #[test]
    fn absurd_prefix_rejected() {
        let req = RpcRequest::LinkDetected {
            a_dpid: 1,
            a_port: 1,
            b_dpid: 2,
            b_port: 1,
            subnet: Ipv4Cidr::new(Ipv4Addr::new(10, 0, 0, 0), 30),
            ip_a: Ipv4Addr::new(10, 0, 0, 1),
            ip_b: Ipv4Addr::new(10, 0, 0, 2),
        };
        let mut b = BytesMut::new();
        req.emit_body(&mut b);
        b[24] = 77; // prefix_len byte
        assert!(matches!(
            RpcRequest::parse_body(3, &b),
            Err(RpcError::Malformed(_))
        ));
    }
}
