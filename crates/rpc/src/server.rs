//! The embeddable RPC-server half.
//!
//! The RPC server "resides in the RF-controller", so rather than being
//! its own agent it is a state machine the RF-controller embeds: feed
//! it stream bytes, get back deduplicated requests and the ack bytes to
//! send.

use crate::codec::{encode_envelope, Envelope, RpcFrameReader};
use crate::msg::{RpcAck, RpcRequest};
use bytes::Bytes;
use std::collections::HashSet;

/// Decodes, deduplicates and acks RPC requests.
///
/// The client provides at-least-once delivery; the server suppresses
/// duplicates by request id so the combination is exactly-once from the
/// configuration logic's point of view (duplicates are re-acked but not
/// re-delivered).
#[derive(Clone, Default)]
pub struct RpcServerEndpoint {
    reader: RpcFrameReader,
    seen: HashSet<u64>,
    pub duplicates: u64,
    pub decode_errors: u64,
}

impl RpcServerEndpoint {
    pub fn new() -> RpcServerEndpoint {
        RpcServerEndpoint::default()
    }

    /// Feed raw stream bytes. Returns `(fresh_requests, ack_frames)`:
    /// every well-formed request produces an ack frame; only
    /// first-delivery requests appear in `fresh_requests`.
    pub fn feed(&mut self, data: &[u8]) -> (Vec<RpcRequest>, Vec<Bytes>) {
        self.reader.push(data);
        self.drain_frames()
    }

    /// [`RpcServerEndpoint::feed`] over an owned chunk (zero-copy).
    pub fn feed_bytes(&mut self, data: Bytes) -> (Vec<RpcRequest>, Vec<Bytes>) {
        self.reader.push_bytes(data);
        self.drain_frames()
    }

    fn drain_frames(&mut self) -> (Vec<RpcRequest>, Vec<Bytes>) {
        let mut fresh = Vec::new();
        let mut acks = Vec::new();
        loop {
            match self.reader.next() {
                Some(Ok(Envelope::Request { req_id, request })) => {
                    acks.push(encode_envelope(&Envelope::Ack(RpcAck { req_id, ok: true })));
                    if self.seen.insert(req_id) {
                        fresh.push(request);
                    } else {
                        self.duplicates += 1;
                    }
                }
                Some(Ok(Envelope::Ack(_))) => { /* servers ignore stray acks */ }
                Some(Err(_)) => {
                    self.decode_errors += 1;
                }
                None => break,
            }
        }
        (fresh, acks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req_frame(req_id: u64) -> Bytes {
        encode_envelope(&Envelope::Request {
            req_id,
            request: RpcRequest::SwitchDetected {
                dpid: req_id,
                num_ports: 2,
            },
        })
    }

    #[test]
    fn acks_every_request_delivers_once() {
        let mut s = RpcServerEndpoint::new();
        let (fresh, acks) = s.feed(&req_frame(1));
        assert_eq!(fresh.len(), 1);
        assert_eq!(acks.len(), 1);
        // Duplicate: acked again, not delivered again.
        let (fresh, acks) = s.feed(&req_frame(1));
        assert!(fresh.is_empty());
        assert_eq!(acks.len(), 1);
        assert_eq!(s.duplicates, 1);
    }

    #[test]
    fn handles_split_frames() {
        let mut s = RpcServerEndpoint::new();
        let frame = req_frame(9);
        let (f1, a1) = s.feed(&frame[..5]);
        assert!(f1.is_empty() && a1.is_empty());
        let (f2, a2) = s.feed(&frame[5..]);
        assert_eq!(f2.len(), 1);
        assert_eq!(a2.len(), 1);
    }

    #[test]
    fn multiple_requests_in_one_chunk() {
        let mut s = RpcServerEndpoint::new();
        let mut stream = req_frame(1).to_vec();
        stream.extend_from_slice(&req_frame(2));
        stream.extend_from_slice(&req_frame(3));
        let (fresh, acks) = s.feed(&stream);
        assert_eq!(fresh.len(), 3);
        assert_eq!(acks.len(), 3);
    }
}
