//! Offline stand-in for the `bytes` crate: the subset of its API this
//! workspace uses, with the same semantics (big-endian integer codecs,
//! cheap `Bytes` clones, front-consuming `Buf` reads on `BytesMut`).
//!
//! The container this workspace builds in has no crates.io access, so
//! the real `bytes` crate cannot be vendored; this shim keeps the
//! dependency surface identical so swapping the real crate back in is a
//! one-line Cargo change.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Shared `Debug` body for `Bytes`/`BytesMut`: hex dump capped at 32
/// bytes, matching the readability of the real crate's output.
macro_rules! fmt_bytes_debug {
    () => {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "b\"")?;
            for &b in self.iter().take(32) {
                write!(f, "\\x{b:02x}")?;
            }
            if self.len() > 32 {
                write!(f, "..{} bytes", self.len())?;
            }
            write!(f, "\"")
        }
    };
}

/// Cheaply cloneable, immutable byte buffer (a view into shared storage).
///
/// The storage is `Arc<Vec<u8>>`, not `Arc<[u8]>`: converting a `Vec`
/// into `Arc<[u8]>` re-allocates and copies the contents (the refcount
/// header must precede the data), which made every `freeze()` — i.e.
/// every emitted frame and encoded message in the simulator — pay a
/// second full copy. Wrapping the `Vec` moves it instead; the price is
/// one extra pointer hop on reads, which profiles far cheaper.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    /// u32 offsets keep `Bytes` at 16 bytes — it rides inside every
    /// queued simulator event, so its size is part of the event
    /// queue's cache footprint. 4 GiB per buffer is far beyond any
    /// frame or message this workspace constructs.
    start: u32,
    end: u32,
}

impl Bytes {
    pub fn new() -> Bytes {
        Bytes::default()
    }

    pub fn from_static(s: &'static [u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }

    pub fn copy_from_slice(s: &[u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }

    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Split off the bytes after `at`, leaving `self` with `[0, at)`.
    pub fn split_off(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len());
        let tail = Bytes {
            data: Arc::clone(&self.data),
            start: self.start + at as u32,
            end: self.end,
        };
        self.end = self.start + at as u32;
        tail
    }

    /// Split off the first `at` bytes, leaving `self` with the rest.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len());
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at as u32,
        };
        self.start += at as u32;
        head
    }

    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len());
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo as u32,
            end: self.start + hi as u32,
        }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self[..].to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start as usize..self.end as usize]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        assert!(v.len() <= u32::MAX as usize, "Bytes buffer too large");
        let end = v.len() as u32;
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Bytes {
        Bytes::from(s.as_bytes().to_vec())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Bytes {
        b.freeze()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl fmt::Debug for Bytes {
    fmt_bytes_debug!();
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

/// Growable byte buffer; reads (via [`Buf`]) consume from the front.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    pub fn reserve(&mut self, additional: usize) {
        self.inner.reserve(additional);
    }

    pub fn clear(&mut self) {
        self.inner.clear();
    }

    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.inner.resize(new_len, value);
    }

    pub fn truncate(&mut self, len: usize) {
        self.inner.truncate(len);
    }

    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.inner.extend_from_slice(s);
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.inner)
    }

    /// Remove and return the first `at` bytes.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len());
        let head = self.inner.drain(..at).collect();
        BytesMut { inner: head }
    }

    /// Remove and return everything after `at`.
    pub fn split_off(&mut self, at: usize) -> BytesMut {
        BytesMut {
            inner: self.inner.split_off(at),
        }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> BytesMut {
        BytesMut { inner: s.to_vec() }
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> BytesMut {
        BytesMut { inner: v }
    }
}

impl fmt::Debug for BytesMut {
    fmt_bytes_debug!();
}

/// Read cursor over a byte source. Integer reads are big-endian, as in
/// the real `bytes` crate.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        let n = dst.len();
        dst.copy_from_slice(&self.chunk()[..n]);
        self.advance(n);
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    fn get_i32(&mut self) -> i32 {
        self.get_u32() as i32
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        *self = &self[cnt..];
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        self.start += cnt as u32;
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        self.inner.drain(..cnt);
    }
}

/// Write cursor. Integer writes are big-endian.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_i32(&mut self, v: i32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Write `cnt` copies of `val`.
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        for _ in 0..cnt {
            self.put_u8(val);
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_ints_are_big_endian() {
        let mut b = BytesMut::new();
        b.put_u8(1);
        b.put_u16(0x0203);
        b.put_u32(0x0405_0607);
        b.put_u64(0x0809_0a0b_0c0d_0e0f);
        assert_eq!(&b[..3], &[1, 2, 3]);
        let mut r = &b[..];
        assert_eq!(r.get_u8(), 1);
        assert_eq!(r.get_u16(), 0x0203);
        assert_eq!(r.get_u32(), 0x0405_0607);
        assert_eq!(r.get_u64(), 0x0809_0a0b_0c0d_0e0f);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bytesmut_buf_consumes_front() {
        let mut b = BytesMut::from(&[9u8, 8, 7, 6][..]);
        assert_eq!(b.get_u8(), 9);
        assert_eq!(b.len(), 3);
        b.advance(1);
        assert_eq!(&b[..], &[7, 6]);
    }

    #[test]
    fn bytes_split_and_slice() {
        let mut b = Bytes::from(vec![0u8, 1, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[0, 1]);
        assert_eq!(&b[..], &[2, 3, 4, 5]);
        let tail = b.split_off(2);
        assert_eq!(&b[..], &[2, 3]);
        assert_eq!(&tail[..], &[4, 5]);
        assert_eq!(&tail.slice(1..2)[..], &[5]);
    }

    #[test]
    fn freeze_is_cheap_to_clone() {
        let mut m = BytesMut::new();
        m.extend_from_slice(b"hello");
        let f = m.freeze();
        let g = f.clone();
        assert_eq!(f, g);
        assert_eq!(&g[..], b"hello");
    }
}
