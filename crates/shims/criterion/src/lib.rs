//! Offline stand-in for `criterion`: same macro/builder surface as the
//! subset the workspace's benches use, but measurement is a plain
//! median-of-samples timer printed as text. Good enough to track
//! relative movement of the hot paths between PRs without the real
//! crate's statistics engine (crates.io is unreachable in this build
//! environment).

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level bench driver (the `c` in `fn bench(c: &mut Criterion)`).
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, DEFAULT_SAMPLES, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.to_string(),
            sample_size: DEFAULT_SAMPLES,
        }
    }
}

const DEFAULT_SAMPLES: usize = 20;

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.0), self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id.0),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

/// Benchmark identifier: `new("ring", 4)` → `ring/4`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl Display, param: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{param}"))
    }

    pub fn from_parameter(param: impl Display) -> BenchmarkId {
        BenchmarkId(param.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId(s.to_string())
    }
}

/// Per-benchmark timing handle.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Time `f`, collecting `target_samples` samples (each of enough
    /// iterations to be measurable) but capping total runtime so e2e
    /// simulation benches stay usable.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let budget = Duration::from_secs(5);
        let started = Instant::now();
        // Calibrate iterations per sample to ~1 ms minimum.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(10));
        let iters = (Duration::from_millis(1).as_nanos() / once.as_nanos()).max(1) as usize;
        self.samples.push(once);
        while self.samples.len() < self.target_samples && started.elapsed() < budget {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(t.elapsed() / iters as u32);
        }
    }
}

fn run_one(name: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        target_samples: samples,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    let best = b.samples[0];
    println!(
        "{name:<40} median {:>12?}   best {:>12?}   ({} samples)",
        median,
        best,
        b.samples.len()
    );
}

/// Collect bench functions under one name, as the real macro does.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point: run every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
