//! Offline stand-in for `proptest`: the strategy/macro subset the
//! workspace's property tests use. Each `proptest!` test runs a fixed
//! number of deterministic random cases (no shrinking — a failing case
//! panics with its iteration seed so it can be replayed by reading the
//! test output).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Cases generated per property (the real crate's default is 256; 64
/// keeps `cargo test` fast on the heavier codec roundtrips).
pub const CASES: u64 = 64;

/// A value generator. Unlike the real crate there is no value tree:
/// strategies sample directly and failures do not shrink.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// `strategy.prop_map(f)` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform sample over a type's whole domain, like `any::<T>()`.
pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

pub trait Arbitrary {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen::<u64>() & 1 == 1
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut StdRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

macro_rules! impl_arbitrary_tuple {
    ($($name:ident),+) => {
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut StdRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    };
}
impl_arbitrary_tuple!(A, B);
impl_arbitrary_tuple!(A, B, C);
impl_arbitrary_tuple!(A, B, C, D);

// Integer ranges are strategies, as in the real crate.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                if hi == <$t>::MAX {
                    if lo == <$t>::MIN {
                        return <$t as Arbitrary>::arbitrary(rng);
                    }
                    return lo + rng.gen_range(0..(hi - lo)) + (rng.gen::<u64>() & 1 == 1) as $t;
                }
                rng.gen_range(lo..hi + 1)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

// Tuples of strategies are strategies over tuples of their values.
macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

pub mod collection {
    use super::*;

    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// `collection::vec(strategy, len_range)`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = if self.len.start + 1 >= self.len.end {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Run one property over [`CASES`] deterministic cases.
pub fn run_cases<F: FnMut(&mut StdRng, u64)>(test_name: &str, mut f: F) {
    // Seed differs per property so unrelated tests don't see identical
    // byte streams, but is stable run-to-run.
    let base = test_name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
    });
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(base ^ (case.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        f(&mut rng, case);
    }
}

/// The proptest test-definition macro: each embedded function runs its
/// body once per generated case.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::run_cases(stringify!($name), |rng, case| {
                $(let $arg = $crate::Strategy::sample(&$strat, rng);)+
                let guard = $crate::CaseGuard::new(stringify!($name), case);
                $body
                guard.disarm();
            });
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Strategy};
}

/// Prints which case was being run if the property panics, since there
/// is no shrinker to minimize it.
pub struct CaseGuard {
    name: &'static str,
    case: u64,
    armed: bool,
}

impl CaseGuard {
    pub fn new(name: &'static str, case: u64) -> CaseGuard {
        CaseGuard {
            name,
            case,
            armed: true,
        }
    }

    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if self.armed {
            eprintln!(
                "proptest shim: property `{}` failed on case {}/{}",
                self.name, self.case, CASES
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u8..10, y in 0u16..=u16::MAX, v in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!((3..10).contains(&x));
            let _ = y;
            prop_assert!((2..5).contains(&v.len()));
        }

        #[test]
        fn maps_apply(ip in any::<u32>().prop_map(std::net::Ipv4Addr::from)) {
            prop_assert_eq!(u32::from(ip), u32::from(ip));
        }
    }
}
