//! Offline stand-in for the `rand` crate: the subset this workspace
//! uses (`StdRng::seed_from_u64`, `gen`, `gen_bool`, `gen_range`),
//! backed by the splitmix64 generator. Determinism is the only property
//! the simulator relies on; statistical quality is secondary, and
//! splitmix64 passes the bar for fault injection and random topologies.

use std::ops::Range;

/// Raw generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// High-level sampling helpers, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// True with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p.clamp(0.0, 1.0)
    }

    /// Uniform sample from a half-open integer range.
    fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable uniformly from their full domain (`rng.gen()`).
pub trait Standard {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types usable with `gen_range(lo..hi)`.
pub trait SampleRange: Sized {
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty gen_range");
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                // Modulo bias is negligible for the tiny spans used here.
                range.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i32);

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Non-uniform samplers used by the traffic engine. Inverse-transform
/// only: one `next_u64` per draw, so stream positions stay easy to
/// reason about when replaying a seed.
pub mod distributions {
    use super::{RngCore, Standard};

    fn unit<R: RngCore>(rng: &mut R) -> f64 {
        f64::sample(rng)
    }

    /// Exponential distribution with rate `lambda` (mean `1/lambda`).
    /// The inter-arrival law of a Poisson process.
    #[derive(Clone, Copy, Debug, PartialEq)]
    pub struct Exp {
        lambda: f64,
    }

    impl Exp {
        /// `lambda` must be positive and finite.
        pub fn new(lambda: f64) -> Result<Exp, &'static str> {
            if lambda.is_finite() && lambda > 0.0 {
                Ok(Exp { lambda })
            } else {
                Err("Exp rate must be positive and finite")
            }
        }

        pub fn sample<R: RngCore>(&self, rng: &mut R) -> f64 {
            // 1 - U keeps the argument in (0, 1]: ln never sees zero.
            -(1.0 - unit(rng)).ln() / self.lambda
        }
    }

    /// Pareto distribution truncated to `[min, max]` with shape
    /// `alpha` — the classic heavy-tailed flow-size / burst-gap law,
    /// bounded so a single draw cannot run a cell forever.
    #[derive(Clone, Copy, Debug, PartialEq)]
    pub struct BoundedPareto {
        alpha: f64,
        min: f64,
        max: f64,
    }

    impl BoundedPareto {
        /// Requires `0 < min < max` and a positive finite `alpha`.
        pub fn new(alpha: f64, min: f64, max: f64) -> Result<BoundedPareto, &'static str> {
            if !(alpha.is_finite() && alpha > 0.0) {
                Err("BoundedPareto shape must be positive and finite")
            } else if !(min.is_finite() && max.is_finite() && 0.0 < min && min < max) {
                Err("BoundedPareto needs 0 < min < max")
            } else {
                Ok(BoundedPareto { alpha, min, max })
            }
        }

        pub fn sample<R: RngCore>(&self, rng: &mut R) -> f64 {
            // Inverse CDF of the bounded Pareto: U=0 -> min, U->1 -> max.
            let u = unit(rng);
            let la = self.min.powf(self.alpha);
            let ha = self.max.powf(self.alpha);
            let x = (ha + u * (la - ha)) / (ha * la);
            x.powf(-1.0 / self.alpha).clamp(self.min, self.max)
        }
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (splitmix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn determinism_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            let v = r.gen_range(3usize..10);
            assert!((3..10).contains(&v));
        }
    }

    #[test]
    fn exp_mean_and_determinism() {
        use distributions::Exp;
        let d = Exp::new(4.0).unwrap();
        let mut r = StdRng::seed_from_u64(5);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64;
        assert!(
            (mean - 0.25).abs() < 0.01,
            "Exp(4) mean should be ~0.25, got {mean}"
        );
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut a), d.sample(&mut b));
        }
        assert!(Exp::new(0.0).is_err());
        assert!(Exp::new(f64::NAN).is_err());
    }

    #[test]
    fn bounded_pareto_stays_in_bounds_and_skews_low() {
        use distributions::BoundedPareto;
        let d = BoundedPareto::new(1.2, 1_000.0, 1_000_000.0).unwrap();
        let mut r = StdRng::seed_from_u64(11);
        let mut below_10k = 0usize;
        for _ in 0..10_000 {
            let x = d.sample(&mut r);
            assert!((1_000.0..=1_000_000.0).contains(&x), "out of bounds: {x}");
            if x < 10_000.0 {
                below_10k += 1;
            }
        }
        // Shape 1.2 over three decades: the bulk of the mass sits in
        // the lowest decade (heavy tail = rare elephants, many mice).
        assert!(
            below_10k > 8_000,
            "expected mouse-dominated draw, got {below_10k}/10000 below 10k"
        );
        assert!(BoundedPareto::new(1.0, 10.0, 10.0).is_err());
        assert!(BoundedPareto::new(-1.0, 1.0, 2.0).is_err());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
